//! The end-to-end paper pipeline.
//!
//! Stages (paper Sections III-A through III-C):
//!
//! 1. **Corpus** — draw a synthetic Cookpad-like corpus (the paper's data
//!    is closed; the generator plants ground-truth archetypes).
//! 2. **Dataset** — parse quantities to grams, compute `−ln` concentration
//!    features, extract dictionary terms, apply the ≥10 %
//!    unrelated-ingredient filter.
//! 3. **Word2vec filter** — train SGNS on all descriptions and drop
//!    texture terms whose neighbourhoods contain gel-unrelated
//!    ingredients; re-map the dataset to the surviving vocabulary.
//! 4. **Joint topic model** — collapsed Gibbs over the term sequences and
//!    concentration vectors.
//!
//! Each stage is public so examples and experiments can run them
//! separately; [`PipelineRun`] chains them. One builder replaces the
//! historical per-concern entry points:
//!
//! ```no_run
//! # use rheotex::pipeline::{CheckpointOptions, PipelineConfig, PipelineRun};
//! # use rheotex_obs::Obs;
//! let config = PipelineConfig::small(150);
//! let out = PipelineRun::new(&config)
//!     .observed(&Obs::disabled())                       // stage spans + sweep events
//!     .checkpointed(CheckpointOptions::new("ckpt", 50)) // durable fit snapshots
//!     .run()?;
//! # Ok::<(), rheotex::pipeline::PipelineError>(())
//! ```
//!
//! With an [`rheotex_obs::Obs`] handle attached the run emits one
//! `stage.*` span per stage and one sweep event per Gibbs sweep (see
//! README.md § Observability for the span names and fields — they are a
//! stable interface). With [`CheckpointOptions`] the fit stage
//! additionally writes durable snapshots and can resume after a crash
//! (see README.md § Resilience); a resumed fit is bit-identical to an
//! uninterrupted one. [`PipelineConfig::threads`] selects the
//! deterministic parallel sweep kernel for the fit stage. The historical
//! free functions (`run_pipeline`, `fit_recipes`, and their `_observed` /
//! `_checkpointed` variants) have been removed; see README.md
//! § Migrating to the unified fitting API.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::checkpoint::{JointSnapshot, SamplerSnapshot};
use rheotex_core::{
    ChainSet, FitOptions, FittedJointModel, GibbsKernel, HealthPolicy, JointConfig,
    JointTopicModel, ModelError, TraceDiagnostic,
};
use rheotex_corpus::synth::{generate, SynthConfig, SynthCorpus};
use rheotex_corpus::{Dataset, DatasetFilter, IngredientDb, IngredientKind};
use rheotex_embed::{FilterConfig, FilterOutcome, GelRelatednessFilter, SgnsConfig, Word2Vec};
use rheotex_linkage::encode::dataset_to_docs;
use rheotex_obs::Obs;
use rheotex_resilience::{CheckpointStore, PeriodicCheckpointer, ResilienceError};
use rheotex_textures::{tokenize, TextureDictionary};
use std::fmt;
use std::path::PathBuf;

/// Pipeline-level error: which stage failed and why.
#[derive(Debug)]
pub enum PipelineError {
    /// Corpus generation or dataset construction failed.
    Corpus(rheotex_corpus::CorpusError),
    /// Model fitting failed.
    Model(rheotex_core::ModelError),
    /// Checkpoint storage failed (writing, or loading for resume).
    Checkpoint(ResilienceError),
    /// The dataset became empty (nothing survived filtering).
    EmptyDataset,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Corpus(e) => write!(f, "corpus stage failed: {e}"),
            Self::Model(e) => write!(f, "model stage failed: {e}"),
            Self::Checkpoint(e) => write!(f, "checkpoint stage failed: {e}"),
            Self::EmptyDataset => write!(f, "no recipes survived filtering"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<rheotex_corpus::CorpusError> for PipelineError {
    fn from(e: rheotex_corpus::CorpusError) -> Self {
        Self::Corpus(e)
    }
}
impl From<rheotex_core::ModelError> for PipelineError {
    fn from(e: rheotex_core::ModelError) -> Self {
        Self::Model(e)
    }
}
impl From<ResilienceError> for PipelineError {
    fn from(e: ResilienceError) -> Self {
        Self::Checkpoint(e)
    }
}

/// Where and how often the fit stage checkpoints, and whether to resume.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory holding the single `latest.ckpt` file.
    pub dir: PathBuf,
    /// Sweeps between checkpoints (0 disables periodic writes).
    pub every: usize,
    /// When `true` and a valid checkpoint exists in `dir`, continue from
    /// it instead of starting over. Without a checkpoint the fit starts
    /// fresh; an unreadable checkpoint is an error, not silent loss.
    pub resume: bool,
}

impl CheckpointOptions {
    /// Checkpoints into `dir` every `every` sweeps, not resuming.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            dir: dir.into(),
            every,
            resume: false,
        }
    }

    /// Enables resuming from an existing checkpoint in the directory.
    #[must_use]
    pub fn resume(mut self) -> Self {
        self.resume = true;
        self
    }
}

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic corpus settings.
    pub synth: SynthConfig,
    /// Word2vec training settings.
    pub sgns: SgnsConfig,
    /// Gel-relatedness filter settings.
    pub filter: FilterConfig,
    /// Dataset filter (the ≥10 % rule).
    pub dataset_filter: DatasetFilter,
    /// Number of topics `K`.
    pub n_topics: usize,
    /// Gibbs sweeps.
    pub sweeps: usize,
    /// Burn-in sweeps.
    pub burn_in: usize,
    /// Master seed; all stages derive their RNG streams from it.
    pub seed: u64,
    /// Worker threads for the Gibbs sweeps of the fit stage. `0` (the
    /// default) runs the historical serial kernel; any value `>= 1` runs
    /// the deterministic chunked parallel kernel, whose output is
    /// identical for every thread count (see `rheotex-core`'s crate docs
    /// for the contract).
    pub threads: usize,
    /// Explicit Gibbs kernel for the fit stage; `None` (the default)
    /// keeps the historical thread-count semantics above. `serial`,
    /// `parallel`, `sparse`, `sparse-parallel`, and `alias` name the
    /// kernel directly — the sparse kernel is single-threaded
    /// (`threads == 0`); `sparse-parallel` composes the sparse bucket
    /// sweep with the parallel kernel's deterministic chunk grid and
    /// accepts any thread count; `alias` runs the O(1)-amortized
    /// alias-table Metropolis-Hastings sweep over the same chunk grid
    /// (any thread count, stationary-exact but not sweep-identical to
    /// the dense conditional).
    pub kernel: Option<GibbsKernel>,
    /// Independent Gibbs chains for the fit stage. `0` or `1` (the
    /// default) runs the historical single chain; `>= 2` fits that many
    /// replicas from consecutive seeds via [`ChainSet`], keeps the chain
    /// with the highest final log-likelihood, and attaches split-R̂ /
    /// bulk-ESS convergence diagnostics to the output. Chain 0 is
    /// bit-identical to the single-chain fit. Multi-chain runs cannot
    /// be checkpointed.
    pub chains: usize,
    /// Health supervision for the fit stage. `None` (the default) runs
    /// unsupervised — the historical behaviour, bit-identical to every
    /// earlier release. With a policy the fit runs per-sweep sentinels
    /// and sampled count audits, and (policy permitting) rolls back to
    /// the last good in-memory snapshot on a trip; see
    /// [`rheotex_core::HealthPolicy`]. A healthy supervised run is
    /// bit-identical to the unsupervised one.
    pub health: Option<HealthPolicy>,
    /// Multi-chain quorum: with [`PipelineConfig::chains`] `>= 2` and
    /// this `>= 1`, the run survives as long as at least this many
    /// chains fit successfully (unrecoverable chains are dropped and
    /// reported). `0` (the default) requires every chain to succeed.
    /// Ignored for single-chain runs.
    pub min_chains: usize,
}

impl PipelineConfig {
    /// Paper-scale settings: ~3,600 generated recipes (≈3,000 after
    /// filtering), K = 10, 400 sweeps.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            synth: SynthConfig::paper_scale(),
            sgns: SgnsConfig {
                // Terms rarer than this have untrained, noisy embeddings;
                // leaving them out of vocabulary means the filter keeps
                // them (no evidence), rather than judging them on noise.
                min_count: 8,
                ..SgnsConfig::default()
            },
            filter: FilterConfig {
                // Keep a term when its gel-word similarity clearly beats
                // the offending topping's — rescues noisy-but-anchored
                // terms without sparing true confounders (see
                // crates/embed/src/filter.rs docs).
                gel_protection_margin: Some(0.1),
                ..FilterConfig::default()
            },
            dataset_filter: DatasetFilter::default(),
            n_topics: 10,
            sweeps: 400,
            burn_in: 200,
            seed: 2022,
            threads: 0,
            kernel: None,
            chains: 1,
            health: None,
            min_chains: 0,
        }
    }

    /// Small settings for tests, doctests, and quick examples.
    #[must_use]
    pub fn small(n_recipes: usize) -> Self {
        Self {
            synth: SynthConfig::small(n_recipes),
            sgns: SgnsConfig {
                dim: 16,
                epochs: 4,
                min_count: 10,
                ..SgnsConfig::default()
            },
            filter: FilterConfig {
                gel_protection_margin: Some(0.1),
                ..FilterConfig::default()
            },
            dataset_filter: DatasetFilter::default(),
            n_topics: 10,
            sweeps: 80,
            burn_in: 40,
            seed: 2022,
            threads: 0,
            kernel: None,
            chains: 1,
            health: None,
            min_chains: 0,
        }
    }
}

/// Everything the pipeline produces.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The raw synthetic corpus (with ground-truth labels).
    pub corpus: SynthCorpus,
    /// The filtered, re-mapped dataset the model consumed.
    pub dataset: Dataset,
    /// The final compact dictionary (ids match the dataset's term ids and
    /// the model's vocabulary indices).
    pub dict: TextureDictionary,
    /// Word2vec filter decisions, one per candidate term.
    pub filter_outcomes: Vec<FilterOutcome>,
    /// The fitted joint topic model.
    pub model: FittedJointModel,
    /// Cross-chain convergence diagnostics; empty for single-chain runs
    /// ([`PipelineConfig::chains`] `<= 1`).
    pub diagnostics: Vec<TraceDiagnostic>,
}

/// Output of the corpus-agnostic stages (2–4): everything except the raw
/// corpus. Produced by [`PipelineRun::fit_recipes`], which serves both the
/// synthetic path and recipes loaded from disk (`rheotex-cli fit`).
#[derive(Debug, Clone)]
pub struct FitOutput {
    /// The filtered, re-mapped dataset the model consumed.
    pub dataset: Dataset,
    /// The final compact dictionary.
    pub dict: TextureDictionary,
    /// Word2vec filter decisions.
    pub filter_outcomes: Vec<FilterOutcome>,
    /// The fitted joint topic model.
    pub model: FittedJointModel,
    /// Cross-chain convergence diagnostics; empty for single-chain runs
    /// ([`PipelineConfig::chains`] `<= 1`).
    pub diagnostics: Vec<TraceDiagnostic>,
}

/// Stage 3: trains word2vec on the corpus descriptions and partitions the
/// comprehensive dictionary's *active* terms into kept / excluded.
/// Returns the restricted dictionary and the outcome log.
#[must_use]
pub fn word2vec_filter_stage(
    seed: u64,
    recipes: &[rheotex_corpus::Recipe],
    dataset: &Dataset,
    comprehensive: &TextureDictionary,
    sgns: &SgnsConfig,
    filter_config: &FilterConfig,
    db: &IngredientDb,
) -> (TextureDictionary, Vec<FilterOutcome>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x77F0);
    let sentences: Vec<Vec<String>> = recipes.iter().map(|r| tokenize(&r.description)).collect();
    let w2v = Word2Vec::train(&mut rng, &sentences, sgns);

    // Unrelated-ingredient vocabulary: database entries marked Unrelated;
    // gel words for the contrast guard: the gelling agents themselves.
    let unrelated: Vec<String> = db
        .iter()
        .filter(|i| i.kind == IngredientKind::Unrelated)
        .flat_map(|i| i.name.split_whitespace().map(str::to_string))
        .collect();
    let gel_words: Vec<String> = db
        .iter()
        .filter(|i| matches!(i.kind, IngredientKind::Gel(_)))
        .map(|i| i.name.clone())
        .collect();
    let filter = GelRelatednessFilter::new(unrelated, gel_words, filter_config.clone());

    // Candidate terms: the dictionary terms actually occurring in the
    // filtered dataset.
    let mut active: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for f in &dataset.features {
        for &t in &f.terms {
            if seen.insert(t) {
                active.push(comprehensive.entry(t).surface.clone());
            }
        }
    }
    active.sort(); // deterministic order

    let (kept, outcomes) = filter.filter_terms(&w2v, &active);
    let kept_ids: Vec<_> = kept
        .iter()
        .filter_map(|s| comprehensive.lookup(s))
        .collect();
    (comprehensive.restrict(&kept_ids), outcomes)
}

/// The single pipeline entry point: a builder collecting the
/// cross-cutting concerns (observability, checkpointing) that the
/// historical free functions hard-wired into separate signatures, with
/// [`Self::run`] for the full pipeline (stage 1 onward) and
/// [`Self::fit_recipes`] for stages 2–4 on recipes from any source.
///
/// Thread count for the fit stage comes from
/// [`PipelineConfig::threads`]; everything else about the fit contract
/// (determinism, resume bit-identity) is documented on
/// [`JointTopicModel::fit_with`].
pub struct PipelineRun<'a> {
    config: &'a PipelineConfig,
    obs: Obs,
    checkpoint: Option<CheckpointOptions>,
}

impl<'a> PipelineRun<'a> {
    /// A run of `config` with no observability and no checkpointing.
    #[must_use]
    pub fn new(config: &'a PipelineConfig) -> Self {
        Self {
            config,
            obs: Obs::disabled(),
            checkpoint: None,
        }
    }

    /// Emits stage spans and per-sweep events through `obs`. With a
    /// disabled handle this is a no-op, and observation never changes
    /// the fitted model.
    ///
    /// Spans (stable names): `stage.corpus` (recipes, labels),
    /// `stage.dataset` (recipes_in, docs_kept, tokens),
    /// `stage.word2vec_filter` (candidates, kept, excluded, docs_kept,
    /// tokens), `stage.fit` (docs, vocab, topics, sweeps, threads, plus
    /// checkpoint_every / resumed_from_sweep when checkpointing).
    #[must_use]
    pub fn observed(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Checkpoints the fit stage durably: every `opts.every` sweeps the
    /// full sampler state is atomically written to `opts.dir`, and with
    /// `opts.resume` a previously written checkpoint is continued
    /// **bit-identically** — the resumed fit equals the fit the
    /// uninterrupted run would have produced (resume with the same
    /// `threads` kernel class: serial vs. parallel).
    ///
    /// Stages 2–3 (dataset, word2vec filter) are deterministic given the
    /// config and cheap relative to the Gibbs fit, so they are simply
    /// re-run on resume; only the sampler state is persisted.
    #[must_use]
    pub fn checkpointed(mut self, opts: CheckpointOptions) -> Self {
        self.checkpoint = Some(opts);
        self
    }

    /// Runs the full pipeline: synthetic corpus generation (stage 1)
    /// followed by [`Self::fit_recipes`].
    ///
    /// # Errors
    /// [`PipelineError`] naming the failing stage.
    pub fn run(&self) -> Result<PipelineOutput, PipelineError> {
        let config = self.config;
        let db = IngredientDb::builtin();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut span = self.obs.span("stage.corpus");
        let corpus = generate(&mut rng, &config.synth, &db)?;
        span.set("recipes", corpus.recipes.len() as u64);
        span.set("labels", corpus.labels.len() as u64);
        span.finish();
        let fit = self.fit_recipes(&corpus.recipes, &corpus.labels)?;
        Ok(PipelineOutput {
            corpus,
            dataset: fit.dataset,
            dict: fit.dict,
            filter_outcomes: fit.filter_outcomes,
            model: fit.model,
            diagnostics: fit.diagnostics,
        })
    }

    /// Runs stages 2–4 on arbitrary recipes (synthetic or loaded from
    /// disk): dataset construction, the word2vec relatedness filter, and
    /// the joint topic model fit. `labels` may be empty.
    ///
    /// # Errors
    /// [`PipelineError`] naming the failing stage;
    /// [`PipelineError::Checkpoint`] if an existing checkpoint cannot be
    /// read on resume, or a periodic write fails;
    /// [`PipelineError::Model`] ([`ModelError::ResumeMismatch`]) if the
    /// checkpoint belongs to a different engine, config, or corpus.
    pub fn fit_recipes(
        &self,
        recipes: &[rheotex_corpus::Recipe],
        labels: &[usize],
    ) -> Result<FitOutput, PipelineError> {
        let config = self.config;
        let obs = &self.obs;
        let (dataset, dict, filter_outcomes) = prepare_dataset(config, recipes, labels, obs)?;

        // Stage 4: joint topic model.
        let docs = dataset_to_docs(&dataset);
        let model = JointTopicModel::new(model_config(config, dict.len()))?;

        if config.chains > 1 && self.checkpoint.is_some() {
            return Err(PipelineError::Model(ModelError::InvalidConfig {
                what: format!(
                    "multi-chain fits (chains = {}) cannot be checkpointed; \
                     run with chains = 1 or drop the checkpoint options",
                    config.chains
                ),
            }));
        }

        let mut resume_from: Option<JointSnapshot> = None;
        let mut sink: Option<PeriodicCheckpointer> = None;
        if let Some(opts) = &self.checkpoint {
            let store = CheckpointStore::new(&opts.dir);
            if opts.resume && store.exists() {
                match store.load()? {
                    SamplerSnapshot::Joint(snapshot) => resume_from = Some(snapshot),
                    other => {
                        return Err(PipelineError::Model(ModelError::ResumeMismatch {
                            what: format!(
                                "checkpoint in {} is from the {} engine, not the joint model",
                                opts.dir.display(),
                                other.engine()
                            ),
                        }));
                    }
                }
            }
            sink = Some(PeriodicCheckpointer::new(store, opts.every).with_obs(obs.clone()));
        }

        let mut span = obs.span("stage.fit");
        span.set("docs", docs.len() as u64);
        span.set("vocab", dict.len() as u64);
        span.set("topics", config.n_topics as u64);
        span.set("sweeps", config.sweeps as u64);
        span.set("threads", config.threads as u64);
        if let Some(kernel) = config.kernel {
            span.set("kernel", kernel.to_string());
        }
        if config.health.is_some() {
            span.set("health", 1u64);
        }
        if let Some(opts) = &self.checkpoint {
            span.set("checkpoint_every", opts.every as u64);
            span.set(
                "resumed_from_sweep",
                resume_from.as_ref().map_or(0, |s| s.next_sweep) as u64,
            );
        }

        let mut diagnostics = Vec::new();
        let fitted = if config.chains > 1 {
            // Multi-chain path: chain c runs from seed (seed ^ 0x10D0) + c,
            // so chain 0 reproduces the single-chain fit bit-for-bit. The
            // buffered sweeps replay onto the pipeline's Obs tagged with
            // their chain index, followed by the convergence events.
            span.set("chains", config.chains as u64);
            let mut chain_set = ChainSet::new(config.chains, fit_seed(config))
                .threads(config.threads)
                .min_chains(config.min_chains);
            if let Some(kernel) = config.kernel {
                chain_set = chain_set.kernel(kernel);
            }
            if let Some(policy) = &config.health {
                chain_set = chain_set.health(policy.clone());
            }
            let chain_fit = chain_set.run(&model, &docs)?;
            chain_fit.replay(obs);
            span.set("best_chain", chain_fit.best as u64);
            if !chain_fit.failed.is_empty() {
                span.set("chains_dropped", chain_fit.failed.len() as u64);
            }
            diagnostics = chain_fit.diagnostics.clone();
            chain_fit.into_best()
        } else {
            let mut observer = obs.clone();
            let mut options = FitOptions::new()
                .observer(&mut observer)
                .threads(config.threads);
            if let Some(kernel) = config.kernel {
                options = options.kernel(kernel);
            }
            if let Some(policy) = &config.health {
                options = options.health(policy.clone());
            }
            if let Some(s) = sink.as_mut() {
                options = options.checkpoint(s);
            }
            if let Some(snapshot) = resume_from {
                options = options.resume(SamplerSnapshot::Joint(snapshot));
            }
            let mut rng = fit_rng(config);
            model.fit_with(&mut rng, &docs, options)?
        };
        span.finish();

        Ok(FitOutput {
            dataset,
            dict,
            filter_outcomes,
            model: fitted,
            diagnostics,
        })
    }
}

fn dataset_tokens(dataset: &Dataset) -> u64 {
    dataset.features.iter().map(|f| f.terms.len() as u64).sum()
}

/// Stages 2–3, shared by the plain and the checkpointed fit paths:
/// dataset construction against the comprehensive dictionary, then the
/// word2vec relatedness filter and vocabulary re-mapping.
fn prepare_dataset(
    config: &PipelineConfig,
    recipes: &[rheotex_corpus::Recipe],
    labels: &[usize],
    obs: &Obs,
) -> Result<(Dataset, TextureDictionary, Vec<FilterOutcome>), PipelineError> {
    let db = IngredientDb::builtin();
    let comprehensive = TextureDictionary::comprehensive();

    // Stage 2: dataset against the full dictionary (quantity parsing,
    // −ln concentrations, term extraction, the ≥10 % unrelated rule).
    let mut span = obs.span("stage.dataset");
    span.set("recipes_in", recipes.len() as u64);
    let dataset = Dataset::build(recipes, labels, &db, &comprehensive, config.dataset_filter)?;
    span.set("docs_kept", dataset.len() as u64);
    span.set("tokens", dataset_tokens(&dataset));
    span.finish();
    if dataset.is_empty() {
        return Err(PipelineError::EmptyDataset);
    }

    // Stage 3: word2vec relatedness filter.
    let mut span = obs.span("stage.word2vec_filter");
    let (dict, filter_outcomes) = word2vec_filter_stage(
        config.seed,
        recipes,
        &dataset,
        &comprehensive,
        &config.sgns,
        &config.filter,
        &db,
    );
    let dataset = dataset.remap_terms(&comprehensive, &dict);
    let excluded = filter_outcomes.iter().filter(|o| !o.keep).count();
    span.set("candidates", filter_outcomes.len() as u64);
    span.set("kept", (filter_outcomes.len() - excluded) as u64);
    span.set("excluded", excluded as u64);
    span.set("docs_kept", dataset.len() as u64);
    span.set("tokens", dataset_tokens(&dataset));
    span.finish();
    if dataset.is_empty() {
        return Err(PipelineError::EmptyDataset);
    }
    Ok((dataset, dict, filter_outcomes))
}

/// The joint-model configuration the fit stage uses.
fn model_config(config: &PipelineConfig, vocab: usize) -> JointConfig {
    JointConfig {
        n_topics: config.n_topics,
        sweeps: config.sweeps,
        burn_in: config.burn_in,
        ..JointConfig::paper_default(vocab)
    }
}

/// The fit stage's RNG stream, derived from the master seed. Fresh
/// checkpointed runs use the same stream, which is why a resumed fit can
/// be bit-identical to an uninterrupted `fit_recipes` call.
fn fit_rng(config: &PipelineConfig) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(fit_seed(config))
}

/// The u64 the fit stage's RNG stream derives from; multi-chain runs
/// seed chain `c` with `fit_seed + c` so chain 0 matches the
/// single-chain fit bit-for-bit.
fn fit_seed(config: &PipelineConfig) -> u64 {
    config.seed ^ 0x10D0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pipeline_runs_end_to_end() {
        let out = PipelineRun::new(&PipelineConfig::small(300)).run().unwrap();
        // Roughly half the corpus survives: the ≥10% topping filter, the
        // no-terms rule, and word2vec term exclusions all bite at this
        // scale (the paper kept ~3k of ~10k for the same reasons).
        assert!(out.dataset.len() > 120, "kept {}", out.dataset.len());
        assert_eq!(out.model.n_docs(), out.dataset.len());
        assert_eq!(out.model.n_topics(), 10);
        // The final dictionary only contains gel-related terms or terms
        // the filter had no evidence against.
        assert!(out.dict.len() <= 46);
    }

    #[test]
    fn filter_excludes_at_least_one_confounder() {
        let out = PipelineRun::new(&PipelineConfig::small(600)).run().unwrap();
        let excluded: Vec<&str> = out
            .filter_outcomes
            .iter()
            .filter(|o| !o.keep)
            .map(|o| o.term.as_str())
            .collect();
        // The generator plants karikari/sakusaku/zakuzaku/paripari/poripori
        // next to toppings; with 600 recipes word2vec should catch some.
        assert!(
            !excluded.is_empty(),
            "no confounders excluded; outcomes: {:?}",
            out.filter_outcomes
        );
        // Rare genuine terms can be falsely excluded (their embeddings are
        // noisy at this corpus size — the paper's method has the same
        // failure mode), so assert *precision*, not perfection.
        let comprehensive = TextureDictionary::comprehensive();
        let true_confounders = excluded
            .iter()
            .filter(|term| {
                comprehensive
                    .lookup(term)
                    .is_some_and(|id| !comprehensive.entry(id).gel_related)
            })
            .count();
        assert!(
            true_confounders * 2 >= excluded.len(),
            "exclusion precision below 1/2: {excluded:?}"
        );
        assert!(
            true_confounders >= 1,
            "no true confounder caught: {excluded:?}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let config = PipelineConfig::small(150);
        let a = PipelineRun::new(&config).run().unwrap();
        let b = PipelineRun::new(&config).run().unwrap();
        assert_eq!(a.model.y, b.model.y);
        assert_eq!(a.dataset.len(), b.dataset.len());
    }

    #[test]
    fn parallel_fit_is_thread_count_invariant() {
        let mut config = PipelineConfig::small(150);
        config.threads = 1;
        let one = PipelineRun::new(&config).run().unwrap();
        config.threads = 4;
        let four = PipelineRun::new(&config).run().unwrap();
        assert_eq!(one.model.y, four.model.y);
        assert_eq!(one.model.ll_trace, four.model.ll_trace);
    }

    #[test]
    fn observed_pipeline_emits_stage_spans_and_sweeps() {
        use rheotex_obs::{EventKind, MemorySink, Obs};

        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        let config = PipelineConfig::small(150);
        let out = PipelineRun::new(&config).observed(&obs).run().unwrap();

        // Exactly one span per stage, in pipeline order.
        let ends = sink.events_of(EventKind::SpanEnd);
        let names: Vec<&str> = ends.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(
            names,
            [
                "stage.corpus",
                "stage.dataset",
                "stage.word2vec_filter",
                "stage.fit"
            ]
        );
        for e in &ends {
            assert!(e.field_f64("duration_us").is_some(), "{}", e.name);
        }
        // Stage fields carry the sizes the run actually saw.
        let filter_span = &ends[2];
        assert_eq!(
            filter_span.field_f64("docs_kept"),
            Some(out.dataset.len() as f64)
        );
        let fit_span = &ends[3];
        assert_eq!(fit_span.field_f64("docs"), Some(out.model.n_docs() as f64));
        assert_eq!(fit_span.field_f64("sweeps"), Some(config.sweeps as f64));
        // One sweep event per Gibbs sweep.
        let sweeps = sink.events_of(EventKind::Sweep);
        assert_eq!(sweeps.len(), config.sweeps);

        // Observation must not change the fit.
        let plain = PipelineRun::new(&config).run().unwrap();
        assert_eq!(plain.model.y, out.model.y);
    }

    #[test]
    fn checkpointed_fit_matches_plain_fit_and_resumes() {
        use rheotex_corpus::synth::generate;

        let config = PipelineConfig::small(150);
        let db = IngredientDb::builtin();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let corpus = generate(&mut rng, &config.synth, &db).unwrap();

        let plain = PipelineRun::new(&config)
            .fit_recipes(&corpus.recipes, &corpus.labels)
            .unwrap();

        let dir =
            std::env::temp_dir().join(format!("rheotex-pipeline-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = CheckpointOptions::new(&dir, 20);

        // Fresh checkpointed run: checkpointing must not perturb the fit.
        let fresh = PipelineRun::new(&config)
            .checkpointed(opts.clone())
            .fit_recipes(&corpus.recipes, &corpus.labels)
            .unwrap();
        assert_eq!(fresh.model.y, plain.model.y);
        assert_eq!(fresh.model.ll_trace, plain.model.ll_trace);

        // The final checkpoint covers the whole run; resuming from it
        // re-runs zero sweeps and reproduces the same fit.
        let resumed = PipelineRun::new(&config)
            .checkpointed(opts.clone().resume())
            .fit_recipes(&corpus.recipes, &corpus.labels)
            .unwrap();
        assert_eq!(resumed.model.y, plain.model.y);
        assert_eq!(resumed.model.ll_trace, plain.model.ll_trace);

        // Resume against an empty directory silently starts fresh.
        let _ = std::fs::remove_dir_all(&dir);
        let fresh_again = PipelineRun::new(&config)
            .checkpointed(opts.resume())
            .fit_recipes(&corpus.recipes, &corpus.labels)
            .unwrap();
        assert_eq!(fresh_again.model.y, plain.model.y);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_chain_fit_diagnoses_and_tags_chains() {
        use rheotex_obs::{EventKind, MemorySink, Obs};

        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        let mut config = PipelineConfig::small(150);
        config.sweeps = 20;
        config.burn_in = 10;
        config.chains = 2;
        let out = PipelineRun::new(&config).observed(&obs).run().unwrap();
        assert!(!out.diagnostics.is_empty());

        // Two chains' sweeps replay, each tagged with its chain index.
        let sweeps = sink.events_of(EventKind::Sweep);
        assert_eq!(sweeps.len(), 2 * config.sweeps);
        for e in &sweeps {
            assert!(e.field_f64("chain").is_some(), "sweep missing chain tag");
        }
        let conv = sink.events_of(EventKind::Convergence);
        assert_eq!(conv.len(), out.diagnostics.len());

        // The winner is one of the two chains: chain 0 is the
        // single-chain fit, so the multi-chain model either equals it or
        // beats its final log-likelihood.
        config.chains = 1;
        let single = PipelineRun::new(&config).run().unwrap();
        let single_ll = single.model.ll_trace.last().copied().unwrap();
        let multi_ll = out.model.ll_trace.last().copied().unwrap();
        assert!(multi_ll >= single_ll || out.model.y == single.model.y);
        assert!(single.diagnostics.is_empty());
    }

    #[test]
    fn supervised_healthy_fit_is_bit_identical_to_unsupervised() {
        let config = PipelineConfig::small(150);
        let plain = PipelineRun::new(&config).run().unwrap();
        let mut supervised = config.clone();
        supervised.health = Some(HealthPolicy::recover());
        let out = PipelineRun::new(&supervised).run().unwrap();
        assert_eq!(out.model.y, plain.model.y);
        assert_eq!(out.model.ll_trace, plain.model.ll_trace);
        // Quorum settings are inert on a healthy multi-chain run too.
        let mut quorum = supervised;
        quorum.chains = 2;
        quorum.min_chains = 1;
        quorum.sweeps = 20;
        quorum.burn_in = 10;
        assert!(PipelineRun::new(&quorum).run().is_ok());
    }

    #[test]
    fn multi_chain_refuses_checkpointing() {
        let mut config = PipelineConfig::small(150);
        config.chains = 2;
        let dir = std::env::temp_dir().join(format!("rheotex-chain-ckpt-{}", std::process::id()));
        let err = PipelineRun::new(&config)
            .checkpointed(CheckpointOptions::new(&dir, 10))
            .run();
        assert!(
            matches!(
                err,
                Err(PipelineError::Model(ModelError::InvalidConfig { .. }))
            ),
            "expected InvalidConfig"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_config_fails_cleanly() {
        let mut c = PipelineConfig::small(5);
        c.dataset_filter.max_unrelated_fraction = -1.0; // excludes all
        let err = PipelineRun::new(&c).run();
        assert!(matches!(err, Err(PipelineError::EmptyDataset) | Err(_)));
    }
}

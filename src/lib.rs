//! # rheotex
//!
//! Reproduction of *"Detecting Sensory Textures with Rheological
//! Characteristics from Recipe Sharing Sites"* (Uehara & Mochihashi,
//! ICDE 2022): a joint topic model that bridges sensory texture terms in
//! recipe text with quantitative rheology via gel and emulsion
//! concentration features.
//!
//! This facade crate re-exports the workspace's public API and provides
//! [`pipeline`] — the end-to-end paper pipeline from posted recipes to
//! linked topics:
//!
//! ```text
//! recipes ─ parse units → grams ─ concentrations ─ −ln(x) features ─┐
//!    │                                                              │
//!    └ descriptions ─ word2vec ─ gel-relatedness filter ─ terms ────┤
//!                                                                   ▼
//!                                              joint topic model (Gibbs)
//!                                                                   │
//!                   Table I / dishes ─ KL linkage ◄─ topics ◄───────┘
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use rheotex::pipeline::{PipelineConfig, PipelineRun};
//!
//! // A miniature corpus so the doctest stays fast; see
//! // `PipelineConfig::paper_scale()` for the paper's dimensions.
//! let mut config = PipelineConfig::small(250);
//! config.seed = 7;
//! let out = PipelineRun::new(&config).run().expect("pipeline runs");
//! assert!(out.model.n_topics() > 0);
//! assert_eq!(out.dataset.len(), out.model.n_docs());
//! ```
//!
//! The sub-crates, bottom-up:
//!
//! | crate | contents |
//! |---|---|
//! | [`linalg`] | dense matrices, Cholesky, Normal-Wishart, Wishart, Student-t, KL divergences |
//! | [`textures`] | the 288-term texture dictionary with rheological categories |
//! | [`corpus`] | quantity parsing, concentration features, synthetic Cookpad generator |
//! | [`embed`] | word2vec (SGNS) and the gel-relatedness term filter |
//! | [`rheology`] | TPA rheometer simulator, Table I / Table II(b) data |
//! | [`core`] | the joint topic model, collapsed variant, LDA / GMM baselines |
//! | [`linkage`] | KL topic assignment, Fig. 3 / Fig. 4 analyses, recovery metrics |
//! | [`obs`] | structured tracing: spans, counters, sweep events, JSONL metrics |
//! | [`resilience`] | versioned CRC-checked checkpoints, atomic stores, fault injection |
//! | [`serve`] | versioned model artifacts, fold-in inference for unseen recipes, batched HTTP front end |
//!
//! ## Observability
//!
//! Every pipeline stage and every Gibbs sweep can be traced through an
//! [`obs::Obs`] handle — see [`pipeline::PipelineRun::observed`] and
//! README.md § Observability for the stable event schema:
//!
//! ```
//! use rheotex::obs::{EventKind, MemorySink, Obs};
//! use rheotex::pipeline::{PipelineConfig, PipelineRun};
//!
//! let sink = MemorySink::default();
//! let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
//! let mut config = PipelineConfig::small(250);
//! config.seed = 7;
//! PipelineRun::new(&config).observed(&obs).run().expect("pipeline runs");
//! // One span per stage, one sweep event per Gibbs sweep.
//! assert_eq!(sink.events_of(EventKind::SpanEnd).len(), 4);
//! assert_eq!(sink.events_of(EventKind::Sweep).len(), config.sweeps);
//! ```
//!
//! ## Resilience
//!
//! Long Gibbs fits can checkpoint their full sampler state to disk and
//! resume **bit-identically** after a crash — see
//! [`pipeline::PipelineRun::checkpointed`], [`pipeline::CheckpointOptions`],
//! and README.md § Resilience for the checkpoint format and the
//! numerical ridge-jitter recovery policy:
//!
//! ```
//! use rheotex::pipeline::CheckpointOptions;
//!
//! let opts = CheckpointOptions::new("/tmp/rheotex-ckpt", 25).resume();
//! assert_eq!(opts.every, 25);
//! assert!(opts.resume);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use rheotex_core as core;
pub use rheotex_corpus as corpus;
pub use rheotex_embed as embed;
pub use rheotex_linalg as linalg;
pub use rheotex_linkage as linkage;
pub use rheotex_obs as obs;
pub use rheotex_resilience as resilience;
pub use rheotex_rheology as rheology;
pub use rheotex_serve as serve;
pub use rheotex_textures as textures;

pub mod pipeline;

//! Property-based tests over the core invariants of the system.

use proptest::prelude::*;
use rheotex::corpus::features::{concentration_from_info, info_quantity, MIN_CONCENTRATION};
use rheotex::corpus::units::{parse_quantity, Quantity, Unit};
use rheotex::corpus::IngredientDb;
use rheotex::linalg::dist::{GaussianStats, NormalWishart};
use rheotex::linalg::kl::{js_divergence, kl_discrete, kl_gaussian};
use rheotex::linalg::{Cholesky, Matrix, Vector};
use rheotex::rheology::tpa::{GelMechanics, TpaConfig, TpaCurve};
use rheotex::textures::{extract_terms, TextureDictionary};
use rheotex_linkage::{adjusted_rand_index, normalized_mutual_information, purity};

fn small_conc() -> impl Strategy<Value = f64> {
    (1e-4..0.2f64).prop_map(|x| x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- units ----

    /// Any quantity rendered as "<v>g" parses back to exactly v grams.
    #[test]
    fn gram_quantities_roundtrip(v in 0.1..5000.0f64) {
        let v = (v * 2.0).round() / 2.0; // generator-style 0.5 g rounding
        let q = parse_quantity(&format!("{v}g")).unwrap();
        prop_assert_eq!(q, Quantity { value: v, unit: Unit::Gram });
        let db = IngredientDb::builtin();
        let water = db.lookup("water").unwrap();
        prop_assert!((q.to_grams(water).unwrap() - v).abs() < 1e-9);
    }

    /// Volume conversions scale linearly with specific gravity.
    #[test]
    fn volume_conversion_linear(ml in 1.0..2000.0f64) {
        let db = IngredientDb::builtin();
        let milk = db.lookup("milk").unwrap();
        let q = Quantity { value: ml, unit: Unit::Milliliter };
        let grams = q.to_grams(milk).unwrap();
        prop_assert!((grams - ml * milk.specific_gravity).abs() < 1e-9);
    }

    // ---- features ----

    /// info_quantity is monotone decreasing and inverts above the floor.
    #[test]
    fn info_quantity_monotone_and_invertible(a in small_conc(), b in small_conc()) {
        if a < b {
            prop_assert!(info_quantity(a) >= info_quantity(b));
        }
        if a >= MIN_CONCENTRATION {
            prop_assert!((concentration_from_info(info_quantity(a)) - a).abs() < 1e-12);
        }
    }

    // ---- linalg / KL ----

    /// Gaussian KL is non-negative and zero iff identical parameters.
    #[test]
    fn gaussian_kl_nonnegative(
        m0 in -5.0..5.0f64, m1 in -5.0..5.0f64,
        v0 in 0.1..4.0f64, v1 in 0.1..4.0f64,
    ) {
        let kl = kl_gaussian(
            &Vector::new(vec![m0]),
            &Matrix::from_diag(&[v0]),
            &Vector::new(vec![m1]),
            &Matrix::from_diag(&[v1]),
        ).unwrap();
        prop_assert!(kl >= -1e-12, "kl = {kl}");
        if (m0 - m1).abs() < 1e-12 && (v0 - v1).abs() < 1e-12 {
            prop_assert!(kl.abs() < 1e-9);
        }
    }

    /// Discrete KL is non-negative; JS is symmetric and bounded by ln 2.
    #[test]
    fn discrete_divergences(
        p in proptest::collection::vec(0.0..1.0f64, 4),
        q in proptest::collection::vec(0.0..1.0f64, 4),
    ) {
        let p = Vector::new(p);
        let q = Vector::new(q);
        // Guard: profiles must not be all-zero after smoothing = 1e-6.
        let kl = kl_discrete(&p, &q, 1e-6).unwrap();
        prop_assert!(kl >= 0.0);
        let js_ab = js_divergence(&p, &q, 1e-6).unwrap();
        let js_ba = js_divergence(&q, &p, 1e-6).unwrap();
        prop_assert!((js_ab - js_ba).abs() < 1e-9);
        prop_assert!(js_ab <= std::f64::consts::LN_2 + 1e-9);
    }

    /// Cholesky factors reconstruct the original SPD matrix.
    #[test]
    fn cholesky_reconstructs(
        a in -2.0..2.0f64, b in -2.0..2.0f64, c in -2.0..2.0f64,
    ) {
        // Build SPD as L L^T + I from arbitrary lower factors.
        let l = Matrix::from_rows_vec(2, 2, vec![a.abs() + 1.0, 0.0, b, c.abs() + 1.0]).unwrap();
        let mut spd = l.matmul(&l.transpose()).unwrap();
        spd[(0, 0)] += 1.0;
        spd[(1, 1)] += 1.0;
        let ch = Cholesky::factor(&spd).unwrap();
        let r = ch.reconstruct();
        for i in 0..2 {
            for j in 0..2 {
                prop_assert!((r[(i, j)] - spd[(i, j)]).abs() < 1e-9);
            }
        }
        prop_assert!(ch.log_det().is_finite());
    }

    /// GaussianStats: any add/remove interleaving that ends balanced
    /// restores the accumulator (up to floating-point noise).
    #[test]
    fn stats_add_remove_invariant(
        xs in proptest::collection::vec(
            proptest::collection::vec(-10.0..10.0f64, 3), 1..8),
    ) {
        let base = Vector::new(vec![1.0, 2.0, 3.0]);
        let mut stats = GaussianStats::new(3);
        stats.add(&base).unwrap();
        let mean_before = stats.mean();
        for x in &xs {
            stats.add(&Vector::new(x.clone())).unwrap();
        }
        for x in xs.iter().rev() {
            stats.remove(&Vector::new(x.clone())).unwrap();
        }
        prop_assert_eq!(stats.count(), 1);
        for i in 0..3 {
            prop_assert!((stats.mean()[i] - mean_before[i]).abs() < 1e-8);
        }
    }

    /// NW posterior degrees of freedom and coupling grow exactly with n.
    #[test]
    fn nw_posterior_counts(
        n in 1usize..30,
    ) {
        let prior = NormalWishart::vague(Vector::zeros(2), 0.5, 1.0).unwrap();
        let mut stats = GaussianStats::new(2);
        for i in 0..n {
            stats.add(&Vector::new(vec![i as f64, -(i as f64)])).unwrap();
        }
        let post = prior.posterior(&stats).unwrap();
        prop_assert!((post.beta() - (0.5 + n as f64)).abs() < 1e-12);
        prop_assert!((post.nu() - (prior.nu() + n as f64)).abs() < 1e-12);
    }

    // ---- rheology ----

    /// TPA extraction recovers the mechanics targets for any reasonable
    /// parameter combination.
    #[test]
    fn tpa_extraction_consistent(
        h in 0.05..10.0f64,
        coh in 0.05..0.9f64,
        adh in 0.0..5.0f64,
        p in 1.2..3.5f64,
    ) {
        let mech = GelMechanics {
            hardness: h,
            cohesiveness: coh,
            adhesiveness: adh,
            peak_exponent: p,
        };
        let attrs = TpaCurve::simulate(&mech, &TpaConfig::default()).extract();
        prop_assert!((attrs.hardness - h).abs() / h < 0.05, "H {} vs {h}", attrs.hardness);
        prop_assert!((attrs.cohesiveness - coh).abs() < 0.05, "C {} vs {coh}", attrs.cohesiveness);
        if adh > 0.01 {
            prop_assert!((attrs.adhesiveness - adh).abs() / adh < 0.06, "A {} vs {adh}", attrs.adhesiveness);
        }
    }

    /// Hardness is monotone in each gel's concentration, whatever the
    /// other gels are doing.
    #[test]
    fn hardness_monotone(
        base in proptest::collection::vec(0.0..0.02f64, 3),
        gel in 0usize..3,
        delta in 0.001..0.02f64,
    ) {
        let mut lo = [base[0], base[1], base[2]];
        let mut hi = lo;
        hi[gel] += delta;
        let h_lo = GelMechanics::from_gel_concentrations(lo).hardness;
        let h_hi = GelMechanics::from_gel_concentrations(hi).hardness;
        prop_assert!(h_hi >= h_lo - 1e-9, "{lo:?} -> {h_lo}, {hi:?} -> {h_hi}");
        lo[gel] += 0.0; // silence unused-mut lint path
    }

    // ---- textures ----

    /// Extraction finds exactly the planted dictionary terms regardless of
    /// surrounding noise tokens.
    #[test]
    fn extraction_finds_planted_terms(
        noise in proptest::collection::vec("[a-z]{2,8}", 0..6),
        plant_count in 1usize..5,
    ) {
        let dict = TextureDictionary::gel_active();
        // Noise tokens that happen to be dictionary terms would confound
        // the count; filter them out.
        let noise: Vec<String> = noise
            .into_iter()
            .filter(|w| dict.lookup(w).is_none())
            .collect();
        let mut text = noise.join(" ");
        for _ in 0..plant_count {
            text.push_str(" purupuru");
        }
        let terms = extract_terms(&dict, &text);
        prop_assert_eq!(terms.len(), plant_count);
    }

    // ---- metrics ----

    /// Identical partitions always score perfectly; metrics live in range.
    #[test]
    fn metrics_ranges(
        labels in proptest::collection::vec(0usize..4, 2..40),
        perm in 0usize..24,
    ) {
        // Apply a label permutation: metrics must be invariant.
        let perms = [
            [0usize, 1, 2, 3], [1, 0, 2, 3], [2, 1, 0, 3], [3, 1, 2, 0],
            [0, 2, 1, 3], [0, 3, 2, 1],
        ];
        let p = perms[perm % perms.len()];
        let renamed: Vec<usize> = labels.iter().map(|&l| p[l]).collect();
        prop_assert_eq!(purity(&renamed, &labels), 1.0);
        prop_assert!((normalized_mutual_information(&renamed, &labels) - 1.0).abs() < 1e-9);
        prop_assert!((adjusted_rand_index(&renamed, &labels) - 1.0).abs() < 1e-9);
    }
}

//! End-to-end integration tests: the full pipeline must reproduce the
//! paper's qualitative structure (Table II(a)/(b) shape) on a small
//! corpus, and the joint model must beat its single-modality baselines.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex::core::gmm::{GmmConfig, GmmModel};
use rheotex::core::lda::{LdaConfig, LdaModel};
use rheotex::core::{FitOptions, TopicSummary};
use rheotex::pipeline::{PipelineConfig, PipelineRun};
use rheotex::rheology::dishes::{bavarois, milk_jelly, pure_gelatin_reference};
use rheotex::rheology::table1::table1;
use rheotex_linkage::assign::{assign_setting, assign_settings};
use rheotex_linkage::encode::dataset_to_docs;
use rheotex_linkage::{adjusted_rand_index, normalized_mutual_information};

fn fitted() -> rheotex::pipeline::PipelineOutput {
    let mut config = PipelineConfig::small(1500);
    config.sweeps = 120;
    config.burn_in = 60;
    config.seed = 99;
    PipelineRun::new(&config).run().expect("pipeline")
}

#[test]
fn topics_separate_by_gel_type() {
    let out = fitted();
    let summaries = TopicSummary::from_model(&out.model, 10, 0.0).expect("summaries");

    // There must be at least one well-populated topic dominated by each
    // gel type (gelatin, kanten, agar).
    for gel in 0..3usize {
        let found = summaries
            .iter()
            .any(|s| s.n_recipes >= 10 && s.dominant_gel().0 == gel);
        assert!(found, "no populated topic dominated by gel {gel}");
    }
}

#[test]
fn table1_rows_assign_to_matching_gel_topics() {
    let out = fitted();
    let summaries = TopicSummary::from_model(&out.model, 10, 0.0).expect("summaries");
    let settings: Vec<(u32, [f64; 3])> = table1().iter().map(|r| (r.id, r.gels)).collect();
    let assignments = assign_settings(&out.model, &settings).expect("assign");

    // Pure-kanten rows (6-9) must land on kanten-dominant topics; pure
    // agar rows (10-13) on agar-dominant topics; pure gelatin rows (1-4)
    // on gelatin-dominant topics.
    for a in &assignments {
        let row = &table1()[(a.setting_id - 1) as usize];
        if a.setting_id == 5 {
            continue; // the gelatin+agar mix can defensibly go either way
        }
        let expected_gel = row
            .gels
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
            .unwrap()
            .0;
        let got = summaries[a.topic].dominant_gel().0;
        assert_eq!(
            got, expected_gel,
            "row {} ({:?}) assigned to topic {} dominated by gel {got}",
            a.setting_id, row.gels, a.topic
        );
    }
}

#[test]
fn kanten_rows_share_topics_and_differ_from_gelatin_rows() {
    let out = fitted();
    let settings: Vec<(u32, [f64; 3])> = table1().iter().map(|r| (r.id, r.gels)).collect();
    let assignments = assign_settings(&out.model, &settings).expect("assign");
    let topic_of = |row: u32| assignments[(row - 1) as usize].topic;

    // Gelatin rows and kanten rows must not mix.
    for g in 1..=4u32 {
        for k in 6..=9u32 {
            assert_ne!(
                topic_of(g),
                topic_of(k),
                "gelatin row {g} and kanten row {k} share a topic"
            );
        }
    }
    // Agar rows cluster together (the paper maps all four to one topic).
    let agar_topics: std::collections::HashSet<usize> = (10..=13).map(topic_of).collect();
    assert!(
        agar_topics.len() <= 2,
        "agar rows scattered over {agar_topics:?}"
    );
}

#[test]
fn dishes_assign_to_one_gelatin_topic() {
    let out = fitted();
    let summaries = TopicSummary::from_model(&out.model, 10, 0.0).expect("summaries");
    let dishes = [bavarois(), milk_jelly(), pure_gelatin_reference()];
    let topics: Vec<usize> = dishes
        .iter()
        .enumerate()
        .map(|(i, d)| assign_setting(&out.model, i as u32, d.gels).unwrap().topic)
        .collect();
    // All three share the 2.5% gelatin composition — one topic for all.
    assert_eq!(topics[0], topics[1]);
    assert_eq!(topics[1], topics[2]);
    assert_eq!(
        summaries[topics[0]].dominant_gel().0,
        0,
        "the dish topic must be gelatin-dominated"
    );
}

#[test]
fn joint_model_recovers_better_than_baselines() {
    let out = fitted();
    let truth = &out.dataset.labels;
    let docs = dataset_to_docs(&out.dataset);
    let k = out.model.n_topics();

    let joint: Vec<usize> = (0..out.model.n_docs())
        .map(|d| out.model.dominant_topic(d))
        .collect();
    let joint_nmi = normalized_mutual_information(&joint, truth);

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let lda_fit = LdaModel::new(LdaConfig {
        n_topics: k,
        vocab_size: out.dict.len(),
        alpha: 0.5,
        gamma: 0.1,
        sweeps: 120,
        burn_in: 60,
    })
    .unwrap()
    .fit_with(&mut rng, &docs, FitOptions::new())
    .unwrap();
    let lda: Vec<usize> = (0..docs.len()).map(|d| lda_fit.dominant_topic(d)).collect();
    let lda_nmi = normalized_mutual_information(&lda, truth);

    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let mut gmm_cfg = GmmConfig::new(k);
    gmm_cfg.sweeps = 60;
    let gmm_fit = GmmModel::new(gmm_cfg)
        .unwrap()
        .fit_with(&mut rng, &docs, FitOptions::new())
        .unwrap();
    let gmm_nmi = normalized_mutual_information(&gmm_fit.assignments, truth);

    assert!(
        joint_nmi >= lda_nmi - 0.02,
        "joint NMI {joint_nmi:.3} < LDA NMI {lda_nmi:.3}"
    );
    assert!(
        joint_nmi >= gmm_nmi - 0.02,
        "joint NMI {joint_nmi:.3} < GMM NMI {gmm_nmi:.3}"
    );
    assert!(joint_nmi > 0.5, "joint NMI {joint_nmi:.3} too low");
    // ARI should also be solidly above chance.
    assert!(adjusted_rand_index(&joint, truth) > 0.4);
}

#[test]
fn exclusion_accounting_is_complete() {
    let out = fitted();
    // Every generated recipe is either kept or has a recorded exclusion
    // reason (the filter log from the dataset stage plus remap stage).
    assert!(out.dataset.len() + out.dataset.exclusions.len() >= out.corpus.recipes.len());
    assert!(!out.dataset.exclusions.is_empty());
}

//! Dish similarity: the paper's Section V-B analysis as an application.
//!
//! For a measured dish (Bavarois), find its topic, then rank that topic's
//! recipes by how closely their emulsion composition matches the dish —
//! the nearest recipes are the ones most likely to reproduce its texture
//! at home.
//!
//! ```sh
//! cargo run --release --example dish_similarity
//! ```

use rheotex::pipeline::{PipelineConfig, PipelineRun};
use rheotex::rheology::dishes::bavarois;
use rheotex::textures::{TermId, TextureProfile};
use rheotex_linkage::assign::assign_setting;
use rheotex_linkage::dish::rank_recipes_by_emulsion_kl;

fn main() {
    let dish = bavarois();
    println!(
        "reference dish: {} — measured H {:.2} RU, C {:.2}, A {:.2} RU.s",
        dish.name,
        dish.attributes.hardness,
        dish.attributes.cohesiveness,
        dish.attributes.adhesiveness
    );

    println!("\nfitting the joint topic model…");
    let mut config = PipelineConfig::small(1500);
    // Make sure the dish's concentration band is well-populated (the hard
    // gelatin band is rare in the wild — see DESIGN.md on Fig. 3 power).
    for a in &mut config.synth.archetypes {
        if a.name.starts_with("gelatin-hard") {
            a.weight *= 12.0;
        }
    }
    config.seed = 5;
    let out = PipelineRun::new(&config).run().expect("pipeline");

    let topic = assign_setting(&out.model, 0, dish.gels)
        .expect("assign")
        .topic;
    println!("dish assigned to topic {topic}");

    let ranked =
        rank_recipes_by_emulsion_kl(&out.model, &out.dataset.features, topic, &dish.emulsions)
            .expect("ranking");
    println!(
        "topic {topic} holds {} recipes; the five with the most similar emulsion profile:",
        ranked.len()
    );
    println!(
        "{:>10} {:>8} | {:>6} {:>6} {:>6} {:>6} | {:<30}",
        "recipe id", "KL", "yolk%", "cream%", "milk%", "sugar%", "its texture terms"
    );
    for &(i, kl) in ranked.iter().take(5) {
        let f = &out.dataset.features[i];
        let profile = TextureProfile::from_term_ids(&out.dict, &f.terms);
        let terms: Vec<&str> = f
            .terms
            .iter()
            .map(|&t| out.dict.entry(t).surface.as_str())
            .collect();
        println!(
            "{:>10} {:>8.3} | {:>6.1} {:>6.1} {:>6.1} {:>6.1} | {:<30} (hardness score {:+.2})",
            f.id,
            kl,
            f.emulsion_concentrations[2] * 100.0,
            f.emulsion_concentrations[3] * 100.0,
            f.emulsion_concentrations[4] * 100.0,
            f.emulsion_concentrations[0] * 100.0,
            terms.join(" "),
            profile.hardness_score,
        );
    }

    // And the farthest for contrast.
    println!("\n…and the three least similar (for contrast):");
    for &(i, kl) in ranked.iter().rev().take(3) {
        let f = &out.dataset.features[i];
        let terms: Vec<&str> = f
            .terms
            .iter()
            .map(|&t| out.dict.entry(t).surface.as_str())
            .collect();
        println!("{:>10} {:>8.3} | {}", f.id, kl, terms.join(" "));
    }
    println!(
        "\nNear recipes share the dish's creamy emulsion profile and use harder,\n\
         more elastic words — the texture the rheometer measured (Fig. 3/4)."
    );
    let _ = TermId(0); // referenced for doc purposes
}

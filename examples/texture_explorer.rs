//! Texture explorer: "what will my gel recipe feel like?"
//!
//! Give it gel concentrations (as percentages) and it answers with both
//! sides of the paper's bridge:
//!
//! * the **rheology side** — simulated instrumental texture from the TPA
//!   rheometer model (hardness / cohesiveness / adhesiveness in RU);
//! * the **language side** — the texture words home cooks would use,
//!   read from the most similar topic of a fitted joint topic model.
//!
//! ```sh
//! cargo run --release --example texture_explorer -- 2.5 0 0
//! cargo run --release --example texture_explorer -- 0 1.2 0
//! ```
//! (arguments: gelatin%, kanten%, agar% — defaults to 2.5 0 0)

use rheotex::pipeline::{PipelineConfig, PipelineRun};
use rheotex::rheology::tpa::GelMechanics;
use rheotex::textures::TermId;
use rheotex_linkage::assign::assign_setting;

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let gels = [
        args.first().copied().unwrap_or(2.5) / 100.0,
        args.get(1).copied().unwrap_or(0.0) / 100.0,
        args.get(2).copied().unwrap_or(0.0) / 100.0,
    ];
    println!(
        "recipe: gelatin {:.2}%  kanten {:.2}%  agar {:.2}%",
        gels[0] * 100.0,
        gels[1] * 100.0,
        gels[2] * 100.0
    );

    // Rheology side: simulate the instrument.
    let attrs = GelMechanics::from_gel_concentrations(gels).predicted_attributes();
    println!("\nsimulated rheometer reading:");
    println!("  hardness     = {:.2} RU", attrs.hardness);
    println!("  cohesiveness = {:.2}", attrs.cohesiveness);
    println!("  adhesiveness = {:.2} RU.s", attrs.adhesiveness);

    // Language side: fit the model and find the most similar topic.
    println!("\nfitting the joint topic model on a synthetic corpus…");
    let mut config = PipelineConfig::small(1000);
    // Populate the rare hard-gelatin band so mid-range queries have a
    // well-estimated topic to land on (see DESIGN.md on Fig. 3 power).
    for a in &mut config.synth.archetypes {
        if a.name.starts_with("gelatin-hard") {
            a.weight *= 12.0;
        }
    }
    config.seed = 3;
    let out = PipelineRun::new(&config).run().expect("pipeline");
    let assignment = assign_setting(&out.model, 0, gels).expect("assignment");
    println!(
        "most similar topic: {} (KL divergence {:.2}); runner-up topics: {:?}",
        assignment.topic,
        assignment.kl,
        assignment
            .ranking()
            .iter()
            .skip(1)
            .take(2)
            .map(|&(t, kl)| format!("topic {t} (KL {kl:.2})"))
            .collect::<Vec<_>>()
    );

    println!("\npeople describe this texture as:");
    for (w, p) in out.model.top_terms(assignment.topic, 6) {
        if p < 0.02 {
            continue;
        }
        let e = out.dict.entry(TermId(w as u32));
        println!("  {:<14} {:<52} (p = {:.2})", e.surface, e.gloss, p);
    }
}

//! Model persistence: fit once, save to JSON, reload, and keep using the
//! fitted model for topic assignment — the workflow of a service that
//! answers texture queries without refitting.
//!
//! ```sh
//! cargo run --release --example model_io
//! ```

use rheotex::core::FittedJointModel;
use rheotex::pipeline::{PipelineConfig, PipelineRun};
use rheotex_linkage::assign::assign_setting;

fn main() {
    let mut config = PipelineConfig::small(500);
    config.seed = 11;
    println!("fitting…");
    let out = PipelineRun::new(&config).run().expect("pipeline");

    // Persist the fitted model and the dictionary it indexes into.
    let dir = std::env::temp_dir().join("rheotex_model_io");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let model_path = dir.join("model.json");
    let dict_path = dir.join("dict.json");
    std::fs::write(
        &model_path,
        serde_json::to_string(&out.model).expect("serialize model"),
    )
    .expect("write model");
    std::fs::write(
        &dict_path,
        serde_json::to_string(&out.dict).expect("serialize dict"),
    )
    .expect("write dict");
    println!(
        "saved {} ({} bytes) and {} ({} bytes)",
        model_path.display(),
        std::fs::metadata(&model_path).unwrap().len(),
        dict_path.display(),
        std::fs::metadata(&dict_path).unwrap().len(),
    );

    // Reload and use.
    let loaded: FittedJointModel =
        serde_json::from_str(&std::fs::read_to_string(&model_path).expect("read model"))
            .expect("deserialize model");
    let mut dict: rheotex::textures::TextureDictionary =
        serde_json::from_str(&std::fs::read_to_string(&dict_path).expect("read dict"))
            .expect("deserialize dict");
    dict.rebuild_index(); // the surface index is not serialized

    let query = [0.02, 0.0, 0.0];
    let a = assign_setting(&loaded, 0, query).expect("assign");
    println!(
        "\nreloaded model answers: 2% gelatin -> topic {} (KL {:.2})",
        a.topic, a.kl
    );
    let terms: Vec<&str> = loaded
        .top_terms(a.topic, 4)
        .iter()
        .map(|&(w, _)| {
            dict.entry(rheotex::textures::TermId(w as u32))
                .surface
                .as_str()
        })
        .collect();
    println!("described as: {}", terms.join(", "));

    // Sanity: the reloaded model matches the in-memory one.
    let b = assign_setting(&out.model, 0, query).expect("assign");
    assert_eq!(a.topic, b.topic);
    println!("\nreloaded assignment matches the in-memory model — round-trip OK");
}

//! Quickstart: run the full paper pipeline on a small synthetic corpus
//! and print the discovered texture topics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rheotex::core::TopicSummary;
use rheotex::pipeline::{PipelineConfig, PipelineRun};
use rheotex::textures::TermId;

fn main() {
    // A compact corpus so the example runs in seconds. Use
    // `PipelineConfig::paper_scale()` for the paper's dimensions.
    let mut config = PipelineConfig::small(800);
    config.seed = 1;

    println!("generating corpus, filtering terms, fitting the joint topic model…");
    let out = PipelineRun::new(&config).run().expect("pipeline");

    println!(
        "\ncorpus: {} recipes generated, {} kept after filtering, {} texture terms",
        out.corpus.recipes.len(),
        out.dataset.len(),
        out.dict.len(),
    );
    let excluded: Vec<&str> = out
        .filter_outcomes
        .iter()
        .filter(|o| !o.keep)
        .map(|o| o.term.as_str())
        .collect();
    println!("word2vec filter excluded: {excluded:?}");

    println!("\ndiscovered topics (sorted by recipe count):");
    let mut summaries = TopicSummary::from_model(&out.model, 5, 0.02).expect("summaries");
    summaries.sort_by_key(|s| std::cmp::Reverse(s.n_recipes));
    let gel_names = ["gelatin", "kanten", "agar"];
    for s in summaries.iter().filter(|s| s.n_recipes > 0) {
        let gels: Vec<String> = s
            .gel_concentration
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0015)
            .map(|(i, &c)| format!("{} {:.1}%", gel_names[i], c * 100.0))
            .collect();
        let terms: Vec<String> = s
            .top_terms
            .iter()
            .map(|&(w, p)| {
                let e = out.dict.entry(TermId(w as u32));
                format!("{} ({:.2})", e.surface, p)
            })
            .collect();
        println!(
            "  topic {:>2}: {:<28} {:>5} recipes | {}",
            s.topic,
            gels.join(" + "),
            s.n_recipes,
            terms.join(", ")
        );
    }

    println!(
        "\nEach topic couples a texture vocabulary with a gel concentration band —\n\
         run `cargo run --release -p rheotex-bench --bin exp_table2a` for the full\n\
         Table II(a) reproduction with the rheology linkage."
    );
}

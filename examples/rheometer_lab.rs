//! Rheometer lab: sweep gel concentrations through the TPA simulator and
//! watch the three instrumental attributes evolve — the food-science side
//! of the paper, standalone (no topic model involved).
//!
//! ```sh
//! cargo run --release --example rheometer_lab
//! ```

use rheotex::rheology::tpa::{GelMechanics, TpaConfig, TpaCurve};

fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn sweep(name: &str, gel_index: usize, concentrations: &[f64]) {
    println!("\n--- {name} concentration sweep ---");
    println!(
        "{:>6} | {:>8} {:<20} | {:>6} | {:>8}",
        "conc%", "hardness", "", "coh", "adhesion"
    );
    let max_h = concentrations
        .iter()
        .map(|&c| {
            let mut gels = [0.0; 3];
            gels[gel_index] = c;
            GelMechanics::from_gel_concentrations(gels).hardness
        })
        .fold(0.0f64, f64::max);
    for &c in concentrations {
        let mut gels = [0.0; 3];
        gels[gel_index] = c;
        let attrs = GelMechanics::from_gel_concentrations(gels).predicted_attributes();
        println!(
            "{:>6.2} | {:>8.2} {:<20} | {:>6.2} | {:>8.2}",
            c * 100.0,
            attrs.hardness,
            bar(attrs.hardness, max_h, 20),
            attrs.cohesiveness,
            attrs.adhesiveness
        );
    }
}

fn main() {
    println!("TPA rheometer simulator — the instrument behind the paper's Table I");

    sweep("gelatin", 0, &[0.01, 0.015, 0.018, 0.02, 0.025, 0.03, 0.04]);
    sweep("kanten", 1, &[0.004, 0.008, 0.01, 0.012, 0.016, 0.02]);
    sweep("agar", 2, &[0.004, 0.008, 0.01, 0.012, 0.02, 0.03]);

    println!("\n--- gelatin x agar mixture (the Table I row-5 stickiness synergy) ---");
    for &(g, a) in &[(0.03, 0.0), (0.0, 0.03), (0.03, 0.03)] {
        let attrs = GelMechanics::from_gel_concentrations([g, 0.0, a]).predicted_attributes();
        println!(
            "gelatin {:.0}% + agar {:.0}%: H {:>5.2}  C {:>4.2}  A {:>6.2}",
            g * 100.0,
            a * 100.0,
            attrs.hardness,
            attrs.cohesiveness,
            attrs.adhesiveness
        );
    }

    println!("\n--- emulsions on a 2.5% gelatin base (the Table II(b) effect) ---");
    let base = GelMechanics::from_gel_concentrations([0.025, 0.0, 0.0]);
    let variants: [(&str, [f64; 6]); 3] = [
        ("plain water jelly", [0.0; 6]),
        ("milk jelly (79% milk)", [0.032, 0.0, 0.0, 0.0, 0.787, 0.0]),
        (
            "bavarois (yolk+cream+milk)",
            [0.0, 0.0, 0.08, 0.2, 0.4, 0.0],
        ),
    ];
    for (name, emulsions) in variants {
        let attrs = base.with_emulsions(emulsions).predicted_attributes();
        println!(
            "{:<28} H {:>5.2}  C {:>4.2}  A {:>6.3}",
            name, attrs.hardness, attrs.cohesiveness, attrs.adhesiveness
        );
    }

    // One full curve, as numbers (Fig. 2's raw data).
    println!("\n--- raw force samples of one two-bite run (2.5% gelatin, 12 samples/stroke) ---");
    let mech = GelMechanics::from_gel_concentrations([0.025, 0.0, 0.0]);
    let curve = TpaCurve::simulate(
        &mech,
        &TpaConfig {
            steps_per_stroke: 12,
            ..TpaConfig::default()
        },
    );
    for chunk in curve.force.chunks(12) {
        let row: Vec<String> = chunk.iter().map(|f| format!("{f:+.2}")).collect();
        println!("  {}", row.join(" "));
    }
}

//! Convergence and fit-quality diagnostics.

use crate::data::ModelDoc;
use crate::error::ModelError;
use crate::joint::FittedJointModel;
use crate::Result;
use rheotex_linalg::special::log_sum_exp;

/// Per-token perplexity plus the total log-likelihood it derives from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeldOutScore {
    /// Total held-out log-likelihood (tokens plus concentration vectors).
    pub log_likelihood: f64,
    /// Token-only log-likelihood.
    pub token_log_likelihood: f64,
    /// Number of tokens scored.
    pub n_tokens: usize,
    /// `exp(−token_ll / n_tokens)` — standard topic-model perplexity.
    pub perplexity: f64,
}

/// Scores held-out documents under a fitted model using corpus-level topic
/// proportions as the mixing weights:
/// `p(w) = Σ_k π_k φ_kw`, `p(g, e) = Σ_k π_k N(g|k) N(e|k)`,
/// where `π` is the mean of the training `θ` rows. (A deliberate
/// simplification of full fold-in: adequate for *comparing* engines on the
/// same split, which is all the ablation needs.)
///
/// # Errors
/// [`ModelError::InvalidData`] when `docs` is empty or contains no tokens
/// at all (perplexity would be undefined); numerical failures factorizing
/// topic posteriors; dimension mismatches.
pub fn held_out_score(model: &FittedJointModel, docs: &[ModelDoc]) -> Result<HeldOutScore> {
    if docs.is_empty() {
        return Err(ModelError::InvalidData {
            what: "held-out scoring needs at least one document".into(),
        });
    }
    let k = model.n_topics();
    // Corpus-level mixing proportions.
    let mut pi = vec![0.0f64; k];
    for row in &model.theta {
        for (kk, &p) in row.iter().enumerate() {
            pi[kk] += p;
        }
    }
    let total: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= total;
    }
    let log_pi: Vec<f64> = pi.iter().map(|&p| p.max(1e-300).ln()).collect();

    let gel_gaussians: Vec<_> = (0..k)
        .map(|kk| model.gel_gaussian(kk))
        .collect::<Result<_>>()?;
    let emu_gaussians: Vec<_> = (0..k)
        .map(|kk| model.emulsion_gaussian(kk))
        .collect::<Result<_>>()?;

    let mut token_ll = 0.0;
    let mut vector_ll = 0.0;
    let mut n_tokens = 0usize;
    let mut buf = vec![0.0f64; k];
    for doc in docs {
        for &w in &doc.terms {
            for kk in 0..k {
                buf[kk] = log_pi[kk] + model.phi[kk][w].max(1e-300).ln();
            }
            token_ll += log_sum_exp(&buf);
            n_tokens += 1;
        }
        for kk in 0..k {
            buf[kk] = log_pi[kk]
                + gel_gaussians[kk].log_pdf(&doc.gel)?
                + emu_gaussians[kk].log_pdf(&doc.emulsion)?;
        }
        vector_ll += log_sum_exp(&buf);
    }

    if n_tokens == 0 {
        return Err(ModelError::InvalidData {
            what: "held-out documents contain no tokens; perplexity is undefined".into(),
        });
    }
    let perplexity = (-token_ll / n_tokens as f64).exp();
    Ok(HeldOutScore {
        log_likelihood: token_ll + vector_ll,
        token_log_likelihood: token_ll,
        n_tokens,
        perplexity,
    })
}

/// Heuristic convergence check on a log-likelihood trace: the mean of the
/// last `window` entries must exceed the mean of the first `window` and
/// the relative change between the last two windows must be below `tol`.
///
/// A trace containing any non-finite entry (NaN or ±∞) has *not*
/// converged — a sampler that produced one has gone numerically wrong, so
/// this returns `false` explicitly rather than letting NaN comparisons
/// decide. Non-finite or non-positive `tol` likewise returns `false`.
#[must_use]
pub fn trace_converged(trace: &[f64], window: usize, tol: f64) -> bool {
    if trace.len() < 3 * window || window == 0 || !tol.is_finite() || tol <= 0.0 {
        return false;
    }
    if trace.iter().any(|v| !v.is_finite()) {
        return false;
    }
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let first = mean(&trace[..window]);
    let last = mean(&trace[trace.len() - window..]);
    let prev = mean(&trace[trace.len() - 2 * window..trace.len() - window]);
    let scale = last.abs().max(1.0);
    last >= first && ((last - prev) / scale).abs() < tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JointConfig;
    use crate::joint::JointTopicModel;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_linalg::Vector;

    fn docs(n: usize, seed: u64) -> Vec<ModelDoc> {
        let mut r = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = i % 2;
                let jitter = r.gen_range(-0.2..0.2);
                let gel = if c == 0 {
                    Vector::new(vec![2.0 + jitter, 9.0, 9.0])
                } else {
                    Vector::new(vec![9.0, 4.0 + jitter, 9.0])
                };
                ModelDoc::new(i as u64, vec![2 * c, 2 * c + 1], gel, Vector::full(6, 9.0))
            })
            .collect()
    }

    #[test]
    fn held_out_score_is_finite_and_fair() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let train = docs(60, 1);
        let test = docs(20, 2);
        let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
        let fit = model
            .fit_with(&mut rng, &train, crate::FitOptions::new())
            .unwrap();
        let score = held_out_score(&fit, &test).unwrap();
        assert!(score.log_likelihood.is_finite());
        assert!(score.perplexity.is_finite());
        assert_eq!(score.n_tokens, 40);
        // Under corpus-level mixing with two balanced topics of two words
        // each, every token's marginal is ≈ ¼, so perplexity ≈ 4 exactly —
        // doc-level fold-in would reach 2, but this scorer deliberately
        // trades that for simplicity (see function docs).
        assert!(
            (score.perplexity - 4.0).abs() < 0.2,
            "perplexity {}",
            score.perplexity
        );
    }

    #[test]
    fn better_model_scores_higher_than_mismatched() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let train = docs(60, 1);
        let test = docs(20, 2);
        // Well-fit model.
        let good = JointTopicModel::new(JointConfig::quick(2, 4))
            .unwrap()
            .fit_with(&mut rng, &train, crate::FitOptions::new())
            .unwrap();
        // Model fit on scrambled concentrations.
        let mut scrambled = train.clone();
        for (i, d) in scrambled.iter_mut().enumerate() {
            if i % 2 == 0 {
                d.gel = Vector::full(3, 5.0);
            }
        }
        let bad = JointTopicModel::new(JointConfig::quick(2, 4))
            .unwrap()
            .fit_with(&mut rng, &scrambled, crate::FitOptions::new())
            .unwrap();
        let sg = held_out_score(&good, &test).unwrap();
        let sb = held_out_score(&bad, &test).unwrap();
        assert!(
            sg.log_likelihood > sb.log_likelihood,
            "good {} vs bad {}",
            sg.log_likelihood,
            sb.log_likelihood
        );
    }

    #[test]
    fn trace_convergence_heuristic() {
        // Rising then flat trace converges…
        let mut trace: Vec<f64> = (0..50).map(|i| -100.0 + 2.0 * i.min(30) as f64).collect();
        assert!(trace_converged(&trace, 5, 0.01));
        // …a still-climbing trace does not.
        trace = (0..50).map(|i| -100.0 + 2.0 * i as f64).collect();
        assert!(!trace_converged(&trace, 5, 0.001));
        // Degenerate inputs.
        assert!(!trace_converged(&[1.0, 2.0], 5, 0.01));
        assert!(!trace_converged(&trace, 0, 0.01));
    }

    #[test]
    fn trace_convergence_rejects_non_finite() {
        // A flat, otherwise-converged trace with one poisoned entry.
        let mut trace = vec![-10.0; 30];
        assert!(trace_converged(&trace, 5, 0.01));
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            trace[15] = poison;
            assert!(!trace_converged(&trace, 5, 0.01), "poison {poison}");
            trace[15] = -10.0;
        }
        // Poison anywhere, including inside the compared windows.
        trace[0] = f64::NAN;
        assert!(!trace_converged(&trace, 5, 0.01));
        trace[0] = -10.0;
        trace[29] = f64::INFINITY;
        assert!(!trace_converged(&trace, 5, 0.01));
        trace[29] = -10.0;
        // Degenerate tolerance.
        assert!(!trace_converged(&trace, 5, f64::NAN));
        assert!(!trace_converged(&trace, 5, 0.0));
        assert!(!trace_converged(&trace, 5, -0.1));
    }

    #[test]
    fn held_out_score_rejects_empty_and_tokenless_docs() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let train = docs(60, 1);
        let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
        let fit = model
            .fit_with(&mut rng, &train, crate::FitOptions::new())
            .unwrap();

        let err = held_out_score(&fit, &[]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidData { .. }), "{err:?}");

        // Documents with concentration vectors but no terms at all.
        let tokenless: Vec<ModelDoc> = (0..5)
            .map(|i| ModelDoc::new(i as u64, vec![], Vector::full(3, 5.0), Vector::full(6, 9.0)))
            .collect();
        let err = held_out_score(&fit, &tokenless).unwrap_err();
        assert!(matches!(err, ModelError::InvalidData { .. }), "{err:?}");
    }
}

//! Model selection: choosing the number of topics `K`.
//!
//! The paper fixes `K = 10` without justification (one of its evaluation
//! gaps). This module provides the standard remedy: fit a sweep of `K`
//! values on a train split, score each on held-out data
//! ([`crate::diagnostics::held_out_score`]), and report the curve. It also
//! provides the Gelman-Rubin potential scale reduction factor (R̂) over
//! multi-chain log-likelihood traces as a convergence check.

use crate::config::JointConfig;
use crate::data::ModelDoc;
use crate::diagnostics::{held_out_score, HeldOutScore};
use crate::joint::JointTopicModel;
use crate::Result;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One point on the model-selection curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KScore {
    /// Number of topics fitted.
    pub k: usize,
    /// Held-out score of the fitted model.
    pub held_out_log_likelihood: f64,
    /// Held-out token perplexity.
    pub perplexity: f64,
    /// Final train conditional log-likelihood.
    pub train_log_likelihood: f64,
}

/// Deterministically splits documents into train/test by index stride:
/// every `holdout_every`-th document is held out.
///
/// # Panics
/// Panics if `holdout_every < 2` (would hold out everything).
#[must_use]
pub fn split_docs(docs: &[ModelDoc], holdout_every: usize) -> (Vec<ModelDoc>, Vec<ModelDoc>) {
    assert!(holdout_every >= 2, "holdout_every must be >= 2");
    let mut train = Vec::new();
    let mut test = Vec::new();
    for (i, d) in docs.iter().enumerate() {
        if i % holdout_every == 0 {
            test.push(d.clone());
        } else {
            train.push(d.clone());
        }
    }
    (train, test)
}

/// Fits the joint model for each `K` in `ks` (in parallel) and scores it
/// on the held-out split. `base` supplies every other hyperparameter.
///
/// # Errors
/// Propagates the first fit/score failure.
pub fn sweep_topics(
    seed: u64,
    base: &JointConfig,
    ks: &[usize],
    train: &[ModelDoc],
    test: &[ModelDoc],
) -> Result<Vec<KScore>> {
    let results: Vec<Result<KScore>> = ks
        .par_iter()
        .map(|&k| {
            let config = JointConfig {
                n_topics: k,
                ..base.clone()
            };
            let model = JointTopicModel::new(config)?;
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(k as u64));
            let fit = model.fit_with(&mut rng, train, crate::FitOptions::new())?;
            let score: HeldOutScore = held_out_score(&fit, test)?;
            Ok(KScore {
                k,
                held_out_log_likelihood: score.log_likelihood,
                perplexity: score.perplexity,
                train_log_likelihood: fit.ll_trace.last().copied().unwrap_or(f64::NAN),
            })
        })
        .collect();
    results.into_iter().collect()
}

/// The `K` with the best held-out log-likelihood from a sweep.
#[must_use]
pub fn best_k(scores: &[KScore]) -> Option<usize> {
    scores
        .iter()
        .max_by(|a, b| {
            a.held_out_log_likelihood
                .partial_cmp(&b.held_out_log_likelihood)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|s| s.k)
}

/// Gelman-Rubin potential scale reduction factor (R̂) over the *second
/// halves* of several chains' scalar traces. Values near 1 indicate the
/// chains agree; > 1.1 is the usual "not converged" flag.
///
/// Returns `None` with fewer than 2 chains or fewer than 4 samples per
/// chain.
#[must_use]
pub fn potential_scale_reduction(traces: &[Vec<f64>]) -> Option<f64> {
    if traces.len() < 2 {
        return None;
    }
    let n = traces.iter().map(Vec::len).min()? / 2;
    if n < 2 {
        return None;
    }
    let m = traces.len() as f64;
    // Use the last n samples of each chain.
    let halves: Vec<&[f64]> = traces.iter().map(|t| &t[t.len() - n..]).collect();
    let chain_means: Vec<f64> = halves
        .iter()
        .map(|h| h.iter().sum::<f64>() / n as f64)
        .collect();
    let grand_mean = chain_means.iter().sum::<f64>() / m;
    let b = n as f64 / (m - 1.0)
        * chain_means
            .iter()
            .map(|&cm| (cm - grand_mean).powi(2))
            .sum::<f64>();
    let w = halves
        .iter()
        .zip(&chain_means)
        .map(|(h, &cm)| h.iter().map(|&x| (x - cm).powi(2)).sum::<f64>() / (n as f64 - 1.0))
        .sum::<f64>()
        / m;
    if w <= 0.0 {
        // Zero within-chain variance: identical chains => converged.
        return Some(1.0);
    }
    let var_plus = (n as f64 - 1.0) / n as f64 * w + b / n as f64;
    Some((var_plus / w).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rheotex_linalg::Vector;

    fn banded_docs(n: usize) -> Vec<ModelDoc> {
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        (0..n)
            .map(|i| {
                let band = i % 3;
                // Non-informative dimensions need spread comparable to
                // the NW prior_std (0.5): when real variance is far below
                // the prior, larger clusters always look sharper (their
                // posterior out-trains the prior), which would reward K=1
                // regardless of structure — a genuine sensitivity of
                // held-out comparisons worth keeping visible here.
                let mut j = |scale: f64| rng.gen_range(-scale..scale);
                let gel = Vector::new(vec![3.0 + band as f64 + j(0.1), 9.2 + j(0.5), 9.2 + j(0.5)]);
                let emulsion: Vector = (0..6).map(|_| 9.2 + j(0.5)).collect();
                ModelDoc::new(i as u64, vec![band * 2, band * 2 + 1], gel, emulsion)
            })
            .collect()
    }

    #[test]
    fn split_is_deterministic_and_complete() {
        let docs = banded_docs(30);
        let (train, test) = split_docs(&docs, 5);
        assert_eq!(train.len() + test.len(), 30);
        assert_eq!(test.len(), 6);
        // Stable under repetition.
        let (train2, _) = split_docs(&docs, 5);
        assert_eq!(train.len(), train2.len());
    }

    #[test]
    #[should_panic(expected = "holdout_every")]
    fn split_rejects_degenerate_stride() {
        let docs = banded_docs(4);
        let _ = split_docs(&docs, 1);
    }

    #[test]
    fn sweep_prefers_enough_topics() {
        let docs = banded_docs(120);
        let (train, test) = split_docs(&docs, 5);
        let base = JointConfig {
            sweeps: 40,
            burn_in: 20,
            ..JointConfig::quick(3, 6)
        };
        let scores = sweep_topics(7, &base, &[1, 3, 6], &train, &test).unwrap();
        assert_eq!(scores.len(), 3);
        let k1 = scores.iter().find(|s| s.k == 1).unwrap();
        let k3 = scores.iter().find(|s| s.k == 3).unwrap();
        // Three true bands: K=3 must beat K=1 on held-out data.
        assert!(
            k3.held_out_log_likelihood > k1.held_out_log_likelihood,
            "K=3 {} vs K=1 {}",
            k3.held_out_log_likelihood,
            k1.held_out_log_likelihood
        );
        let best = best_k(&scores).unwrap();
        assert!(best >= 3, "best K = {best}");
    }

    #[test]
    fn rhat_near_one_for_agreeing_chains() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let chains: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..100).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let rhat = potential_scale_reduction(&chains).unwrap();
        assert!(rhat < 1.15, "rhat {rhat}");
    }

    #[test]
    fn rhat_large_for_disagreeing_chains() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a: Vec<f64> = (0..100).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..100).map(|_| 50.0 + rng.gen_range(-1.0..1.0)).collect();
        let rhat = potential_scale_reduction(&[a, b]).unwrap();
        assert!(rhat > 2.0, "rhat {rhat}");
    }

    #[test]
    fn rhat_degenerate_inputs() {
        assert!(potential_scale_reduction(&[]).is_none());
        assert!(potential_scale_reduction(&[vec![1.0, 2.0, 3.0]]).is_none());
        assert!(potential_scale_reduction(&[vec![1.0], vec![1.0]]).is_none());
        // Identical constant chains converge by definition.
        let c = vec![vec![2.0; 20], vec![2.0; 20]];
        assert_eq!(potential_scale_reduction(&c), Some(1.0));
    }
}

//! Bayesian Gaussian-mixture baseline: concentrations only, no terms.
//!
//! The complement of [`crate::lda`]: clusters recipes purely in
//! concentration space (gel and emulsion vectors concatenated or gel
//! only) using a Dirichlet-multinomial over assignments and collapsed
//! Normal-Wishart components (Student-t predictives). In the E7 ablation
//! it shows how much of the joint model's recovery the concentration
//! channel alone achieves — and that, unlike the joint model, it cannot
//! produce texture-term descriptions for its clusters.

use crate::checkpoint::{
    fingerprint_docs, mismatch, CheckpointSink, GmmSnapshot, RngState, SamplerSnapshot,
};
use crate::config::NwHyper;
use crate::data::ModelDoc;
use crate::error::ModelError;
use crate::Result;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rheotex_linalg::dist::{sample_categorical_log, GaussianStats, NormalWishart};
use rheotex_linalg::{LinalgError, Vector};
use rheotex_obs::{NullObserver, SweepObserver, SweepStats};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which feature channels the mixture clusters on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GmmFeatures {
    /// Gel concentration vector only (the paper's linkage channel).
    GelOnly,
    /// Gel and emulsion vectors concatenated.
    GelAndEmulsion,
}

/// Configuration for the GMM baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub n_components: usize,
    /// Dirichlet concentration over component assignments.
    pub alpha: f64,
    /// Normal-Wishart hyperparameters of each component.
    pub prior: NwHyper,
    /// Feature channels.
    pub features: GmmFeatures,
    /// Gibbs sweeps.
    pub sweeps: usize,
}

impl GmmConfig {
    /// Reasonable defaults for `k` components.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            n_components: k,
            alpha: 0.5,
            prior: NwHyper::default(),
            features: GmmFeatures::GelAndEmulsion,
            sweeps: 80,
        }
    }
}

/// A fitted mixture: hard assignments plus per-component posteriors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedGmm {
    /// Component assignment per document.
    pub assignments: Vec<usize>,
    /// Posterior component means (feature space).
    pub means: Vec<Vector>,
    /// Documents per component.
    pub counts: Vec<usize>,
    /// Log-likelihood trace per sweep.
    pub ll_trace: Vec<f64>,
}

/// Collapsed-Gibbs Bayesian GMM.
#[derive(Debug, Clone)]
pub struct GmmModel {
    config: GmmConfig,
}

impl GmmModel {
    /// Creates the model.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] for degenerate parameters.
    pub fn new(config: GmmConfig) -> Result<Self> {
        if config.n_components == 0 || config.alpha <= 0.0 || config.sweeps == 0 {
            return Err(ModelError::InvalidConfig {
                what: format!("{config:?}"),
            });
        }
        Ok(Self { config })
    }

    fn features_of(&self, doc: &ModelDoc) -> Vector {
        match self.config.features {
            GmmFeatures::GelOnly => doc.gel.clone(),
            GmmFeatures::GelAndEmulsion => {
                let mut v = doc.gel.clone().into_vec();
                v.extend(doc.emulsion.iter().copied());
                Vector::new(v)
            }
        }
    }

    /// Fits the mixture by collapsed Gibbs.
    ///
    /// # Errors
    /// [`ModelError::InvalidData`] for empty input;
    /// [`ModelError::Numerical`] on degenerate updates.
    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, docs: &[ModelDoc]) -> Result<FittedGmm> {
        self.fit_observed(rng, docs, &mut NullObserver)
    }

    /// Like [`fit`](Self::fit), but reports one [`SweepStats`] per Gibbs
    /// sweep to `observer` (engine `"gmm"`, occupancy counted in
    /// documents). Observation never touches the RNG stream, so results
    /// match [`fit`](Self::fit) exactly.
    ///
    /// # Errors
    /// [`ModelError::InvalidData`] for empty input;
    /// [`ModelError::Numerical`] on degenerate updates.
    pub fn fit_observed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        observer: &mut dyn SweepObserver,
    ) -> Result<FittedGmm> {
        let (xs, prior) = self.features_and_prior(docs)?;
        let mut prog = self.init_progress(rng, &xs)?;
        for sweep in 0..self.config.sweeps {
            self.sweep_once(rng, &xs, &prior, &mut prog, sweep, observer)?;
        }
        self.finalize(&prior, prog)
    }

    /// [`Self::fit_observed`] with periodic checkpointing; see
    /// [`crate::joint::JointTopicModel::fit_checkpointed`] for the
    /// contract. Checkpointing never perturbs the RNG stream.
    ///
    /// # Errors
    /// As [`Self::fit`], plus [`ModelError::Checkpoint`] when the sink
    /// reports a write failure.
    pub fn fit_checkpointed(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<FittedGmm> {
        let (xs, prior) = self.features_and_prior(docs)?;
        let mut prog = self.init_progress(rng, &xs)?;
        self.run_sweeps(rng, docs, &xs, &prior, &mut prog, 0, observer, sink)?;
        self.finalize(&prior, prog)
    }

    /// Continues a fit from `snapshot`, bit-identically to the run that
    /// wrote it; see [`crate::joint::JointTopicModel::resume_observed`]
    /// for the contract.
    ///
    /// # Errors
    /// [`ModelError::ResumeMismatch`] for a snapshot that does not belong
    /// to this `(config, docs)` pair; plus everything
    /// [`Self::fit_checkpointed`] can return.
    pub fn resume_observed(
        &self,
        docs: &[ModelDoc],
        snapshot: GmmSnapshot,
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<FittedGmm> {
        let (xs, prior) = self.features_and_prior(docs)?;
        let (mut rng, mut prog, start) = self.restore(docs, &xs, snapshot)?;
        self.run_sweeps(
            &mut rng, docs, &xs, &prior, &mut prog, start, observer, sink,
        )?;
        self.finalize(&prior, prog)
    }

    fn features_and_prior(&self, docs: &[ModelDoc]) -> Result<(Vec<Vector>, NormalWishart)> {
        if docs.is_empty() {
            return Err(ModelError::InvalidData {
                what: "corpus is empty".into(),
            });
        }
        let xs: Vec<Vector> = docs.iter().map(|d| self.features_of(d)).collect();
        let dim = xs[0].len();
        if xs.iter().any(|x| x.len() != dim) {
            return Err(ModelError::InvalidData {
                what: "inconsistent feature dimensions".into(),
            });
        }
        let mut mean = Vector::zeros(dim);
        let inv = 1.0 / xs.len() as f64;
        for x in &xs {
            mean.axpy(inv, x)?;
        }
        let prior = self.config.prior.materialize(dim, &mean)?;
        Ok((xs, prior))
    }

    fn init_progress<R: Rng + ?Sized>(&self, rng: &mut R, xs: &[Vector]) -> Result<GmmProgress> {
        let k = self.config.n_components;
        let dim = xs[0].len();
        let mut assignments: Vec<usize> = Vec::with_capacity(xs.len());
        let mut stats: Vec<GaussianStats> = (0..k).map(|_| GaussianStats::new(dim)).collect();
        let mut counts = vec![0usize; k];
        let seeds = crate::init::kmeanspp_assignments(rng, xs, k);
        for (x, &c) in xs.iter().zip(&seeds) {
            assignments.push(c);
            stats[c].add(x)?;
            counts[c] += 1;
        }
        Ok(GmmProgress {
            assignments,
            stats,
            counts,
            ll_trace: Vec::with_capacity(self.config.sweeps),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_sweeps(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        xs: &[Vector],
        prior: &NormalWishart,
        prog: &mut GmmProgress,
        start_sweep: usize,
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<()> {
        for sweep in start_sweep..self.config.sweeps {
            self.sweep_once(rng, xs, prior, prog, sweep, observer)?;
            if sink.due(sweep) {
                let snap = GmmSnapshot {
                    config: self.config.clone(),
                    next_sweep: sweep + 1,
                    doc_fingerprint: fingerprint_docs(docs),
                    assignments: prog.assignments.clone(),
                    stats: prog.stats.clone(),
                    counts: prog.counts.clone(),
                    ll_trace: prog.ll_trace.clone(),
                    rng: RngState::capture(rng),
                };
                sink.save(SamplerSnapshot::Gmm(snap))
                    .map_err(|what| ModelError::Checkpoint { what })?;
            }
        }
        Ok(())
    }

    fn sweep_once<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        xs: &[Vector],
        prior: &NormalWishart,
        prog: &mut GmmProgress,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) -> Result<()> {
        let k = self.config.n_components;
        let sweep_start = observer.enabled().then(Instant::now);
        let mut log_weights = vec![0.0f64; k];
        let mut ll = 0.0;
        let mut jitter_retries = 0usize;
        for (i, x) in xs.iter().enumerate() {
            let old = prog.assignments[i];
            prog.stats[old].remove(x)?;
            prog.counts[old] -= 1;
            for (c, lw) in log_weights.iter_mut().enumerate() {
                let post = prior.posterior(&prog.stats[c])?;
                // Fast path first; fall back to the shared ridge-jitter
                // policy only when the predictive shape degenerates.
                let pred = match post.posterior_predictive() {
                    Ok(pred) => pred,
                    Err(LinalgError::NotPositiveDefinite { .. }) => {
                        let (pred, jitter) =
                            post.posterior_predictive_recovering(crate::JITTER_MAX_ATTEMPTS)?;
                        jitter_retries += jitter.attempts;
                        pred
                    }
                    Err(e) => return Err(e.into()),
                };
                *lw = (prog.counts[c] as f64 + self.config.alpha).ln() + pred.log_pdf(x)?;
            }
            let new = sample_categorical_log(rng, &log_weights).expect("finite log-weights");
            ll += log_weights[new];
            prog.assignments[i] = new;
            prog.stats[new].add(x)?;
            prog.counts[new] += 1;
        }
        prog.ll_trace.push(ll);
        if let Some(started) = sweep_start {
            let (topic_entropy, min_occupancy, max_occupancy) =
                SweepStats::occupancy_summary(&prog.counts);
            observer.on_sweep(&SweepStats {
                engine: "gmm",
                sweep,
                total_sweeps: self.config.sweeps,
                elapsed_us: started.elapsed().as_micros() as u64,
                log_likelihood: ll,
                topic_entropy,
                min_occupancy,
                max_occupancy,
                nw_draws: 0,
                jitter_retries,
            });
        }
        Ok(())
    }

    fn finalize(&self, prior: &NormalWishart, prog: GmmProgress) -> Result<FittedGmm> {
        let means = prog
            .stats
            .iter()
            .map(|s| prior.posterior(s).map(|p| p.mu0().clone()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Ok(FittedGmm {
            assignments: prog.assignments,
            means,
            counts: prog.counts,
            ll_trace: prog.ll_trace,
        })
    }

    fn restore(
        &self,
        docs: &[ModelDoc],
        xs: &[Vector],
        snap: GmmSnapshot,
    ) -> Result<(ChaCha8Rng, GmmProgress, usize)> {
        let cfg = &self.config;
        let k = cfg.n_components;
        if snap.config != *cfg {
            return Err(mismatch("snapshot was written with a different config"));
        }
        if snap.doc_fingerprint != fingerprint_docs(docs) {
            return Err(mismatch("snapshot was written for a different corpus"));
        }
        if snap.next_sweep > cfg.sweeps {
            return Err(mismatch(format!(
                "snapshot next_sweep {} exceeds configured sweeps {}",
                snap.next_sweep, cfg.sweeps
            )));
        }
        if snap.ll_trace.len() != snap.next_sweep {
            return Err(mismatch(format!(
                "ll_trace has {} entries for {} completed sweeps",
                snap.ll_trace.len(),
                snap.next_sweep
            )));
        }
        if snap.assignments.len() != xs.len() {
            return Err(mismatch("assignment length does not match the corpus"));
        }
        if snap.assignments.iter().any(|&c| c >= k) {
            return Err(mismatch("assignment refers to a component out of range"));
        }
        if snap.stats.len() != k || snap.counts.len() != k {
            return Err(mismatch("per-component arrays have wrong sizes"));
        }
        let dim = xs[0].len();
        if snap.stats.iter().any(|s| s.dim() != dim) {
            return Err(mismatch("sufficient statistics have wrong dimensions"));
        }
        let mut counts = vec![0usize; k];
        for &c in &snap.assignments {
            counts[c] += 1;
        }
        if counts != snap.counts || snap.stats.iter().map(GaussianStats::count).ne(counts) {
            return Err(mismatch("counts are inconsistent with assignments"));
        }
        let rng = snap.rng.restore()?;
        let prog = GmmProgress {
            assignments: snap.assignments,
            stats: snap.stats,
            counts: snap.counts,
            ll_trace: snap.ll_trace,
        };
        Ok((rng, prog, snap.next_sweep))
    }
}

/// Everything the GMM sweep loop mutates.
struct GmmProgress {
    assignments: Vec<usize>,
    stats: Vec<GaussianStats>,
    counts: Vec<usize>,
    ll_trace: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(61)
    }

    fn blob_docs(n_per: usize) -> Vec<ModelDoc> {
        let mut r = ChaCha8Rng::seed_from_u64(62);
        (0..2 * n_per)
            .map(|i| {
                let c = i % 2;
                let jitter = |r: &mut ChaCha8Rng| r.gen_range(-0.3..0.3);
                let gel = if c == 0 {
                    Vector::new(vec![2.0 + jitter(&mut r), 9.0, 9.0])
                } else {
                    Vector::new(vec![9.0, 3.0 + jitter(&mut r), 9.0])
                };
                ModelDoc::new(i as u64, vec![], gel, Vector::full(6, 9.0))
            })
            .collect()
    }

    #[test]
    fn recovers_blobs_gel_only() {
        let docs = blob_docs(40);
        let mut cfg = GmmConfig::new(2);
        cfg.features = GmmFeatures::GelOnly;
        let fit = GmmModel::new(cfg).unwrap().fit(&mut rng(), &docs).unwrap();
        let c0 = fit.assignments[0];
        let agree = (0..docs.len())
            .filter(|&d| (fit.assignments[d] == c0) == (d % 2 == 0))
            .count();
        assert!(agree as f64 / docs.len() as f64 > 0.95, "agree {agree}");
    }

    #[test]
    fn concatenated_features_have_right_dim() {
        let docs = blob_docs(10);
        let cfg = GmmConfig::new(2);
        let fit = GmmModel::new(cfg).unwrap().fit(&mut rng(), &docs).unwrap();
        assert_eq!(fit.means[0].len(), 9); // 3 gel + 6 emulsion
        assert_eq!(fit.counts.iter().sum::<usize>(), docs.len());
    }

    #[test]
    fn component_means_near_blob_centers() {
        let docs = blob_docs(50);
        let mut cfg = GmmConfig::new(2);
        cfg.features = GmmFeatures::GelOnly;
        let fit = GmmModel::new(cfg).unwrap().fit(&mut rng(), &docs).unwrap();
        // One mean near gelatin=2, the other near gelatin=9.
        let mut g: Vec<f64> = fit.means.iter().map(|m| m[0]).collect();
        g.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((g[0] - 2.0).abs() < 0.5, "means {g:?}");
        assert!((g[1] - 9.0).abs() < 0.5, "means {g:?}");
    }

    #[test]
    fn killed_fit_resumes_bit_identically() {
        let docs = blob_docs(15);
        let model = GmmModel::new(GmmConfig::new(2)).unwrap();
        let uninterrupted = model.fit(&mut rng(), &docs).unwrap();

        let mut sink = crate::MemoryCheckpointSink::new(20);
        sink.fail_after = Some(1);
        let err = model
            .fit_checkpointed(&mut rng(), &docs, &mut NullObserver, &mut sink)
            .unwrap_err();
        assert!(matches!(err, ModelError::Checkpoint { .. }));
        let crate::SamplerSnapshot::Gmm(snap) = sink.latest().unwrap().clone() else {
            panic!("gmm fit must write gmm snapshots");
        };
        assert_eq!(snap.next_sweep, 20);

        let resumed = model
            .resume_observed(&docs, snap, &mut NullObserver, &mut crate::NoCheckpoint)
            .unwrap();
        assert_eq!(resumed.assignments, uninterrupted.assignments);
        assert_eq!(resumed.ll_trace, uninterrupted.ll_trace);
        assert_eq!(resumed.counts, uninterrupted.counts);
    }

    #[test]
    fn resume_rejects_tampered_counts() {
        let docs = blob_docs(10);
        let model = GmmModel::new(GmmConfig::new(2)).unwrap();
        let mut sink = crate::MemoryCheckpointSink::new(40);
        model
            .fit_checkpointed(&mut rng(), &docs, &mut NullObserver, &mut sink)
            .unwrap();
        let crate::SamplerSnapshot::Gmm(mut snap) = sink.latest().unwrap().clone() else {
            panic!("gmm fit must write gmm snapshots");
        };
        snap.counts[0] += 1;
        let err = model
            .resume_observed(&docs, snap, &mut NullObserver, &mut crate::NoCheckpoint)
            .unwrap_err();
        assert!(matches!(err, ModelError::ResumeMismatch { .. }), "{err}");
    }

    #[test]
    fn validation() {
        assert!(GmmModel::new(GmmConfig::new(0)).is_err());
        let mut c = GmmConfig::new(2);
        c.sweeps = 0;
        assert!(GmmModel::new(c).is_err());
        let m = GmmModel::new(GmmConfig::new(2)).unwrap();
        assert!(m.fit(&mut rng(), &[]).is_err());
    }
}

//! Bayesian Gaussian-mixture baseline: concentrations only, no terms.
//!
//! The complement of [`crate::lda`]: clusters recipes purely in
//! concentration space (gel and emulsion vectors concatenated or gel
//! only) using a Dirichlet-multinomial over assignments and collapsed
//! Normal-Wishart components (Student-t predictives). In the E7 ablation
//! it shows how much of the joint model's recovery the concentration
//! channel alone achieves — and that, unlike the joint model, it cannot
//! produce texture-term descriptions for its clusters.

use crate::checkpoint::{
    check_kernel, fingerprint_docs, mismatch, CheckpointSink, GmmSnapshot, RngState,
    SamplerSnapshot,
};
use crate::config::NwHyper;
use crate::data::ModelDoc;
use crate::error::ModelError;
use crate::fit::{FitOptions, GibbsKernel, PAR_CHUNK};
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use rheotex_linalg::dist::{
    sample_categorical_log, GaussianStats, MultivariateT, NormalWishart, PredictiveCache,
};
use rheotex_linalg::{LinalgError, Vector};
use rheotex_obs::{KernelProfile, NullObserver, PhaseTimer, SweepObserver, SweepStats};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which feature channels the mixture clusters on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GmmFeatures {
    /// Gel concentration vector only (the paper's linkage channel).
    GelOnly,
    /// Gel and emulsion vectors concatenated.
    GelAndEmulsion,
}

/// Configuration for the GMM baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub n_components: usize,
    /// Dirichlet concentration over component assignments.
    pub alpha: f64,
    /// Normal-Wishart hyperparameters of each component.
    pub prior: NwHyper,
    /// Feature channels.
    pub features: GmmFeatures,
    /// Gibbs sweeps.
    pub sweeps: usize,
}

impl GmmConfig {
    /// Reasonable defaults for `k` components.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            n_components: k,
            alpha: 0.5,
            prior: NwHyper::default(),
            features: GmmFeatures::GelAndEmulsion,
            sweeps: 80,
        }
    }
}

/// A fitted mixture: hard assignments plus per-component posteriors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedGmm {
    /// Component assignment per document.
    pub assignments: Vec<usize>,
    /// Posterior component means (feature space).
    pub means: Vec<Vector>,
    /// Documents per component.
    pub counts: Vec<usize>,
    /// Log-likelihood trace per sweep.
    pub ll_trace: Vec<f64>,
}

/// Collapsed-Gibbs Bayesian GMM.
#[derive(Debug, Clone)]
pub struct GmmModel {
    config: GmmConfig,
}

impl GmmModel {
    /// Creates the model.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] for degenerate parameters.
    pub fn new(config: GmmConfig) -> Result<Self> {
        if config.n_components == 0 || config.alpha <= 0.0 || config.sweeps == 0 {
            return Err(ModelError::InvalidConfig {
                what: format!("{config:?}"),
            });
        }
        Ok(Self { config })
    }

    fn features_of(&self, doc: &ModelDoc) -> Vector {
        match self.config.features {
            GmmFeatures::GelOnly => doc.gel.clone(),
            GmmFeatures::GelAndEmulsion => {
                let mut v = doc.gel.clone().into_vec();
                v.extend(doc.emulsion.iter().copied());
                Vector::new(v)
            }
        }
    }

    /// Fits the mixture by collapsed Gibbs with every cross-cutting
    /// concern selected through one [`FitOptions`] bundle; see
    /// [`crate::joint::JointTopicModel::fit_with`] for the full contract
    /// (resume ignores `rng`; `threads >= 1` selects the deterministic
    /// chunked parallel kernel, identical across thread counts).
    ///
    /// Engine-specific notes: this is the one engine where
    /// [`FitOptions::predictive_cache`] is on the hot path — each
    /// (document, component) score reuses the component's Student-t
    /// predictive until that component's sufficient statistics change.
    /// Cached and uncached fits are bit-identical (a cache hit returns
    /// the exact object a rebuild would produce); only the
    /// `jitter_retries` / cache counters in the observer stream differ.
    /// The parallel kernel rebuilds the sufficient statistics from the
    /// merged assignments after every sweep, so its accumulation order —
    /// and therefore its bits — differ from the serial kernel's
    /// incremental updates, but not across thread counts.
    ///
    /// # Errors
    /// [`ModelError::InvalidData`] for empty input;
    /// [`ModelError::Numerical`] on degenerate updates;
    /// [`ModelError::Checkpoint`] when a due snapshot fails to save;
    /// [`ModelError::ResumeMismatch`] for a snapshot that does not belong
    /// to this `(config, docs)` pair;
    /// [`ModelError::Health`] when a supervised fit trips a sentinel the
    /// policy cannot recover from.
    pub fn fit_with(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        opts: FitOptions<'_>,
    ) -> Result<FittedGmm> {
        let (xs, prior) = self.features_and_prior(docs)?;
        let (kernel, threads) = opts.plan()?;
        if matches!(
            kernel,
            GibbsKernel::Sparse | GibbsKernel::SparseParallel | GibbsKernel::Alias
        ) {
            return Err(ModelError::InvalidConfig {
                what: format!(
                    "the gmm engine has no token sweep, so the {kernel} kernel does not apply; \
                     use serial or parallel"
                ),
            });
        }
        let pool = crate::fit::build_pool(threads)?;
        let mut null_obs = NullObserver;
        let observer: &mut dyn SweepObserver = match opts.observer {
            Some(o) => o,
            None => &mut null_obs,
        };
        let mut no_ckpt = crate::checkpoint::NoCheckpoint;
        let sink: &mut dyn CheckpointSink = match opts.sink {
            Some(s) => s,
            None => &mut no_ckpt,
        };
        let use_cache = opts.predictive_cache;
        let health = opts.health;
        match opts.resume {
            Some(SamplerSnapshot::Gmm(snap)) => {
                let (mut rng, mut prog, start) = self.restore(docs, &xs, snap, kernel)?;
                self.run_sweeps(
                    &mut rng,
                    docs,
                    &xs,
                    &prior,
                    &mut prog,
                    start,
                    observer,
                    sink,
                    kernel,
                    pool.as_ref(),
                    use_cache,
                    health,
                )?;
                self.finalize(&prior, prog)
            }
            Some(other) => Err(mismatch(format!(
                "snapshot is from the {} engine, not gmm",
                other.engine()
            ))),
            None => {
                let mut prog = self.init_progress(rng, &xs)?;
                self.run_sweeps(
                    rng,
                    docs,
                    &xs,
                    &prior,
                    &mut prog,
                    0,
                    observer,
                    sink,
                    kernel,
                    pool.as_ref(),
                    use_cache,
                    health,
                )?;
                self.finalize(&prior, prog)
            }
        }
    }

    fn features_and_prior(&self, docs: &[ModelDoc]) -> Result<(Vec<Vector>, NormalWishart)> {
        if docs.is_empty() {
            return Err(ModelError::InvalidData {
                what: "corpus is empty".into(),
            });
        }
        let xs: Vec<Vector> = docs.iter().map(|d| self.features_of(d)).collect();
        let dim = xs[0].len();
        if xs.iter().any(|x| x.len() != dim) {
            return Err(ModelError::InvalidData {
                what: "inconsistent feature dimensions".into(),
            });
        }
        let mut mean = Vector::zeros(dim);
        let inv = 1.0 / xs.len() as f64;
        for x in &xs {
            mean.axpy(inv, x)?;
        }
        let prior = self.config.prior.materialize(dim, &mean)?;
        Ok((xs, prior))
    }

    fn init_progress<R: Rng + ?Sized>(&self, rng: &mut R, xs: &[Vector]) -> Result<GmmProgress> {
        let k = self.config.n_components;
        let dim = xs[0].len();
        let mut assignments: Vec<usize> = Vec::with_capacity(xs.len());
        let mut stats: Vec<GaussianStats> = (0..k).map(|_| GaussianStats::new(dim)).collect();
        let mut counts = vec![0usize; k];
        let seeds = crate::init::kmeanspp_assignments(rng, xs, k);
        for (x, &c) in xs.iter().zip(&seeds) {
            assignments.push(c);
            stats[c].add(x)?;
            counts[c] += 1;
        }
        Ok(GmmProgress {
            assignments,
            stats,
            counts,
            ll_trace: Vec::with_capacity(self.config.sweeps),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_sweeps(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        xs: &[Vector],
        prior: &NormalWishart,
        prog: &mut GmmProgress,
        start_sweep: usize,
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
        kernel: GibbsKernel,
        pool: Option<&rayon::ThreadPool>,
        use_cache: bool,
        health: Option<crate::health::HealthPolicy>,
    ) -> Result<()> {
        // One cache for the whole serial run: a component's predictive
        // stays valid across sweep boundaries until its statistics change.
        let mut cache = if use_cache {
            PredictiveCache::new(self.config.n_components)
        } else {
            PredictiveCache::disabled(self.config.n_components)
        };
        let mut monitor = health.map(|p| crate::health::HealthMonitor::new(p, "gmm"));
        if let Some(mon) = monitor.as_mut() {
            if mon.wants_snapshots() {
                mon.keep(SamplerSnapshot::Gmm(self.snapshot(
                    rng,
                    docs,
                    prog,
                    start_sweep,
                    kernel,
                )));
            }
        }
        let mut sweep = start_sweep;
        while sweep < self.config.sweeps {
            let outcome = match pool {
                None => self.sweep_once(rng, xs, prior, prog, sweep, observer, &mut cache),
                Some(pool) => {
                    self.sweep_once_parallel(rng, pool, xs, prior, prog, sweep, observer, use_cache)
                }
            };
            match monitor.as_mut() {
                None => outcome?,
                Some(mon) => {
                    let trip = match outcome {
                        Err(e) => Some(format!("sweep failed: {e}")),
                        Ok(()) => {
                            let ll = prog.ll_trace.last().copied().unwrap_or(f64::NAN);
                            mon.inspect_occupancy(sweep, ll, &prog.counts, xs.len(), observer)
                        }
                    };
                    if let Some(detail) = trip {
                        let snap = match mon.tripped(sweep, kernel, detail, observer)? {
                            crate::health::Recovery::Rollback(snap)
                            | crate::health::Recovery::Degrade(snap, _) => snap,
                        };
                        let SamplerSnapshot::Gmm(snap) = *snap else {
                            return Err(mismatch(
                                "supervisor recovery point is not a gmm snapshot",
                            ));
                        };
                        let (r, p, s) = self.restore(docs, xs, snap, kernel)?;
                        *rng = r;
                        *prog = p;
                        sweep = s;
                        // The restored statistics replace the live ones
                        // wholesale; drop every cached predictive (cache
                        // state is bit-invisible, so this cannot change
                        // the replayed draws).
                        cache = if use_cache {
                            PredictiveCache::new(self.config.n_components)
                        } else {
                            PredictiveCache::disabled(self.config.n_components)
                        };
                        continue;
                    }
                    if mon.snapshot_due(sweep) {
                        mon.keep(SamplerSnapshot::Gmm(self.snapshot(
                            rng,
                            docs,
                            prog,
                            sweep + 1,
                            kernel,
                        )));
                    }
                    let retries = crate::checkpoint::save_if_due_with_retry(
                        sink,
                        sweep,
                        mon.save_retries(),
                        || SamplerSnapshot::Gmm(self.snapshot(rng, docs, prog, sweep + 1, kernel)),
                    )?;
                    if retries > 0 {
                        mon.note_checkpoint_retry(sweep, retries, observer);
                    }
                    sweep += 1;
                    continue;
                }
            }
            crate::checkpoint::save_if_due(sink, sweep, || {
                SamplerSnapshot::Gmm(self.snapshot(rng, docs, prog, sweep + 1, kernel))
            })?;
            sweep += 1;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn sweep_once<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        xs: &[Vector],
        prior: &NormalWishart,
        prog: &mut GmmProgress,
        sweep: usize,
        observer: &mut dyn SweepObserver,
        cache: &mut PredictiveCache,
    ) -> Result<()> {
        let sweep_start = observer.enabled().then(Instant::now);
        let mut timer = PhaseTimer::new(observer.enabled());
        let lookups0 = cache.lookups();
        let hits0 = cache.hits();
        let mut jitter_retries = 0usize;
        let (ll, label_flips) = timer.time("assign", || -> Result<(f64, usize)> {
            let mut log_weights = vec![0.0f64; self.config.n_components];
            let mut ll = 0.0;
            let mut flips = 0usize;
            for (i, x) in xs.iter().enumerate() {
                let old = prog.assignments[i];
                prog.stats[old].remove(x)?;
                prog.counts[old] -= 1;
                cache.invalidate(old);
                for (c, lw) in log_weights.iter_mut().enumerate() {
                    let stats_c = &prog.stats[c];
                    let pred = cache.get_or_try_build(c, || -> Result<MultivariateT> {
                        let post = prior.posterior(stats_c)?;
                        // Fast path first; fall back to the shared ridge-jitter
                        // policy only when the predictive shape degenerates.
                        match post.posterior_predictive() {
                            Ok(pred) => Ok(pred),
                            Err(LinalgError::NotPositiveDefinite { .. }) => {
                                let (pred, jitter) = post
                                    .posterior_predictive_recovering(crate::JITTER_MAX_ATTEMPTS)?;
                                jitter_retries += jitter.attempts;
                                Ok(pred)
                            }
                            Err(e) => Err(e.into()),
                        }
                    })?;
                    *lw = (prog.counts[c] as f64 + self.config.alpha).ln() + pred.log_pdf(x)?;
                }
                let new = sample_categorical_log(rng, &log_weights).expect("finite log-weights");
                ll += log_weights[new];
                if new != old {
                    flips += 1;
                }
                prog.assignments[i] = new;
                prog.stats[new].add(x)?;
                prog.counts[new] += 1;
                cache.invalidate(new);
            }
            Ok((ll, flips))
        })?;
        let cache_lookups = (cache.lookups() - lookups0) as usize;
        let cache_hits = (cache.hits() - hits0) as usize;
        self.post_sweep(
            prog,
            sweep,
            ll,
            jitter_retries,
            cache_lookups,
            cache_hits,
            label_flips,
            None,
            sweep_start,
            &mut timer,
            observer,
        );
        Ok(())
    }

    /// The deterministic chunked parallel sweep: fixed 64-doc chunks,
    /// each scoring against chunk-local clones of the start-of-sweep
    /// sufficient statistics and counts (with a chunk-local predictive
    /// cache) using RNG stream `2c` of the per-sweep seed. The merge
    /// rebuilds the global statistics from the merged assignments in
    /// document order and sums the per-chunk log-likelihood partials in
    /// chunk order, so the result depends on the chunk grid but not on
    /// the number of worker threads. The rebuild's accumulation order
    /// differs from the serial kernel's incremental updates, which is
    /// why the two kernels are not bit-compatible with each other.
    #[allow(clippy::too_many_arguments)]
    fn sweep_once_parallel(
        &self,
        rng: &mut ChaCha8Rng,
        pool: &rayon::ThreadPool,
        xs: &[Vector],
        prior: &NormalWishart,
        prog: &mut GmmProgress,
        sweep: usize,
        observer: &mut dyn SweepObserver,
        use_cache: bool,
    ) -> Result<()> {
        let k = self.config.n_components;
        let alpha = self.config.alpha;
        let sweep_seed: u64 = rng.gen();
        let sweep_start = observer.enabled().then(Instant::now);
        let profiling = observer.enabled();
        let mut timer = PhaseTimer::new(profiling);

        struct ChunkOut {
            ll: f64,
            jitter_retries: usize,
            cache_lookups: u64,
            cache_hits: u64,
            flips: usize,
            us: u64,
        }

        let stats_start = &prog.stats;
        let counts_start = &prog.counts;
        let assignments = &mut prog.assignments;
        let assign_start = profiling.then(Instant::now);
        let outs: Vec<ChunkOut> = pool.install(|| {
            assignments
                .par_chunks_mut(PAR_CHUNK)
                .zip(xs.par_chunks(PAR_CHUNK))
                .enumerate()
                .map(|(c, (a_chunk, x_chunk))| -> Result<ChunkOut> {
                    let chunk_start = profiling.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let mut stats = stats_start.clone();
                    let mut counts = counts_start.clone();
                    let mut cache = if use_cache {
                        PredictiveCache::new(k)
                    } else {
                        PredictiveCache::disabled(k)
                    };
                    let mut log_weights = vec![0.0f64; k];
                    let mut ll = 0.0;
                    let mut jitter_retries = 0usize;
                    let mut flips = 0usize;
                    for (a, x) in a_chunk.iter_mut().zip(x_chunk) {
                        let old = *a;
                        stats[old].remove(x)?;
                        counts[old] -= 1;
                        cache.invalidate(old);
                        for (cc, lw) in log_weights.iter_mut().enumerate() {
                            let stats_cc = &stats[cc];
                            let pred =
                                cache.get_or_try_build(cc, || -> Result<MultivariateT> {
                                    let post = prior.posterior(stats_cc)?;
                                    match post.posterior_predictive() {
                                        Ok(pred) => Ok(pred),
                                        Err(LinalgError::NotPositiveDefinite { .. }) => {
                                            let (pred, jitter) = post
                                                .posterior_predictive_recovering(
                                                    crate::JITTER_MAX_ATTEMPTS,
                                                )?;
                                            jitter_retries += jitter.attempts;
                                            Ok(pred)
                                        }
                                        Err(e) => Err(e.into()),
                                    }
                                })?;
                            *lw = (counts[cc] as f64 + alpha).ln() + pred.log_pdf(x)?;
                        }
                        let new = sample_categorical_log(&mut rng, &log_weights)
                            .expect("finite log-weights");
                        ll += log_weights[new];
                        if new != old {
                            flips += 1;
                        }
                        *a = new;
                        stats[new].add(x)?;
                        counts[new] += 1;
                        cache.invalidate(new);
                    }
                    Ok(ChunkOut {
                        ll,
                        jitter_retries,
                        cache_lookups: cache.lookups(),
                        cache_hits: cache.hits(),
                        flips,
                        us: chunk_start.map_or(0, |s| s.elapsed().as_micros() as u64),
                    })
                })
                .collect::<Result<Vec<ChunkOut>>>()
        })?;
        if let Some(s) = assign_start {
            timer.record("assign", s.elapsed().as_micros() as u64);
        }
        // Deterministic merge: rebuild the sufficient statistics from the
        // merged assignments in document order.
        let merge_start = profiling.then(Instant::now);
        let dim = xs[0].len();
        prog.stats = (0..k).map(|_| GaussianStats::new(dim)).collect();
        prog.counts = vec![0usize; k];
        for (x, &a) in xs.iter().zip(prog.assignments.iter()) {
            prog.stats[a].add(x)?;
            prog.counts[a] += 1;
        }
        if let Some(s) = merge_start {
            timer.record("merge", s.elapsed().as_micros() as u64);
        }
        let ll: f64 = outs.iter().map(|o| o.ll).sum();
        let jitter_retries: usize = outs.iter().map(|o| o.jitter_retries).sum();
        let cache_lookups = outs.iter().map(|o| o.cache_lookups).sum::<u64>() as usize;
        let cache_hits = outs.iter().map(|o| o.cache_hits).sum::<u64>() as usize;
        let label_flips: usize = outs.iter().map(|o| o.flips).sum();
        let profile = profiling.then(|| {
            let chunks = xs.len().div_ceil(PAR_CHUNK) as u64;
            // Per chunk: cloned sufficient statistics (mean + scatter per
            // component), cloned counts, and the log-weight buffer.
            let per_chunk = k * (dim * dim + dim + 2) * 8 + k * 8 + k * 8;
            KernelProfile::Parallel {
                chunks,
                chunk_us: outs.iter().map(|o| o.us).collect(),
                alloc_bytes: chunks * per_chunk as u64,
            }
        });
        self.post_sweep(
            prog,
            sweep,
            ll,
            jitter_retries,
            cache_lookups,
            cache_hits,
            label_flips,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
        Ok(())
    }

    /// Trace push and observer report shared by the serial and parallel
    /// sweep kernels.
    #[allow(clippy::too_many_arguments)]
    fn post_sweep(
        &self,
        prog: &mut GmmProgress,
        sweep: usize,
        ll: f64,
        jitter_retries: usize,
        cache_lookups: usize,
        cache_hits: usize,
        label_flips: usize,
        profile: Option<KernelProfile>,
        sweep_start: Option<Instant>,
        timer: &mut PhaseTimer,
        observer: &mut dyn SweepObserver,
    ) {
        prog.ll_trace.push(ll);
        if let Some(started) = sweep_start {
            let (topic_entropy, min_occupancy, max_occupancy) =
                SweepStats::occupancy_summary(&prog.counts);
            observer.on_sweep(&SweepStats {
                engine: "gmm",
                sweep,
                total_sweeps: self.config.sweeps,
                elapsed_us: started.elapsed().as_micros() as u64,
                log_likelihood: ll,
                topic_entropy,
                min_occupancy,
                max_occupancy,
                nw_draws: 0,
                jitter_retries,
                cache_lookups,
                cache_hits,
                label_flips,
                phase_us: timer.take(),
                profile,
            });
        }
    }

    fn snapshot(
        &self,
        rng: &ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &GmmProgress,
        next_sweep: usize,
        kernel: GibbsKernel,
    ) -> GmmSnapshot {
        GmmSnapshot {
            config: self.config.clone(),
            next_sweep,
            kernel: Some(kernel),
            doc_fingerprint: fingerprint_docs(docs),
            assignments: prog.assignments.clone(),
            stats: prog.stats.clone(),
            counts: prog.counts.clone(),
            ll_trace: prog.ll_trace.clone(),
            rng: RngState::capture(rng),
        }
    }

    fn finalize(&self, prior: &NormalWishart, prog: GmmProgress) -> Result<FittedGmm> {
        let means = prog
            .stats
            .iter()
            .map(|s| prior.posterior(s).map(|p| p.mu0().clone()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Ok(FittedGmm {
            assignments: prog.assignments,
            means,
            counts: prog.counts,
            ll_trace: prog.ll_trace,
        })
    }

    fn restore(
        &self,
        docs: &[ModelDoc],
        xs: &[Vector],
        snap: GmmSnapshot,
        kernel: GibbsKernel,
    ) -> Result<(ChaCha8Rng, GmmProgress, usize)> {
        let cfg = &self.config;
        let k = cfg.n_components;
        if snap.config != *cfg {
            return Err(mismatch("snapshot was written with a different config"));
        }
        check_kernel(snap.kernel, kernel)?;
        if snap.doc_fingerprint != fingerprint_docs(docs) {
            return Err(mismatch("snapshot was written for a different corpus"));
        }
        if snap.next_sweep > cfg.sweeps {
            return Err(mismatch(format!(
                "snapshot next_sweep {} exceeds configured sweeps {}",
                snap.next_sweep, cfg.sweeps
            )));
        }
        if snap.ll_trace.len() != snap.next_sweep {
            return Err(mismatch(format!(
                "ll_trace has {} entries for {} completed sweeps",
                snap.ll_trace.len(),
                snap.next_sweep
            )));
        }
        if snap.assignments.len() != xs.len() {
            return Err(mismatch("assignment length does not match the corpus"));
        }
        if snap.assignments.iter().any(|&c| c >= k) {
            return Err(mismatch("assignment refers to a component out of range"));
        }
        if snap.stats.len() != k || snap.counts.len() != k {
            return Err(mismatch("per-component arrays have wrong sizes"));
        }
        let dim = xs[0].len();
        if snap.stats.iter().any(|s| s.dim() != dim) {
            return Err(mismatch("sufficient statistics have wrong dimensions"));
        }
        let mut counts = vec![0usize; k];
        for &c in &snap.assignments {
            counts[c] += 1;
        }
        if counts != snap.counts || snap.stats.iter().map(GaussianStats::count).ne(counts) {
            return Err(mismatch("counts are inconsistent with assignments"));
        }
        let rng = snap.rng.restore()?;
        let prog = GmmProgress {
            assignments: snap.assignments,
            stats: snap.stats,
            counts: snap.counts,
            ll_trace: snap.ll_trace,
        };
        Ok((rng, prog, snap.next_sweep))
    }
}

/// Everything the GMM sweep loop mutates.
struct GmmProgress {
    assignments: Vec<usize>,
    stats: Vec<GaussianStats>,
    counts: Vec<usize>,
    ll_trace: Vec<f64>,
}

#[cfg(test)]
mod tests {
    // Everything drives the unified `fit_with` entry point; kernel
    // coverage (parallelism, caching, resume through FitOptions) lives
    // in `tests/parallel.rs`.
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(61)
    }

    fn blob_docs(n_per: usize) -> Vec<ModelDoc> {
        let mut r = ChaCha8Rng::seed_from_u64(62);
        (0..2 * n_per)
            .map(|i| {
                let c = i % 2;
                let jitter = |r: &mut ChaCha8Rng| r.gen_range(-0.3..0.3);
                let gel = if c == 0 {
                    Vector::new(vec![2.0 + jitter(&mut r), 9.0, 9.0])
                } else {
                    Vector::new(vec![9.0, 3.0 + jitter(&mut r), 9.0])
                };
                ModelDoc::new(i as u64, vec![], gel, Vector::full(6, 9.0))
            })
            .collect()
    }

    #[test]
    fn recovers_blobs_gel_only() {
        let docs = blob_docs(40);
        let mut cfg = GmmConfig::new(2);
        cfg.features = GmmFeatures::GelOnly;
        let fit = GmmModel::new(cfg).unwrap().fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();
        let c0 = fit.assignments[0];
        let agree = (0..docs.len())
            .filter(|&d| (fit.assignments[d] == c0) == (d % 2 == 0))
            .count();
        assert!(agree as f64 / docs.len() as f64 > 0.95, "agree {agree}");
    }

    #[test]
    fn concatenated_features_have_right_dim() {
        let docs = blob_docs(10);
        let cfg = GmmConfig::new(2);
        let fit = GmmModel::new(cfg).unwrap().fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();
        assert_eq!(fit.means[0].len(), 9); // 3 gel + 6 emulsion
        assert_eq!(fit.counts.iter().sum::<usize>(), docs.len());
    }

    #[test]
    fn component_means_near_blob_centers() {
        let docs = blob_docs(50);
        let mut cfg = GmmConfig::new(2);
        cfg.features = GmmFeatures::GelOnly;
        let fit = GmmModel::new(cfg).unwrap().fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();
        // One mean near gelatin=2, the other near gelatin=9.
        let mut g: Vec<f64> = fit.means.iter().map(|m| m[0]).collect();
        g.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((g[0] - 2.0).abs() < 0.5, "means {g:?}");
        assert!((g[1] - 9.0).abs() < 0.5, "means {g:?}");
    }

    #[test]
    fn killed_fit_resumes_bit_identically() {
        let docs = blob_docs(15);
        let model = GmmModel::new(GmmConfig::new(2)).unwrap();
        let uninterrupted = model.fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();

        let mut sink = crate::MemoryCheckpointSink::new(20);
        sink.fail_after = Some(1);
        let err = model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap_err();
        assert!(matches!(err, ModelError::Checkpoint { .. }));
        let crate::SamplerSnapshot::Gmm(snap) = sink.latest().unwrap().clone() else {
            panic!("gmm fit must write gmm snapshots");
        };
        assert_eq!(snap.next_sweep, 20);

        let resumed = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new().resume(SamplerSnapshot::Gmm(snap)),
            )
            .unwrap();
        assert_eq!(resumed.assignments, uninterrupted.assignments);
        assert_eq!(resumed.ll_trace, uninterrupted.ll_trace);
        assert_eq!(resumed.counts, uninterrupted.counts);
    }

    #[test]
    fn resume_rejects_tampered_counts() {
        let docs = blob_docs(10);
        let model = GmmModel::new(GmmConfig::new(2)).unwrap();
        let mut sink = crate::MemoryCheckpointSink::new(40);
        model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap();
        let crate::SamplerSnapshot::Gmm(mut snap) = sink.latest().unwrap().clone() else {
            panic!("gmm fit must write gmm snapshots");
        };
        snap.counts[0] += 1;
        let err = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new().resume(SamplerSnapshot::Gmm(snap)),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::ResumeMismatch { .. }), "{err}");
    }

    #[test]
    fn validation() {
        assert!(GmmModel::new(GmmConfig::new(0)).is_err());
        let mut c = GmmConfig::new(2);
        c.sweeps = 0;
        assert!(GmmModel::new(c).is_err());
        let m = GmmModel::new(GmmConfig::new(2)).unwrap();
        assert!(m.fit_with(&mut rng(), &[], FitOptions::new()).is_err());
    }
}

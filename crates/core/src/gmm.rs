//! Bayesian Gaussian-mixture baseline: concentrations only, no terms.
//!
//! The complement of [`crate::lda`]: clusters recipes purely in
//! concentration space (gel and emulsion vectors concatenated or gel
//! only) using a Dirichlet-multinomial over assignments and collapsed
//! Normal-Wishart components (Student-t predictives). In the E7 ablation
//! it shows how much of the joint model's recovery the concentration
//! channel alone achieves — and that, unlike the joint model, it cannot
//! produce texture-term descriptions for its clusters.

use crate::config::NwHyper;
use crate::data::ModelDoc;
use crate::error::ModelError;
use crate::Result;
use rand::Rng;
use rheotex_linalg::dist::{sample_categorical_log, GaussianStats};
use rheotex_linalg::Vector;
use rheotex_obs::{NullObserver, SweepObserver, SweepStats};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which feature channels the mixture clusters on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GmmFeatures {
    /// Gel concentration vector only (the paper's linkage channel).
    GelOnly,
    /// Gel and emulsion vectors concatenated.
    GelAndEmulsion,
}

/// Configuration for the GMM baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub n_components: usize,
    /// Dirichlet concentration over component assignments.
    pub alpha: f64,
    /// Normal-Wishart hyperparameters of each component.
    pub prior: NwHyper,
    /// Feature channels.
    pub features: GmmFeatures,
    /// Gibbs sweeps.
    pub sweeps: usize,
}

impl GmmConfig {
    /// Reasonable defaults for `k` components.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            n_components: k,
            alpha: 0.5,
            prior: NwHyper::default(),
            features: GmmFeatures::GelAndEmulsion,
            sweeps: 80,
        }
    }
}

/// A fitted mixture: hard assignments plus per-component posteriors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedGmm {
    /// Component assignment per document.
    pub assignments: Vec<usize>,
    /// Posterior component means (feature space).
    pub means: Vec<Vector>,
    /// Documents per component.
    pub counts: Vec<usize>,
    /// Log-likelihood trace per sweep.
    pub ll_trace: Vec<f64>,
}

/// Collapsed-Gibbs Bayesian GMM.
#[derive(Debug, Clone)]
pub struct GmmModel {
    config: GmmConfig,
}

impl GmmModel {
    /// Creates the model.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] for degenerate parameters.
    pub fn new(config: GmmConfig) -> Result<Self> {
        if config.n_components == 0 || config.alpha <= 0.0 || config.sweeps == 0 {
            return Err(ModelError::InvalidConfig {
                what: format!("{config:?}"),
            });
        }
        Ok(Self { config })
    }

    fn features_of(&self, doc: &ModelDoc) -> Vector {
        match self.config.features {
            GmmFeatures::GelOnly => doc.gel.clone(),
            GmmFeatures::GelAndEmulsion => {
                let mut v = doc.gel.clone().into_vec();
                v.extend(doc.emulsion.iter().copied());
                Vector::new(v)
            }
        }
    }

    /// Fits the mixture by collapsed Gibbs.
    ///
    /// # Errors
    /// [`ModelError::InvalidData`] for empty input;
    /// [`ModelError::Numerical`] on degenerate updates.
    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, docs: &[ModelDoc]) -> Result<FittedGmm> {
        self.fit_observed(rng, docs, &mut NullObserver)
    }

    /// Like [`fit`](Self::fit), but reports one [`SweepStats`] per Gibbs
    /// sweep to `observer` (engine `"gmm"`, occupancy counted in
    /// documents). Observation never touches the RNG stream, so results
    /// match [`fit`](Self::fit) exactly.
    ///
    /// # Errors
    /// [`ModelError::InvalidData`] for empty input;
    /// [`ModelError::Numerical`] on degenerate updates.
    pub fn fit_observed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        observer: &mut dyn SweepObserver,
    ) -> Result<FittedGmm> {
        if docs.is_empty() {
            return Err(ModelError::InvalidData {
                what: "corpus is empty".into(),
            });
        }
        let xs: Vec<Vector> = docs.iter().map(|d| self.features_of(d)).collect();
        let dim = xs[0].len();
        if xs.iter().any(|x| x.len() != dim) {
            return Err(ModelError::InvalidData {
                what: "inconsistent feature dimensions".into(),
            });
        }
        let mut mean = Vector::zeros(dim);
        let inv = 1.0 / xs.len() as f64;
        for x in &xs {
            mean.axpy(inv, x)?;
        }
        let prior = self.config.prior.materialize(dim, &mean)?;

        let k = self.config.n_components;
        let mut assignments: Vec<usize> = Vec::with_capacity(xs.len());
        let mut stats: Vec<GaussianStats> = (0..k).map(|_| GaussianStats::new(dim)).collect();
        let mut counts = vec![0usize; k];
        let seeds = crate::init::kmeanspp_assignments(rng, &xs, k);
        for (x, &c) in xs.iter().zip(&seeds) {
            assignments.push(c);
            stats[c].add(x)?;
            counts[c] += 1;
        }

        let mut ll_trace = Vec::with_capacity(self.config.sweeps);
        let mut log_weights = vec![0.0f64; k];
        let observing = observer.enabled();
        for sweep in 0..self.config.sweeps {
            let sweep_start = observing.then(Instant::now);
            let mut ll = 0.0;
            for (i, x) in xs.iter().enumerate() {
                let old = assignments[i];
                stats[old].remove(x)?;
                counts[old] -= 1;
                for (c, lw) in log_weights.iter_mut().enumerate() {
                    let pred = prior.posterior(&stats[c])?.posterior_predictive()?;
                    *lw = (counts[c] as f64 + self.config.alpha).ln() + pred.log_pdf(x)?;
                }
                let new = sample_categorical_log(rng, &log_weights).expect("finite log-weights");
                ll += log_weights[new];
                assignments[i] = new;
                stats[new].add(x)?;
                counts[new] += 1;
            }
            ll_trace.push(ll);
            if let Some(started) = sweep_start {
                let (topic_entropy, min_occupancy, max_occupancy) =
                    SweepStats::occupancy_summary(&counts);
                observer.on_sweep(&SweepStats {
                    engine: "gmm",
                    sweep,
                    total_sweeps: self.config.sweeps,
                    elapsed_us: started.elapsed().as_micros() as u64,
                    log_likelihood: ll,
                    topic_entropy,
                    min_occupancy,
                    max_occupancy,
                    nw_draws: 0,
                });
            }
        }

        let means = stats
            .iter()
            .map(|s| prior.posterior(s).map(|p| p.mu0().clone()))
            .collect::<std::result::Result<Vec<_>, _>>()?;

        Ok(FittedGmm {
            assignments,
            means,
            counts,
            ll_trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(61)
    }

    fn blob_docs(n_per: usize) -> Vec<ModelDoc> {
        let mut r = ChaCha8Rng::seed_from_u64(62);
        (0..2 * n_per)
            .map(|i| {
                let c = i % 2;
                let jitter = |r: &mut ChaCha8Rng| r.gen_range(-0.3..0.3);
                let gel = if c == 0 {
                    Vector::new(vec![2.0 + jitter(&mut r), 9.0, 9.0])
                } else {
                    Vector::new(vec![9.0, 3.0 + jitter(&mut r), 9.0])
                };
                ModelDoc::new(i as u64, vec![], gel, Vector::full(6, 9.0))
            })
            .collect()
    }

    #[test]
    fn recovers_blobs_gel_only() {
        let docs = blob_docs(40);
        let mut cfg = GmmConfig::new(2);
        cfg.features = GmmFeatures::GelOnly;
        let fit = GmmModel::new(cfg).unwrap().fit(&mut rng(), &docs).unwrap();
        let c0 = fit.assignments[0];
        let agree = (0..docs.len())
            .filter(|&d| (fit.assignments[d] == c0) == (d % 2 == 0))
            .count();
        assert!(agree as f64 / docs.len() as f64 > 0.95, "agree {agree}");
    }

    #[test]
    fn concatenated_features_have_right_dim() {
        let docs = blob_docs(10);
        let cfg = GmmConfig::new(2);
        let fit = GmmModel::new(cfg).unwrap().fit(&mut rng(), &docs).unwrap();
        assert_eq!(fit.means[0].len(), 9); // 3 gel + 6 emulsion
        assert_eq!(fit.counts.iter().sum::<usize>(), docs.len());
    }

    #[test]
    fn component_means_near_blob_centers() {
        let docs = blob_docs(50);
        let mut cfg = GmmConfig::new(2);
        cfg.features = GmmFeatures::GelOnly;
        let fit = GmmModel::new(cfg).unwrap().fit(&mut rng(), &docs).unwrap();
        // One mean near gelatin=2, the other near gelatin=9.
        let mut g: Vec<f64> = fit.means.iter().map(|m| m[0]).collect();
        g.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((g[0] - 2.0).abs() < 0.5, "means {g:?}");
        assert!((g[1] - 9.0).abs() < 0.5, "means {g:?}");
    }

    #[test]
    fn validation() {
        assert!(GmmModel::new(GmmConfig::new(0)).is_err());
        let mut c = GmmConfig::new(2);
        c.sweeps = 0;
        assert!(GmmModel::new(c).is_err());
        let m = GmmModel::new(GmmConfig::new(2)).unwrap();
        assert!(m.fit(&mut rng(), &[]).is_err());
    }
}

//! Multi-chain convergence runner: fits `n_chains` replicas of the
//! joint model from distinct seeds, collects their per-sweep scalar
//! traces, and computes split-R̂ / bulk-ESS convergence diagnostics
//! over the post-warmup windows.
//!
//! A single Gibbs chain can look converged while being stuck in one
//! mode; the standard remedy (Gelman–Rubin) is to run several chains
//! from dispersed starting points and compare between-chain to
//! within-chain variance. [`ChainSet`] packages that workflow around
//! the existing deterministic fitting machinery:
//!
//! * chain `c` runs from `ChaCha8Rng::seed_from_u64(seed + c)` — the
//!   same derivation [`JointTopicModel::fit_multi_chain`] uses, so a
//!   1-chain `ChainSet` reproduces a plain `fit_with` bit-for-bit;
//! * every chain records its sweeps into a private [`VecObserver`];
//!   after all chains finish, the buffered [`SweepStats`] become
//!   per-metric traces (`ll`, `perplexity`, `accept`, `topic_entropy`,
//!   `min_occupancy`) in an [`rheotex_obs::ChainTraces`] accumulator;
//! * [`ChainSetFit::replay`] re-emits every buffered sweep onto a live
//!   [`Obs`] pipeline with a `chain` tag plus one `convergence.{metric}`
//!   event per diagnostic, so metrics JSONL files written by a
//!   multi-chain run carry everything `rheotex report` needs.
//!
//! The best chain (highest final conditional log-likelihood, matching
//! `fit_multi_chain`) is kept addressable so callers can both inspect
//! convergence *and* ship the winning point estimate.

use crate::data::ModelDoc;
use crate::error::ModelError;
use crate::fit::{FitOptions, GibbsKernel};
use crate::joint::{FittedJointModel, JointTopicModel};
use crate::Result;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use rheotex_obs::{
    emit_convergence, ChainTraces, HealthEvent, Obs, SweepStats, TraceDiagnostic, VecObserver,
};

/// Fraction of each trace discarded as warmup before computing R̂/ESS
/// when the caller does not override it. Half is the split-R̂
/// literature default and matches the burn-in-heavy configs in
/// `JointConfig`.
pub const DEFAULT_WARMUP_FRACTION: f64 = 0.5;

/// Builder for a multi-chain convergence run.
///
/// ```
/// use rheotex_core::chains::ChainSet;
/// use rheotex_core::{JointConfig, JointTopicModel, ModelDoc};
/// use rheotex_linalg::Vector;
///
/// let docs: Vec<ModelDoc> = (0..8)
///     .map(|i| {
///         ModelDoc::new(
///             i,
///             vec![(i % 4) as usize],
///             Vector::new(vec![4.0, 9.2, 9.2]),
///             Vector::full(6, 9.2),
///         )
///     })
///     .collect();
/// let model = JointTopicModel::new(JointConfig::quick(2, 4))?;
/// let fit = ChainSet::new(2, 7).run(&model, &docs)?;
/// assert_eq!(fit.chains.len(), 2);
/// assert!(!fit.diagnostics.is_empty());
/// # Ok::<(), rheotex_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChainSet {
    n_chains: usize,
    seed: u64,
    warmup_fraction: f64,
    kernel: Option<GibbsKernel>,
    threads: usize,
    health: Option<crate::health::HealthPolicy>,
    min_chains: usize,
}

impl ChainSet {
    /// A runner for `n_chains` chains seeded `seed, seed + 1, …`
    /// (wrapping). Defaults: serial kernel, warmup fraction
    /// [`DEFAULT_WARMUP_FRACTION`], no health supervision, every chain
    /// required to succeed.
    #[must_use]
    pub fn new(n_chains: usize, seed: u64) -> Self {
        ChainSet {
            n_chains,
            seed,
            warmup_fraction: DEFAULT_WARMUP_FRACTION,
            kernel: None,
            threads: 0,
            health: None,
            min_chains: 0,
        }
    }

    /// Runs every chain under the health supervisor (see
    /// [`FitOptions::health`]). Combine with [`ChainSet::min_chains`] to
    /// let the set survive chains the supervisor cannot recover.
    #[must_use]
    pub fn health(mut self, policy: crate::health::HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }

    /// Quorum rule: keep going as long as at least `min` chains fit
    /// successfully, recording the dropped chains in
    /// [`ChainSetFit::failed`] instead of failing the whole run. `0`
    /// (the default, and the historical behaviour) requires every chain
    /// to succeed and propagates the first chain error as-is.
    #[must_use]
    pub fn min_chains(mut self, min: usize) -> Self {
        self.min_chains = min;
        self
    }

    /// Names the Gibbs kernel every chain runs (default: implied by the
    /// thread count, exactly as [`FitOptions::kernel`] documents).
    #[must_use]
    pub fn kernel(mut self, kernel: GibbsKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Worker threads for each chain's document sweeps (chains
    /// themselves always run concurrently under rayon). `0` keeps the
    /// serial kernel.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the fraction of each trace discarded as warmup before
    /// the diagnostics window (clamped to `[0.0, 0.9]` downstream).
    #[must_use]
    pub fn warmup_fraction(mut self, fraction: f64) -> Self {
        self.warmup_fraction = fraction;
        self
    }

    /// Fits all chains concurrently and computes the diagnostics.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] when `n_chains == 0`. With the
    /// default all-chains-required quorum, propagates the first chain
    /// error encountered; with [`ChainSet::min_chains`] set, fails (with
    /// [`ModelError::Health`]) only when fewer than the quorum survive.
    pub fn run(&self, model: &JointTopicModel, docs: &[ModelDoc]) -> Result<ChainSetFit> {
        if self.n_chains == 0 {
            return Err(ModelError::InvalidConfig {
                what: "n_chains must be at least 1".into(),
            });
        }
        let outcomes: Vec<Result<ChainFit>> = (0..self.n_chains)
            .into_par_iter()
            .map(|c| {
                let chain_seed = self.seed.wrapping_add(c as u64);
                let mut rng = ChaCha8Rng::seed_from_u64(chain_seed);
                let mut observer = VecObserver::default();
                let mut opts = FitOptions::new()
                    .observer(&mut observer)
                    .threads(self.threads);
                if let Some(kernel) = self.kernel {
                    opts = opts.kernel(kernel);
                }
                if let Some(policy) = &self.health {
                    opts = opts.health(policy.clone());
                }
                let fitted = model.fit_with(&mut rng, docs, opts)?;
                Ok(ChainFit {
                    chain: c,
                    seed: chain_seed,
                    fitted,
                    sweeps: observer.sweeps,
                    health: observer.health,
                })
            })
            .collect();
        let mut chains = Vec::with_capacity(self.n_chains);
        let mut failed: Vec<(usize, ModelError)> = Vec::new();
        for (c, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(chain) => chains.push(chain),
                Err(e) => failed.push((c, e)),
            }
        }
        let required = if self.min_chains == 0 {
            self.n_chains
        } else {
            self.min_chains.min(self.n_chains)
        };
        if chains.len() < required {
            if self.min_chains == 0 {
                // Historical contract: no quorum, first error wins.
                let (_, e) = failed.remove(0);
                return Err(e);
            }
            let summary: Vec<String> = failed
                .iter()
                .map(|(c, e)| format!("chain {c}: {e}"))
                .collect();
            return Err(ModelError::Health {
                what: format!(
                    "only {} of {} chains survived (quorum {required}): {}",
                    chains.len(),
                    self.n_chains,
                    summary.join("; ")
                ),
            });
        }

        let n_docs = docs.len().max(1) as f64;
        let total_tokens: usize = docs.iter().map(|d| d.terms.len()).sum();
        // Traces are indexed by surviving-chain position, not original
        // chain id, so the diagnostics never mix in empty dropped-chain
        // traces (each ChainFit still carries its original id).
        let mut traces = ChainTraces::new(chains.len());
        for (i, chain) in chains.iter().enumerate() {
            for stats in &chain.sweeps {
                push_sweep_traces(&mut traces, i, stats, n_docs, total_tokens);
            }
        }
        let diagnostics = traces.diagnose(self.warmup_fraction);

        let best = chains
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.final_ll()
                    .partial_cmp(&b.final_ll())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);

        Ok(ChainSetFit {
            chains,
            best,
            diagnostics,
            failed,
        })
    }
}

/// Appends one sweep's scalar trace values for `chain`: the metrics the
/// convergence diagnostics run over.
fn push_sweep_traces(
    traces: &mut ChainTraces,
    chain: usize,
    stats: &SweepStats,
    n_docs: f64,
    total_tokens: usize,
) {
    traces.push("ll", chain, stats.log_likelihood);
    if total_tokens > 0 {
        traces.push(
            "perplexity",
            chain,
            (-stats.log_likelihood / total_tokens as f64).exp(),
        );
    }
    traces.push("accept", chain, stats.label_flips as f64 / n_docs);
    traces.push("topic_entropy", chain, stats.topic_entropy);
    traces.push("min_occupancy", chain, stats.min_occupancy as f64);
}

/// One fitted chain plus everything it streamed while running.
#[derive(Debug, Clone)]
pub struct ChainFit {
    /// Chain index, 0-based.
    pub chain: usize,
    /// The seed this chain's generator started from.
    pub seed: u64,
    /// The fitted model.
    pub fitted: FittedJointModel,
    /// Buffered per-sweep statistics, one per sweep.
    pub sweeps: Vec<SweepStats>,
    /// Buffered health-supervisor events (empty without a
    /// [`ChainSet::health`] policy).
    pub health: Vec<HealthEvent>,
}

impl ChainFit {
    /// The chain's final conditional log-likelihood (`-∞` when the
    /// trace is empty), the multi-chain selection criterion.
    #[must_use]
    pub fn final_ll(&self) -> f64 {
        self.fitted
            .ll_trace
            .last()
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
    }
}

/// The result of a [`ChainSet::run`]: every chain, the winner, and the
/// cross-chain convergence diagnostics.
#[derive(Debug, Clone)]
pub struct ChainSetFit {
    /// All chains in index order.
    pub chains: Vec<ChainFit>,
    /// Index into `chains` of the best final log-likelihood.
    pub best: usize,
    /// Split-R̂ / bulk-ESS per traced metric, post-warmup.
    pub diagnostics: Vec<TraceDiagnostic>,
    /// Chains dropped under the [`ChainSet::min_chains`] quorum rule,
    /// as `(original chain index, error)`. Always empty with the
    /// default all-chains-required configuration.
    pub failed: Vec<(usize, ModelError)>,
}

impl ChainSetFit {
    /// The winning chain's fitted model.
    #[must_use]
    pub fn best_fit(&self) -> &FittedJointModel {
        &self.chains[self.best].fitted
    }

    /// Consumes the set, keeping only the winning fitted model.
    #[must_use]
    pub fn into_best(mut self) -> FittedJointModel {
        self.chains.swap_remove(self.best).fitted
    }

    /// Convergence verdict at `rhat_threshold`: `Some(true)` when every
    /// defined diagnostic (finite or infinite R̂ — `NaN` means too few
    /// draws and is ignored) sits at or below the threshold,
    /// `Some(false)` when any exceeds it, `None` when no diagnostic is
    /// defined (single chain or too few sweeps).
    #[must_use]
    pub fn converged(&self, rhat_threshold: f64) -> Option<bool> {
        let defined: Vec<&TraceDiagnostic> = self
            .diagnostics
            .iter()
            .filter(|d| !d.rhat.is_nan())
            .collect();
        if defined.is_empty() {
            return None;
        }
        Some(defined.iter().all(|d| d.converged(rhat_threshold)))
    }

    /// Re-emits every chain's buffered sweeps onto `obs` tagged with
    /// their chain index, then one `convergence.{metric}` event per
    /// diagnostic — the replay path that fills a `--metrics-out` JSONL
    /// for `rheotex report` after a multi-chain fit.
    pub fn replay(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        for chain in &self.chains {
            for stats in &chain.sweeps {
                stats.emit_to(obs, Some(chain.chain));
            }
            for event in &chain.health {
                event.emit_to(obs, Some(chain.chain));
            }
        }
        for diag in &self.diagnostics {
            emit_convergence(obs, diag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JointConfig;
    use rheotex_linalg::Vector;
    use rheotex_obs::{EventKind, MemorySink, Obs};

    fn two_cluster_docs(n: usize) -> Vec<ModelDoc> {
        (0..n)
            .map(|i| {
                let (terms, gel, emu) = if i % 2 == 0 {
                    (vec![0, 1, 0], vec![8.0, 1.0, 1.0], 2.0)
                } else {
                    (vec![2, 3, 3], vec![1.0, 8.0, 1.0], 7.0)
                };
                ModelDoc::new(i as u64, terms, Vector::new(gel), Vector::full(6, emu))
            })
            .collect()
    }

    fn quick_model(sweeps: usize) -> JointTopicModel {
        JointTopicModel::new(JointConfig {
            sweeps,
            burn_in: sweeps / 2,
            ..JointConfig::quick(2, 4)
        })
        .unwrap()
    }

    #[test]
    fn rejects_zero_chains() {
        let docs = two_cluster_docs(6);
        let err = ChainSet::new(0, 7).run(&quick_model(4), &docs).unwrap_err();
        assert!(matches!(err, ModelError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn single_chain_matches_plain_fit() {
        let docs = two_cluster_docs(10);
        let model = quick_model(8);
        let fit = ChainSet::new(1, 42).run(&model, &docs).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let plain = model.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
        assert_eq!(fit.best, 0);
        assert_eq!(fit.best_fit().y, plain.y);
        assert_eq!(fit.best_fit().ll_trace, plain.ll_trace);
        // One chain cannot define split-R̂ (it needs >= 2 half-chains of
        // >= 2 draws, which a single 4-draw post-warmup window provides),
        // but the traces must still be collected.
        assert_eq!(fit.chains[0].sweeps.len(), 8);
    }

    #[test]
    fn chains_differ_and_best_has_max_ll() {
        let docs = two_cluster_docs(12);
        let fit = ChainSet::new(3, 7).run(&quick_model(10), &docs).unwrap();
        assert_eq!(fit.chains.len(), 3);
        for (c, chain) in fit.chains.iter().enumerate() {
            assert_eq!(chain.chain, c);
            assert_eq!(chain.seed, 7 + c as u64);
            assert_eq!(chain.sweeps.len(), 10);
        }
        let best_ll = fit.chains[fit.best].final_ll();
        for chain in &fit.chains {
            assert!(chain.final_ll() <= best_ll);
        }
        assert_eq!(
            fit.best_fit().ll_trace,
            fit.chains[fit.best].fitted.ll_trace
        );
    }

    #[test]
    fn diagnostics_cover_the_traced_metrics() {
        let docs = two_cluster_docs(10);
        let fit = ChainSet::new(2, 3).run(&quick_model(12), &docs).unwrap();
        let metrics: Vec<&str> = fit.diagnostics.iter().map(|d| d.metric.as_str()).collect();
        for want in [
            "accept",
            "ll",
            "min_occupancy",
            "perplexity",
            "topic_entropy",
        ] {
            assert!(metrics.contains(&want), "missing {want} in {metrics:?}");
        }
        for diag in &fit.diagnostics {
            assert_eq!(diag.chains, 2);
            // 12 sweeps, warmup 0.5 -> 6 post-warmup draws per chain.
            assert_eq!(diag.draws, 6);
        }
        // The verdict is defined (two chains, enough draws) either way.
        assert!(fit.converged(f64::INFINITY).is_some());
        assert_eq!(fit.converged(f64::INFINITY), Some(true));
    }

    #[test]
    fn replay_tags_chains_and_emits_convergence() {
        let docs = two_cluster_docs(8);
        let fit = ChainSet::new(2, 11).run(&quick_model(6), &docs).unwrap();
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        fit.replay(&obs);
        let taken = sink.take();
        assert!(!taken.is_empty());
        let sweeps: Vec<_> = taken
            .iter()
            .filter(|e| e.kind == EventKind::Sweep)
            .collect();
        assert_eq!(sweeps.len(), 2 * 6);
        for event in &sweeps {
            assert!(
                event.fields.iter().any(|f| f.key == "chain"),
                "sweep event missing chain tag"
            );
        }
        let conv = taken
            .iter()
            .filter(|e| e.kind == EventKind::Convergence)
            .count();
        assert_eq!(conv, fit.diagnostics.len());
    }

    #[test]
    fn healthy_supervised_chains_buffer_audit_events() {
        use crate::health::HealthPolicy;
        let docs = two_cluster_docs(8);
        let fit = ChainSet::new(2, 9)
            .health(HealthPolicy::recover().audit_every(2))
            .min_chains(1)
            .run(&quick_model(6), &docs)
            .unwrap();
        assert!(fit.failed.is_empty());
        for chain in &fit.chains {
            assert!(
                chain.health.iter().any(|e| e.action == "audit_pass"),
                "supervised chain buffered no audit events"
            );
            assert!(!chain.health.iter().any(|e| e.action == "sentinel_trip"));
        }
        // Replay forwards the buffered health events with a chain tag.
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        fit.replay(&obs);
        let health_events: Vec<_> = sink
            .take()
            .into_iter()
            .filter(|e| e.kind == EventKind::Health)
            .collect();
        assert!(!health_events.is_empty());
        for event in &health_events {
            assert!(event.fields.iter().any(|f| f.key == "chain"));
        }
    }

    #[test]
    fn unsupervised_chains_have_no_health_events() {
        let docs = two_cluster_docs(6);
        let fit = ChainSet::new(1, 2).run(&quick_model(4), &docs).unwrap();
        assert!(fit.chains[0].health.is_empty());
        assert!(fit.failed.is_empty());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn quorum_drops_unrecoverable_chains() {
        use crate::health::{CountChaos, HealthPolicy, RecoveryAction};
        let docs = two_cluster_docs(8);
        let chaos = CountChaos {
            at_sweep: 2,
            doc: 0,
            topic: 0,
            delta: 7,
        };
        // Strict supervision aborts every chaos-struck chain; with the
        // all-required default the set fails...
        let strict = HealthPolicy::strict().audit_every(1).chaos(chaos);
        let err = ChainSet::new(2, 5)
            .health(strict.clone())
            .run(&quick_model(6), &docs)
            .unwrap_err();
        assert!(matches!(err, ModelError::Health { .. }), "{err}");
        // ...and a quorum below the survivor count still cannot save a
        // run where no chain survives, but reports the roll-up error.
        let err = ChainSet::new(2, 5)
            .health(strict)
            .min_chains(1)
            .run(&quick_model(6), &docs)
            .unwrap_err();
        match err {
            ModelError::Health { what } => assert!(what.contains("quorum"), "{what}"),
            other => panic!("expected quorum health error, got {other}"),
        }
        // Rollback supervision recovers the same fault and keeps both
        // chains, so `failed` stays empty.
        let recover = HealthPolicy::recover()
            .action(RecoveryAction::RollbackRetry { max_retries: 3 })
            .audit_every(1)
            .snapshot_every(1)
            .chaos(chaos);
        let fit = ChainSet::new(2, 5)
            .health(recover)
            .min_chains(1)
            .run(&quick_model(6), &docs)
            .unwrap();
        assert!(fit.failed.is_empty());
        for chain in &fit.chains {
            assert!(chain.health.iter().any(|e| e.action == "rollback"));
            assert!(chain.health.iter().any(|e| e.action == "recovered"));
        }
    }

    #[test]
    fn parallel_kernel_chains_carry_profiles() {
        let docs = two_cluster_docs(8);
        let fit = ChainSet::new(2, 5)
            .kernel(GibbsKernel::Parallel)
            .run(&quick_model(4), &docs)
            .unwrap();
        for chain in &fit.chains {
            for stats in &chain.sweeps {
                assert!(stats.profile.is_some(), "parallel sweep missing profile");
                assert!(!stats.phase_us.is_empty());
            }
        }
    }
}

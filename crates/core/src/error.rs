//! Error type for model configuration and inference.

use std::fmt;

/// Errors from model construction and fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Bad configuration (zero topics, non-positive hyperparameters …).
    InvalidConfig {
        /// What was wrong.
        what: String,
    },
    /// Bad input data (term id out of vocabulary, wrong vector dimension,
    /// empty corpus …).
    InvalidData {
        /// What was wrong.
        what: String,
    },
    /// A numerical routine failed during inference.
    Numerical(rheotex_linalg::LinalgError),
    /// Writing a checkpoint snapshot failed mid-fit.
    Checkpoint {
        /// What went wrong in the checkpoint sink.
        what: String,
    },
    /// A resume snapshot is inconsistent with the requested fit (wrong
    /// config, different corpus, or internally corrupt state).
    ResumeMismatch {
        /// Which invariant the snapshot violated.
        what: String,
    },
    /// The fitting supervisor declared the run unrecoverable: a health
    /// sentinel tripped and the policy's recovery budget (rollback
    /// retries, kernel degradation) was exhausted or unavailable.
    Health {
        /// Which sentinel tripped and what recovery was attempted.
        what: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { what } => write!(f, "invalid model config: {what}"),
            Self::InvalidData { what } => write!(f, "invalid model input: {what}"),
            Self::Numerical(e) => write!(f, "numerical failure during inference: {e}"),
            Self::Checkpoint { what } => write!(f, "checkpoint write failed: {what}"),
            Self::ResumeMismatch { what } => {
                write!(f, "resume snapshot does not match this fit: {what}")
            }
            Self::Health { what } => write!(f, "unrecoverable health failure: {what}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rheotex_linalg::LinalgError> for ModelError {
    fn from(e: rheotex_linalg::LinalgError) -> Self {
        Self::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_and_source() {
        let inner = rheotex_linalg::LinalgError::Singular { pivot: 0 };
        let e: ModelError = inner.clone().into();
        assert!(matches!(e, ModelError::Numerical(_)));
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_some());
        assert!(e.to_string().contains("singular"));
    }
}

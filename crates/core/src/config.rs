//! Model configuration and hyperparameters.

use crate::error::ModelError;
use rheotex_linalg::dist::NormalWishart;
use rheotex_linalg::{Matrix, Vector};
use serde::{Deserialize, Serialize};

/// Normal-Wishart hyperparameters in a user-friendly form.
///
/// `mean` may be `None`, in which case the fitter centres the prior on the
/// empirical mean of the corpus (the usual vague choice). `prior_std` sets
/// the scale matrix so the prior expected covariance is roughly
/// `prior_std² · I`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NwHyper {
    /// Prior mean `μ₀`; `None` = empirical mean of the data.
    pub mean: Option<Vec<f64>>,
    /// Mean-precision coupling `β` (pseudo-observations for the mean).
    pub beta: f64,
    /// Degrees of freedom `ν`; `None` = `dim + 2` (weakest proper choice).
    pub nu: Option<f64>,
    /// Prior covariance scale (standard deviation per dimension).
    pub prior_std: f64,
}

impl Default for NwHyper {
    fn default() -> Self {
        Self {
            mean: None,
            beta: 0.5,
            nu: None,
            // Within-topic spread of −ln(concentration) features is ~0.1–0.5
            // (log-normal concentration jitter); a broader prior would
            // dominate the scatter of realistic topic sizes and stop the
            // Gaussian components from tightening onto concentration bands.
            prior_std: 0.5,
        }
    }
}

impl NwHyper {
    /// Materializes the Normal-Wishart prior for dimension `dim`, filling
    /// in data-driven defaults from `empirical_mean`.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] for inconsistent dimensions or
    /// non-positive parameters.
    pub fn materialize(
        &self,
        dim: usize,
        empirical_mean: &Vector,
    ) -> Result<NormalWishart, ModelError> {
        let mu0 = match &self.mean {
            Some(m) => {
                if m.len() != dim {
                    return Err(ModelError::InvalidConfig {
                        what: format!("NW mean has dim {}, expected {dim}", m.len()),
                    });
                }
                Vector::new(m.clone())
            }
            None => empirical_mean.clone(),
        };
        let nu = self.nu.unwrap_or(dim as f64 + 2.0);
        if self.prior_std <= 0.0 {
            return Err(ModelError::InvalidConfig {
                what: format!("prior_std {} must be positive", self.prior_std),
            });
        }
        // Scale matrix with E[Λ]⁻¹ ≈ prior_std² I: S⁻¹ = ν σ² I.
        let scale_inv = Matrix::scaled_identity(dim, nu * self.prior_std * self.prior_std);
        NormalWishart::new(mu0, self.beta, nu, scale_inv).map_err(|e| ModelError::InvalidConfig {
            what: format!("bad NW hyperparameters: {e}"),
        })
    }
}

/// Full configuration of the joint topic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointConfig {
    /// Number of topics `K` (the paper uses 10).
    pub n_topics: usize,
    /// Vocabulary size `V` (the paper's filtered corpus has 41).
    pub vocab_size: usize,
    /// Gel vector dimension (paper: 3).
    pub gel_dim: usize,
    /// Emulsion vector dimension (paper: 6).
    pub emulsion_dim: usize,
    /// Symmetric document-topic Dirichlet concentration `α`.
    pub alpha: f64,
    /// Symmetric topic-term Dirichlet concentration `γ`.
    pub gamma: f64,
    /// Gel Normal-Wishart hyperparameters.
    pub gel_prior: NwHyper,
    /// Emulsion Normal-Wishart hyperparameters.
    pub emulsion_prior: NwHyper,
    /// Total Gibbs sweeps.
    pub sweeps: usize,
    /// Sweeps discarded before collecting posterior estimates.
    pub burn_in: usize,
}

impl JointConfig {
    /// Paper-shaped defaults for a given vocabulary size: `K = 10`,
    /// 3-dimensional gels, 6-dimensional emulsions.
    #[must_use]
    pub fn paper_default(vocab_size: usize) -> Self {
        Self {
            n_topics: 10,
            vocab_size,
            gel_dim: 3,
            emulsion_dim: 6,
            alpha: 0.2,
            gamma: 0.1,
            gel_prior: NwHyper::default(),
            emulsion_prior: NwHyper::default(),
            sweeps: 400,
            burn_in: 200,
        }
    }

    /// Fast configuration for tests.
    #[must_use]
    pub fn quick(n_topics: usize, vocab_size: usize) -> Self {
        Self {
            n_topics,
            vocab_size,
            sweeps: 60,
            burn_in: 30,
            ..Self::paper_default(vocab_size)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<(), ModelError> {
        let bad = |what: String| Err(ModelError::InvalidConfig { what });
        if self.n_topics == 0 {
            return bad("n_topics must be at least 1".into());
        }
        if self.vocab_size == 0 {
            return bad("vocab_size must be at least 1".into());
        }
        if self.gel_dim == 0 || self.emulsion_dim == 0 {
            return bad("feature dimensions must be positive".into());
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return bad(format!("alpha {} must be positive", self.alpha));
        }
        if !(self.gamma.is_finite() && self.gamma > 0.0) {
            return bad(format!("gamma {} must be positive", self.gamma));
        }
        if self.sweeps == 0 {
            return bad("sweeps must be at least 1".into());
        }
        if self.burn_in >= self.sweeps {
            return bad(format!(
                "burn_in {} must be below sweeps {}",
                self.burn_in, self.sweeps
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert!(JointConfig::paper_default(41).validate().is_ok());
    }

    #[test]
    fn validation_catches_each_field() {
        let base = JointConfig::paper_default(41);
        let mut c = base.clone();
        c.n_topics = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.vocab_size = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.alpha = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.gamma = -1.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.burn_in = c.sweeps;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hyper_materialize_uses_empirical_mean() {
        let h = NwHyper::default();
        let emp = Vector::new(vec![5.0, 6.0, 7.0]);
        let nw = h.materialize(3, &emp).unwrap();
        assert_eq!(nw.mu0().as_slice(), emp.as_slice());
        assert_eq!(nw.nu(), 5.0); // dim + 2
    }

    #[test]
    fn hyper_materialize_explicit_mean_and_nu() {
        let h = NwHyper {
            mean: Some(vec![1.0, 2.0]),
            beta: 1.0,
            nu: Some(10.0),
            prior_std: 0.5,
        };
        let nw = h.materialize(2, &Vector::zeros(2)).unwrap();
        assert_eq!(nw.mu0().as_slice(), &[1.0, 2.0]);
        assert_eq!(nw.nu(), 10.0);
    }

    #[test]
    fn hyper_materialize_rejects_bad_input() {
        let h = NwHyper {
            mean: Some(vec![1.0]),
            ..NwHyper::default()
        };
        assert!(h.materialize(2, &Vector::zeros(2)).is_err());
        let h = NwHyper {
            prior_std: 0.0,
            ..NwHyper::default()
        };
        assert!(h.materialize(2, &Vector::zeros(2)).is_err());
    }
}

//! The semi-collapsed Gibbs sampler of the paper (Eq. 2–4).
//!
//! `θ` and `φ` are collapsed into count ratios; the Gaussian topic
//! parameters `(μ_k, Λ_k)` and `(m_k, L_k)` are kept explicit and
//! resampled from their Normal-Wishart posteriors after every sweep —
//! exactly the scheme of the paper's Section III-C.
//!
//! One sweep:
//! 1. **Eq. (2)** — for every texture token, resample
//!    `z_dn ∝ (N_dk^{-dn} + M_dk + α) · (N_kw^{-dn} + γ)/(N_k^{-dn} + γV)`,
//!    where `M_dk = [y_d = k]` (each recipe carries exactly one gel
//!    vector).
//! 2. **Eq. (3)** — for every recipe, resample
//!    `y_d ∝ (N_dk + α) · N(g_d|μ_k, Λ_k) · N(e_d|m_k, L_k)` in log space.
//! 3. **Eq. (4)** — resample `(μ_k, Λ_k)` and `(m_k, L_k)` from the
//!    conjugate Normal-Wishart posteriors of the vectors currently
//!    assigned to topic `k`.
//!
//! After burn-in, `φ` and `θ` are averaged across sweeps using the
//! paper's Eq. (5) estimators, and the Gaussian components are reported
//! through their final Normal-Wishart posteriors (Rao-Blackwellized).

use crate::alias::{mh_move_token, AliasProfile, AliasTables};
use crate::checkpoint::{
    check_kernel, fingerprint_docs, mismatch, CheckpointSink, GaussianParamState, JointSnapshot,
    RngState, SamplerSnapshot,
};
use crate::config::JointConfig;
use crate::counts::TopicCounts;
use crate::data::{validate_docs, ModelDoc};
use crate::error::ModelError;
use crate::fit::{FitOptions, GibbsKernel, PAR_CHUNK};
use crate::sparse::SparseTokenSampler;
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use rheotex_linalg::dist::{
    sample_categorical, sample_categorical_log, GaussianPrecision, GaussianStats, NormalWishart,
};
use rheotex_linalg::Vector;
use rheotex_obs::{KernelProfile, NullObserver, PhaseTimer, SweepObserver, SweepStats};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The joint topic model, ready to fit.
///
/// # Examples
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use rheotex_core::{FitOptions, JointConfig, JointTopicModel, ModelDoc};
/// use rheotex_linalg::Vector;
///
/// // Two tiny concentration bands with distinct vocabularies.
/// let docs: Vec<ModelDoc> = (0..20u64)
///     .map(|i| {
///         let band = (i % 2) as usize;
///         let gel = Vector::new(vec![3.0 + 2.0 * band as f64, 9.2, 9.2]);
///         ModelDoc::new(i, vec![band], gel, Vector::full(6, 9.2))
///     })
///     .collect();
/// let model = JointTopicModel::new(JointConfig::quick(2, 2)).unwrap();
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let fit = model.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
/// assert_eq!(fit.n_topics(), 2);
/// assert_ne!(fit.dominant_topic(0), fit.dominant_topic(1));
/// ```
#[derive(Debug, Clone)]
pub struct JointTopicModel {
    config: JointConfig,
}

/// A fitted model: posterior point estimates plus the final assignment
/// state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedJointModel {
    /// The configuration used.
    pub config: JointConfig,
    /// Topic-term distributions `φ` (K × V), averaged post-burn-in.
    pub phi: Vec<Vec<f64>>,
    /// Document-topic distributions `θ` (D × K), averaged post-burn-in.
    pub theta: Vec<Vec<f64>>,
    /// Per-topic Normal-Wishart posteriors of the gel component.
    pub gel_posteriors: Vec<NormalWishart>,
    /// Per-topic Normal-Wishart posteriors of the emulsion component.
    pub emulsion_posteriors: Vec<NormalWishart>,
    /// Final `y_d` assignments.
    pub y: Vec<usize>,
    /// Document ids aligned with `theta` / `y`.
    pub doc_ids: Vec<u64>,
    /// Conditional log-likelihood trace, one entry per sweep.
    pub ll_trace: Vec<f64>,
}

/// Mutable Gibbs state.
struct State {
    k: usize,
    v: usize,
    z: Vec<Vec<usize>>,
    y: Vec<usize>,
    /// The shared structure-of-arrays token-topic counts (`n_dk`,
    /// `n_kw`, `n_k`, plus nonzero lists under the sparse kernel).
    counts: TopicCounts,
    gel_stats: Vec<GaussianStats>,
    emu_stats: Vec<GaussianStats>,
    gel_params: Vec<GaussianPrecision>,
    emu_params: Vec<GaussianPrecision>,
}

impl State {
    #[inline]
    fn n_dk(&self, d: usize, k: usize) -> u32 {
        self.counts.dk(d, k)
    }
    #[inline]
    fn n_kw(&self, k: usize, w: usize) -> u32 {
        self.counts.kw(k, w)
    }
    #[inline]
    fn n_k(&self, k: usize) -> u32 {
        self.counts.topic_total(k)
    }
}

/// Everything the sweep loop mutates: the Gibbs state plus the
/// post-burn-in accumulators and the trace. One sweep advances this; a
/// checkpoint serializes it; a resume rebuilds it.
struct Progress {
    state: State,
    phi_acc: Vec<f64>,
    theta_acc: Vec<f64>,
    n_samples: usize,
    ll_trace: Vec<f64>,
}

impl Progress {
    fn fresh(state: State, d_count: usize, cfg: &JointConfig) -> Self {
        let k = cfg.n_topics;
        Self {
            state,
            phi_acc: vec![0.0f64; k * cfg.vocab_size],
            theta_acc: vec![0.0f64; d_count * k],
            n_samples: 0,
            ll_trace: Vec::with_capacity(cfg.sweeps),
        }
    }
}

impl JointTopicModel {
    /// Creates a model from a validated configuration.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] from [`JointConfig::validate`].
    pub fn new(config: JointConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &JointConfig {
        &self.config
    }

    /// Fits the model by Gibbs sampling, with every cross-cutting concern
    /// — per-sweep observation, periodic checkpointing, resuming from a
    /// snapshot, worker threads — selected through one [`FitOptions`]
    /// bundle. `FitOptions::new()` reproduces the historical plain `fit`
    /// bit for bit.
    ///
    /// With [`FitOptions::resume`] the caller-supplied `rng` is ignored:
    /// the snapshot carries the exact generator position needed to
    /// continue bit-identically. With [`FitOptions::threads`]` >= 1` the
    /// deterministic chunked parallel kernel runs; its output is
    /// identical for every thread count (see the crate docs for the
    /// RNG-splitting contract) but differs bitwise from the serial
    /// kernel, so resume a snapshot with the kernel that wrote it.
    /// [`FitOptions::kernel`] picks a kernel class explicitly, including
    /// the `O(nnz)`-per-token [`GibbsKernel::Sparse`] and its chunked
    /// composition [`GibbsKernel::SparseParallel`], which pairs the
    /// sparse bucket walk with the parallel kernel's chunk grid and is
    /// likewise identical across thread counts.
    ///
    /// # Errors
    /// [`ModelError::InvalidData`] for malformed docs;
    /// [`ModelError::Numerical`] if a Gaussian update degenerates (cannot
    /// happen with proper priors and finite data);
    /// [`ModelError::Checkpoint`] when a due snapshot fails to save;
    /// [`ModelError::ResumeMismatch`] for a snapshot that does not belong
    /// to this `(config, docs)` pair or is internally inconsistent;
    /// [`ModelError::Health`] when a supervised fit trips a sentinel the
    /// policy cannot recover from.
    pub fn fit_with(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        opts: FitOptions<'_>,
    ) -> Result<FittedJointModel> {
        let cfg = &self.config;
        validate_docs(docs, cfg.vocab_size, cfg.gel_dim, cfg.emulsion_dim)?;
        let (gel_prior, emu_prior) = self.materialize_priors(docs)?;
        let (kernel, threads) = opts.plan()?;
        let pool = crate::fit::build_pool(threads)?;
        let mut null_obs = NullObserver;
        let observer: &mut dyn SweepObserver = match opts.observer {
            Some(o) => o,
            None => &mut null_obs,
        };
        let mut no_ckpt = crate::checkpoint::NoCheckpoint;
        let sink: &mut dyn CheckpointSink = match opts.sink {
            Some(s) => s,
            None => &mut no_ckpt,
        };
        let health = opts.health;
        match opts.resume {
            Some(SamplerSnapshot::Joint(snap)) => {
                let (mut rng, mut prog, start) = self.restore(docs, snap, kernel)?;
                self.run_sweeps(
                    &mut rng,
                    docs,
                    &mut prog,
                    &gel_prior,
                    &emu_prior,
                    start,
                    observer,
                    sink,
                    kernel,
                    pool.as_ref(),
                    health,
                )?;
                self.finalize(docs, prog, &gel_prior, &emu_prior)
            }
            Some(other) => Err(mismatch(format!(
                "snapshot is from the {} engine, not joint",
                other.engine()
            ))),
            None => {
                let state = self.init_state(rng, docs, &gel_prior, &emu_prior)?;
                let mut prog = Progress::fresh(state, docs.len(), cfg);
                self.run_sweeps(
                    rng,
                    docs,
                    &mut prog,
                    &gel_prior,
                    &emu_prior,
                    0,
                    observer,
                    sink,
                    kernel,
                    pool.as_ref(),
                    health,
                )?;
                self.finalize(docs, prog, &gel_prior, &emu_prior)
            }
        }
    }

    /// The sweep loop shared by fresh and resumed fits, dispatching on
    /// the planned kernel class with one checkpoint decision per sweep.
    ///
    /// With a health policy the loop runs supervised: sentinels and the
    /// sampled invariant auditor inspect the state after every sweep, a
    /// trip rolls back to the last good in-memory snapshot (the RNG
    /// position travels with it, so the replay is bit-identical to a run
    /// that never tripped), and a kernel whose retry budget is exhausted
    /// drops one rung down the `alias → sparse → serial` degradation
    /// ladder (sparse-parallel degrades straight to serial).
    #[allow(clippy::too_many_arguments)]
    fn run_sweeps(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &mut Progress,
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
        start_sweep: usize,
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
        kernel: GibbsKernel,
        pool: Option<&rayon::ThreadPool>,
        health: Option<crate::health::HealthPolicy>,
    ) -> Result<()> {
        let mut kernel = kernel;
        let mut sparse = match kernel {
            GibbsKernel::Sparse => {
                if !prog.state.counts.tracking() {
                    prog.state.counts.enable_tracking();
                }
                Some(SparseTokenSampler::new(
                    self.config.n_topics,
                    self.config.vocab_size,
                    self.config.alpha,
                    self.config.gamma,
                ))
            }
            GibbsKernel::SparseParallel => {
                // The chunked sparse sweep clones tracked chunk-local
                // stores off the global one, so the global store keeps
                // its nonzero lists too (chunk_local is pure memcpy).
                if !prog.state.counts.tracking() {
                    prog.state.counts.enable_tracking();
                }
                None
            }
            _ => None,
        };
        let mut monitor = health.map(|p| crate::health::HealthMonitor::new(p, "joint"));
        let doc_lens: Vec<usize> = if monitor.is_some() {
            docs.iter().map(|d| d.terms.len()).collect()
        } else {
            Vec::new()
        };
        if let Some(mon) = monitor.as_mut() {
            if mon.wants_snapshots() {
                mon.keep(SamplerSnapshot::Joint(self.snapshot(
                    rng,
                    docs,
                    prog,
                    start_sweep,
                    kernel,
                )));
            }
        }
        let mut sweep = start_sweep;
        while sweep < self.config.sweeps {
            // Largest per-chunk bucket-mass drift of a sparse-parallel
            // sweep (the chunk samplers are per-sweep, so the drift is
            // measured at each chunk's fold).
            let mut chunk_drift = None;
            let outcome = match kernel {
                GibbsKernel::Serial => {
                    self.sweep_once(rng, docs, prog, gel_prior, emu_prior, sweep, observer)
                }
                GibbsKernel::Parallel => {
                    let pool = pool.expect("parallel kernel runs on a pool");
                    self.sweep_once_parallel(
                        rng, pool, docs, prog, gel_prior, emu_prior, sweep, observer,
                    )
                }
                GibbsKernel::Sparse => {
                    let sampler = sparse.as_mut().expect("sparse kernel has a sampler");
                    self.sweep_once_sparse(
                        rng, docs, prog, sampler, gel_prior, emu_prior, sweep, observer,
                    )
                }
                GibbsKernel::SparseParallel => {
                    let pool = pool.expect("sparse-parallel kernel runs on a pool");
                    self.sweep_once_sparse_parallel(
                        rng, pool, docs, prog, gel_prior, emu_prior, sweep, observer,
                    )
                    .map(|d| chunk_drift = Some(d))
                }
                GibbsKernel::Alias => {
                    let pool = pool.expect("alias kernel runs on a pool");
                    self.sweep_once_alias(
                        rng, pool, docs, prog, gel_prior, emu_prior, sweep, observer,
                    )
                }
            };
            match monitor.as_mut() {
                None => outcome?,
                Some(mon) => {
                    let trip = match outcome {
                        Err(e) => Some(format!("sweep failed: {e}")),
                        Ok(()) => {
                            #[cfg(feature = "fault-inject")]
                            mon.apply_chaos(sweep, &mut prog.state.counts);
                            let ll = prog.ll_trace.last().copied().unwrap_or(f64::NAN);
                            let drift = sparse
                                .as_ref()
                                .map(|s| s.s_mass_drift(&prog.state.counts))
                                .or(chunk_drift);
                            mon.inspect_counts(
                                sweep,
                                ll,
                                &prog.state.counts,
                                &doc_lens,
                                drift,
                                observer,
                            )
                        }
                    };
                    if let Some(detail) = trip {
                        let (snap, new_kernel) = match mon
                            .tripped(sweep, kernel, detail, observer)?
                        {
                            crate::health::Recovery::Rollback(snap) => (snap, kernel),
                            crate::health::Recovery::Degrade(snap, target) => (snap, target),
                        };
                        let SamplerSnapshot::Joint(mut snap) = *snap else {
                            return Err(mismatch(
                                "supervisor recovery point is not a joint snapshot",
                            ));
                        };
                        snap.kernel = Some(new_kernel);
                        let (r, p, s) = self.restore(docs, snap, new_kernel)?;
                        *rng = r;
                        *prog = p;
                        sweep = s;
                        if new_kernel != kernel {
                            kernel = new_kernel;
                            // Degrading to sparse needs the sampler and
                            // the tracked nonzero lists a fresh sparse
                            // fit would have set up.
                            sparse = if kernel == GibbsKernel::Sparse {
                                prog.state.counts.enable_tracking();
                                Some(SparseTokenSampler::new(
                                    self.config.n_topics,
                                    self.config.vocab_size,
                                    self.config.alpha,
                                    self.config.gamma,
                                ))
                            } else {
                                None
                            };
                        } else if matches!(
                            kernel,
                            GibbsKernel::Sparse | GibbsKernel::SparseParallel
                        ) {
                            // restore() hands back an untracked store.
                            prog.state.counts.enable_tracking();
                        }
                        continue;
                    }
                    if mon.snapshot_due(sweep) {
                        mon.keep(SamplerSnapshot::Joint(self.snapshot(
                            rng,
                            docs,
                            prog,
                            sweep + 1,
                            kernel,
                        )));
                    }
                    let retries = crate::checkpoint::save_if_due_with_retry(
                        sink,
                        sweep,
                        mon.save_retries(),
                        || {
                            SamplerSnapshot::Joint(self.snapshot(
                                rng,
                                docs,
                                prog,
                                sweep + 1,
                                kernel,
                            ))
                        },
                    )?;
                    if retries > 0 {
                        mon.note_checkpoint_retry(sweep, retries, observer);
                    }
                    sweep += 1;
                    continue;
                }
            }
            crate::checkpoint::save_if_due(sink, sweep, || {
                SamplerSnapshot::Joint(self.snapshot(rng, docs, prog, sweep + 1, kernel))
            })?;
            sweep += 1;
        }
        Ok(())
    }

    /// One full Gibbs sweep: Eq. (2), Eq. (3), Eq. (4), trace, observer
    /// report, and post-burn-in accumulation.
    #[allow(clippy::too_many_arguments)]
    fn sweep_once<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        prog: &mut Progress,
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) -> Result<()> {
        let sweep_start = observer.enabled().then(Instant::now);
        let mut timer = PhaseTimer::new(observer.enabled());
        timer.time("z", || self.sweep_z(rng, docs, &mut prog.state));
        let label_flips = timer.time("y", || self.sweep_y(rng, docs, &mut prog.state))?;
        let jitter_retries = timer.time("params", || {
            self.resample_params(rng, &mut prog.state, gel_prior, emu_prior)
        })?;
        let ll = timer.time("ll", || self.conditional_ll(docs, &prog.state));
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            jitter_retries,
            label_flips,
            None,
            sweep_start,
            &mut timer,
            observer,
        );
        Ok(())
    }

    /// One full sweep of the sparse kernel: Eq. (2) through the
    /// three-bucket decomposition ([`crate::sparse`]) with the recipe's
    /// observed topic `y_d` as the `M_dk` boost, then the unchanged
    /// serial Eq. (3) / Eq. (4) phases (the Gaussian factors are dense
    /// in `K` either way). A distinct bit-class from the dense kernels:
    /// the token phase consumes one uniform per token.
    #[allow(clippy::too_many_arguments)]
    fn sweep_once_sparse(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &mut Progress,
        sampler: &mut SparseTokenSampler,
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) -> Result<()> {
        let sweep_start = observer.enabled().then(Instant::now);
        let mut timer = PhaseTimer::new(observer.enabled());
        sampler.set_profiling(observer.enabled());
        timer.time("z", || {
            self.sweep_z_sparse(rng, docs, &mut prog.state, sampler)
        });
        let profile = observer
            .enabled()
            .then(|| sampler.take_profile().into_kernel_profile());
        let label_flips = timer.time("y", || self.sweep_y(rng, docs, &mut prog.state))?;
        let jitter_retries = timer.time("params", || {
            self.resample_params(rng, &mut prog.state, gel_prior, emu_prior)
        })?;
        let ll = timer.time("ll", || self.conditional_ll(docs, &prog.state));
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            jitter_retries,
            label_flips,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
        Ok(())
    }

    /// One full sweep of the deterministic chunked parallel kernel.
    ///
    /// The master generator contributes exactly one `u64` — the sweep
    /// seed — before the document phases; every 64-doc chunk `c` then
    /// samples from its own `ChaCha8Rng` streams of that seed (`2c` for
    /// Eq. 2, `2c + 1` for Eq. 3), and chunk results are merged in
    /// document order. Both the chunk grid and the stream assignment are
    /// independent of the worker-thread count, so the sweep is a pure
    /// function of `(state, sweep seed)`. Within the token phase a chunk
    /// samples against a start-of-sweep snapshot of the global `n_kw` /
    /// `n_k` counts updated only with its own moves (the standard
    /// approximate-distributed-Gibbs trade); the `y` phase has no
    /// cross-document coupling at fixed parameters and is exact.
    #[allow(clippy::too_many_arguments)]
    fn sweep_once_parallel(
        &self,
        rng: &mut ChaCha8Rng,
        pool: &rayon::ThreadPool,
        docs: &[ModelDoc],
        prog: &mut Progress,
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) -> Result<()> {
        let sweep_seed: u64 = rng.gen();
        let sweep_start = observer.enabled().then(Instant::now);
        let profiling = observer.enabled();
        let mut timer = PhaseTimer::new(profiling);
        let chunk_us = timer.time("z", || {
            self.sweep_z_parallel(pool, sweep_seed, docs, &mut prog.state, profiling)
        });
        let label_flips = timer.time("y", || {
            self.sweep_y_parallel(pool, sweep_seed, docs, &mut prog.state)
        })?;
        let jitter_retries = timer.time("params", || {
            self.resample_params(rng, &mut prog.state, gel_prior, emu_prior)
        })?;
        let ll = timer.time("ll", || self.conditional_ll(docs, &prog.state));
        let profile = profiling.then(|| {
            let k = self.config.n_topics;
            let v = self.config.vocab_size;
            let chunks = docs.len().div_ceil(PAR_CHUNK) as u64;
            // Per chunk the z phase clones the start-of-sweep term counts
            // (`n_kw` + `n_k`, u32) and a weight buffer; the y phase
            // allocates log-weights and its drawn labels.
            let per_chunk = 4 * (k * v + k) + 8 * k + 8 * k + 8 * PAR_CHUNK;
            KernelProfile::Parallel {
                chunks,
                chunk_us,
                alloc_bytes: chunks * per_chunk as u64,
            }
        });
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            jitter_retries,
            label_flips,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
        Ok(())
    }

    /// One full sweep of the chunked sparse kernel: Eq. (2) through the
    /// SparseLDA three-bucket draw over the parallel kernel's fixed
    /// 64-doc chunk grid and RNG stream discipline (`2c` of the sweep
    /// seed for tokens, `2c + 1` for the unchanged exact Eq. (3) chunk
    /// scoring), so its output is identical across worker-thread counts.
    /// Each chunk samples against a tracked chunk-local copy of the
    /// start-of-sweep counts with the recipe's observed topic `y_d` as
    /// the `M_dk` boost; chunk results fold back in chunk order and the
    /// term counts are recounted from the merged assignments. Returns
    /// the largest per-chunk s-bucket mass drift for the health
    /// sentinel.
    #[allow(clippy::too_many_arguments)]
    fn sweep_once_sparse_parallel(
        &self,
        rng: &mut ChaCha8Rng,
        pool: &rayon::ThreadPool,
        docs: &[ModelDoc],
        prog: &mut Progress,
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) -> Result<f64> {
        let sweep_seed: u64 = rng.gen();
        let sweep_start = observer.enabled().then(Instant::now);
        let profiling = observer.enabled();
        let mut timer = PhaseTimer::new(profiling);
        let (drift, profile) = timer.time("z", || {
            self.sweep_z_sparse_parallel(pool, sweep_seed, docs, &mut prog.state, profiling)
        });
        let label_flips = timer.time("y", || {
            self.sweep_y_parallel(pool, sweep_seed, docs, &mut prog.state)
        })?;
        let jitter_retries = timer.time("params", || {
            self.resample_params(rng, &mut prog.state, gel_prior, emu_prior)
        })?;
        let ll = timer.time("ll", || self.conditional_ll(docs, &prog.state));
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            jitter_retries,
            label_flips,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
        Ok(drift)
    }

    /// One full sweep of the chunked alias-table MH kernel: Eq. (2)
    /// through the doc-proposal/word-proposal Metropolis-Hastings cycle
    /// over the parallel kernel's fixed 64-doc chunk grid and RNG stream
    /// discipline (`2c` of the sweep seed for tokens, `2c + 1` for the
    /// unchanged exact Eq. (3) chunk scoring), so its output is
    /// identical across worker-thread counts. The per-word alias tables
    /// are rebuilt once per sweep from the start-of-sweep term counts
    /// and shared read-only across chunks.
    #[allow(clippy::too_many_arguments)]
    fn sweep_once_alias(
        &self,
        rng: &mut ChaCha8Rng,
        pool: &rayon::ThreadPool,
        docs: &[ModelDoc],
        prog: &mut Progress,
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) -> Result<()> {
        let sweep_seed: u64 = rng.gen();
        let sweep_start = observer.enabled().then(Instant::now);
        let profiling = observer.enabled();
        let mut timer = PhaseTimer::new(profiling);
        let profile = timer.time("z", || {
            self.sweep_z_alias(pool, sweep_seed, docs, &mut prog.state, profiling)
        });
        let label_flips = timer.time("y", || {
            self.sweep_y_parallel(pool, sweep_seed, docs, &mut prog.state)
        })?;
        let jitter_retries = timer.time("params", || {
            self.resample_params(rng, &mut prog.state, gel_prior, emu_prior)
        })?;
        let ll = timer.time("ll", || self.conditional_ll(docs, &prog.state));
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            jitter_retries,
            label_flips,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
        Ok(())
    }

    /// Trace push, observer report, and post-burn-in accumulation shared
    /// by the serial, parallel, sparse, sparse-parallel, and alias sweep
    /// kernels.
    #[allow(clippy::too_many_arguments)]
    fn post_sweep(
        &self,
        docs: &[ModelDoc],
        prog: &mut Progress,
        sweep: usize,
        ll: f64,
        jitter_retries: usize,
        label_flips: usize,
        profile: Option<KernelProfile>,
        sweep_start: Option<Instant>,
        timer: &mut PhaseTimer,
        observer: &mut dyn SweepObserver,
    ) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        prog.ll_trace.push(ll);

        if let Some(started) = sweep_start {
            let mut occupancy = vec![0usize; k];
            for &y in &prog.state.y {
                occupancy[y] += 1;
            }
            let (topic_entropy, min_occupancy, max_occupancy) =
                SweepStats::occupancy_summary(&occupancy);
            observer.on_sweep(&SweepStats {
                engine: "joint",
                sweep,
                total_sweeps: cfg.sweeps,
                elapsed_us: started.elapsed().as_micros() as u64,
                log_likelihood: ll,
                topic_entropy,
                min_occupancy,
                max_occupancy,
                nw_draws: 2 * k,
                jitter_retries,
                cache_lookups: 0,
                cache_hits: 0,
                label_flips,
                phase_us: timer.take(),
                profile,
            });
        }

        if sweep >= cfg.burn_in {
            self.accumulate_estimates(docs, &prog.state, &mut prog.phi_acc, &mut prog.theta_acc);
            prog.n_samples += 1;
        }
    }

    /// Turns accumulated progress into the fitted model.
    fn finalize(
        &self,
        docs: &[ModelDoc],
        prog: Progress,
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
    ) -> Result<FittedJointModel> {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let d_count = docs.len();
        let norm = 1.0 / prog.n_samples.max(1) as f64;
        let phi = (0..k)
            .map(|kk| {
                (0..cfg.vocab_size)
                    .map(|w| prog.phi_acc[kk * cfg.vocab_size + w] * norm)
                    .collect()
            })
            .collect();
        let theta = (0..d_count)
            .map(|d| (0..k).map(|kk| prog.theta_acc[d * k + kk] * norm).collect())
            .collect();
        let gel_posteriors = prog
            .state
            .gel_stats
            .iter()
            .map(|s| gel_prior.posterior(s))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let emulsion_posteriors = prog
            .state
            .emu_stats
            .iter()
            .map(|s| emu_prior.posterior(s))
            .collect::<std::result::Result<Vec<_>, _>>()?;

        Ok(FittedJointModel {
            config: cfg.clone(),
            phi,
            theta,
            gel_posteriors,
            emulsion_posteriors,
            y: prog.state.y,
            doc_ids: docs.iter().map(|d| d.id).collect(),
            ll_trace: prog.ll_trace,
        })
    }

    /// Captures the sweep-boundary state as a serializable snapshot.
    fn snapshot(
        &self,
        rng: &ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &Progress,
        next_sweep: usize,
        kernel: GibbsKernel,
    ) -> JointSnapshot {
        let state = &prog.state;
        JointSnapshot {
            config: self.config.clone(),
            next_sweep,
            kernel: Some(kernel),
            doc_fingerprint: fingerprint_docs(docs),
            z: state.z.clone(),
            y: state.y.clone(),
            n_dk: state.counts.n_dk_raw().to_vec(),
            n_kw: state.counts.n_kw_raw().to_vec(),
            n_k: state.counts.n_k_raw().to_vec(),
            gel_stats: state.gel_stats.clone(),
            emu_stats: state.emu_stats.clone(),
            gel_params: state
                .gel_params
                .iter()
                .map(GaussianParamState::capture)
                .collect(),
            emu_params: state
                .emu_params
                .iter()
                .map(GaussianParamState::capture)
                .collect(),
            phi_acc: prog.phi_acc.clone(),
            theta_acc: prog.theta_acc.clone(),
            n_samples: prog.n_samples,
            ll_trace: prog.ll_trace.clone(),
            rng: RngState::capture(rng),
        }
    }

    /// Validates a snapshot against `(self.config, docs)` and rebuilds
    /// the live sampler state.
    fn restore(
        &self,
        docs: &[ModelDoc],
        snap: JointSnapshot,
        kernel: GibbsKernel,
    ) -> Result<(ChaCha8Rng, Progress, usize)> {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let d_count = docs.len();
        if snap.config != *cfg {
            return Err(mismatch("snapshot was written with a different config"));
        }
        check_kernel(snap.kernel, kernel)?;
        if snap.doc_fingerprint != fingerprint_docs(docs) {
            return Err(mismatch("snapshot was written for a different corpus"));
        }
        if snap.next_sweep > cfg.sweeps {
            return Err(mismatch(format!(
                "snapshot next_sweep {} exceeds configured sweeps {}",
                snap.next_sweep, cfg.sweeps
            )));
        }
        if snap.ll_trace.len() != snap.next_sweep {
            return Err(mismatch(format!(
                "ll_trace has {} entries for {} completed sweeps",
                snap.ll_trace.len(),
                snap.next_sweep
            )));
        }
        let expect_samples = snap.next_sweep.saturating_sub(cfg.burn_in);
        if snap.n_samples != expect_samples {
            return Err(mismatch(format!(
                "n_samples {} does not match {} post-burn-in sweeps",
                snap.n_samples, expect_samples
            )));
        }
        if snap.z.len() != d_count || snap.y.len() != d_count {
            return Err(mismatch("assignment lengths do not match the corpus"));
        }
        for (d, doc) in docs.iter().enumerate() {
            if snap.z[d].len() != doc.terms.len() {
                return Err(mismatch(format!(
                    "doc {d}: token assignment length mismatch"
                )));
            }
        }
        if snap.y.iter().any(|&y| y >= k) || snap.z.iter().flatten().any(|&t| t >= k) {
            return Err(mismatch("assignment refers to a topic out of range"));
        }
        if snap.n_dk.len() != d_count * k
            || snap.n_kw.len() != k * v
            || snap.n_k.len() != k
            || snap.phi_acc.len() != k * v
            || snap.theta_acc.len() != d_count * k
        {
            return Err(mismatch("count or accumulator arrays have wrong sizes"));
        }
        if snap.gel_stats.len() != k
            || snap.emu_stats.len() != k
            || snap.gel_params.len() != k
            || snap.emu_params.len() != k
        {
            return Err(mismatch("per-topic arrays have wrong sizes"));
        }
        if snap.gel_stats.iter().any(|s| s.dim() != cfg.gel_dim)
            || snap.emu_stats.iter().any(|s| s.dim() != cfg.emulsion_dim)
        {
            return Err(mismatch("sufficient statistics have wrong dimensions"));
        }
        // Integer count consistency: recompute from z. (Float statistics
        // are deliberately not revalidated — they may carry accumulated
        // rounding, and the jitter-recovery path absorbs degradation.)
        let mut n_dk = vec![0u32; d_count * k];
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = snap.z[d][n];
                n_dk[d * k + t] += 1;
                n_kw[t * v + w] += 1;
                n_k[t] += 1;
            }
        }
        if n_dk != snap.n_dk || n_kw != snap.n_kw || n_k != snap.n_k {
            return Err(mismatch("counts are inconsistent with assignments"));
        }

        let rng = snap.rng.restore()?;
        let gel_params = snap
            .gel_params
            .iter()
            .map(GaussianParamState::restore)
            .collect::<Result<Vec<_>>>()?;
        let emu_params = snap
            .emu_params
            .iter()
            .map(GaussianParamState::restore)
            .collect::<Result<Vec<_>>>()?;
        let state = State {
            k,
            v,
            z: snap.z,
            y: snap.y,
            counts: TopicCounts::from_parts(k, v, snap.n_dk, snap.n_kw, snap.n_k),
            gel_stats: snap.gel_stats,
            emu_stats: snap.emu_stats,
            gel_params,
            emu_params,
        };
        let prog = Progress {
            state,
            phi_acc: snap.phi_acc,
            theta_acc: snap.theta_acc,
            n_samples: snap.n_samples,
            ll_trace: snap.ll_trace,
        };
        Ok((rng, prog, snap.next_sweep))
    }

    /// Fits `n_chains` independent chains in parallel (distinct seeds
    /// derived from `seed`) and returns the chain with the highest final
    /// conditional log-likelihood.
    ///
    /// # Errors
    /// Propagates the first chain error encountered.
    pub fn fit_multi_chain(
        &self,
        seed: u64,
        docs: &[ModelDoc],
        n_chains: usize,
    ) -> Result<FittedJointModel> {
        if n_chains == 0 {
            return Err(ModelError::InvalidConfig {
                what: "n_chains must be at least 1".into(),
            });
        }
        let fits: Vec<Result<FittedJointModel>> = (0..n_chains)
            .into_par_iter()
            .map(|c| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(c as u64));
                self.fit_with(&mut rng, docs, FitOptions::new())
            })
            .collect();
        let mut best: Option<FittedJointModel> = None;
        for fit in fits {
            let fit = fit?;
            let better = match &best {
                None => true,
                Some(b) => {
                    fit.ll_trace.last().copied().unwrap_or(f64::NEG_INFINITY)
                        > b.ll_trace.last().copied().unwrap_or(f64::NEG_INFINITY)
                }
            };
            if better {
                best = Some(fit);
            }
        }
        Ok(best.expect("n_chains >= 1"))
    }

    fn materialize_priors(&self, docs: &[ModelDoc]) -> Result<(NormalWishart, NormalWishart)> {
        let cfg = &self.config;
        let mut gel_mean = Vector::zeros(cfg.gel_dim);
        let mut emu_mean = Vector::zeros(cfg.emulsion_dim);
        let inv = 1.0 / docs.len() as f64;
        for d in docs {
            gel_mean.axpy(inv, &d.gel)?;
            emu_mean.axpy(inv, &d.emulsion)?;
        }
        Ok((
            cfg.gel_prior.materialize(cfg.gel_dim, &gel_mean)?,
            cfg.emulsion_prior
                .materialize(cfg.emulsion_dim, &emu_mean)?,
        ))
    }

    fn init_state<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
    ) -> Result<State> {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let d_count = docs.len();
        let mut state = State {
            k,
            v,
            z: Vec::with_capacity(d_count),
            y: Vec::with_capacity(d_count),
            counts: TopicCounts::new(d_count, k, v),
            gel_stats: (0..k).map(|_| GaussianStats::new(cfg.gel_dim)).collect(),
            emu_stats: (0..k)
                .map(|_| GaussianStats::new(cfg.emulsion_dim))
                .collect(),
            gel_params: Vec::new(),
            emu_params: Vec::new(),
        };
        // Seed y with k-means++ over the concatenated concentration
        // features (see crate::init); z tokens start at their doc's seed
        // topic so words and vectors begin aligned.
        let features: Vec<Vector> = docs
            .iter()
            .map(|d| crate::init::concat_features(&d.gel, &d.emulsion))
            .collect();
        let seeds = crate::init::kmeanspp_assignments(rng, &features, k);
        for (d, doc) in docs.iter().enumerate() {
            let topic = seeds[d];
            let zs: Vec<usize> = doc
                .terms
                .iter()
                .map(|&w| {
                    state.counts.inc(d, w, topic);
                    topic
                })
                .collect();
            state.z.push(zs);
            state.y.push(topic);
            state.gel_stats[topic].add(&doc.gel)?;
            state.emu_stats[topic].add(&doc.emulsion)?;
        }
        self.resample_params(rng, &mut state, gel_prior, emu_prior)?;
        Ok(state)
    }

    /// Eq. (2): resample every token's topic.
    fn sweep_z<R: Rng + ?Sized>(&self, rng: &mut R, docs: &[ModelDoc], state: &mut State) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size as f64;
        let mut weights = vec![0.0f64; k];
        for (d, doc) in docs.iter().enumerate() {
            let y_d = state.y[d];
            for (n, &w) in doc.terms.iter().enumerate() {
                let old = state.z[d][n];
                state.counts.dec(d, w, old);

                for (kk, weight) in weights.iter_mut().enumerate() {
                    let m_dk = u32::from(y_d == kk);
                    let doc_part = f64::from(state.n_dk(d, kk) + m_dk) + cfg.alpha;
                    let term_part = (f64::from(state.n_kw(kk, w)) + cfg.gamma)
                        / (f64::from(state.n_k(kk)) + cfg.gamma * v);
                    *weight = doc_part * term_part;
                }
                let new = sample_categorical(rng, &weights)
                    .expect("weights are positive by construction");
                state.z[d][n] = new;
                state.counts.inc(d, w, new);
            }
        }
    }

    /// Eq. (2) through the sparse three-bucket draw: the recipe's
    /// observed topic `y_d` enters as the `M_dk` boost, so the document
    /// bucket keeps `y_d` in its support even when no token sits there.
    fn sweep_z_sparse<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        state: &mut State,
        sampler: &mut SparseTokenSampler,
    ) {
        sampler.begin_sweep(&state.counts);
        for (d, doc) in docs.iter().enumerate() {
            let y_d = state.y[d];
            sampler.begin_doc(&state.counts, d, Some(y_d));
            for (n, &w) in doc.terms.iter().enumerate() {
                let old = state.z[d][n];
                let new = sampler.move_token(rng, &mut state.counts, w, old);
                state.z[d][n] = new;
            }
        }
    }

    /// Eq. (2) over fixed 64-doc chunks: each chunk samples its tokens
    /// against a chunk-local copy of the start-of-sweep `n_kw` / `n_k`
    /// counts (kept exact for its own moves, stale for other chunks')
    /// using RNG stream `2c` of the sweep seed, then the global counts
    /// are rebuilt from the merged assignments.
    ///
    /// With `profile` set, each chunk's wall time is measured and the
    /// per-chunk timings are returned in chunk order (empty otherwise).
    /// The clock reads sit outside the sampling loop and never touch the
    /// RNG streams, so profiled and unprofiled sweeps draw identically.
    fn sweep_z_parallel(
        &self,
        pool: &rayon::ThreadPool,
        sweep_seed: u64,
        docs: &[ModelDoc],
        state: &mut State,
        profile: bool,
    ) -> Vec<u64> {
        let k = state.k;
        let v = state.v;
        let alpha = self.config.alpha;
        let gamma = self.config.gamma;
        let vf = v as f64;
        let (n_dk, n_kw_flat, n_k_flat) = state.counts.dense_parts_mut();
        let n_kw_start = n_kw_flat.to_vec();
        let n_k_start = n_k_flat.to_vec();
        let y = &state.y;
        let z = &mut state.z;
        let chunk_us: Vec<u64> = pool.install(|| {
            z.par_chunks_mut(PAR_CHUNK)
                .zip(n_dk.par_chunks_mut(PAR_CHUNK * k))
                .enumerate()
                .map(|(c, (z_chunk, n_dk_chunk))| {
                    let chunk_start = profile.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let mut n_kw = n_kw_start.clone();
                    let mut n_k = n_k_start.clone();
                    let mut weights = vec![0.0f64; k];
                    let d0 = c * PAR_CHUNK;
                    for (dd, zs) in z_chunk.iter_mut().enumerate() {
                        let doc = &docs[d0 + dd];
                        let y_d = y[d0 + dd];
                        let row = &mut n_dk_chunk[dd * k..(dd + 1) * k];
                        for (n, &w) in doc.terms.iter().enumerate() {
                            let old = zs[n];
                            row[old] -= 1;
                            n_kw[old * v + w] -= 1;
                            n_k[old] -= 1;

                            for (kk, weight) in weights.iter_mut().enumerate() {
                                let m_dk = u32::from(y_d == kk);
                                let doc_part = f64::from(row[kk] + m_dk) + alpha;
                                let term_part = (f64::from(n_kw[kk * v + w]) + gamma)
                                    / (f64::from(n_k[kk]) + gamma * vf);
                                *weight = doc_part * term_part;
                            }
                            let new = sample_categorical(&mut rng, &weights)
                                .expect("weights are positive by construction");
                            zs[n] = new;
                            row[new] += 1;
                            n_kw[new * v + w] += 1;
                            n_k[new] += 1;
                        }
                    }
                    chunk_start.map_or(0, |s| s.elapsed().as_micros() as u64)
                })
                .collect()
        });
        // Deterministic merge: the global term counts are a pure function
        // of the merged assignments.
        n_kw_flat.fill(0);
        n_k_flat.fill(0);
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = state.z[d][n];
                n_kw_flat[t * v + w] += 1;
                n_k_flat[t] += 1;
            }
        }
        if profile {
            chunk_us
        } else {
            Vec::new()
        }
    }

    /// Eq. (2) through the alias-table MH cycle over fixed 64-doc
    /// chunks: the per-word Vose tables over the start-of-sweep
    /// `n_kw + γ` columns are built once on the main thread and shared
    /// read-only across chunks, then each chunk cycles every token
    /// through a document proposal and a word proposal
    /// ([`crate::alias::mh_move_token`]) accepted against a chunk-local
    /// copy of the start-of-sweep counts (kept exact for its own moves,
    /// stale for other chunks'), with the recipe's observed topic `y_d`
    /// as the `M_dk` boost in the target only. Chunk `c` draws from RNG
    /// stream `2c` of the sweep seed and every token consumes exactly
    /// four `f64` draws, so the phase is a pure function of
    /// `(state, sweep seed)` regardless of worker-thread count; the
    /// global term counts are rebuilt from the merged assignments.
    fn sweep_z_alias(
        &self,
        pool: &rayon::ThreadPool,
        sweep_seed: u64,
        docs: &[ModelDoc],
        state: &mut State,
        profiling: bool,
    ) -> Option<KernelProfile> {
        let k = state.k;
        let v = state.v;
        let alpha = self.config.alpha;
        let gamma = self.config.gamma;
        let gamma_v = gamma * v as f64;
        let rebuild_start = profiling.then(Instant::now);
        let tables = AliasTables::build(state.counts.n_kw_raw(), k, v, gamma);
        let rebuild_us = rebuild_start.map_or(0, |s| s.elapsed().as_micros() as u64);
        let (n_dk, n_kw_flat, n_k_flat) = state.counts.dense_parts_mut();
        let n_kw_start = n_kw_flat.to_vec();
        let n_k_start = n_k_flat.to_vec();
        let y = &state.y;
        let z = &mut state.z;
        let tables_ref = &tables;
        let outs: Vec<(u64, AliasProfile)> = pool.install(|| {
            z.par_chunks_mut(PAR_CHUNK)
                .zip(n_dk.par_chunks_mut(PAR_CHUNK * k))
                .enumerate()
                .map(|(c, (z_chunk, n_dk_chunk))| {
                    let chunk_start = profiling.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let mut n_kw = n_kw_start.clone();
                    let mut n_k = n_k_start.clone();
                    let mut prof = AliasProfile::default();
                    let d0 = c * PAR_CHUNK;
                    for (dd, zs) in z_chunk.iter_mut().enumerate() {
                        let doc = &docs[d0 + dd];
                        let y_d = y[d0 + dd];
                        let row = &mut n_dk_chunk[dd * k..(dd + 1) * k];
                        for (n, &w) in doc.terms.iter().enumerate() {
                            let old = zs[n];
                            row[old] -= 1;
                            n_kw[old * v + w] -= 1;
                            n_k[old] -= 1;
                            let new = mh_move_token(
                                &mut rng,
                                tables_ref,
                                zs,
                                n,
                                w,
                                row,
                                &n_kw,
                                &n_k,
                                Some(y_d),
                                alpha,
                                gamma,
                                gamma_v,
                                profiling,
                                &mut prof,
                            );
                            zs[n] = new;
                            row[new] += 1;
                            n_kw[new * v + w] += 1;
                            n_k[new] += 1;
                        }
                    }
                    let us = chunk_start.map_or(0, |s| s.elapsed().as_micros() as u64);
                    (us, prof)
                })
                .collect()
        });
        // Deterministic merge: the global term counts are a pure function
        // of the merged assignments.
        n_kw_flat.fill(0);
        n_k_flat.fill(0);
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = state.z[d][n];
                n_kw_flat[t * v + w] += 1;
                n_k_flat[t] += 1;
            }
        }
        profiling.then(|| {
            let chunk_us: Vec<u64> = outs.iter().map(|o| o.0).collect();
            let mut merged = AliasProfile::default();
            for (_, p) in &outs {
                merged.merge(p);
            }
            // Each chunk clones the start-of-sweep term counts; the
            // shared alias tables are built once on the main thread.
            let per_chunk = 4 * (k * v + k);
            merged.into_kernel_profile(
                chunk_us,
                rebuild_us,
                tables.alloc_bytes() + (outs.len() * per_chunk) as u64,
            )
        })
    }

    /// Eq. (2) through the sparse three-bucket draw over fixed 64-doc
    /// chunks: chunk `c` copies a tracked chunk-local store off the
    /// global one ([`TopicCounts::chunk_local`]), runs the SparseLDA
    /// bucket walk with `y_d` as the `M_dk` boost using RNG stream `2c`
    /// of the sweep seed, and measures its own s-bucket mass drift.
    /// Chunk results fold back deterministically — doc rows and nonzero
    /// lists per chunk ([`TopicCounts::fold_chunk`]), term counts
    /// recounted from the merged assignments in document order
    /// ([`TopicCounts::install_term_counts`]) — so the phase is a pure
    /// function of `(state, sweep seed)` regardless of worker-thread
    /// count. Returns the largest per-chunk drift plus (when profiling)
    /// the sparse-parallel kernel profile.
    fn sweep_z_sparse_parallel(
        &self,
        pool: &rayon::ThreadPool,
        sweep_seed: u64,
        docs: &[ModelDoc],
        state: &mut State,
        profiling: bool,
    ) -> (f64, Option<KernelProfile>) {
        let cfg = &self.config;
        let k = state.k;
        let v = state.v;
        struct ChunkOut {
            counts: TopicCounts,
            drift: f64,
            profile: crate::sparse::SparseProfile,
            rebuild_us: u64,
            sample_us: u64,
        }
        let counts_ref = &state.counts;
        let y = &state.y;
        let z = &mut state.z;
        let outs: Vec<ChunkOut> = pool.install(|| {
            z.par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .map(|(c, z_chunk)| {
                    let rebuild_start = profiling.then(Instant::now);
                    let mut local = counts_ref.chunk_local(c * PAR_CHUNK, z_chunk.len());
                    let mut sampler = SparseTokenSampler::new(k, v, cfg.alpha, cfg.gamma);
                    sampler.set_profiling(profiling);
                    sampler.begin_sweep(&local);
                    let rebuild_us = rebuild_start.map_or(0, |s| s.elapsed().as_micros() as u64);
                    let sample_start = profiling.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let d0 = c * PAR_CHUNK;
                    for (dd, zs) in z_chunk.iter_mut().enumerate() {
                        let doc = &docs[d0 + dd];
                        sampler.begin_doc(&local, dd, Some(y[d0 + dd]));
                        for (n, &w) in doc.terms.iter().enumerate() {
                            let old = zs[n];
                            zs[n] = sampler.move_token(&mut rng, &mut local, w, old);
                        }
                    }
                    ChunkOut {
                        drift: sampler.s_mass_drift(&local),
                        profile: sampler.take_profile(),
                        counts: local,
                        rebuild_us,
                        sample_us: sample_start.map_or(0, |s| s.elapsed().as_micros() as u64),
                    }
                })
                .collect()
        });
        // Deterministic fold, in chunk order: doc-side state per chunk,
        // then the term-side recount from the merged assignments.
        let mut drift: f64 = 0.0;
        let mut merged_profile = crate::sparse::SparseProfile::default();
        let mut fold_us = Vec::with_capacity(outs.len());
        for (c, out) in outs.iter().enumerate() {
            let fold_start = profiling.then(Instant::now);
            state.counts.fold_chunk(c * PAR_CHUNK, &out.counts);
            fold_us.push(fold_start.map_or(0, |s| s.elapsed().as_micros() as u64));
            drift = drift.max(out.drift);
            merged_profile.merge(&out.profile);
        }
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = state.z[d][n];
                n_kw[t * v + w] += 1;
                n_k[t] += 1;
            }
        }
        state.counts.install_term_counts(n_kw, n_k);
        let profile = profiling.then(|| {
            let chunk_us: Vec<u64> = outs.iter().map(|o| o.sample_us).collect();
            let rebuild_us: Vec<u64> = outs.iter().map(|o| o.rebuild_us).collect();
            // Each chunk clones the term counts and topic totals, the
            // word nonzero lists (items + lengths), its own doc rows and
            // lists; the y phase adds log-weights and drawn labels.
            let per_chunk = 4 * (k * v + k)
                + 4 * (k * v + v)
                + 2 * 4 * (PAR_CHUNK * k)
                + 4 * PAR_CHUNK
                + 8 * k
                + 8 * PAR_CHUNK;
            merged_profile.into_sparse_parallel_profile(
                chunk_us,
                rebuild_us,
                fold_us,
                (outs.len() * per_chunk) as u64,
            )
        });
        (drift, profile)
    }

    /// Eq. (3) over fixed 64-doc chunks. At fixed Gaussian parameters the
    /// `y` conditionals have no cross-document coupling (each depends
    /// only on the doc's own token counts), so chunked scoring with RNG
    /// stream `2c + 1` is exact; the sufficient statistics are then
    /// replayed serially in document order. Returns how many recipes
    /// changed topic.
    fn sweep_y_parallel(
        &self,
        pool: &rayon::ThreadPool,
        sweep_seed: u64,
        docs: &[ModelDoc],
        state: &mut State,
    ) -> Result<usize> {
        let k = state.k;
        let alpha = self.config.alpha;
        let n_dk = state.counts.n_dk_raw();
        let gel_params = &state.gel_params;
        let emu_params = &state.emu_params;
        let new_y: Vec<Vec<usize>> = pool.install(|| {
            docs.par_chunks(PAR_CHUNK)
                .enumerate()
                .map(|(c, chunk)| -> Result<Vec<usize>> {
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64 + 1);
                    let mut log_weights = vec![0.0f64; k];
                    let d0 = c * PAR_CHUNK;
                    let mut out = Vec::with_capacity(chunk.len());
                    for (dd, doc) in chunk.iter().enumerate() {
                        for (kk, lw) in log_weights.iter_mut().enumerate() {
                            let doc_part = (f64::from(n_dk[(d0 + dd) * k + kk]) + alpha).ln();
                            let gel_part = gel_params[kk].log_pdf(&doc.gel)?;
                            let emu_part = emu_params[kk].log_pdf(&doc.emulsion)?;
                            *lw = doc_part + gel_part + emu_part;
                        }
                        out.push(
                            sample_categorical_log(&mut rng, &log_weights)
                                .expect("finite log-weights by construction"),
                        );
                    }
                    Ok(out)
                })
                .collect::<Result<Vec<Vec<usize>>>>()
        })?;
        // Deterministic merge: replay the moves in document order.
        let mut flips = 0usize;
        for (d, doc) in docs.iter().enumerate() {
            let new = new_y[d / PAR_CHUNK][d % PAR_CHUNK];
            let old = state.y[d];
            if new != old {
                flips += 1;
                state.gel_stats[old].remove(&doc.gel)?;
                state.emu_stats[old].remove(&doc.emulsion)?;
                state.gel_stats[new].add(&doc.gel)?;
                state.emu_stats[new].add(&doc.emulsion)?;
                state.y[d] = new;
            }
        }
        Ok(flips)
    }

    /// Eq. (3): resample every recipe's gel topic (both Gaussian factors —
    /// see the crate-level notation fix). Returns how many recipes
    /// changed topic — the per-sweep `y_d` acceptance signal.
    fn sweep_y<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        state: &mut State,
    ) -> Result<usize> {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let mut log_weights = vec![0.0f64; k];
        let mut flips = 0usize;
        for (d, doc) in docs.iter().enumerate() {
            let old = state.y[d];
            state.gel_stats[old].remove(&doc.gel)?;
            state.emu_stats[old].remove(&doc.emulsion)?;

            for (kk, lw) in log_weights.iter_mut().enumerate() {
                let doc_part = (f64::from(state.n_dk(d, kk)) + cfg.alpha).ln();
                let gel_part = state.gel_params[kk].log_pdf(&doc.gel)?;
                let emu_part = state.emu_params[kk].log_pdf(&doc.emulsion)?;
                *lw = doc_part + gel_part + emu_part;
            }
            let new = sample_categorical_log(rng, &log_weights)
                .expect("finite log-weights by construction");
            if new != old {
                flips += 1;
            }
            state.y[d] = new;
            state.gel_stats[new].add(&doc.gel)?;
            state.emu_stats[new].add(&doc.emulsion)?;
        }
        Ok(flips)
    }

    /// Eq. (4): resample the Gaussian topic parameters from their
    /// Normal-Wishart posteriors. A numerically non-positive-definite
    /// posterior scale (a degraded scatter matrix) is recovered with the
    /// shared ridge-jitter policy instead of failing the sweep; returns
    /// the total retries spent, 0 on a healthy sweep. The factorization
    /// happens before any randomness is drawn, so the healthy path
    /// consumes exactly the RNG stream the un-jittered sampler would.
    fn resample_params<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        state: &mut State,
        gel_prior: &NormalWishart,
        emu_prior: &NormalWishart,
    ) -> Result<usize> {
        let k = self.config.n_topics;
        let max = crate::JITTER_MAX_ATTEMPTS;
        let mut retries = 0usize;
        let mut gel_params = Vec::with_capacity(k);
        let mut emu_params = Vec::with_capacity(k);
        for kk in 0..k {
            let (gel, gj) = gel_prior
                .posterior(&state.gel_stats[kk])?
                .sample_recovering(rng, max)?;
            let (emu, ej) = emu_prior
                .posterior(&state.emu_stats[kk])?
                .sample_recovering(rng, max)?;
            retries += gj.attempts + ej.attempts;
            gel_params.push(gel);
            emu_params.push(emu);
        }
        state.gel_params = gel_params;
        state.emu_params = emu_params;
        Ok(retries)
    }

    /// Conditional log-likelihood of the data given the current state —
    /// the convergence trace.
    fn conditional_ll(&self, docs: &[ModelDoc], state: &State) -> f64 {
        let cfg = &self.config;
        let v = cfg.vocab_size as f64;
        let mut ll = 0.0;
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let kk = state.z[d][n];
                ll += ((f64::from(state.n_kw(kk, w)) + cfg.gamma)
                    / (f64::from(state.n_k(kk)) + cfg.gamma * v))
                    .ln();
            }
            let y = state.y[d];
            ll += state.gel_params[y]
                .log_pdf(&doc.gel)
                .expect("dims validated");
            ll += state.emu_params[y]
                .log_pdf(&doc.emulsion)
                .expect("dims validated");
        }
        ll
    }

    /// Eq. (5) estimators accumulated across post-burn-in sweeps.
    fn accumulate_estimates(
        &self,
        docs: &[ModelDoc],
        state: &State,
        phi_acc: &mut [f64],
        theta_acc: &mut [f64],
    ) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        for kk in 0..k {
            let denom = f64::from(state.n_k(kk)) + cfg.gamma * v as f64;
            for w in 0..v {
                phi_acc[kk * v + w] += (f64::from(state.n_kw(kk, w)) + cfg.gamma) / denom;
            }
        }
        let alpha_sum = cfg.alpha * k as f64;
        for (d, doc) in docs.iter().enumerate() {
            // M_d = 1: every recipe carries exactly one gel vector.
            let denom = doc.terms.len() as f64 + 1.0 + alpha_sum;
            for kk in 0..k {
                let m_dk = u32::from(state.y[d] == kk);
                theta_acc[d * k + kk] += (f64::from(state.n_dk(d, kk) + m_dk) + cfg.alpha) / denom;
            }
        }
    }
}

impl FittedJointModel {
    /// Number of topics.
    #[must_use]
    pub fn n_topics(&self) -> usize {
        self.config.n_topics
    }

    /// Number of documents.
    #[must_use]
    pub fn n_docs(&self) -> usize {
        self.theta.len()
    }

    /// Expected gel Gaussian of topic `k` (Rao-Blackwellized point
    /// estimate `(E[μ], E[Λ])`).
    ///
    /// # Errors
    /// Numerical failure factorizing the posterior scale (should not occur
    /// for fitted models).
    pub fn gel_gaussian(&self, k: usize) -> Result<GaussianPrecision> {
        Ok(self.gel_posteriors[k].expected_gaussian()?)
    }

    /// Expected emulsion Gaussian of topic `k`.
    ///
    /// # Errors
    /// As [`Self::gel_gaussian`].
    pub fn emulsion_gaussian(&self, k: usize) -> Result<GaussianPrecision> {
        Ok(self.emulsion_posteriors[k].expected_gaussian()?)
    }

    /// The dominant topic of document `d` (argmax of `θ_d`), the paper's
    /// rule for assigning recipes to topics.
    #[must_use]
    pub fn dominant_topic(&self, d: usize) -> usize {
        let row = &self.theta[d];
        let mut best = 0;
        for (k, &p) in row.iter().enumerate() {
            if p > row[best] {
                best = k;
            }
        }
        best
    }

    /// Documents per topic by dominant-topic assignment (the "# Recipes"
    /// column of Table II(a)).
    #[must_use]
    pub fn topic_doc_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_topics()];
        for d in 0..self.n_docs() {
            counts[self.dominant_topic(d)] += 1;
        }
        counts
    }

    /// Top `n` terms of topic `k` as `(term index, probability)`,
    /// descending.
    #[must_use]
    pub fn top_terms(&self, k: usize, n: usize) -> Vec<(usize, f64)> {
        let mut terms: Vec<(usize, f64)> = self.phi[k].iter().copied().enumerate().collect();
        terms.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        terms.truncate(n);
        terms
    }
}

#[cfg(test)]
mod tests {
    // Everything drives the unified `fit_with` entry point; kernel
    // coverage (thread-count determinism, parallel resume) lives in
    // `tests/parallel.rs`.
    use super::*;
    use crate::config::JointConfig;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(31)
    }

    /// Default-options fit, the shape most tests want.
    fn fit(model: &JointTopicModel, docs: &[ModelDoc]) -> Result<FittedJointModel> {
        model.fit_with(&mut rng(), docs, FitOptions::new())
    }

    /// Resume from a snapshot (the RNG is restored from the snapshot, so
    /// the seed passed here is irrelevant).
    fn resume(
        model: &JointTopicModel,
        docs: &[ModelDoc],
        snapshot: JointSnapshot,
        sink: &mut dyn CheckpointSink,
    ) -> Result<FittedJointModel> {
        model.fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            docs,
            FitOptions::new()
                .checkpoint(sink)
                .resume(SamplerSnapshot::Joint(snapshot)),
        )
    }

    /// Two well-separated synthetic clusters:
    /// cluster A uses terms {0,1}, gel near (2,9,9); cluster B uses terms
    /// {2,3}, gel near (9,4,9).
    fn two_cluster_docs(n_per: usize) -> Vec<ModelDoc> {
        let mut docs = Vec::new();
        let mut r = ChaCha8Rng::seed_from_u64(77);
        for i in 0..(2 * n_per) {
            let cluster = i % 2;
            let terms: Vec<usize> = (0..4).map(|j| 2 * cluster + (j % 2)).collect();
            let jitter = |r: &mut ChaCha8Rng| r.gen_range(-0.2..0.2);
            let gel = if cluster == 0 {
                Vector::new(vec![2.0 + jitter(&mut r), 9.0 + jitter(&mut r), 9.0])
            } else {
                Vector::new(vec![9.0 + jitter(&mut r), 4.0 + jitter(&mut r), 9.0])
            };
            let emulsion = if cluster == 0 {
                Vector::new(vec![1.0, 9.0, 9.0, 9.0, 0.5 + jitter(&mut r), 9.0])
            } else {
                Vector::new(vec![3.0, 9.0, 9.0, 1.0 + jitter(&mut r), 9.0, 9.0])
            };
            docs.push(ModelDoc::new(i as u64, terms, gel, emulsion));
        }
        docs
    }

    fn quick_model(k: usize) -> JointTopicModel {
        JointTopicModel::new(JointConfig::quick(k, 4)).unwrap()
    }

    #[test]
    fn fit_recovers_two_clusters() {
        let docs = two_cluster_docs(40);
        let fit = fit(&quick_model(2), &docs).unwrap();
        // Every even doc shares a topic; every odd doc shares the other.
        let t0 = fit.dominant_topic(0);
        let t1 = fit.dominant_topic(1);
        assert_ne!(t0, t1, "clusters must separate");
        let mut correct = 0;
        for d in 0..docs.len() {
            let expect = if d % 2 == 0 { t0 } else { t1 };
            if fit.dominant_topic(d) == expect {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / docs.len() as f64 > 0.95,
            "recovered {correct}/{}",
            docs.len()
        );
    }

    #[test]
    fn topic_terms_separate() {
        let docs = two_cluster_docs(40);
        let fit = fit(&quick_model(2), &docs).unwrap();
        let t0 = fit.dominant_topic(0); // cluster A topic
        let top: Vec<usize> = fit.top_terms(t0, 2).iter().map(|&(w, _)| w).collect();
        assert!(
            top.contains(&0) && top.contains(&1),
            "topic for cluster A should rank terms 0,1 first, got {top:?}"
        );
    }

    #[test]
    fn gel_means_land_on_cluster_centers() {
        let docs = two_cluster_docs(40);
        let fit = fit(&quick_model(2), &docs).unwrap();
        let t0 = fit.dominant_topic(0);
        let g = fit.gel_gaussian(t0).unwrap();
        assert!(
            (g.mean()[0] - 2.0).abs() < 0.5,
            "cluster A gel mean {:?}",
            g.mean().as_slice()
        );
        let t1 = fit.dominant_topic(1);
        let g1 = fit.gel_gaussian(t1).unwrap();
        assert!((g1.mean()[0] - 9.0).abs() < 0.5);
    }

    #[test]
    fn ll_trace_improves_from_start() {
        let docs = two_cluster_docs(30);
        let fit = fit(&quick_model(2), &docs).unwrap();
        let first = fit.ll_trace[0];
        let last = *fit.ll_trace.last().unwrap();
        assert!(
            last > first,
            "log-likelihood should improve: {first} -> {last}"
        );
        assert_eq!(fit.ll_trace.len(), fit.config.sweeps);
    }

    #[test]
    fn phi_and_theta_are_distributions() {
        let docs = two_cluster_docs(20);
        let fit = fit(&quick_model(3), &docs).unwrap();
        for row in &fit.phi {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "phi row sums to {s}");
            assert!(row.iter().all(|&p| p > 0.0));
        }
        for row in &fit.theta {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "theta row sums to {s}");
        }
    }

    #[test]
    fn topic_doc_counts_total() {
        let docs = two_cluster_docs(25);
        let fit = fit(&quick_model(4), &docs).unwrap();
        let counts = fit.topic_doc_counts();
        assert_eq!(counts.iter().sum::<usize>(), docs.len());
    }

    #[test]
    fn docs_without_terms_are_clustered_by_gel_alone() {
        let mut docs = two_cluster_docs(30);
        for d in &mut docs {
            d.terms.clear();
        }
        let fit = fit(&quick_model(2), &docs).unwrap();
        // y assignments should still split the clusters.
        let y0 = fit.y[0];
        let agree = (0..docs.len())
            .filter(|&d| (fit.y[d] == y0) == (d % 2 == 0))
            .count();
        assert!(
            agree as f64 / docs.len() as f64 > 0.9,
            "gel-only clustering recovered {agree}/{}",
            docs.len()
        );
    }

    #[test]
    fn fit_multi_chain_picks_a_chain() {
        let docs = two_cluster_docs(15);
        let model = JointTopicModel::new(JointConfig {
            sweeps: 20,
            burn_in: 10,
            ..JointConfig::quick(2, 4)
        })
        .unwrap();
        let fit = model.fit_multi_chain(1234, &docs, 3).unwrap();
        assert_eq!(fit.n_docs(), docs.len());
        assert!(model.fit_multi_chain(1, &docs, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = two_cluster_docs(10);
        let model = quick_model(2);
        let a = fit(&model, &docs).unwrap();
        let b = fit(&model, &docs).unwrap();
        assert_eq!(a.y, b.y);
        assert_eq!(a.ll_trace, b.ll_trace);
    }

    #[test]
    fn observer_sees_every_sweep_without_perturbing_sampling() {
        let docs = two_cluster_docs(10);
        let model = quick_model(2);
        let plain = fit(&model, &docs).unwrap();
        let mut observer = rheotex_obs::VecObserver::default();
        let observed = model
            .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
            .unwrap();
        // Observation must not touch the RNG stream.
        assert_eq!(plain.y, observed.y);
        assert_eq!(plain.ll_trace, observed.ll_trace);
        // Exactly one record per sweep, in order, consistent with the trace.
        assert_eq!(observer.sweeps.len(), observed.config.sweeps);
        for (i, s) in observer.sweeps.iter().enumerate() {
            assert_eq!(s.sweep, i);
            assert_eq!(s.engine, "joint");
            assert_eq!(s.total_sweeps, observed.config.sweeps);
            assert_eq!(s.log_likelihood, observed.ll_trace[i]);
            assert!(s.min_occupancy <= s.max_occupancy);
            assert!(s.max_occupancy <= docs.len());
            assert_eq!(s.nw_draws, 2 * observed.config.n_topics);
            assert!(s.topic_entropy >= 0.0);
            assert!(s.label_flips <= docs.len());
            // Serial kernel: all four phases timed, no kernel profile.
            let phases: Vec<&str> = s.phase_us.iter().map(|&(n, _)| n).collect();
            assert_eq!(phases, ["z", "y", "params", "ll"]);
            assert!(s.profile.is_none());
        }
    }

    #[test]
    fn checkpointed_fit_matches_plain_fit() {
        let docs = two_cluster_docs(10);
        let model = quick_model(2);
        let plain = fit(&model, &docs).unwrap();
        let mut sink = crate::MemoryCheckpointSink::new(7);
        let checkpointed = model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap();
        assert_eq!(plain.y, checkpointed.y);
        assert_eq!(plain.ll_trace, checkpointed.ll_trace);
        assert_eq!(plain.phi, checkpointed.phi);
        assert_eq!(plain.theta, checkpointed.theta);
        // quick() runs 60 sweeps → saves after sweeps 6, 13, …, 55.
        assert_eq!(sink.snapshots.len(), 60 / 7);
        let crate::SamplerSnapshot::Joint(last) = sink.latest().unwrap() else {
            panic!("joint fit must write joint snapshots");
        };
        assert_eq!(last.next_sweep, 56);
        assert_eq!(last.ll_trace, plain.ll_trace[..56]);
    }

    #[test]
    fn killed_fit_resumes_bit_identically() {
        let docs = two_cluster_docs(10);
        let model = quick_model(2);
        let uninterrupted = fit(&model, &docs).unwrap();

        // Crash injection: the second checkpoint write fails, killing the
        // fit at sweep 9 with the sweep-5 snapshot safely persisted.
        let mut sink = crate::MemoryCheckpointSink::new(5);
        sink.fail_after = Some(1);
        let err = model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap_err();
        assert!(matches!(err, ModelError::Checkpoint { .. }));
        let crate::SamplerSnapshot::Joint(snap) = sink.latest().unwrap().clone() else {
            panic!("joint fit must write joint snapshots");
        };
        assert_eq!(snap.next_sweep, 5);

        let mut resume_sink = crate::MemoryCheckpointSink::new(5);
        let resumed = resume(&model, &docs, snap, &mut resume_sink).unwrap();
        assert_eq!(resumed.y, uninterrupted.y);
        assert_eq!(resumed.ll_trace, uninterrupted.ll_trace);
        assert_eq!(resumed.phi, uninterrupted.phi);
        assert_eq!(resumed.theta, uninterrupted.theta);
        // The resumed run keeps checkpointing from where it left off.
        assert_eq!(resume_sink.snapshots.len(), 11);
    }

    #[test]
    fn resume_from_final_snapshot_only_finalizes() {
        let docs = two_cluster_docs(8);
        let model = quick_model(2);
        let plain = fit(&model, &docs).unwrap();
        // Cadence 60 → exactly one snapshot, at next_sweep == sweeps.
        let mut sink = crate::MemoryCheckpointSink::new(60);
        model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap();
        let crate::SamplerSnapshot::Joint(snap) = sink.latest().unwrap().clone() else {
            panic!("joint fit must write joint snapshots");
        };
        assert_eq!(snap.next_sweep, 60);
        let resumed = resume(&model, &docs, snap, &mut crate::NoCheckpoint).unwrap();
        assert_eq!(resumed.y, plain.y);
        assert_eq!(resumed.ll_trace, plain.ll_trace);
        assert_eq!(resumed.phi, plain.phi);
    }

    #[test]
    fn resume_survives_serde_roundtrip() {
        let docs = two_cluster_docs(8);
        let model = quick_model(2);
        let plain = fit(&model, &docs).unwrap();
        let mut sink = crate::MemoryCheckpointSink::new(20);
        model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap();
        let json = serde_json::to_string(&sink.snapshots[0]).unwrap();
        let crate::SamplerSnapshot::Joint(snap) = serde_json::from_str(&json).unwrap() else {
            panic!("snapshot kind survives serde");
        };
        let resumed = resume(&model, &docs, snap, &mut crate::NoCheckpoint).unwrap();
        assert_eq!(resumed.y, plain.y);
        assert_eq!(resumed.ll_trace, plain.ll_trace);
    }

    #[test]
    fn resume_rejects_inconsistent_snapshots() {
        let docs = two_cluster_docs(8);
        let model = quick_model(2);
        let mut sink = crate::MemoryCheckpointSink::new(10);
        model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap();
        let crate::SamplerSnapshot::Joint(good) = sink.snapshots[0].clone() else {
            panic!("joint fit must write joint snapshots");
        };
        let reject = |snap: crate::JointSnapshot| {
            let err = resume(&model, &docs, snap, &mut crate::NoCheckpoint).unwrap_err();
            assert!(matches!(err, ModelError::ResumeMismatch { .. }), "{err}");
        };

        let mut other_config = good.clone();
        other_config.config.alpha += 1.0;
        reject(other_config);

        let mut other_corpus = good.clone();
        other_corpus.doc_fingerprint ^= 1;
        reject(other_corpus);

        let mut bad_counts = good.clone();
        bad_counts.n_k[0] += 1;
        reject(bad_counts);

        let mut bad_topic = good.clone();
        bad_topic.y[0] = 99;
        reject(bad_topic);

        let mut too_far = good.clone();
        too_far.next_sweep = 1000;
        reject(too_far);

        let mut bad_trace = good.clone();
        bad_trace.ll_trace.pop();
        reject(bad_trace);

        let mut bad_rng = good;
        bad_rng.rng.seed.truncate(4);
        reject(bad_rng);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let model = quick_model(2);
        assert!(fit(&model, &[]).is_err());
        // OOV term.
        let bad = vec![ModelDoc::new(
            0,
            vec![99],
            Vector::zeros(3),
            Vector::zeros(6),
        )];
        assert!(fit(&model, &bad).is_err());
    }

    #[test]
    fn single_topic_degenerate_case() {
        let docs = two_cluster_docs(10);
        let fit = fit(&quick_model(1), &docs).unwrap();
        assert!(fit.theta.iter().all(|row| (row[0] - 1.0).abs() < 1e-9));
        assert_eq!(fit.topic_doc_counts()[0], docs.len());
    }
}

//! Fully-collapsed variant of the joint sampler (extension, ablation E8).
//!
//! Instead of explicitly resampling the Gaussian topic parameters each
//! sweep (the paper's Eq. 4), the Normal-Wishart components are integrated
//! out: the `y_d` conditional scores each recipe's concentration vectors
//! under the **Student-t posterior predictive** of the topic's other
//! members,
//!
//! `p(y_d = k | …) ∝ (N_dk + α) · t(g_d | NW-post(-d)) · t(e_d | NW-post(-d))`.
//!
//! Collapsing removes the sampling noise of the explicit parameters at a
//! higher per-step cost: each candidate topic needs a freshly factored
//! Student-t predictive whenever its membership changed. A per-topic
//! [`PredictiveCache`] (one per channel) amortizes that — a topic's
//! predictive is rebuilt only after a document moves into or out of it,
//! which leaves the sampler's output bit-identical while cutting the
//! Cholesky count per sweep from `O(D·K)` to roughly `O(D + K)`. The
//! ablation harness compares the two engines on the same data.
//!
//! Like the other engines the collapsed sampler is driven through
//! [`CollapsedJointModel::fit_with`]; it accepts the serial, sparse, and
//! sparse-parallel token kernels (the sparse bucket sweep composes with
//! the cached Student-t `y` sweep — the Gaussian factors never enter
//! Eq. 2; under sparse-parallel only the token phase is chunked and the
//! `y` sweep stays serial) but has no dense parallel sweep and no
//! snapshot format, so the dense parallel kernel, checkpoint sinks, and
//! resume snapshots are rejected up front.

use crate::alias::{mh_move_token, AliasProfile, AliasTables};
use crate::config::JointConfig;
use crate::counts::TopicCounts;
use crate::data::{validate_docs, ModelDoc};
use crate::error::ModelError;
use crate::fit::{FitOptions, GibbsKernel, PAR_CHUNK};
use crate::joint::FittedJointModel;
use crate::sparse::SparseTokenSampler;
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use rheotex_linalg::dist::{
    sample_categorical, sample_categorical_log, GaussianStats, MultivariateT, NormalWishart,
    PredictiveCache,
};
use rheotex_linalg::Vector;
use rheotex_obs::{KernelProfile, NullObserver, PhaseTimer, SweepObserver, SweepStats};
use std::time::Instant;

/// The fully-collapsed joint topic model.
#[derive(Debug, Clone)]
pub struct CollapsedJointModel {
    config: JointConfig,
}

impl CollapsedJointModel {
    /// Creates a model from a validated configuration.
    ///
    /// # Errors
    /// [`crate::ModelError::InvalidConfig`] from validation.
    pub fn new(config: JointConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Fits the model with the cross-cutting concerns selected through a
    /// [`FitOptions`] bundle. `FitOptions::new()` reproduces the
    /// historical plain `fit` bit for bit.
    ///
    /// The collapsed engine supports the serial, sparse,
    /// sparse-parallel, and alias token kernels ([`GibbsKernel`]); the
    /// sparse bucket sweep and the alias-table MH cycle compose with
    /// the cached Student-t `y` sweep unchanged because the Gaussian
    /// factors never enter the token conditional, and under
    /// [`GibbsKernel::SparseParallel`] or [`GibbsKernel::Alias`] only
    /// the token phase is chunked (identical across thread counts)
    /// while the `y` sweep stays serial. [`FitOptions::predictive_cache`]
    /// switches the per-topic predictive memoization (bit-invisible
    /// either way). There is no dense parallel sweep and no snapshot
    /// format.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] when the options ask for the dense
    /// parallel kernel, a checkpoint sink, or a resume
    /// snapshot — none of which this engine supports;
    /// [`ModelError::InvalidData`] for malformed docs;
    /// [`ModelError::Numerical`] if a posterior update degenerates;
    /// [`ModelError::Health`] when a health policy is set and a sentinel
    /// trips — this engine supports detection only (no snapshots, so no
    /// rollback), and any trip is terminal.
    pub fn fit_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        opts: FitOptions<'_>,
    ) -> Result<FittedJointModel> {
        let cfg = &self.config;
        let (kernel, threads) = opts.plan()?;
        if kernel == GibbsKernel::Parallel {
            return Err(ModelError::InvalidConfig {
                what: "the collapsed engine has no dense parallel sweep; \
                       use the serial or sparse kernel with threads == 0, \
                       or kernel=sparse-parallel for a threaded token sweep"
                    .into(),
            });
        }
        let pool = crate::fit::build_pool(threads)?;
        if opts.sink.is_some() {
            return Err(ModelError::InvalidConfig {
                what: "the collapsed engine does not support checkpointing".into(),
            });
        }
        if opts.resume.is_some() {
            return Err(ModelError::InvalidConfig {
                what: "the collapsed engine does not support resuming from a snapshot".into(),
            });
        }
        let mut null_obs = NullObserver;
        let observer: &mut dyn SweepObserver = match opts.observer {
            Some(o) => o,
            None => &mut null_obs,
        };
        validate_docs(docs, cfg.vocab_size, cfg.gel_dim, cfg.emulsion_dim)?;

        // Empirical means for the vague priors.
        let mut gel_mean = Vector::zeros(cfg.gel_dim);
        let mut emu_mean = Vector::zeros(cfg.emulsion_dim);
        let inv = 1.0 / docs.len() as f64;
        for d in docs {
            gel_mean.axpy(inv, &d.gel)?;
            emu_mean.axpy(inv, &d.emulsion)?;
        }
        let gel_prior = cfg.gel_prior.materialize(cfg.gel_dim, &gel_mean)?;
        let emu_prior = cfg
            .emulsion_prior
            .materialize(cfg.emulsion_dim, &emu_mean)?;

        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let d_count = docs.len();
        let gamma_v = cfg.gamma * v as f64;

        // Init.
        let mut z: Vec<Vec<usize>> = Vec::with_capacity(d_count);
        let mut y: Vec<usize> = Vec::with_capacity(d_count);
        let mut counts = TopicCounts::new(d_count, k, v);
        let mut gel_stats: Vec<GaussianStats> =
            (0..k).map(|_| GaussianStats::new(cfg.gel_dim)).collect();
        let mut emu_stats: Vec<GaussianStats> = (0..k)
            .map(|_| GaussianStats::new(cfg.emulsion_dim))
            .collect();
        // Seeded init (see crate::init): collapsed samplers need to start
        // separated or the count prior can absorb everything into one
        // component.
        let features: Vec<Vector> = docs
            .iter()
            .map(|d| crate::init::concat_features(&d.gel, &d.emulsion))
            .collect();
        let seeds = crate::init::kmeanspp_assignments(rng, &features, k);
        for (d, doc) in docs.iter().enumerate() {
            let t = seeds[d];
            let zs: Vec<usize> = doc
                .terms
                .iter()
                .map(|&w| {
                    counts.inc(d, w, t);
                    t
                })
                .collect();
            z.push(zs);
            y.push(t);
            gel_stats[t].add(&doc.gel)?;
            emu_stats[t].add(&doc.emulsion)?;
        }

        let mut sparse = match kernel {
            GibbsKernel::Sparse => {
                counts.enable_tracking();
                Some(SparseTokenSampler::new(k, v, cfg.alpha, cfg.gamma))
            }
            GibbsKernel::SparseParallel => {
                // Chunk-local stores are cloned off the tracked global
                // one each sweep (chunk_local is pure memcpy).
                counts.enable_tracking();
                None
            }
            _ => None,
        };

        let mut phi_acc = vec![0.0f64; k * v];
        let mut theta_acc = vec![0.0f64; d_count * k];
        let mut n_samples = 0usize;
        let mut ll_trace = Vec::with_capacity(cfg.sweeps);
        let mut weights = vec![0.0f64; k];
        let mut log_weights = vec![0.0f64; k];
        // A topic's Student-t predictives only change when a document
        // moves into or out of it, so both channels memoize per topic
        // (a hit returns the exact object a rebuild would produce —
        // caching is bit-invisible). `predictive_cache(false)` swaps in
        // the pass-through variant for benchmarking the uncached cost.
        let (mut gel_cache, mut emu_cache) = if opts.predictive_cache {
            (PredictiveCache::new(k), PredictiveCache::new(k))
        } else {
            (PredictiveCache::disabled(k), PredictiveCache::disabled(k))
        };
        // Detection-only supervision: this engine keeps no recovery
        // snapshots (it is generic over the RNG, whose position cannot
        // be captured), so a tripped sentinel always takes the monitor's
        // abort path.
        let mut monitor = opts
            .health
            .map(|p| crate::health::HealthMonitor::new(p, "collapsed"));
        let doc_lens: Vec<usize> = if monitor.is_some() {
            docs.iter().map(|d| d.terms.len()).collect()
        } else {
            Vec::new()
        };

        for sweep in 0..cfg.sweeps {
            let sweep_start = observer.enabled().then(Instant::now);
            let mut timer = PhaseTimer::new(observer.enabled());
            let lookups_before = gel_cache.lookups() + emu_cache.lookups();
            let hits_before = gel_cache.hits() + emu_cache.hits();

            // z sweep (identical conditional to the semi-collapsed model:
            // Gaussians do not enter Eq. 2), through the selected kernel.
            let z_start = timer.enabled().then(Instant::now);
            // `(largest per-chunk s-mass drift, profile)` of a
            // sparse-parallel token phase.
            let mut chunk_outcome: Option<(f64, Option<KernelProfile>)> = None;
            // Profile of an alias token phase.
            let mut alias_profile: Option<KernelProfile> = None;
            if kernel == GibbsKernel::SparseParallel {
                let pool = pool
                    .as_ref()
                    .expect("sparse-parallel kernel runs on a pool");
                let sweep_seed: u64 = rng.gen();
                chunk_outcome = Some(self.sweep_z_sparse_parallel(
                    pool,
                    sweep_seed,
                    docs,
                    &mut z,
                    &y,
                    &mut counts,
                    observer.enabled(),
                ));
            } else if kernel == GibbsKernel::Alias {
                let pool = pool.as_ref().expect("alias kernel runs on a pool");
                let sweep_seed: u64 = rng.gen();
                alias_profile = self.sweep_z_alias(
                    pool,
                    sweep_seed,
                    docs,
                    &mut z,
                    &y,
                    &mut counts,
                    observer.enabled(),
                );
            } else {
                match sparse.as_mut() {
                    Some(sampler) => {
                        sampler.set_profiling(observer.enabled());
                        sampler.begin_sweep(&counts);
                        for (d, doc) in docs.iter().enumerate() {
                            sampler.begin_doc(&counts, d, Some(y[d]));
                            for (n, &w) in doc.terms.iter().enumerate() {
                                let old = z[d][n];
                                z[d][n] = sampler.move_token(rng, &mut counts, w, old);
                            }
                        }
                    }
                    None => {
                        for (d, doc) in docs.iter().enumerate() {
                            for (n, &w) in doc.terms.iter().enumerate() {
                                let old = z[d][n];
                                counts.dec(d, w, old);
                                for (kk, weight) in weights.iter_mut().enumerate() {
                                    let m_dk = u32::from(y[d] == kk);
                                    *weight = (f64::from(counts.dk(d, kk) + m_dk) + cfg.alpha)
                                        * (f64::from(counts.kw(kk, w)) + cfg.gamma)
                                        / (f64::from(counts.topic_total(kk)) + gamma_v);
                                }
                                let new =
                                    sample_categorical(rng, &weights).expect("positive weights");
                                z[d][n] = new;
                                counts.inc(d, w, new);
                            }
                        }
                    }
                }
            }
            if let Some(s) = z_start {
                timer.record("z", s.elapsed().as_micros() as u64);
            }
            let profile = match sparse.as_mut() {
                Some(sampler) if observer.enabled() => {
                    Some(sampler.take_profile().into_kernel_profile())
                }
                _ => chunk_outcome
                    .as_mut()
                    .and_then(|o| o.1.take())
                    .or_else(|| alias_profile.take()),
            };

            // y sweep with Student-t predictives (collapsed Gaussians).
            let y_start = timer.enabled().then(Instant::now);
            let mut label_flips = 0usize;
            let mut sweep_ll = 0.0;
            for (d, doc) in docs.iter().enumerate() {
                let old = y[d];
                gel_stats[old].remove(&doc.gel)?;
                emu_stats[old].remove(&doc.emulsion)?;
                gel_cache.invalidate(old);
                emu_cache.invalidate(old);
                for (kk, lw) in log_weights.iter_mut().enumerate() {
                    let doc_part = (f64::from(counts.dk(d, kk)) + cfg.alpha).ln();
                    let gel_stats_kk = &gel_stats[kk];
                    let gel_pred =
                        gel_cache.get_or_try_build(kk, || -> Result<MultivariateT> {
                            Ok(gel_prior.posterior(gel_stats_kk)?.posterior_predictive()?)
                        })?;
                    let gel_part = gel_pred.log_pdf(&doc.gel)?;
                    let emu_stats_kk = &emu_stats[kk];
                    let emu_pred =
                        emu_cache.get_or_try_build(kk, || -> Result<MultivariateT> {
                            Ok(emu_prior.posterior(emu_stats_kk)?.posterior_predictive()?)
                        })?;
                    *lw = doc_part + gel_part + emu_pred.log_pdf(&doc.emulsion)?;
                }
                let new = sample_categorical_log(rng, &log_weights).expect("finite log-weights");
                sweep_ll += log_weights[new];
                if new != old {
                    label_flips += 1;
                }
                y[d] = new;
                gel_stats[new].add(&doc.gel)?;
                emu_stats[new].add(&doc.emulsion)?;
                gel_cache.invalidate(new);
                emu_cache.invalidate(new);
            }
            if let Some(s) = y_start {
                timer.record("y", s.elapsed().as_micros() as u64);
            }
            // Token part of the trace. The per-topic denominator is fixed
            // for the whole loop (no counts move during the trace), so it
            // is computed once per topic instead of once per token.
            let ll_start = timer.enabled().then(Instant::now);
            let den: Vec<f64> = (0..k)
                .map(|kk| f64::from(counts.topic_total(kk)) + gamma_v)
                .collect();
            for (d, doc) in docs.iter().enumerate() {
                for (n, &w) in doc.terms.iter().enumerate() {
                    let kk = z[d][n];
                    sweep_ll += ((f64::from(counts.kw(kk, w)) + cfg.gamma) / den[kk]).ln();
                }
            }
            if let Some(s) = ll_start {
                timer.record("ll", s.elapsed().as_micros() as u64);
            }
            ll_trace.push(sweep_ll);

            if let Some(mon) = monitor.as_mut() {
                let drift = sparse
                    .as_ref()
                    .map(|s| s.s_mass_drift(&counts))
                    .or_else(|| chunk_outcome.as_ref().map(|o| o.0));
                if let Some(detail) =
                    mon.inspect_counts(sweep, sweep_ll, &counts, &doc_lens, drift, observer)
                {
                    let _ = mon.tripped(sweep, kernel, detail, observer)?;
                    unreachable!("collapsed supervisor has no recovery point");
                }
            }

            if let Some(started) = sweep_start {
                let mut occupancy = vec![0usize; k];
                for &yy in &y {
                    occupancy[yy] += 1;
                }
                let (topic_entropy, min_occupancy, max_occupancy) =
                    SweepStats::occupancy_summary(&occupancy);
                observer.on_sweep(&SweepStats {
                    engine: "collapsed",
                    sweep,
                    total_sweeps: cfg.sweeps,
                    elapsed_us: started.elapsed().as_micros() as u64,
                    log_likelihood: sweep_ll,
                    topic_entropy,
                    min_occupancy,
                    max_occupancy,
                    nw_draws: 0,
                    jitter_retries: 0,
                    cache_lookups: (gel_cache.lookups() + emu_cache.lookups() - lookups_before)
                        as usize,
                    cache_hits: (gel_cache.hits() + emu_cache.hits() - hits_before) as usize,
                    label_flips,
                    phase_us: timer.take(),
                    profile,
                });
            }

            if sweep >= cfg.burn_in {
                for kk in 0..k {
                    let denom = f64::from(counts.topic_total(kk)) + gamma_v;
                    for w in 0..v {
                        phi_acc[kk * v + w] += (f64::from(counts.kw(kk, w)) + cfg.gamma) / denom;
                    }
                }
                let alpha_sum = cfg.alpha * k as f64;
                for (d, doc) in docs.iter().enumerate() {
                    let denom = doc.terms.len() as f64 + 1.0 + alpha_sum;
                    for kk in 0..k {
                        let m_dk = u32::from(y[d] == kk);
                        theta_acc[d * k + kk] +=
                            (f64::from(counts.dk(d, kk) + m_dk) + cfg.alpha) / denom;
                    }
                }
                n_samples += 1;
            }
        }

        let norm = 1.0 / n_samples.max(1) as f64;
        let phi = (0..k)
            .map(|kk| (0..v).map(|w| phi_acc[kk * v + w] * norm).collect())
            .collect();
        let theta = (0..d_count)
            .map(|d| (0..k).map(|kk| theta_acc[d * k + kk] * norm).collect())
            .collect();
        let gel_posteriors = gel_stats
            .iter()
            .map(|s| gel_prior.posterior(s))
            .collect::<std::result::Result<Vec<NormalWishart>, _>>()?;
        let emulsion_posteriors = emu_stats
            .iter()
            .map(|s| emu_prior.posterior(s))
            .collect::<std::result::Result<Vec<NormalWishart>, _>>()?;

        Ok(FittedJointModel {
            config: cfg.clone(),
            phi,
            theta,
            gel_posteriors,
            emulsion_posteriors,
            y,
            doc_ids: docs.iter().map(|d| d.id).collect(),
            ll_trace,
        })
    }

    /// The chunked sparse token phase (Eq. 2): chunk `c` copies a
    /// tracked chunk-local store off the global one
    /// ([`TopicCounts::chunk_local`]), runs the SparseLDA bucket walk
    /// with `y_d` as the `M_dk` boost using RNG stream `2c` of the sweep
    /// seed, and measures its own s-bucket mass drift. Chunk results
    /// fold back deterministically in chunk order and the term counts
    /// are recounted from the merged assignments, so the phase is
    /// identical across worker-thread counts. Returns the largest
    /// per-chunk drift plus (when profiling) the sparse-parallel kernel
    /// profile.
    #[allow(clippy::too_many_arguments)]
    fn sweep_z_sparse_parallel(
        &self,
        pool: &rayon::ThreadPool,
        sweep_seed: u64,
        docs: &[ModelDoc],
        z: &mut [Vec<usize>],
        y: &[usize],
        counts: &mut TopicCounts,
        profiling: bool,
    ) -> (f64, Option<KernelProfile>) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        struct ChunkOut {
            counts: TopicCounts,
            drift: f64,
            profile: crate::sparse::SparseProfile,
            rebuild_us: u64,
            sample_us: u64,
        }
        let counts_ref = &*counts;
        let outs: Vec<ChunkOut> = pool.install(|| {
            z.par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .map(|(c, z_chunk)| {
                    let rebuild_start = profiling.then(Instant::now);
                    let mut local = counts_ref.chunk_local(c * PAR_CHUNK, z_chunk.len());
                    let mut sampler = SparseTokenSampler::new(k, v, cfg.alpha, cfg.gamma);
                    sampler.set_profiling(profiling);
                    sampler.begin_sweep(&local);
                    let rebuild_us = rebuild_start.map_or(0, |s| s.elapsed().as_micros() as u64);
                    let sample_start = profiling.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let d0 = c * PAR_CHUNK;
                    for (dd, zs) in z_chunk.iter_mut().enumerate() {
                        let doc = &docs[d0 + dd];
                        sampler.begin_doc(&local, dd, Some(y[d0 + dd]));
                        for (n, &w) in doc.terms.iter().enumerate() {
                            let old = zs[n];
                            zs[n] = sampler.move_token(&mut rng, &mut local, w, old);
                        }
                    }
                    ChunkOut {
                        drift: sampler.s_mass_drift(&local),
                        profile: sampler.take_profile(),
                        counts: local,
                        rebuild_us,
                        sample_us: sample_start.map_or(0, |s| s.elapsed().as_micros() as u64),
                    }
                })
                .collect()
        });
        // Deterministic fold, in chunk order: doc-side state per chunk,
        // then the term-side recount from the merged assignments.
        let mut drift: f64 = 0.0;
        let mut merged_profile = crate::sparse::SparseProfile::default();
        let mut fold_us = Vec::with_capacity(outs.len());
        for (c, out) in outs.iter().enumerate() {
            let fold_start = profiling.then(Instant::now);
            counts.fold_chunk(c * PAR_CHUNK, &out.counts);
            fold_us.push(fold_start.map_or(0, |s| s.elapsed().as_micros() as u64));
            drift = drift.max(out.drift);
            merged_profile.merge(&out.profile);
        }
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = z[d][n];
                n_kw[t * v + w] += 1;
                n_k[t] += 1;
            }
        }
        counts.install_term_counts(n_kw, n_k);
        let profile = profiling.then(|| {
            let chunk_us: Vec<u64> = outs.iter().map(|o| o.sample_us).collect();
            let rebuild_us: Vec<u64> = outs.iter().map(|o| o.rebuild_us).collect();
            // Each chunk clones the term counts and topic totals, the
            // word nonzero lists (items + lengths), and its own doc rows
            // and lists.
            let per_chunk =
                4 * (k * v + k) + 4 * (k * v + v) + 2 * 4 * (PAR_CHUNK * k) + 4 * PAR_CHUNK;
            merged_profile.into_sparse_parallel_profile(
                chunk_us,
                rebuild_us,
                fold_us,
                (outs.len() * per_chunk) as u64,
            )
        });
        (drift, profile)
    }

    /// The chunked alias-table MH token phase (Eq. 2): the per-word
    /// Vose tables over the start-of-sweep `n_kw + γ` columns are built
    /// once on the main thread and shared read-only across chunks, then
    /// each chunk cycles every token through a document proposal and a
    /// word proposal ([`crate::alias::mh_move_token`]) accepted against
    /// a chunk-local copy of the start-of-sweep counts, with `y_d` as
    /// the `M_dk` boost in the target only. Chunk `c` draws from RNG
    /// stream `2c` of the sweep seed and every token consumes exactly
    /// four `f64` draws, so the phase is identical across worker-thread
    /// counts; the global term counts are rebuilt from the merged
    /// assignments.
    #[allow(clippy::too_many_arguments)]
    fn sweep_z_alias(
        &self,
        pool: &rayon::ThreadPool,
        sweep_seed: u64,
        docs: &[ModelDoc],
        z: &mut [Vec<usize>],
        y: &[usize],
        counts: &mut TopicCounts,
        profiling: bool,
    ) -> Option<KernelProfile> {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let alpha = cfg.alpha;
        let gamma = cfg.gamma;
        let gamma_v = gamma * v as f64;
        let rebuild_start = profiling.then(Instant::now);
        let tables = AliasTables::build(counts.n_kw_raw(), k, v, gamma);
        let rebuild_us = rebuild_start.map_or(0, |s| s.elapsed().as_micros() as u64);
        let (n_dk, n_kw_flat, n_k_flat) = counts.dense_parts_mut();
        let n_kw_start = n_kw_flat.to_vec();
        let n_k_start = n_k_flat.to_vec();
        let tables_ref = &tables;
        let outs: Vec<(u64, AliasProfile)> = pool.install(|| {
            z.par_chunks_mut(PAR_CHUNK)
                .zip(n_dk.par_chunks_mut(PAR_CHUNK * k))
                .enumerate()
                .map(|(c, (z_chunk, n_dk_chunk))| {
                    let chunk_start = profiling.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let mut n_kw = n_kw_start.clone();
                    let mut n_k = n_k_start.clone();
                    let mut prof = AliasProfile::default();
                    let d0 = c * PAR_CHUNK;
                    for (dd, zs) in z_chunk.iter_mut().enumerate() {
                        let doc = &docs[d0 + dd];
                        let y_d = y[d0 + dd];
                        let row = &mut n_dk_chunk[dd * k..(dd + 1) * k];
                        for (n, &w) in doc.terms.iter().enumerate() {
                            let old = zs[n];
                            row[old] -= 1;
                            n_kw[old * v + w] -= 1;
                            n_k[old] -= 1;
                            let new = mh_move_token(
                                &mut rng,
                                tables_ref,
                                zs,
                                n,
                                w,
                                row,
                                &n_kw,
                                &n_k,
                                Some(y_d),
                                alpha,
                                gamma,
                                gamma_v,
                                profiling,
                                &mut prof,
                            );
                            zs[n] = new;
                            row[new] += 1;
                            n_kw[new * v + w] += 1;
                            n_k[new] += 1;
                        }
                    }
                    let us = chunk_start.map_or(0, |s| s.elapsed().as_micros() as u64);
                    (us, prof)
                })
                .collect()
        });
        // Deterministic merge: the global term counts are a pure function
        // of the merged assignments.
        n_kw_flat.fill(0);
        n_k_flat.fill(0);
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = z[d][n];
                n_kw_flat[t * v + w] += 1;
                n_k_flat[t] += 1;
            }
        }
        profiling.then(|| {
            let chunk_us: Vec<u64> = outs.iter().map(|o| o.0).collect();
            let mut merged = AliasProfile::default();
            for (_, p) in &outs {
                merged.merge(p);
            }
            // Each chunk clones the start-of-sweep term counts; the
            // shared alias tables are built once on the main thread.
            let per_chunk = 4 * (k * v + k);
            merged.into_kernel_profile(
                chunk_us,
                rebuild_us,
                tables.alloc_bytes() + (outs.len() * per_chunk) as u64,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(41)
    }

    fn two_cluster_docs(n_per: usize) -> Vec<ModelDoc> {
        let mut docs = Vec::new();
        let mut r = ChaCha8Rng::seed_from_u64(78);
        for i in 0..(2 * n_per) {
            let cluster = i % 2;
            let terms: Vec<usize> = (0..3).map(|j| 2 * cluster + (j % 2)).collect();
            let jitter = |r: &mut ChaCha8Rng| r.gen_range(-0.2..0.2);
            let gel = if cluster == 0 {
                Vector::new(vec![2.0 + jitter(&mut r), 9.0, 9.0])
            } else {
                Vector::new(vec![9.0, 4.0 + jitter(&mut r), 9.0])
            };
            let emulsion = Vector::new(vec![
                1.0 + cluster as f64 * 3.0 + jitter(&mut r),
                9.0,
                9.0,
                9.0,
                9.0,
                9.0,
            ]);
            docs.push(ModelDoc::new(i as u64, terms, gel, emulsion));
        }
        docs
    }

    #[test]
    fn collapsed_recovers_two_clusters() {
        let docs = two_cluster_docs(30);
        let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
        let fit = model.fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();
        let y0 = fit.y[0];
        let agree = (0..docs.len())
            .filter(|&d| (fit.y[d] == y0) == (d % 2 == 0))
            .count();
        assert!(
            agree as f64 / docs.len() as f64 > 0.95,
            "recovered {agree}/{}",
            docs.len()
        );
    }

    #[test]
    fn result_shape_matches_joint_model() {
        let docs = two_cluster_docs(10);
        let model = CollapsedJointModel::new(JointConfig::quick(3, 4)).unwrap();
        let fit = model.fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();
        assert_eq!(fit.phi.len(), 3);
        assert_eq!(fit.theta.len(), docs.len());
        assert_eq!(fit.ll_trace.len(), fit.config.sweeps);
        for row in &fit.phi {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let docs = two_cluster_docs(8);
        let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
        let a = model.fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();
        let b = model.fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn uncached_fit_is_bit_identical() {
        let docs = two_cluster_docs(8);
        let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
        let cached = model
            .fit_with(&mut rng(), &docs, FitOptions::new())
            .unwrap();
        let uncached = model
            .fit_with(&mut rng(), &docs, FitOptions::new().predictive_cache(false))
            .unwrap();
        assert_eq!(cached.y, uncached.y);
        assert_eq!(cached.ll_trace, uncached.ll_trace);
        assert_eq!(cached.phi, uncached.phi);
    }

    #[test]
    fn sparse_kernel_recovers_two_clusters() {
        let docs = two_cluster_docs(30);
        let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
        let fit = model
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new().kernel(GibbsKernel::Sparse),
            )
            .unwrap();
        let y0 = fit.y[0];
        let agree = (0..docs.len())
            .filter(|&d| (fit.y[d] == y0) == (d % 2 == 0))
            .count();
        assert!(
            agree as f64 / docs.len() as f64 > 0.95,
            "recovered {agree}/{}",
            docs.len()
        );
    }

    #[test]
    fn sparse_kernel_is_deterministic_given_seed() {
        let docs = two_cluster_docs(8);
        let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
        let opts = || FitOptions::new().kernel(GibbsKernel::Sparse);
        let a = model.fit_with(&mut rng(), &docs, opts()).unwrap();
        let b = model.fit_with(&mut rng(), &docs, opts()).unwrap();
        assert_eq!(a.y, b.y);
        assert_eq!(a.ll_trace, b.ll_trace);
    }

    #[test]
    fn sparse_parallel_kernel_is_thread_invariant_and_recovers() {
        let docs = two_cluster_docs(30);
        let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
        let opts = |t: usize| {
            FitOptions::new()
                .kernel(GibbsKernel::SparseParallel)
                .threads(t)
        };
        let base = model.fit_with(&mut rng(), &docs, opts(1)).unwrap();
        for t in [2, 4] {
            let other = model.fit_with(&mut rng(), &docs, opts(t)).unwrap();
            assert_eq!(base.y, other.y, "threads={t}");
            assert_eq!(base.ll_trace, other.ll_trace, "threads={t}");
            assert_eq!(base.phi, other.phi, "threads={t}");
        }
        let y0 = base.y[0];
        let agree = (0..docs.len())
            .filter(|&d| (base.y[d] == y0) == (d % 2 == 0))
            .count();
        assert!(
            agree as f64 / docs.len() as f64 > 0.95,
            "recovered {agree}/{}",
            docs.len()
        );
    }

    #[test]
    fn rejects_unsupported_fit_options() {
        let docs = two_cluster_docs(4);
        let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
        for opts in [
            FitOptions::new().threads(2),
            FitOptions::new().kernel(GibbsKernel::Parallel),
        ] {
            let err = model.fit_with(&mut rng(), &docs, opts).unwrap_err();
            assert!(matches!(err, ModelError::InvalidConfig { .. }), "{err}");
        }
        let mut sink = crate::checkpoint::MemoryCheckpointSink::new(1);
        let err = model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn rejects_invalid_config_and_data() {
        let mut cfg = JointConfig::quick(2, 4);
        cfg.alpha = 0.0;
        assert!(CollapsedJointModel::new(cfg).is_err());
        let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
        assert!(model.fit_with(&mut rng(), &[], FitOptions::new()).is_err());
    }
}

//! Serving-time **fold-in** inference: the topic distribution of an
//! unseen recipe under a frozen fit.
//!
//! A fitted model's topic–word structure is held fixed — no word-topic
//! count is ever updated — and only the new document's own topic counts
//! are inferred. Two algorithms, selected by [`FoldInAlgorithm`]:
//!
//! * **Fixed-topic collapsed Gibbs** ([`FoldInAlgorithm::Gibbs`]): the
//!   token conditional is `p(z = k) ∝ (n_dk^{¬i} + α) · φ̂_kw`, the
//!   document-side half of the fitting sampler with `φ̂` frozen. The
//!   weight splits into the same smoothing/document bucket pair as the
//!   sparse fitting kernel ([`crate::sparse`]): the smoothing mass
//!   `α · Σ_k φ̂_kw` depends only on the word and is precomputed once
//!   per vocabulary entry at load time, so a token costs `O(nnz_doc)`
//!   plus a rare `O(K)` smoothing-bucket walk. Deterministic given
//!   `(frozen topics, terms, seed)` — one `ChaCha8Rng` stream per call.
//! * **CVB0** ([`FoldInAlgorithm::Cvb0`]): the zero-order collapsed
//!   variational update over soft counts `γ_ik`. A deterministic fixed
//!   point — no RNG is consumed at all, the seed argument is ignored —
//!   which makes it the natural default for serving, where two replicas
//!   answering the same request must agree without coordinating seeds.
//!
//! Both return the posterior-mean topic distribution
//! `θ̂_k ∝ n_dk + α`, averaged over post-burn-in sweeps for Gibbs.
//! The frozen topics themselves come from either averaged `φ` rows or
//! raw topic–word counts (`φ̂_kw = (n_kw + γ) / (n_k + γV)`); the
//! serving artifact ships the counts so both reconstructions agree.

use crate::error::ModelError;
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The fold-in inference algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FoldInAlgorithm {
    /// Fixed-topic collapsed Gibbs over the frozen topic–word structure.
    /// Deterministic per `(terms, seed)`.
    Gibbs,
    /// Zero-order collapsed variational Bayes: a deterministic soft-count
    /// fixed point that consumes no randomness (the seed is ignored).
    #[default]
    Cvb0,
}

impl std::fmt::Display for FoldInAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Gibbs => "gibbs",
            Self::Cvb0 => "cvb0",
        })
    }
}

impl std::str::FromStr for FoldInAlgorithm {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "gibbs" => Ok(Self::Gibbs),
            "cvb0" => Ok(Self::Cvb0),
            other => Err(ModelError::InvalidConfig {
                what: format!("unknown fold-in algorithm {other:?}; expected gibbs or cvb0"),
            }),
        }
    }
}

/// Options for one fold-in inference run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldInConfig {
    /// Inference algorithm.
    pub algorithm: FoldInAlgorithm,
    /// Maximum sweeps (Gibbs always runs all of them; CVB0 may stop
    /// early at its fixed point).
    pub sweeps: usize,
    /// Gibbs sweeps discarded before `θ̂` accumulation starts. Ignored
    /// by CVB0.
    pub burn_in: usize,
}

impl Default for FoldInConfig {
    fn default() -> Self {
        Self {
            algorithm: FoldInAlgorithm::default(),
            sweeps: 64,
            burn_in: 32,
        }
    }
}

impl FoldInConfig {
    /// Defaults: CVB0, 64 sweeps, 32 burn-in.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: FoldInAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the sweep budget.
    #[must_use]
    pub fn sweeps(mut self, sweeps: usize) -> Self {
        self.sweeps = sweeps;
        self
    }

    /// Sets the Gibbs burn-in.
    #[must_use]
    pub fn burn_in(mut self, burn_in: usize) -> Self {
        self.burn_in = burn_in;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.sweeps == 0 {
            return Err(ModelError::InvalidConfig {
                what: "fold-in needs at least one sweep".to_string(),
            });
        }
        if self.burn_in >= self.sweeps {
            return Err(ModelError::InvalidConfig {
                what: format!(
                    "fold-in burn_in ({}) must be below sweeps ({})",
                    self.burn_in, self.sweeps
                ),
            });
        }
        Ok(())
    }
}

/// The read-only topic–word structure a fold-in run conditions on:
/// smoothed per-topic word distributions `φ̂` plus the per-word
/// smoothing-bucket masses precomputed for the sparse token conditional.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenTopics {
    k: usize,
    v: usize,
    alpha: f64,
    /// `φ̂` flattened K×V, row-major.
    phi: Vec<f64>,
    /// Per-word smoothing mass `α · Σ_k φ̂_kw`.
    s_mass: Vec<f64>,
}

impl FrozenTopics {
    /// Builds the frozen structure from raw topic–word counts:
    /// `φ̂_kw = (n_kw + γ) / (n_k + γV)`. `n_kw` is flattened K×V
    /// row-major, `n_k` the per-topic totals.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] for non-positive `α`/`γ` or empty
    /// shapes; [`ModelError::InvalidData`] when the count arrays
    /// disagree in shape or `n_k[t] ≠ Σ_w n_kw[t·V + w]`.
    pub fn from_counts(
        n_kw: &[u32],
        n_k: &[u32],
        vocab_size: usize,
        alpha: f64,
        gamma: f64,
    ) -> Result<Self> {
        if gamma <= 0.0 {
            return Err(ModelError::InvalidConfig {
                what: format!("fold-in gamma must be positive, got {gamma}"),
            });
        }
        let k = n_k.len();
        if k == 0 || vocab_size == 0 {
            return Err(ModelError::InvalidConfig {
                what: "frozen topics need at least one topic and one word".to_string(),
            });
        }
        if n_kw.len() != k * vocab_size {
            return Err(ModelError::InvalidData {
                what: format!(
                    "topic-word counts have {} entries, expected K*V = {}*{}",
                    n_kw.len(),
                    k,
                    vocab_size
                ),
            });
        }
        let mut phi = Vec::with_capacity(k * vocab_size);
        for t in 0..k {
            let row = &n_kw[t * vocab_size..(t + 1) * vocab_size];
            let total: u64 = row.iter().map(|&c| u64::from(c)).sum();
            if total != u64::from(n_k[t]) {
                return Err(ModelError::InvalidData {
                    what: format!(
                        "topic {t} totals disagree: n_k = {} but its word counts sum to {total}",
                        n_k[t]
                    ),
                });
            }
            let denom = f64::from(n_k[t]) + gamma * vocab_size as f64;
            phi.extend(row.iter().map(|&c| (f64::from(c) + gamma) / denom));
        }
        Self::from_flat(phi, k, vocab_size, alpha)
    }

    /// Builds the frozen structure from per-topic word distributions
    /// (e.g. a fitted model's averaged `φ` rows). Every row must be a
    /// probability distribution over the same vocabulary.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] for non-positive `α` or empty
    /// shapes; [`ModelError::InvalidData`] for ragged rows, negative
    /// entries, or rows not summing to 1.
    pub fn from_rows(rows: &[Vec<f64>], alpha: f64) -> Result<Self> {
        let k = rows.len();
        let v = rows.first().map_or(0, Vec::len);
        if k == 0 || v == 0 {
            return Err(ModelError::InvalidConfig {
                what: "frozen topics need at least one topic and one word".to_string(),
            });
        }
        let mut phi = Vec::with_capacity(k * v);
        for (t, row) in rows.iter().enumerate() {
            if row.len() != v {
                return Err(ModelError::InvalidData {
                    what: format!("phi row {t} has {} entries, expected {v}", row.len()),
                });
            }
            let sum: f64 = row.iter().sum();
            if row.iter().any(|&p| p.is_nan() || p < 0.0) || (sum - 1.0).abs() > 1e-6 {
                return Err(ModelError::InvalidData {
                    what: format!("phi row {t} is not a distribution (sum {sum})"),
                });
            }
            phi.extend_from_slice(row);
        }
        Self::from_flat(phi, k, v, alpha)
    }

    fn from_flat(phi: Vec<f64>, k: usize, v: usize, alpha: f64) -> Result<Self> {
        if alpha <= 0.0 {
            return Err(ModelError::InvalidConfig {
                what: format!("fold-in alpha must be positive, got {alpha}"),
            });
        }
        let mut s_mass = vec![0.0f64; v];
        for t in 0..k {
            for (w, m) in s_mass.iter_mut().enumerate() {
                *m += phi[t * v + w];
            }
        }
        for m in &mut s_mass {
            *m *= alpha;
        }
        Ok(Self {
            k,
            v,
            alpha,
            phi,
            s_mass,
        })
    }

    /// Number of topics `K`.
    #[must_use]
    pub fn n_topics(&self) -> usize {
        self.k
    }

    /// Vocabulary size `V`.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.v
    }

    /// Document-topic Dirichlet concentration `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Frozen `φ̂_kw`.
    #[must_use]
    pub fn phi(&self, k: usize, w: usize) -> f64 {
        self.phi[k * self.v + w]
    }

    fn check_terms(&self, terms: &[usize]) -> Result<()> {
        if let Some(&w) = terms.iter().find(|&&w| w >= self.v) {
            return Err(ModelError::InvalidData {
                what: format!("term id {w} out of vocabulary (V = {})", self.v),
            });
        }
        Ok(())
    }
}

/// The outcome of folding one document in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldInResult {
    /// Posterior-mean topic distribution `θ̂` (length K, sums to 1).
    pub theta: Vec<f64>,
    /// Final hard topic per token (Gibbs: last sweep's assignment;
    /// CVB0: the argmax of each token's soft assignment).
    pub z: Vec<usize>,
    /// Sweeps actually run (CVB0 stops early at its fixed point).
    pub sweeps_run: usize,
}

impl FoldInResult {
    /// The highest-probability topic.
    #[must_use]
    pub fn top_topic(&self) -> usize {
        self.theta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(k, _)| k)
    }
}

/// Folds one unseen document into a frozen fit.
///
/// Deterministic: Gibbs is a pure function of
/// `(frozen, terms, config, seed)`; CVB0 of `(frozen, terms, config)`.
/// An empty document returns the prior mean (uniform `θ̂`) without
/// consuming randomness.
///
/// # Errors
/// [`ModelError::InvalidConfig`] for a bad sweep budget and
/// [`ModelError::InvalidData`] for out-of-vocabulary term ids.
pub fn fold_in(
    frozen: &FrozenTopics,
    terms: &[usize],
    config: &FoldInConfig,
    seed: u64,
) -> Result<FoldInResult> {
    config.validate()?;
    frozen.check_terms(terms)?;
    if terms.is_empty() {
        return Ok(FoldInResult {
            theta: vec![1.0 / frozen.k as f64; frozen.k],
            z: Vec::new(),
            sweeps_run: 0,
        });
    }
    match config.algorithm {
        FoldInAlgorithm::Gibbs => Ok(gibbs_fold_in(frozen, terms, config, seed)),
        FoldInAlgorithm::Cvb0 => Ok(cvb0_fold_in(frozen, terms, config)),
    }
}

/// Document-side topic counts with a sorted nonzero-topic list — the
/// same shape the sparse fitting kernel keeps per document, here for a
/// single folded document.
struct DocCounts {
    n_dk: Vec<u32>,
    nonzero: Vec<usize>,
}

impl DocCounts {
    fn new(k: usize) -> Self {
        Self {
            n_dk: vec![0; k],
            nonzero: Vec::new(),
        }
    }

    fn inc(&mut self, k: usize) {
        if self.n_dk[k] == 0 {
            let at = self.nonzero.partition_point(|&t| t < k);
            self.nonzero.insert(at, k);
        }
        self.n_dk[k] += 1;
    }

    fn dec(&mut self, k: usize) {
        self.n_dk[k] -= 1;
        if self.n_dk[k] == 0 {
            let at = self.nonzero.partition_point(|&t| t < k);
            self.nonzero.remove(at);
        }
    }
}

fn gibbs_fold_in(
    frozen: &FrozenTopics,
    terms: &[usize],
    config: &FoldInConfig,
    seed: u64,
) -> FoldInResult {
    let k = frozen.k;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut counts = DocCounts::new(k);

    // Initialize each token from the frozen word likelihood alone
    // (`p(z = k) ∝ φ̂_kw`) — a data-driven start that needs no document
    // state yet.
    let mut z: Vec<usize> = terms
        .iter()
        .map(|&w| {
            let total: f64 = (0..k).map(|t| frozen.phi(t, w)).sum();
            let mut u = rng.gen::<f64>() * total;
            let mut pick = k - 1;
            for t in 0..k {
                u -= frozen.phi(t, w);
                if u <= 0.0 {
                    pick = t;
                    break;
                }
            }
            pick
        })
        .collect();
    for &t in &z {
        counts.inc(t);
    }

    let mut theta_acc = vec![0.0f64; k];
    let mut samples = 0usize;
    for sweep in 0..config.sweeps {
        for (i, &w) in terms.iter().enumerate() {
            counts.dec(z[i]);
            // Document bucket: only the topics this document touches.
            let r_total: f64 = counts
                .nonzero
                .iter()
                .map(|&t| f64::from(counts.n_dk[t]) * frozen.phi(t, w))
                .sum();
            let s_total = frozen.s_mass[w];
            let mut u = rng.gen::<f64>() * (s_total + r_total);
            let next = if u < r_total {
                let mut pick = *counts.nonzero.last().expect("document has tokens");
                for &t in &counts.nonzero {
                    u -= f64::from(counts.n_dk[t]) * frozen.phi(t, w);
                    if u <= 0.0 {
                        pick = t;
                        break;
                    }
                }
                pick
            } else {
                u -= r_total;
                let mut pick = k - 1;
                for t in 0..k {
                    u -= frozen.alpha * frozen.phi(t, w);
                    if u <= 0.0 {
                        pick = t;
                        break;
                    }
                }
                pick
            };
            z[i] = next;
            counts.inc(next);
        }
        if sweep >= config.burn_in {
            for t in 0..k {
                theta_acc[t] += f64::from(counts.n_dk[t]) + frozen.alpha;
            }
            samples += 1;
        }
    }

    let norm: f64 = theta_acc.iter().sum();
    debug_assert!(samples > 0, "burn_in < sweeps is validated");
    let theta = theta_acc.iter().map(|&a| a / norm).collect();
    FoldInResult {
        theta,
        z,
        sweeps_run: config.sweeps,
    }
}

/// CVB0 soft-count convergence tolerance: iteration stops when no
/// token's responsibility moves more than this between sweeps.
const CVB0_TOL: f64 = 1e-10;

fn cvb0_fold_in(frozen: &FrozenTopics, terms: &[usize], config: &FoldInConfig) -> FoldInResult {
    let k = frozen.k;
    let n = terms.len();
    // Responsibilities γ_ik, initialized from the word likelihood.
    let mut resp = vec![0.0f64; n * k];
    let mut m = vec![0.0f64; k]; // soft counts Σ_i γ_ik
    for (i, &w) in terms.iter().enumerate() {
        let row = &mut resp[i * k..(i + 1) * k];
        let mut total = 0.0;
        for (t, r) in row.iter_mut().enumerate() {
            *r = frozen.phi(t, w);
            total += *r;
        }
        for (t, r) in row.iter_mut().enumerate() {
            *r /= total;
            m[t] += *r;
        }
    }

    let mut sweeps_run = 0usize;
    for _ in 0..config.sweeps {
        sweeps_run += 1;
        let mut delta = 0.0f64;
        for (i, &w) in terms.iter().enumerate() {
            let row = &mut resp[i * k..(i + 1) * k];
            let mut total = 0.0;
            let mut next = Vec::with_capacity(k);
            for (t, r) in row.iter().enumerate() {
                // Exclude this token's own mass: the collapsed "¬i" count.
                let weight = (m[t] - *r + frozen.alpha) * frozen.phi(t, w);
                next.push(weight);
                total += weight;
            }
            for (t, r) in row.iter_mut().enumerate() {
                let new = next[t] / total;
                delta = delta.max((new - *r).abs());
                m[t] += new - *r;
                *r = new;
            }
        }
        if delta < CVB0_TOL {
            break;
        }
    }

    let denom = n as f64 + frozen.alpha * k as f64;
    let theta = m.iter().map(|&c| (c + frozen.alpha) / denom).collect();
    let z = (0..n)
        .map(|i| {
            let row = &resp[i * k..(i + 1) * k];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map_or(0, |(t, _)| t)
        })
        .collect();
    FoldInResult {
        theta,
        z,
        sweeps_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three planted topics over a 6-word vocabulary: topic t owns words
    /// {2t, 2t+1} with heavy counts.
    fn planted() -> FrozenTopics {
        let mut n_kw = vec![0u32; 3 * 6];
        for t in 0..3 {
            n_kw[t * 6 + 2 * t] = 40;
            n_kw[t * 6 + 2 * t + 1] = 40;
        }
        let n_k = vec![80u32; 3];
        FrozenTopics::from_counts(&n_kw, &n_k, 6, 0.5, 0.1).unwrap()
    }

    #[test]
    fn algorithm_round_trips_and_rejects_unknown() {
        for a in [FoldInAlgorithm::Gibbs, FoldInAlgorithm::Cvb0] {
            assert_eq!(a.to_string().parse::<FoldInAlgorithm>().unwrap(), a);
        }
        assert_eq!(FoldInAlgorithm::default(), FoldInAlgorithm::Cvb0);
        assert!("vb".parse::<FoldInAlgorithm>().is_err());
        // The serde spelling matches the Display spelling.
        assert_eq!(
            serde_json::to_string(&FoldInAlgorithm::Cvb0).unwrap(),
            "\"cvb0\""
        );
    }

    #[test]
    fn from_counts_validates_shapes_and_totals() {
        assert!(FrozenTopics::from_counts(&[1, 2], &[3], 2, 0.5, 0.1).is_ok());
        // Wrong flat length.
        assert!(FrozenTopics::from_counts(&[1, 2, 3], &[3], 2, 0.5, 0.1).is_err());
        // Totals disagree.
        assert!(FrozenTopics::from_counts(&[1, 2], &[4], 2, 0.5, 0.1).is_err());
        // Bad hyperparameters.
        assert!(FrozenTopics::from_counts(&[1, 2], &[3], 2, 0.0, 0.1).is_err());
        assert!(FrozenTopics::from_counts(&[1, 2], &[3], 2, 0.5, 0.0).is_err());
    }

    #[test]
    fn from_rows_validates_distributions() {
        assert!(FrozenTopics::from_rows(&[vec![0.5, 0.5]], 0.5).is_ok());
        assert!(FrozenTopics::from_rows(&[vec![0.5, 0.4]], 0.5).is_err());
        assert!(FrozenTopics::from_rows(&[vec![1.5, -0.5]], 0.5).is_err());
        assert!(FrozenTopics::from_rows(&[vec![0.5, 0.5], vec![1.0]], 0.5).is_err());
        assert!(FrozenTopics::from_rows(&[], 0.5).is_err());
    }

    #[test]
    fn counts_and_rows_reconstructions_agree() {
        let from_counts = planted();
        let rows: Vec<Vec<f64>> = (0..3)
            .map(|t| (0..6).map(|w| from_counts.phi(t, w)).collect())
            .collect();
        let from_rows = FrozenTopics::from_rows(&rows, 0.5).unwrap();
        for t in 0..3 {
            for w in 0..6 {
                assert!((from_counts.phi(t, w) - from_rows.phi(t, w)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn both_algorithms_recover_a_planted_topic() {
        let frozen = planted();
        let doc = [2usize, 3, 2, 3, 2]; // topic 1's words
        for algorithm in [FoldInAlgorithm::Gibbs, FoldInAlgorithm::Cvb0] {
            let cfg = FoldInConfig::new().algorithm(algorithm);
            let out = fold_in(&frozen, &doc, &cfg, 7).unwrap();
            assert_eq!(out.top_topic(), 1, "{algorithm}");
            assert!(out.theta[1] > 0.7, "{algorithm}: {:?}", out.theta);
            let sum: f64 = out.theta.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert_eq!(out.z.len(), doc.len());
            assert!(out.z.iter().all(|&t| t == 1), "{algorithm}: {:?}", out.z);
        }
    }

    #[test]
    fn gibbs_is_deterministic_per_seed() {
        let frozen = planted();
        let doc = [0usize, 1, 2, 4, 5, 0];
        let cfg = FoldInConfig::new().algorithm(FoldInAlgorithm::Gibbs);
        let a = fold_in(&frozen, &doc, &cfg, 42).unwrap();
        let b = fold_in(&frozen, &doc, &cfg, 42).unwrap();
        assert_eq!(a, b);
        // A different seed draws a different chain (the z path differs
        // with overwhelming probability on a mixed document).
        let c = fold_in(&frozen, &doc, &cfg, 43).unwrap();
        assert!(a.z != c.z || a.theta != c.theta);
    }

    #[test]
    fn cvb0_ignores_the_seed() {
        let frozen = planted();
        let doc = [0usize, 3, 4, 0];
        let cfg = FoldInConfig::new(); // cvb0 default
        let a = fold_in(&frozen, &doc, &cfg, 1).unwrap();
        let b = fold_in(&frozen, &doc, &cfg, 99).unwrap();
        assert_eq!(a, b);
        // The fixed point is reached well inside the budget.
        assert!(a.sweeps_run <= cfg.sweeps);
    }

    #[test]
    fn empty_document_returns_the_prior_mean() {
        let frozen = planted();
        let out = fold_in(&frozen, &[], &FoldInConfig::new(), 5).unwrap();
        assert_eq!(out.theta, vec![1.0 / 3.0; 3]);
        assert!(out.z.is_empty());
        assert_eq!(out.sweeps_run, 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let frozen = planted();
        // Out-of-vocabulary term.
        assert!(matches!(
            fold_in(&frozen, &[6], &FoldInConfig::new(), 0),
            Err(ModelError::InvalidData { .. })
        ));
        // Degenerate sweep budgets.
        assert!(fold_in(&frozen, &[0], &FoldInConfig::new().sweeps(0), 0).is_err());
        let cfg = FoldInConfig::new().sweeps(4).burn_in(4);
        assert!(fold_in(&frozen, &[0], &cfg, 0).is_err());
    }

    #[test]
    fn theta_reflects_mixed_membership() {
        let frozen = planted();
        // Half topic 0's words, half topic 2's.
        let doc = [0usize, 1, 4, 5];
        for algorithm in [FoldInAlgorithm::Gibbs, FoldInAlgorithm::Cvb0] {
            let cfg = FoldInConfig::new().algorithm(algorithm);
            let out = fold_in(&frozen, &doc, &cfg, 11).unwrap();
            assert!(out.theta[0] > 0.2, "{algorithm}: {:?}", out.theta);
            assert!(out.theta[2] > 0.2, "{algorithm}: {:?}", out.theta);
            assert!(out.theta[1] < 0.3, "{algorithm}: {:?}", out.theta);
        }
    }
}

//! The fitting supervisor: health sentinels, count-invariant auditing,
//! and automatic rollback / kernel degradation.
//!
//! A Gibbs run is a pure function of `(config, docs, rng)`, which makes
//! failures *detectable* (invariants over the count store are cheap to
//! check) and *recoverable* (a [`SamplerSnapshot`] captures the exact RNG
//! position, so replaying from the last good snapshot is bit-identical
//! to a run that never failed). This module packages both halves:
//!
//! * **Sentinels** run after every sweep: the sweep's log-likelihood must
//!   be finite, the per-topic totals must sum to the corpus token count
//!   (a `u32` underflow or scatter corruption shows up here as a wildly
//!   wrong total), and the sparse kernel's incrementally maintained
//!   smoothing-bucket mass must stay within `mass_epsilon` of a
//!   from-scratch recomputation. A sweep that itself returns an error
//!   (Cholesky jitter exhaustion, singular precision) trips the same
//!   path.
//! * **The invariant auditor** ([`audit_topic_counts`]) runs every
//!   `audit_every` sweeps and checks the shared [`TopicCounts`] store in
//!   depth: `Σ_k n_dk[d] == len(doc d)` for every document,
//!   `n_k[t] == Σ_w n_kw[t][w]` for every topic, the grand totals agree,
//!   and — when nonzero tracking is enabled — the per-document and
//!   per-word topic lists are strictly sorted and exactly the support of
//!   the dense arrays.
//! * **Recovery** is a small state machine driven by
//!   [`HealthMonitor::tripped`]: under [`RecoveryAction::RollbackRetry`]
//!   the engine restores the last good snapshot and replays (bounded by
//!   `max_retries` per incident); under [`RecoveryAction::DegradeKernel`]
//!   a kernel whose retries are exhausted drops one rung down the
//!   `alias → sparse → serial` degradation ladder (sparse-parallel also
//!   degrades straight to serial; same bit-class rules as a fresh fit,
//!   logged as a `health.degrade` event) before the run is ever
//!   declared dead.
//!   [`RecoveryAction::Abort`] fails fast. Unrecoverable outcomes
//!   surface as [`ModelError::Health`].
//!
//! Engines opt in through `FitOptions::health(policy)`; every decision
//! the supervisor takes is emitted as a [`HealthEvent`] through the
//! run's [`SweepObserver`], so `rheotex report` can reconstruct the
//! incident history from the metrics JSONL alone.

use crate::checkpoint::SamplerSnapshot;
use crate::counts::TopicCounts;
use crate::error::ModelError;
use crate::fit::GibbsKernel;
use rheotex_obs::{HealthEvent, SweepObserver};

/// What the supervisor does when a sentinel trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Fail fast: the first trip aborts the fit with
    /// [`ModelError::Health`]. No recovery snapshots are kept.
    Abort,
    /// Roll back to the last good in-memory snapshot and replay, at most
    /// `max_retries` times per incident (an incident ends when the
    /// tripping sweep is passed cleanly).
    RollbackRetry {
        /// Rollback budget per incident.
        max_retries: usize,
    },
    /// Like [`RecoveryAction::RollbackRetry`], but when the budget is
    /// exhausted the run drops one rung down the degradation ladder —
    /// alias → sparse, sparse / sparse-parallel → serial — resetting
    /// the budget instead of aborting: the escape hatch for a
    /// desynchronized bucket or proposal state.
    DegradeKernel {
        /// Rollback budget per incident (per kernel).
        max_retries: usize,
    },
}

/// A one-shot count corruption injected after a chosen sweep completes,
/// used by the chaos tests to prove recovery is bit-identical. The
/// corruption is external to the sampler (no RNG draws are consumed), so
/// rolling back and replaying reproduces the clean run exactly.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountChaos {
    /// 0-based sweep after which the corruption is applied (once).
    pub at_sweep: usize,
    /// Document row to corrupt.
    pub doc: usize,
    /// Topic column to corrupt.
    pub topic: usize,
    /// Raw increment added to `n_dk[doc][topic]`, bypassing all
    /// bookkeeping.
    pub delta: u32,
}

/// Configuration of the fitting supervisor.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Recovery behaviour when a sentinel trips.
    pub action: RecoveryAction,
    /// Deep-audit cadence in sweeps (0 disables the auditor; the cheap
    /// per-sweep sentinels always run).
    pub audit_every: usize,
    /// In-memory recovery-snapshot cadence in sweeps. With a
    /// non-[`RecoveryAction::Abort`] action a snapshot is always kept at
    /// loop entry, so 0 still permits rollback-to-start.
    pub snapshot_every: usize,
    /// Maximum tolerated relative drift of the sparse kernel's
    /// incrementally maintained smoothing-bucket mass.
    pub mass_epsilon: f64,
    /// Extra attempts for a failed checkpoint `save()` before the fit
    /// errors out.
    pub save_retries: usize,
    /// Optional one-shot count corruption for chaos testing.
    #[cfg(feature = "fault-inject")]
    pub chaos: Option<CountChaos>,
}

impl HealthPolicy {
    /// Detect-and-abort: sentinels and the auditor run, the first trip
    /// kills the fit. No recovery snapshots, no checkpoint retries.
    #[must_use]
    pub fn strict() -> Self {
        Self {
            action: RecoveryAction::Abort,
            audit_every: 16,
            snapshot_every: 0,
            mass_epsilon: 1e-6,
            save_retries: 0,
            #[cfg(feature = "fault-inject")]
            chaos: None,
        }
    }

    /// Detect-and-recover: roll back to the last good snapshot (kept
    /// every 8 sweeps) up to 3 times per incident, walk a repeatedly
    /// failing kernel down the degradation ladder, retry failed
    /// checkpoint saves twice.
    #[must_use]
    pub fn recover() -> Self {
        Self {
            action: RecoveryAction::DegradeKernel { max_retries: 3 },
            audit_every: 16,
            snapshot_every: 8,
            mass_epsilon: 1e-6,
            save_retries: 2,
            #[cfg(feature = "fault-inject")]
            chaos: None,
        }
    }

    /// Sets the recovery action.
    #[must_use]
    pub fn action(mut self, action: RecoveryAction) -> Self {
        self.action = action;
        self
    }

    /// Sets the deep-audit cadence (0 disables).
    #[must_use]
    pub fn audit_every(mut self, sweeps: usize) -> Self {
        self.audit_every = sweeps;
        self
    }

    /// Sets the recovery-snapshot cadence.
    #[must_use]
    pub fn snapshot_every(mut self, sweeps: usize) -> Self {
        self.snapshot_every = sweeps;
        self
    }

    /// Sets the sparse bucket-mass drift tolerance.
    #[must_use]
    pub fn mass_epsilon(mut self, eps: f64) -> Self {
        self.mass_epsilon = eps;
        self
    }

    /// Sets the rollback budget of the current action (no-op for
    /// [`RecoveryAction::Abort`]).
    #[must_use]
    pub fn max_retries(mut self, n: usize) -> Self {
        self.action = match self.action {
            RecoveryAction::Abort => RecoveryAction::Abort,
            RecoveryAction::RollbackRetry { .. } => {
                RecoveryAction::RollbackRetry { max_retries: n }
            }
            RecoveryAction::DegradeKernel { .. } => {
                RecoveryAction::DegradeKernel { max_retries: n }
            }
        };
        self
    }

    /// Sets the checkpoint save-retry budget.
    #[must_use]
    pub fn save_retries(mut self, n: usize) -> Self {
        self.save_retries = n;
        self
    }

    /// Arms a one-shot count corruption (chaos testing only).
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn chaos(mut self, chaos: CountChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// The named supervision levels the CLI and config files select from —
/// a typed spelling of the `--health off|strict|recover` flag. Each
/// mode expands to the matching [`HealthPolicy`] preset (or to no
/// policy at all for [`HealthMode::Off`]) via [`HealthMode::policy`];
/// the string forms round-trip through `FromStr`/`Display`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthMode {
    /// No supervision — the historical behaviour, bit-identical to every
    /// earlier release.
    #[default]
    Off,
    /// Detect-and-abort: [`HealthPolicy::strict`].
    Strict,
    /// Detect-and-recover: [`HealthPolicy::recover`].
    Recover,
}

impl HealthMode {
    /// The policy preset this mode names; `None` for [`HealthMode::Off`].
    #[must_use]
    pub fn policy(self) -> Option<HealthPolicy> {
        match self {
            Self::Off => None,
            Self::Strict => Some(HealthPolicy::strict()),
            Self::Recover => Some(HealthPolicy::recover()),
        }
    }
}

impl std::fmt::Display for HealthMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Off => "off",
            Self::Strict => "strict",
            Self::Recover => "recover",
        })
    }
}

impl std::str::FromStr for HealthMode {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, ModelError> {
        match s {
            "off" => Ok(Self::Off),
            "strict" => Ok(Self::Strict),
            "recover" => Ok(Self::Recover),
            other => Err(ModelError::InvalidConfig {
                what: format!("unknown health mode {other:?}; expected off, strict, or recover"),
            }),
        }
    }
}

/// What [`HealthMonitor::tripped`] asks the engine to do. Both variants
/// carry the snapshot to restore; [`Recovery::Degrade`] additionally
/// asks the engine to continue under the named simpler kernel — one
/// rung down the `alias → sparse → serial` degradation ladder (the
/// chunked sparse kernel also degrades straight to serial).
#[derive(Debug)]
pub enum Recovery {
    /// Restore the snapshot and replay under the same kernel.
    Rollback(Box<SamplerSnapshot>),
    /// Restore the snapshot and replay under the carried target kernel.
    Degrade(Box<SamplerSnapshot>, GibbsKernel),
}

/// The next rung of the kernel degradation ladder: the alias-MH kernel
/// falls back to the exact sparse kernel, both sparse kernels fall back
/// to the dense serial kernel, and the dense kernels have nowhere
/// simpler to go.
#[must_use]
pub(crate) fn degrade_target(kernel: GibbsKernel) -> Option<GibbsKernel> {
    match kernel {
        GibbsKernel::Alias => Some(GibbsKernel::Sparse),
        GibbsKernel::Sparse | GibbsKernel::SparseParallel => Some(GibbsKernel::Serial),
        GibbsKernel::Serial | GibbsKernel::Parallel => None,
    }
}

/// Per-fit supervisor state: the last good snapshot, the retry budget of
/// the current incident, and the event plumbing. One monitor lives for
/// the duration of one engine's sweep loop.
#[derive(Debug)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    engine: &'static str,
    retries: usize,
    last_good: Option<SamplerSnapshot>,
    /// Sweep index of the open incident; recovery completes (and the
    /// budget resets) only once this sweep is passed cleanly, so a
    /// deterministic persistent failure cannot loop forever.
    trip_sweep: Option<usize>,
    #[cfg(feature = "fault-inject")]
    chaos_fired: bool,
}

impl HealthMonitor {
    /// Builds a monitor for one engine's sweep loop.
    #[must_use]
    pub fn new(policy: HealthPolicy, engine: &'static str) -> Self {
        Self {
            policy,
            engine,
            retries: 0,
            last_good: None,
            trip_sweep: None,
            #[cfg(feature = "fault-inject")]
            chaos_fired: false,
        }
    }

    /// The policy this monitor enforces.
    #[must_use]
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Whether the policy can use recovery snapshots at all.
    #[must_use]
    pub fn wants_snapshots(&self) -> bool {
        !matches!(self.policy.action, RecoveryAction::Abort)
    }

    /// Whether a recovery snapshot should be kept after `sweep`.
    #[must_use]
    pub fn snapshot_due(&self, sweep: usize) -> bool {
        self.wants_snapshots()
            && self.policy.snapshot_every > 0
            && (sweep + 1) % self.policy.snapshot_every == 0
    }

    /// Whether the deep auditor runs after `sweep`.
    #[must_use]
    pub fn audit_due(&self, sweep: usize) -> bool {
        self.policy.audit_every > 0 && (sweep + 1) % self.policy.audit_every == 0
    }

    /// Checkpoint save-retry budget from the policy.
    #[must_use]
    pub fn save_retries(&self) -> usize {
        self.policy.save_retries
    }

    /// Records `snap` as the rollback target.
    pub fn keep(&mut self, snap: SamplerSnapshot) {
        self.last_good = Some(snap);
    }

    /// Applies the armed one-shot corruption if `sweep` matches; returns
    /// whether it fired.
    #[cfg(feature = "fault-inject")]
    pub fn apply_chaos(&mut self, sweep: usize, counts: &mut TopicCounts) -> bool {
        if self.chaos_fired {
            return false;
        }
        let Some(chaos) = self.policy.chaos else {
            return false;
        };
        if chaos.at_sweep != sweep {
            return false;
        }
        self.chaos_fired = true;
        counts.corrupt_doc_topic(chaos.doc, chaos.topic, chaos.delta);
        true
    }

    /// Runs the per-sweep sentinels (and the deep auditor when due) over
    /// a token-topic count store. Returns `Some(detail)` on a trip —
    /// hand it to [`HealthMonitor::tripped`] — or `None` when healthy
    /// (which also closes an open incident once its sweep is passed).
    pub fn inspect_counts(
        &mut self,
        sweep: usize,
        ll: f64,
        counts: &TopicCounts,
        doc_lens: &[usize],
        mass_drift: Option<f64>,
        observer: &mut dyn SweepObserver,
    ) -> Option<String> {
        if !ll.is_finite() {
            return Some(format!("non-finite log-likelihood ({ll})"));
        }
        let total: u64 = counts.n_k_raw().iter().map(|&c| u64::from(c)).sum();
        let tokens: u64 = doc_lens.iter().map(|&l| l as u64).sum();
        if total != tokens {
            return Some(format!(
                "topic totals sum to {total}, expected {tokens} corpus tokens"
            ));
        }
        if let Some(drift) = mass_drift {
            if !(drift <= self.policy.mass_epsilon) {
                return Some(format!(
                    "sparse smoothing-bucket mass drifted by {drift:.3e} (epsilon {:.3e})",
                    self.policy.mass_epsilon
                ));
            }
        }
        if self.audit_due(sweep) {
            match audit_topic_counts(counts, doc_lens) {
                Ok(()) => self.emit(
                    observer,
                    sweep,
                    "audit_pass",
                    "count invariants hold".into(),
                ),
                Err(detail) => {
                    self.emit(observer, sweep, "audit_fail", detail.clone());
                    return Some(detail);
                }
            }
        }
        self.mark_healthy(sweep, observer);
        None
    }

    /// Sentinel pass for the GMM engine, whose state is a component
    /// occupancy vector rather than a [`TopicCounts`] store.
    pub fn inspect_occupancy(
        &mut self,
        sweep: usize,
        ll: f64,
        occupancy: &[usize],
        n_docs: usize,
        observer: &mut dyn SweepObserver,
    ) -> Option<String> {
        if !ll.is_finite() {
            return Some(format!("non-finite log-likelihood ({ll})"));
        }
        if let Err(detail) = audit_occupancy(occupancy, n_docs) {
            if self.audit_due(sweep) {
                self.emit(observer, sweep, "audit_fail", detail.clone());
            }
            return Some(detail);
        }
        if self.audit_due(sweep) {
            self.emit(
                observer,
                sweep,
                "audit_pass",
                "occupancy invariants hold".into(),
            );
        }
        self.mark_healthy(sweep, observer);
        None
    }

    /// Decides what to do about a tripped sentinel at `sweep` under
    /// `kernel`. Emits the `sentinel_trip` event and either returns the
    /// recovery the engine must perform or the terminal
    /// [`ModelError::Health`].
    ///
    /// # Errors
    /// [`ModelError::Health`] when the policy is
    /// [`RecoveryAction::Abort`], no recovery snapshot exists, or the
    /// retry budget is exhausted with no degradation left.
    pub fn tripped(
        &mut self,
        sweep: usize,
        kernel: GibbsKernel,
        detail: String,
        observer: &mut dyn SweepObserver,
    ) -> Result<Recovery, ModelError> {
        self.emit(observer, sweep, "sentinel_trip", detail.clone());
        self.trip_sweep = Some(self.trip_sweep.map_or(sweep, |t| t.max(sweep)));
        let (max_retries, can_degrade) = match self.policy.action {
            RecoveryAction::Abort => {
                return Err(self.abort(observer, sweep, format!("{detail} (policy: abort)")));
            }
            RecoveryAction::RollbackRetry { max_retries } => (max_retries, false),
            RecoveryAction::DegradeKernel { max_retries } => (max_retries, true),
        };
        let Some(snap) = self.last_good.clone() else {
            return Err(self.abort(observer, sweep, format!("{detail} (no recovery point)")));
        };
        if self.retries < max_retries {
            self.retries += 1;
            self.emit(
                observer,
                sweep,
                "rollback",
                format!("rolling back to sweep {}: {detail}", snap.next_sweep()),
            );
            return Ok(Recovery::Rollback(Box::new(snap)));
        }
        if can_degrade {
            if let Some(target) = degrade_target(kernel) {
                self.retries = 0;
                self.emit(
                    observer,
                    sweep,
                    "degrade",
                    format!(
                        "{kernel} kernel degraded to {target} from sweep {}: {detail}",
                        snap.next_sweep()
                    ),
                );
                return Ok(Recovery::Degrade(Box::new(snap), target));
            }
        }
        Err(self.abort(
            observer,
            sweep,
            format!("{detail} ({max_retries} rollback retries exhausted)"),
        ))
    }

    /// Reports a checkpoint save that needed `retries` extra attempts.
    pub fn note_checkpoint_retry(
        &self,
        sweep: usize,
        retries: usize,
        observer: &mut dyn SweepObserver,
    ) {
        observer.on_health(&HealthEvent {
            engine: self.engine,
            sweep,
            action: "checkpoint_retry",
            detail: format!("checkpoint save succeeded after {retries} retries"),
            retries,
        });
    }

    fn mark_healthy(&mut self, sweep: usize, observer: &mut dyn SweepObserver) {
        if let Some(trip) = self.trip_sweep {
            if sweep >= trip {
                self.emit(
                    observer,
                    sweep,
                    "recovered",
                    format!("passed sweep {trip} cleanly after rollback"),
                );
                self.trip_sweep = None;
                self.retries = 0;
            }
        }
    }

    fn abort(
        &mut self,
        observer: &mut dyn SweepObserver,
        sweep: usize,
        what: String,
    ) -> ModelError {
        self.emit(observer, sweep, "abort", what.clone());
        ModelError::Health {
            what: format!("{} sweep {sweep}: {what}", self.engine),
        }
    }

    fn emit(
        &self,
        observer: &mut dyn SweepObserver,
        sweep: usize,
        action: &'static str,
        detail: String,
    ) {
        observer.on_health(&HealthEvent {
            engine: self.engine,
            sweep,
            action,
            detail,
            retries: self.retries,
        });
    }
}

/// Deep invariant audit of a [`TopicCounts`] store against the document
/// lengths it was built from.
///
/// Checks, in order: array dimensions match the corpus; every document's
/// topic counts sum to its token count; every topic's word counts sum to
/// its recorded total; the grand totals agree; and — when nonzero
/// tracking is on — every per-document and per-word topic list is
/// strictly sorted and exactly the support of the dense arrays.
///
/// # Errors
/// A human-readable description of the first violated invariant.
pub fn audit_topic_counts(counts: &TopicCounts, doc_lens: &[usize]) -> Result<(), String> {
    let k = counts.topics();
    let v = counts.vocab();
    if counts.n_dk_raw().len() != doc_lens.len() * k {
        return Err(format!(
            "count store holds {} doc-topic cells, expected {} ({} docs x {k} topics)",
            counts.n_dk_raw().len(),
            doc_lens.len() * k,
            doc_lens.len()
        ));
    }
    for (d, &len) in doc_lens.iter().enumerate() {
        let row: u64 = (0..k).map(|t| u64::from(counts.dk(d, t))).sum();
        if row != len as u64 {
            return Err(format!(
                "doc {d}: topic counts sum to {row}, expected {len} tokens"
            ));
        }
    }
    let mut grand = 0u64;
    for t in 0..k {
        let row: u64 = (0..v).map(|w| u64::from(counts.kw(t, w))).sum();
        let total = u64::from(counts.topic_total(t));
        if row != total {
            return Err(format!(
                "topic {t}: word counts sum to {row} but n_k records {total}"
            ));
        }
        grand += total;
    }
    let tokens: u64 = doc_lens.iter().map(|&l| l as u64).sum();
    if grand != tokens {
        return Err(format!(
            "topic totals sum to {grand}, expected {tokens} corpus tokens"
        ));
    }
    if counts.tracking() {
        for d in 0..doc_lens.len() {
            let list = counts.doc_topics(d);
            if !list.windows(2).all(|p| p[0] < p[1]) {
                return Err(format!(
                    "doc {d}: nonzero topic list is not strictly sorted"
                ));
            }
            let support: Vec<u32> = (0..k)
                .filter(|&t| counts.dk(d, t) > 0)
                .map(|t| t as u32)
                .collect();
            if list != support.as_slice() {
                return Err(format!(
                    "doc {d}: nonzero topic list disagrees with dense counts"
                ));
            }
        }
        for w in 0..v {
            let list = counts.word_topics(w);
            if !list.windows(2).all(|p| p[0] < p[1]) {
                return Err(format!(
                    "word {w}: nonzero topic list is not strictly sorted"
                ));
            }
            let support: Vec<u32> = (0..k)
                .filter(|&t| counts.kw(t, w) > 0)
                .map(|t| t as u32)
                .collect();
            if list != support.as_slice() {
                return Err(format!(
                    "word {w}: nonzero topic list disagrees with dense counts"
                ));
            }
        }
    }
    Ok(())
}

/// GMM occupancy invariant: every document sits in exactly one
/// component, so the occupancy vector sums to the corpus size.
///
/// # Errors
/// A human-readable description of the violation.
pub fn audit_occupancy(occupancy: &[usize], n_docs: usize) -> Result<(), String> {
    let total: usize = occupancy.iter().sum();
    if total != n_docs {
        return Err(format!(
            "component occupancy sums to {total}, expected {n_docs} documents"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{LdaSnapshot, RngState};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_obs::VecObserver;

    #[test]
    fn health_mode_parses_displays_and_expands() {
        for m in [HealthMode::Off, HealthMode::Strict, HealthMode::Recover] {
            assert_eq!(m.to_string().parse::<HealthMode>().unwrap(), m);
        }
        assert_eq!(HealthMode::default(), HealthMode::Off);
        assert!(HealthMode::Off.policy().is_none());
        assert!(matches!(
            HealthMode::Strict.policy().map(|p| p.action),
            Some(RecoveryAction::Abort)
        ));
        assert!(matches!(
            HealthMode::Recover.policy().map(|p| p.action),
            Some(RecoveryAction::DegradeKernel { .. })
        ));
        let msg = "paranoid".parse::<HealthMode>().unwrap_err().to_string();
        assert!(msg.contains("off, strict, or recover"), "{msg}");
    }

    fn lda_snap(next_sweep: usize) -> SamplerSnapshot {
        SamplerSnapshot::Lda(LdaSnapshot {
            config: crate::lda::LdaConfig {
                n_topics: 2,
                vocab_size: 3,
                alpha: 0.5,
                gamma: 0.1,
                sweeps: 10,
                burn_in: 2,
            },
            next_sweep,
            kernel: Some(GibbsKernel::Serial),
            doc_fingerprint: 0,
            z: vec![],
            n_dk: vec![],
            n_kw: vec![],
            n_k: vec![],
            phi_acc: vec![],
            theta_acc: vec![],
            n_samples: 0,
            ll_trace: vec![],
            rng: RngState::capture(&ChaCha8Rng::seed_from_u64(0)),
        })
    }

    /// Builds a consistent store by routing every token through `inc`.
    fn consistent_counts(tracked: bool) -> (TopicCounts, Vec<usize>) {
        let (d, k, v) = (3, 4, 5);
        let mut c = TopicCounts::new(d, k, v);
        if tracked {
            c.enable_tracking();
        }
        let mut doc_lens = vec![0usize; d];
        for i in 0..40usize {
            let dd = i % d;
            c.inc(dd, (i * 7) % v, (i * 3) % k);
            doc_lens[dd] += 1;
        }
        (c, doc_lens)
    }

    #[test]
    fn audit_accepts_consistent_store() {
        for tracked in [false, true] {
            let (c, lens) = consistent_counts(tracked);
            assert_eq!(audit_topic_counts(&c, &lens), Ok(()));
        }
    }

    #[test]
    fn audit_flags_doc_row_drift() {
        let (c, lens) = consistent_counts(false);
        let (k, v) = (c.topics(), c.vocab());
        let (mut n_dk, n_kw, n_k) = c.into_parts();
        n_dk[2] += 1;
        let c = TopicCounts::from_parts(k, v, n_dk, n_kw, n_k);
        let err = audit_topic_counts(&c, &lens).unwrap_err();
        assert!(err.contains("doc 0"), "{err}");
    }

    #[test]
    fn audit_flags_topic_total_drift() {
        let (c, lens) = consistent_counts(false);
        let (k, v) = (c.topics(), c.vocab());
        let (n_dk, n_kw, mut n_k) = c.into_parts();
        n_k[1] = n_k[1].wrapping_sub(1);
        let c = TopicCounts::from_parts(k, v, n_dk, n_kw, n_k);
        let err = audit_topic_counts(&c, &lens).unwrap_err();
        assert!(err.contains("topic 1"), "{err}");
    }

    /// Stale nonzero lists are only creatable through the chaos door
    /// (every public mutation keeps them in sync), so this check runs
    /// under the fault-inject feature.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn audit_flags_stale_nonzero_list() {
        let mut c = TopicCounts::new(2, 4, 5);
        c.enable_tracking();
        c.inc(0, 0, 0);
        c.inc(0, 1, 1);
        c.inc(1, 2, 2);
        let lens = vec![2, 1];
        assert_eq!(audit_topic_counts(&c, &lens), Ok(()));
        // Move doc 0's token at word 0 from topic 0 to topic 3. All
        // three dense arrays stay mutually consistent; only the sorted
        // nonzero lists go stale.
        c.corrupt_shift_token(0, 0, 0, 3);
        let err = audit_topic_counts(&c, &lens).unwrap_err();
        assert!(err.contains("nonzero topic list"), "{err}");
    }

    #[test]
    fn audit_flags_dimension_mismatch() {
        let (c, mut lens) = consistent_counts(false);
        lens.push(0);
        let err = audit_topic_counts(&c, &lens).unwrap_err();
        assert!(err.contains("doc-topic cells"), "{err}");
    }

    #[test]
    fn occupancy_audit() {
        assert_eq!(audit_occupancy(&[2, 0, 3], 5), Ok(()));
        assert!(audit_occupancy(&[2, 0, 3], 6).is_err());
    }

    #[test]
    fn strict_policy_aborts_on_first_trip() {
        let mut mon = HealthMonitor::new(HealthPolicy::strict(), "lda");
        let mut obs = VecObserver::default();
        let err = mon
            .tripped(4, GibbsKernel::Serial, "boom".into(), &mut obs)
            .unwrap_err();
        assert!(matches!(err, ModelError::Health { .. }));
        assert!(err.to_string().contains("unrecoverable health failure"));
        let actions: Vec<&str> = obs.health.iter().map(|e| e.action).collect();
        assert_eq!(actions, vec!["sentinel_trip", "abort"]);
    }

    #[test]
    fn rollback_consumes_budget_then_aborts() {
        let policy =
            HealthPolicy::recover().action(RecoveryAction::RollbackRetry { max_retries: 2 });
        let mut mon = HealthMonitor::new(policy, "lda");
        let mut obs = VecObserver::default();
        mon.keep(lda_snap(3));
        for _ in 0..2 {
            let rec = mon
                .tripped(5, GibbsKernel::Serial, "bad".into(), &mut obs)
                .unwrap();
            assert!(matches!(rec, Recovery::Rollback(_)));
        }
        let err = mon
            .tripped(5, GibbsKernel::Serial, "bad".into(), &mut obs)
            .unwrap_err();
        assert!(err.to_string().contains("retries exhausted"), "{err}");
    }

    #[test]
    fn no_recovery_point_aborts() {
        let mut mon = HealthMonitor::new(HealthPolicy::recover(), "joint");
        let mut obs = VecObserver::default();
        let err = mon
            .tripped(0, GibbsKernel::Sparse, "bad".into(), &mut obs)
            .unwrap_err();
        assert!(err.to_string().contains("no recovery point"), "{err}");
    }

    #[test]
    fn sparse_degrades_after_budget_and_resets_retries() {
        let policy = HealthPolicy::recover().max_retries(1);
        let mut mon = HealthMonitor::new(policy, "lda");
        let mut obs = VecObserver::default();
        mon.keep(lda_snap(2));
        let rec = mon
            .tripped(5, GibbsKernel::Sparse, "drift".into(), &mut obs)
            .unwrap();
        assert!(matches!(rec, Recovery::Rollback(_)));
        let rec = mon
            .tripped(5, GibbsKernel::Sparse, "drift".into(), &mut obs)
            .unwrap();
        let Recovery::Degrade(snap, target) = rec else {
            panic!("expected degradation")
        };
        assert_eq!(snap.next_sweep(), 2);
        assert_eq!(target, GibbsKernel::Serial);
        // Budget reset: the serial replay gets a fresh rollback…
        let rec = mon
            .tripped(5, GibbsKernel::Serial, "still bad".into(), &mut obs)
            .unwrap();
        assert!(matches!(rec, Recovery::Rollback(_)));
        // …and exhaustion under serial aborts (nothing left to degrade).
        let err = mon
            .tripped(5, GibbsKernel::Serial, "still bad".into(), &mut obs)
            .unwrap_err();
        assert!(matches!(err, ModelError::Health { .. }));
        let actions: Vec<&str> = obs.health.iter().map(|e| e.action).collect();
        assert!(actions.contains(&"degrade"));
    }

    #[test]
    fn sparse_parallel_degrades_to_serial_after_budget() {
        let policy = HealthPolicy::recover().max_retries(0);
        let mut mon = HealthMonitor::new(policy, "lda");
        let mut obs = VecObserver::default();
        mon.keep(lda_snap(4));
        let rec = mon
            .tripped(
                7,
                GibbsKernel::SparseParallel,
                "chunk drift".into(),
                &mut obs,
            )
            .unwrap();
        let Recovery::Degrade(snap, target) = rec else {
            panic!("expected degradation")
        };
        assert_eq!(snap.next_sweep(), 4);
        assert_eq!(target, GibbsKernel::Serial);
        let degrade = obs
            .health
            .iter()
            .find(|e| e.action == "degrade")
            .expect("degrade event");
        assert!(
            degrade
                .detail
                .contains("sparse-parallel kernel degraded to serial"),
            "{}",
            degrade.detail
        );
    }

    #[test]
    fn alias_walks_the_full_degradation_ladder_to_serial() {
        // alias → sparse → serial → abort, with the retry budget reset
        // at every rung.
        let policy = HealthPolicy::recover().max_retries(0);
        let mut mon = HealthMonitor::new(policy, "lda");
        let mut obs = VecObserver::default();
        mon.keep(lda_snap(6));
        let rec = mon
            .tripped(9, GibbsKernel::Alias, "proposal drift".into(), &mut obs)
            .unwrap();
        let Recovery::Degrade(snap, target) = rec else {
            panic!("expected alias degradation")
        };
        assert_eq!(snap.next_sweep(), 6);
        assert_eq!(target, GibbsKernel::Sparse);
        let rec = mon
            .tripped(9, GibbsKernel::Sparse, "still bad".into(), &mut obs)
            .unwrap();
        let Recovery::Degrade(_, target) = rec else {
            panic!("expected sparse degradation")
        };
        assert_eq!(target, GibbsKernel::Serial);
        let err = mon
            .tripped(9, GibbsKernel::Serial, "still bad".into(), &mut obs)
            .unwrap_err();
        assert!(matches!(err, ModelError::Health { .. }));
        let details: Vec<&str> = obs
            .health
            .iter()
            .filter(|e| e.action == "degrade")
            .map(|e| e.detail.as_str())
            .collect();
        assert_eq!(details.len(), 2);
        assert!(
            details[0].contains("alias kernel degraded to sparse"),
            "{}",
            details[0]
        );
        assert!(
            details[1].contains("sparse kernel degraded to serial"),
            "{}",
            details[1]
        );
    }

    #[test]
    fn incident_closes_only_past_trip_sweep() {
        let mut mon = HealthMonitor::new(HealthPolicy::recover(), "lda");
        let mut obs = VecObserver::default();
        mon.keep(lda_snap(3));
        let (c, lens) = consistent_counts(false);
        let _ = mon
            .tripped(6, GibbsKernel::Serial, "bad".into(), &mut obs)
            .unwrap();
        // Healthy sweeps before the trip sweep keep the incident open.
        assert!(mon
            .inspect_counts(4, -1.0, &c, &lens, None, &mut obs)
            .is_none());
        assert!(obs.health.iter().all(|e| e.action != "recovered"));
        // Passing the trip sweep closes it and resets the budget.
        assert!(mon
            .inspect_counts(6, -1.0, &c, &lens, None, &mut obs)
            .is_none());
        assert!(obs.health.iter().any(|e| e.action == "recovered"));
    }

    #[test]
    fn sentinels_catch_nan_total_and_drift() {
        let mut mon = HealthMonitor::new(HealthPolicy::strict(), "lda");
        let mut obs = VecObserver::default();
        let (c, lens) = consistent_counts(false);
        assert!(mon
            .inspect_counts(0, f64::NAN, &c, &lens, None, &mut obs)
            .is_some());
        assert!(mon
            .inspect_counts(0, -1.0, &c, &lens[..2], None, &mut obs)
            .is_some());
        assert!(mon
            .inspect_counts(0, -1.0, &c, &lens, Some(1e-3), &mut obs)
            .is_some());
        assert!(mon
            .inspect_counts(0, -1.0, &c, &lens, Some(1e-9), &mut obs)
            .is_none());
        // NaN drift must trip, not slip through a `<=` comparison.
        assert!(mon
            .inspect_counts(0, -1.0, &c, &lens, Some(f64::NAN), &mut obs)
            .is_some());
    }

    #[test]
    fn audit_cadence_and_events() {
        let policy = HealthPolicy::strict().audit_every(4);
        let mut mon = HealthMonitor::new(policy, "lda");
        let mut obs = VecObserver::default();
        let (c, lens) = consistent_counts(true);
        for sweep in 0..8 {
            assert!(mon
                .inspect_counts(sweep, -1.0, &c, &lens, None, &mut obs)
                .is_none());
        }
        let passes = obs
            .health
            .iter()
            .filter(|e| e.action == "audit_pass")
            .count();
        assert_eq!(passes, 2); // sweeps 3 and 7
    }

    #[test]
    fn checkpoint_retry_event() {
        let mon = HealthMonitor::new(HealthPolicy::recover(), "gmm");
        let mut obs = VecObserver::default();
        mon.note_checkpoint_retry(7, 2, &mut obs);
        assert_eq!(obs.health.len(), 1);
        assert_eq!(obs.health[0].action, "checkpoint_retry");
        assert_eq!(obs.health[0].retries, 2);
    }

    proptest! {
        /// No false positives: every store reachable through the public
        /// `inc`/`dec` API (the only mutations the kernels perform)
        /// passes the audit, tracked or not.
        #[test]
        fn audit_accepts_reachable_states(
            ops in proptest::collection::vec((0usize..4, 0usize..5, 0usize..6), 1..120),
            tracked in proptest::bool::ANY,
        ) {
            let (d, v, k) = (4, 5, 6);
            let mut c = TopicCounts::new(d, k, v);
            if tracked {
                c.enable_tracking();
            }
            let mut doc_lens = vec![0usize; d];
            let mut placed: Vec<(usize, usize, usize)> = Vec::new();
            for (i, &(dd, ww, tt)) in ops.iter().enumerate() {
                c.inc(dd, ww, tt);
                doc_lens[dd] += 1;
                placed.push((dd, ww, tt));
                if i % 3 == 2 {
                    let (rd, rw, rt) = placed.remove(i / 3);
                    c.dec(rd, rw, rt);
                    doc_lens[rd] -= 1;
                }
            }
            prop_assert_eq!(audit_topic_counts(&c, &doc_lens), Ok(()));
        }

        /// No false negatives: a single raw-cell perturbation of a
        /// consistent store is always flagged.
        #[test]
        fn audit_flags_single_perturbations(
            which in 0usize..3,
            cell in 0usize..12,
            bump in prop_oneof![Just(1u32), Just(3u32), Just(u32::MAX)],
        ) {
            let (c, lens) = consistent_counts(false);
            let (k, v) = (c.topics(), c.vocab());
            let (mut n_dk, mut n_kw, mut n_k) = c.into_parts();
            match which {
                0 => {
                    let i = cell % n_dk.len();
                    n_dk[i] = n_dk[i].wrapping_add(bump);
                }
                1 => {
                    let i = cell % n_kw.len();
                    n_kw[i] = n_kw[i].wrapping_add(bump);
                }
                _ => {
                    let i = cell % n_k.len();
                    n_k[i] = n_k[i].wrapping_add(bump);
                }
            }
            let c = TopicCounts::from_parts(k, v, n_dk, n_kw, n_k);
            prop_assert!(audit_topic_counts(&c, &lens).is_err());
        }
    }
}

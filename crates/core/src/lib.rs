//! The paper's primary contribution: a **joint topic model** coupling a
//! categorical distribution over sensory texture terms with Gaussian
//! components over gel and emulsion concentration vectors, inferred by
//! collapsed Gibbs sampling (paper Section III, Eq. 1–5).
//!
//! Model, per topic `k ∈ 1..K`:
//!
//! * `φ_k ~ Dir(γ)` — texture-term distribution;
//! * `(μ_k, Λ_k) ~ NW(μ₀ᵍ, βᵍ, νᵍ, Sᵍ)` — gel-concentration Gaussian;
//! * `(m_k, L_k) ~ NW(m₀, βᵉ, νᵉ, Sᵉ)` — emulsion Gaussian.
//!
//! Per recipe `d`: `θ_d ~ Dir(α)`; each texture token draws
//! `z_dn ~ Mult(θ_d)`, `w_dn ~ Mult(φ_{z_dn})`; one topic
//! `y_d ~ Mult(θ_d)` generates both concentration vectors
//! `g_d ~ N(μ_{y_d}, Λ_{y_d}⁻¹)` and `e_d ~ N(m_{y_d}, L_{y_d}⁻¹)`.
//! Because `z` and `y` share `θ_d`, the texture words and the gel
//! composition of a recipe pull each other toward the same topics — the
//! mechanism that bridges sensory vocabulary and rheology.
//!
//! Notation fix (documented deviation): the paper's Eq. (3) prints only one
//! Gaussian factor and mislabels its arguments; consistent with the
//! generative model (Fig. 1 / Eq. 1), our `y_d` conditional uses **both**
//! `N(g_d|μ_k,Λ_k)` and `N(e_d|m_k,L_k)`.
//!
//! Three inference engines share the [`data::ModelDoc`] input:
//!
//! * [`joint::JointTopicModel`] — the paper's semi-collapsed sampler:
//!   `θ, φ` collapsed, Gaussian topic parameters explicitly resampled from
//!   their Normal-Wishart posteriors each sweep (Eq. 2–4);
//! * [`collapsed::CollapsedJointModel`] — a fully-collapsed variant where
//!   the Gaussians are integrated out into Student-t predictives
//!   (extension / ablation E8);
//! * baselines: [`lda::LdaModel`] (terms only) and [`gmm::GmmModel`]
//!   (concentrations only), used by the recovery ablation E7.
//!
//! Every Gibbs engine is driven through one entry point,
//! `fit_with(rng, docs, options)`, whose [`fit::FitOptions`] builder
//! collects the cross-cutting concerns: a per-sweep [`SweepObserver`]
//! (re-exported from `rheotex-obs`), a [`checkpoint::CheckpointSink`]
//! receiving periodic [`checkpoint::SamplerSnapshot`]s, a resume
//! snapshot to continue bit-identically from, the worker-thread count
//! for the deterministic chunked parallel sweeps, the Gibbs kernel
//! class ([`fit::GibbsKernel`]: `serial`, `parallel`, the
//! `O(nnz)`-per-token `sparse` and its chunked `sparse-parallel`
//! composition, or the `O(1)`-amortized alias-table MH kernel
//! [`alias`]), and the posterior-predictive cache switch. The historical per-concern method triplet has been removed;
//! `fit_with` is the only fitting surface. Durable snapshot storage
//! lives in the `rheotex-resilience` crate, and the serving-time
//! fold-in inferencer over a frozen fit lives in [`foldin`].
//!
//! ## Parallel determinism contract
//!
//! With `FitOptions::threads(n)` for any `n >= 1`, a sweep partitions
//! documents into fixed 64-doc chunks; chunk `c` samples from its own
//! `ChaCha8Rng` streams (`2c` for the token sweep, `2c + 1` for the
//! `y`/assignment sweep) derived from one per-sweep seed drawn from the
//! master generator, and chunk results are merged in document order.
//! The fitted model is therefore a pure function of `(config, docs,
//! seed)` — *identical for every thread count* — while within a sweep
//! chunks read topic counts that are stale by at most one chunk's
//! updates (the standard approximate-distributed-Gibbs trade). The
//! serial kernel (`threads == 0`) remains bit-identical to the
//! historical implementation.
//!
//! The sparse kernel (`FitOptions::kernel(GibbsKernel::Sparse)`) is a
//! third bit-class: it samples the exact same conditional as the serial
//! kernel but decomposes the weight into smoothing / document / word
//! buckets ([`sparse`]) over the [`counts::TopicCounts`] nonzero-topic
//! lists, consuming one uniform draw per token, so its RNG consumption
//! differs from the dense scan. It is still a pure function of
//! `(config, docs, seed)`: same seed → byte-identical fitted model,
//! live or across kill-and-resume (snapshots record the kernel class
//! and the nonzero lists rebuild in canonical sorted order).
//!
//! The alias kernel (`FitOptions::kernel(GibbsKernel::Alias)`) is a
//! fifth bit-class riding the same 64-doc chunk grid at any thread
//! count: once per sweep it freezes the word–topic counts into
//! per-word Vose alias tables ([`alias`]) and each token cycles a
//! document proposal and a word proposal, each corrected by a
//! Metropolis-Hastings test against the fresh counts — exactly four
//! uniform draws per token, so the chain is thread-count invariant and
//! resume-exact (tables are never persisted; they are re-derived from
//! the restored counts). The chain is stationary-exact but not
//! sweep-for-sweep identical in distribution to the dense conditional.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alias;
pub mod chains;
pub mod checkpoint;
pub mod collapsed;
pub mod config;
pub mod counts;
pub mod data;
pub mod diagnostics;
pub mod error;
pub mod fit;
pub mod foldin;
pub mod gmm;
pub mod health;
pub mod init;
pub mod joint;
pub mod lda;
pub mod model_selection;
pub mod sparse;
pub mod summary;

pub use chains::{ChainFit, ChainSet, ChainSetFit};
pub use checkpoint::{
    fingerprint_docs, CheckpointSink, GmmSnapshot, JointSnapshot, LdaSnapshot,
    MemoryCheckpointSink, NoCheckpoint, RngState, SamplerSnapshot,
};
pub use config::{JointConfig, NwHyper};
pub use data::ModelDoc;
pub use error::ModelError;
pub use fit::{FitOptions, GibbsKernel};
pub use foldin::{fold_in, FoldInAlgorithm, FoldInConfig, FoldInResult, FrozenTopics};
#[cfg(feature = "fault-inject")]
pub use health::CountChaos;
pub use health::{
    audit_occupancy, audit_topic_counts, HealthMode, HealthMonitor, HealthPolicy, RecoveryAction,
};
pub use joint::{FittedJointModel, JointTopicModel};
pub use rheotex_obs::{
    HealthEvent, NullObserver, SweepObserver, SweepStats, TraceDiagnostic, VecObserver,
};
pub use summary::TopicSummary;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Maximum ridge-jitter retries the Gibbs engines spend recovering a
/// numerically non-positive-definite matrix before giving up (see
/// `rheotex_linalg::Cholesky::factor_with_jitter`). With the ×100
/// escalation this spans ε from ~1e-10 to ~1e4 times the diagonal scale.
pub const JITTER_MAX_ATTEMPTS: usize = 8;

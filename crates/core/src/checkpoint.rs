//! Sampler state snapshots and the checkpoint hook samplers call.
//!
//! A Gibbs run is a pure function of `(config, docs, rng)`, so resuming
//! bit-identically only requires capturing the mutable loop state at a
//! sweep boundary: assignments, counts, sufficient statistics, the
//! explicit Gaussian topic parameters, the post-burn-in accumulators, the
//! log-likelihood trace, and the exact RNG position. The structs here are
//! that capture, taken *after* a sweep completes (trace pushed,
//! estimates accumulated) with `next_sweep` pointing at the first sweep
//! still to run.
//!
//! Serialization is plain `serde`; durability (framing, CRC, atomic
//! rename) lives in the `rheotex-resilience` crate, which implements
//! [`CheckpointSink`] on top of these types. Samplers stay storage-
//! agnostic: they only decide *when* a snapshot is due and hand it over.

use crate::data::ModelDoc;
use crate::error::ModelError;
use crate::fit::GibbsKernel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_linalg::dist::{GaussianPrecision, GaussianStats};
use rheotex_linalg::{Matrix, Vector};
use serde::{Deserialize, Serialize};

/// Exact position of a [`ChaCha8Rng`]: seed, stream, and 128-bit word
/// position (split into two `u64`s so the JSON stays integer-exact).
///
/// [`RngState::restore`] rebuilds a generator that produces the same
/// stream from the captured point onward, bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// The 32-byte seed the generator was created from.
    pub seed: Vec<u8>,
    /// ChaCha stream id.
    pub stream: u64,
    /// Low 64 bits of the word position.
    pub word_pos_lo: u64,
    /// High 64 bits of the word position.
    pub word_pos_hi: u64,
}

impl RngState {
    /// Captures the current position of `rng`.
    #[must_use]
    pub fn capture(rng: &ChaCha8Rng) -> Self {
        let word_pos = rng.get_word_pos();
        Self {
            seed: rng.get_seed().to_vec(),
            stream: rng.get_stream(),
            word_pos_lo: word_pos as u64,
            word_pos_hi: (word_pos >> 64) as u64,
        }
    }

    /// Rebuilds a generator at the captured position.
    ///
    /// # Errors
    /// [`ModelError::ResumeMismatch`] if the seed is not 32 bytes.
    pub fn restore(&self) -> Result<ChaCha8Rng, ModelError> {
        if self.seed.len() != 32 {
            return Err(ModelError::ResumeMismatch {
                what: format!("rng seed has {} bytes, expected 32", self.seed.len()),
            });
        }
        let mut seed = [0u8; 32];
        seed.copy_from_slice(&self.seed);
        let mut rng = ChaCha8Rng::from_seed(seed);
        rng.set_stream(self.stream);
        rng.set_word_pos(u128::from(self.word_pos_hi) << 64 | u128::from(self.word_pos_lo));
        Ok(rng)
    }
}

/// Serializable form of a [`GaussianPrecision`] topic parameter (which
/// itself caches a factorization and is not serialized directly).
/// Restoring re-factorizes the identical precision bits, so the rebuilt
/// parameter scores observations bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianParamState {
    /// Component mean `μ`.
    pub mean: Vector,
    /// Component precision `Λ`.
    pub precision: Matrix,
}

impl GaussianParamState {
    /// Captures a live parameter.
    #[must_use]
    pub fn capture(param: &GaussianPrecision) -> Self {
        Self {
            mean: param.mean().clone(),
            precision: param.precision().clone(),
        }
    }

    /// Rebuilds the live parameter (re-validating the precision matrix).
    ///
    /// # Errors
    /// [`ModelError::ResumeMismatch`] if the stored precision is no
    /// longer a valid SPD matrix for the stored mean.
    pub fn restore(&self) -> Result<GaussianPrecision, ModelError> {
        GaussianPrecision::new(self.mean.clone(), self.precision.clone()).map_err(|e| {
            ModelError::ResumeMismatch {
                what: format!("stored Gaussian parameter is invalid: {e}"),
            }
        })
    }
}

/// Snapshot of a joint-model fit at a sweep boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JointSnapshot {
    /// Configuration of the run that wrote the snapshot.
    pub config: crate::config::JointConfig,
    /// First sweep still to run (the snapshot was taken after sweep
    /// `next_sweep − 1` completed).
    pub next_sweep: usize,
    /// Gibbs kernel class of the run that wrote the snapshot. `None` in
    /// snapshots written before kernels were recorded (those runs
    /// predate the sparse kernel, so any kernel resumes them).
    #[serde(default)]
    pub kernel: Option<GibbsKernel>,
    /// [`fingerprint_docs`] of the corpus the run was fitted on.
    pub doc_fingerprint: u64,
    /// Token topic assignments `z`, one vector per document.
    pub z: Vec<Vec<usize>>,
    /// Recipe topic assignments `y`.
    pub y: Vec<usize>,
    /// Token-topic counts per document, flattened D×K.
    pub n_dk: Vec<u32>,
    /// Term-topic counts, flattened K×V.
    pub n_kw: Vec<u32>,
    /// Tokens per topic.
    pub n_k: Vec<u32>,
    /// Gel sufficient statistics per topic.
    pub gel_stats: Vec<GaussianStats>,
    /// Emulsion sufficient statistics per topic.
    pub emu_stats: Vec<GaussianStats>,
    /// Explicit gel topic parameters.
    pub gel_params: Vec<GaussianParamState>,
    /// Explicit emulsion topic parameters.
    pub emu_params: Vec<GaussianParamState>,
    /// Post-burn-in `φ` accumulator, flattened K×V.
    pub phi_acc: Vec<f64>,
    /// Post-burn-in `θ` accumulator, flattened D×K.
    pub theta_acc: Vec<f64>,
    /// Post-burn-in sweeps accumulated so far.
    pub n_samples: usize,
    /// Log-likelihood trace, one entry per completed sweep.
    pub ll_trace: Vec<f64>,
    /// RNG position at the sweep boundary.
    pub rng: RngState,
}

/// Snapshot of an LDA baseline fit at a sweep boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaSnapshot {
    /// Configuration of the run that wrote the snapshot.
    pub config: crate::lda::LdaConfig,
    /// First sweep still to run.
    pub next_sweep: usize,
    /// Gibbs kernel class of the run that wrote the snapshot (`None`
    /// for pre-kernel snapshots).
    #[serde(default)]
    pub kernel: Option<GibbsKernel>,
    /// [`fingerprint_docs`] of the corpus.
    pub doc_fingerprint: u64,
    /// Token topic assignments, one vector per document.
    pub z: Vec<Vec<usize>>,
    /// Token-topic counts per document, flattened D×K.
    pub n_dk: Vec<u32>,
    /// Term-topic counts, flattened K×V.
    pub n_kw: Vec<u32>,
    /// Tokens per topic.
    pub n_k: Vec<u32>,
    /// Post-burn-in `φ` accumulator, flattened K×V.
    pub phi_acc: Vec<f64>,
    /// Post-burn-in `θ` accumulator, flattened D×K.
    pub theta_acc: Vec<f64>,
    /// Post-burn-in sweeps accumulated so far.
    pub n_samples: usize,
    /// Log-likelihood trace, one entry per completed sweep.
    pub ll_trace: Vec<f64>,
    /// RNG position at the sweep boundary.
    pub rng: RngState,
}

/// Snapshot of a GMM baseline fit at a sweep boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GmmSnapshot {
    /// Configuration of the run that wrote the snapshot.
    pub config: crate::gmm::GmmConfig,
    /// First sweep still to run.
    pub next_sweep: usize,
    /// Gibbs kernel class of the run that wrote the snapshot (`None`
    /// for pre-kernel snapshots).
    #[serde(default)]
    pub kernel: Option<GibbsKernel>,
    /// [`fingerprint_docs`] of the corpus.
    pub doc_fingerprint: u64,
    /// Component assignment per document.
    pub assignments: Vec<usize>,
    /// Per-component sufficient statistics.
    pub stats: Vec<GaussianStats>,
    /// Documents per component.
    pub counts: Vec<usize>,
    /// Log-likelihood trace, one entry per completed sweep.
    pub ll_trace: Vec<f64>,
    /// RNG position at the sweep boundary.
    pub rng: RngState,
}

/// A snapshot from any of the three Gibbs engines. This is the unit a
/// [`CheckpointSink`] persists.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SamplerSnapshot {
    /// Joint topic model state.
    Joint(JointSnapshot),
    /// LDA baseline state.
    Lda(LdaSnapshot),
    /// GMM baseline state.
    Gmm(GmmSnapshot),
}

impl SamplerSnapshot {
    /// Engine label matching [`rheotex_obs::SweepStats::engine`].
    #[must_use]
    pub fn engine(&self) -> &'static str {
        match self {
            Self::Joint(_) => "joint",
            Self::Lda(_) => "lda",
            Self::Gmm(_) => "gmm",
        }
    }

    /// First sweep still to run after this snapshot.
    #[must_use]
    pub fn next_sweep(&self) -> usize {
        match self {
            Self::Joint(s) => s.next_sweep,
            Self::Lda(s) => s.next_sweep,
            Self::Gmm(s) => s.next_sweep,
        }
    }
}

/// Destination for periodic snapshots during a checkpointed fit.
///
/// The sampler asks [`CheckpointSink::due`] after every completed sweep
/// and only builds a snapshot (a deep copy of its state) when the sink
/// says yes, so an idle cadence costs nothing. A save failure is
/// reported as a `String` and surfaces from the fit as
/// [`ModelError::Checkpoint`] — a sink that prefers to tolerate write
/// failures (keep sampling, lose the checkpoint) can swallow the error
/// itself and return `Ok`.
pub trait CheckpointSink {
    /// Whether a snapshot should be taken after `sweep` (0-based)
    /// completed.
    fn due(&mut self, sweep: usize) -> bool;

    /// Persists one snapshot.
    ///
    /// # Errors
    /// A human-readable description of the write failure.
    fn save(&mut self, snapshot: SamplerSnapshot) -> Result<(), String>;
}

/// The no-op sink: never due, used by the plain `fit` entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCheckpoint;

impl CheckpointSink for NoCheckpoint {
    fn due(&mut self, _sweep: usize) -> bool {
        false
    }

    fn save(&mut self, _snapshot: SamplerSnapshot) -> Result<(), String> {
        Ok(())
    }
}

/// In-memory sink for tests: keeps every snapshot, and can simulate a
/// crash by failing after a configured number of successful saves.
#[derive(Debug, Clone, Default)]
pub struct MemoryCheckpointSink {
    /// Save cadence in sweeps (0 disables).
    pub every: usize,
    /// Snapshots captured so far, oldest first.
    pub snapshots: Vec<SamplerSnapshot>,
    /// When `Some(n)`, the `n+1`-th save fails with an injected error.
    pub fail_after: Option<usize>,
}

impl MemoryCheckpointSink {
    /// A sink saving every `every` sweeps and never failing.
    #[must_use]
    pub fn new(every: usize) -> Self {
        Self {
            every,
            snapshots: Vec::new(),
            fail_after: None,
        }
    }

    /// The most recent snapshot, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&SamplerSnapshot> {
        self.snapshots.last()
    }
}

impl CheckpointSink for MemoryCheckpointSink {
    fn due(&mut self, sweep: usize) -> bool {
        self.every > 0 && (sweep + 1) % self.every == 0
    }

    fn save(&mut self, snapshot: SamplerSnapshot) -> Result<(), String> {
        if self.fail_after == Some(self.snapshots.len()) {
            return Err("injected checkpoint write failure".to_string());
        }
        self.snapshots.push(snapshot);
        Ok(())
    }
}

/// Offers one snapshot to a sink if its cadence says the sweep is due.
///
/// The single checkpoint decision point shared by every engine's sweep
/// loop: ask the sink whether `sweep` is due, build the (potentially
/// expensive) snapshot only then, and convert a failed save into the
/// typed [`ModelError::Checkpoint`]. `sweep` is the 0-based index of the
/// sweep that just *completed*; the snapshot the closure builds must
/// carry `next_sweep == sweep + 1`.
pub fn save_if_due(
    sink: &mut dyn CheckpointSink,
    sweep: usize,
    make: impl FnOnce() -> SamplerSnapshot,
) -> Result<(), ModelError> {
    if sink.due(sweep) {
        sink.save(make())
            .map_err(|what| ModelError::Checkpoint { what })?;
    }
    Ok(())
}

/// [`save_if_due`] with bounded retry: a failed save is attempted again
/// up to `max_retries` more times before surfacing as
/// [`ModelError::Checkpoint`]. The snapshot is built once and cloned per
/// attempt, so every attempt persists the identical state. Returns the
/// number of retries that were needed (0 when the first attempt
/// succeeded or the sweep was not due), which the health supervisor
/// reports as a `checkpoint_retry` event.
pub fn save_if_due_with_retry(
    sink: &mut dyn CheckpointSink,
    sweep: usize,
    max_retries: usize,
    make: impl FnOnce() -> SamplerSnapshot,
) -> Result<usize, ModelError> {
    if !sink.due(sweep) {
        return Ok(0);
    }
    let snapshot = make();
    let mut last_err = String::new();
    for attempt in 0..=max_retries {
        match sink.save(snapshot.clone()) {
            Ok(()) => return Ok(attempt),
            Err(what) => last_err = what,
        }
    }
    Err(ModelError::Checkpoint {
        what: format!("{last_err} (after {max_retries} retries)"),
    })
}

/// FNV-1a 64-bit fingerprint of a corpus: ids, term sequences, and the
/// exact bit patterns of the concentration vectors. Cheap to recompute
/// on resume and sensitive to any reordering or edit, so a snapshot is
/// only ever replayed against the corpus it was taken from.
#[must_use]
pub fn fingerprint_docs(docs: &[ModelDoc]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(&(docs.len() as u64).to_le_bytes());
    for doc in docs {
        eat(&doc.id.to_le_bytes());
        eat(&(doc.terms.len() as u64).to_le_bytes());
        for &t in &doc.terms {
            eat(&(t as u64).to_le_bytes());
        }
        eat(&(doc.gel.len() as u64).to_le_bytes());
        for &x in doc.gel.iter() {
            eat(&x.to_bits().to_le_bytes());
        }
        eat(&(doc.emulsion.len() as u64).to_le_bytes());
        for &x in doc.emulsion.iter() {
            eat(&x.to_bits().to_le_bytes());
        }
    }
    hash
}

/// Builds the standard [`ModelError::ResumeMismatch`].
pub(crate) fn mismatch(what: impl Into<String>) -> ModelError {
    ModelError::ResumeMismatch { what: what.into() }
}

/// Rejects a resume whose kernel class differs from the one recorded in
/// the snapshot — the kernels are distinct bit-classes, so swapping one
/// mid-run would silently break the resumed-equals-uninterrupted
/// guarantee. Legacy snapshots (`None`) predate kernel recording and
/// resume under any kernel.
pub(crate) fn check_kernel(
    recorded: Option<GibbsKernel>,
    requested: GibbsKernel,
) -> Result<(), ModelError> {
    match recorded {
        Some(k) if k != requested => Err(mismatch(format!(
            "snapshot was written by the {k} kernel; resuming with {requested} \
             would not reproduce the uninterrupted run"
        ))),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_state_roundtrip_is_bit_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        rng.set_stream(3);
        // Advance to a mid-block position so word_pos is nontrivial.
        for _ in 0..37 {
            let _: u64 = rng.gen();
        }
        let state = RngState::capture(&rng);
        let mut restored = state.restore().unwrap();
        for _ in 0..100 {
            assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn rng_state_rejects_bad_seed_length() {
        let state = RngState {
            seed: vec![0u8; 16],
            stream: 0,
            word_pos_lo: 0,
            word_pos_hi: 0,
        };
        assert!(matches!(
            state.restore(),
            Err(ModelError::ResumeMismatch { .. })
        ));
    }

    #[test]
    fn rng_state_survives_serde() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let _: f64 = rng.gen();
        let state = RngState::capture(&rng);
        let json = serde_json::to_string(&state).unwrap();
        let back: RngState = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);
        let mut restored = back.restore().unwrap();
        assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
    }

    fn docs() -> Vec<ModelDoc> {
        (0..3u64)
            .map(|i| {
                ModelDoc::new(
                    i,
                    vec![i as usize, 2],
                    Vector::new(vec![1.0 + i as f64, 2.0, 3.0]),
                    Vector::full(6, 0.5),
                )
            })
            .collect()
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = docs();
        let mut b = docs();
        assert_eq!(fingerprint_docs(&a), fingerprint_docs(&b));
        b[1].gel[0] += 1e-9;
        assert_ne!(fingerprint_docs(&a), fingerprint_docs(&b));
        let mut c = docs();
        c[2].terms.push(0);
        assert_ne!(fingerprint_docs(&a), fingerprint_docs(&c));
        let mut d = docs();
        d.swap(0, 1);
        assert_ne!(fingerprint_docs(&a), fingerprint_docs(&d));
        assert_ne!(fingerprint_docs(&a), fingerprint_docs(&a[..2]));
    }

    #[test]
    fn memory_sink_cadence_and_injected_failure() {
        let mut sink = MemoryCheckpointSink::new(5);
        assert!(!sink.due(0));
        assert!(sink.due(4));
        assert!(sink.due(9));
        assert!(!sink.due(10));
        let mut off = MemoryCheckpointSink::new(0);
        assert!(!off.due(4));

        let snap = SamplerSnapshot::Lda(LdaSnapshot {
            config: crate::lda::LdaConfig {
                n_topics: 1,
                vocab_size: 1,
                alpha: 0.5,
                gamma: 0.1,
                sweeps: 2,
                burn_in: 1,
            },
            next_sweep: 1,
            kernel: None,
            doc_fingerprint: 0,
            z: vec![],
            n_dk: vec![],
            n_kw: vec![],
            n_k: vec![],
            phi_acc: vec![],
            theta_acc: vec![],
            n_samples: 0,
            ll_trace: vec![0.0],
            rng: RngState::capture(&ChaCha8Rng::seed_from_u64(0)),
        });
        assert_eq!(snap.engine(), "lda");
        assert_eq!(snap.next_sweep(), 1);

        sink.fail_after = Some(1);
        sink.save(snap.clone()).unwrap();
        assert!(sink.save(snap).is_err());
        assert_eq!(sink.snapshots.len(), 1);
        assert!(sink.latest().is_some());
    }

    #[test]
    fn no_checkpoint_is_inert() {
        let mut sink = NoCheckpoint;
        assert!(!sink.due(0));
        assert!(!sink.due(999));
    }

    #[test]
    fn kernel_check_accepts_match_and_legacy_rejects_swap() {
        assert!(check_kernel(Some(GibbsKernel::Sparse), GibbsKernel::Sparse).is_ok());
        assert!(check_kernel(None, GibbsKernel::Parallel).is_ok());
        assert!(matches!(
            check_kernel(Some(GibbsKernel::Serial), GibbsKernel::Sparse),
            Err(ModelError::ResumeMismatch { .. })
        ));
    }

    #[test]
    fn legacy_snapshot_json_without_kernel_field_deserializes() {
        let mut sink = MemoryCheckpointSink::new(1);
        let snap = SamplerSnapshot::Gmm(GmmSnapshot {
            config: crate::gmm::GmmConfig::new(1),
            next_sweep: 1,
            kernel: Some(GibbsKernel::Serial),
            doc_fingerprint: 0,
            assignments: vec![],
            stats: vec![],
            counts: vec![],
            ll_trace: vec![],
            rng: RngState::capture(&ChaCha8Rng::seed_from_u64(0)),
        });
        sink.save(snap.clone()).unwrap();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"kernel\":\"serial\""), "{json}");
        // Strip the field the way a pre-kernel snapshot would lack it.
        let legacy = json.replace("\"kernel\":\"serial\",", "");
        let back: SamplerSnapshot = serde_json::from_str(&legacy).unwrap();
        let SamplerSnapshot::Gmm(back) = back else {
            panic!("wrong engine")
        };
        assert_eq!(back.kernel, None);
    }
}

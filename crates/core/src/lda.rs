//! Plain LDA baseline: texture terms only, no concentration channels.
//!
//! This is what "conventional LDA" means in the paper's Section III — a
//! single-modality topic model. The recovery ablation (E7) uses it to show
//! what the joint model's concentration coupling buys: LDA can group
//! recipes that *talk* alike but cannot place topics in concentration
//! space, so it cannot be linked to rheology at all and separates
//! concentration bands only insofar as they use different words.

use crate::checkpoint::{
    fingerprint_docs, mismatch, CheckpointSink, LdaSnapshot, RngState, SamplerSnapshot,
};
use crate::config::JointConfig;
use crate::data::{validate_docs, ModelDoc};
use crate::error::ModelError;
use crate::Result;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rheotex_linalg::dist::sample_categorical;
use rheotex_obs::{NullObserver, SweepObserver, SweepStats};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// LDA configuration (a subset of [`JointConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of topics.
    pub n_topics: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Symmetric document-topic prior.
    pub alpha: f64,
    /// Symmetric topic-term prior.
    pub gamma: f64,
    /// Gibbs sweeps.
    pub sweeps: usize,
    /// Burn-in sweeps.
    pub burn_in: usize,
}

impl From<&JointConfig> for LdaConfig {
    fn from(c: &JointConfig) -> Self {
        Self {
            n_topics: c.n_topics,
            vocab_size: c.vocab_size,
            alpha: c.alpha,
            gamma: c.gamma,
            sweeps: c.sweeps,
            burn_in: c.burn_in,
        }
    }
}

/// A fitted LDA baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedLda {
    /// Topic-term distributions (K × V).
    pub phi: Vec<Vec<f64>>,
    /// Document-topic distributions (D × K).
    pub theta: Vec<Vec<f64>>,
    /// Log-likelihood trace per sweep.
    pub ll_trace: Vec<f64>,
}

impl FittedLda {
    /// Dominant topic per document (argmax θ).
    #[must_use]
    pub fn dominant_topic(&self, d: usize) -> usize {
        let row = &self.theta[d];
        let mut best = 0;
        for (k, &p) in row.iter().enumerate() {
            if p > row[best] {
                best = k;
            }
        }
        best
    }
}

/// Collapsed-Gibbs LDA.
#[derive(Debug, Clone)]
pub struct LdaModel {
    config: LdaConfig,
}

/// Everything the LDA sweep loop mutates.
struct LdaProgress {
    z: Vec<Vec<usize>>,
    n_dk: Vec<u32>,
    n_kw: Vec<u32>,
    n_k: Vec<u32>,
    phi_acc: Vec<f64>,
    theta_acc: Vec<f64>,
    n_samples: usize,
    ll_trace: Vec<f64>,
}

impl LdaModel {
    /// Creates the model.
    ///
    /// # Errors
    /// [`crate::ModelError::InvalidConfig`] for degenerate parameters.
    pub fn new(config: LdaConfig) -> Result<Self> {
        if config.n_topics == 0
            || config.vocab_size == 0
            || config.alpha <= 0.0
            || config.gamma <= 0.0
            || config.sweeps == 0
            || config.burn_in >= config.sweeps
        {
            return Err(crate::ModelError::InvalidConfig {
                what: format!("{config:?}"),
            });
        }
        Ok(Self { config })
    }

    /// Fits by collapsed Gibbs. Docs' concentration vectors are ignored;
    /// docs without terms get a uniform θ row.
    ///
    /// # Errors
    /// [`crate::ModelError::InvalidData`] for malformed docs.
    pub fn fit<R: Rng + ?Sized>(&self, rng: &mut R, docs: &[ModelDoc]) -> Result<FittedLda> {
        self.fit_observed(rng, docs, &mut NullObserver)
    }

    /// Like [`fit`](Self::fit), but reports one [`SweepStats`] per Gibbs
    /// sweep to `observer` (engine `"lda"`, occupancy counted in tokens).
    /// When the observer is disabled no per-sweep statistics are computed
    /// and the fit is byte-identical to [`fit`](Self::fit); observation
    /// never touches the RNG stream, so results match either way.
    ///
    /// # Errors
    /// [`crate::ModelError::InvalidData`] for malformed docs.
    pub fn fit_observed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        observer: &mut dyn SweepObserver,
    ) -> Result<FittedLda> {
        self.validate(docs)?;
        let mut prog = self.init_progress(rng, docs);
        for sweep in 0..self.config.sweeps {
            self.sweep_once(rng, docs, &mut prog, sweep, observer);
        }
        Ok(self.finalize(docs.len(), prog))
    }

    /// [`Self::fit_observed`] with periodic checkpointing; see
    /// [`crate::joint::JointTopicModel::fit_checkpointed`] for the
    /// contract. Checkpointing never perturbs the RNG stream.
    ///
    /// # Errors
    /// As [`Self::fit`], plus [`ModelError::Checkpoint`] when the sink
    /// reports a write failure.
    pub fn fit_checkpointed(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<FittedLda> {
        self.validate(docs)?;
        let mut prog = self.init_progress(rng, docs);
        self.run_sweeps(rng, docs, &mut prog, 0, observer, sink)?;
        Ok(self.finalize(docs.len(), prog))
    }

    /// Continues a fit from `snapshot`, bit-identically to the run that
    /// wrote it; see [`crate::joint::JointTopicModel::resume_observed`]
    /// for the contract.
    ///
    /// # Errors
    /// [`ModelError::ResumeMismatch`] for a snapshot that does not belong
    /// to this `(config, docs)` pair; plus everything
    /// [`Self::fit_checkpointed`] can return.
    pub fn resume_observed(
        &self,
        docs: &[ModelDoc],
        snapshot: LdaSnapshot,
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<FittedLda> {
        self.validate(docs)?;
        let (mut rng, mut prog, start) = self.restore(docs, snapshot)?;
        self.run_sweeps(&mut rng, docs, &mut prog, start, observer, sink)?;
        Ok(self.finalize(docs.len(), prog))
    }

    fn validate(&self, docs: &[ModelDoc]) -> Result<()> {
        // Vector dims are irrelevant here; validate terms only by passing
        // the docs' own dims through.
        if docs.is_empty() {
            return Err(ModelError::InvalidData {
                what: "corpus is empty".into(),
            });
        }
        let gd = docs[0].gel.len();
        let ed = docs[0].emulsion.len();
        validate_docs(docs, self.config.vocab_size, gd, ed)
    }

    fn init_progress<R: Rng + ?Sized>(&self, rng: &mut R, docs: &[ModelDoc]) -> LdaProgress {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let d_count = docs.len();
        let mut z: Vec<Vec<usize>> = Vec::with_capacity(d_count);
        let mut n_dk = vec![0u32; d_count * k];
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, doc) in docs.iter().enumerate() {
            let zs: Vec<usize> = doc
                .terms
                .iter()
                .map(|&w| {
                    let t = rng.gen_range(0..k);
                    n_dk[d * k + t] += 1;
                    n_kw[t * v + w] += 1;
                    n_k[t] += 1;
                    t
                })
                .collect();
            z.push(zs);
        }
        LdaProgress {
            z,
            n_dk,
            n_kw,
            n_k,
            phi_acc: vec![0.0f64; k * v],
            theta_acc: vec![0.0f64; d_count * k],
            n_samples: 0,
            ll_trace: Vec::with_capacity(cfg.sweeps),
        }
    }

    fn run_sweeps(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        start_sweep: usize,
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
    ) -> Result<()> {
        for sweep in start_sweep..self.config.sweeps {
            self.sweep_once(rng, docs, prog, sweep, observer);
            if sink.due(sweep) {
                let snap = self.snapshot(rng, docs, prog, sweep + 1);
                sink.save(SamplerSnapshot::Lda(snap))
                    .map_err(|what| ModelError::Checkpoint { what })?;
            }
        }
        Ok(())
    }

    fn sweep_once<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let sweep_start = observer.enabled().then(Instant::now);
        let mut weights = vec![0.0f64; k];
        let mut ll = 0.0;
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let old = prog.z[d][n];
                prog.n_dk[d * k + old] -= 1;
                prog.n_kw[old * v + w] -= 1;
                prog.n_k[old] -= 1;
                for (kk, weight) in weights.iter_mut().enumerate() {
                    *weight = (f64::from(prog.n_dk[d * k + kk]) + cfg.alpha)
                        * (f64::from(prog.n_kw[kk * v + w]) + cfg.gamma)
                        / (f64::from(prog.n_k[kk]) + cfg.gamma * v as f64);
                }
                let new = sample_categorical(rng, &weights).expect("positive weights");
                prog.z[d][n] = new;
                prog.n_dk[d * k + new] += 1;
                prog.n_kw[new * v + w] += 1;
                prog.n_k[new] += 1;
                ll += ((f64::from(prog.n_kw[new * v + w]) + cfg.gamma)
                    / (f64::from(prog.n_k[new]) + cfg.gamma * v as f64))
                    .ln();
            }
        }
        prog.ll_trace.push(ll);
        if let Some(started) = sweep_start {
            let occupancy: Vec<usize> = prog.n_k.iter().map(|&c| c as usize).collect();
            let (topic_entropy, min_occupancy, max_occupancy) =
                SweepStats::occupancy_summary(&occupancy);
            observer.on_sweep(&SweepStats {
                engine: "lda",
                sweep,
                total_sweeps: cfg.sweeps,
                elapsed_us: started.elapsed().as_micros() as u64,
                log_likelihood: ll,
                topic_entropy,
                min_occupancy,
                max_occupancy,
                nw_draws: 0,
                jitter_retries: 0,
            });
        }
        if sweep >= cfg.burn_in {
            for kk in 0..k {
                let denom = f64::from(prog.n_k[kk]) + cfg.gamma * v as f64;
                for w in 0..v {
                    prog.phi_acc[kk * v + w] +=
                        (f64::from(prog.n_kw[kk * v + w]) + cfg.gamma) / denom;
                }
            }
            let alpha_sum = cfg.alpha * k as f64;
            for (d, doc) in docs.iter().enumerate() {
                let denom = doc.terms.len() as f64 + alpha_sum;
                for kk in 0..k {
                    prog.theta_acc[d * k + kk] +=
                        (f64::from(prog.n_dk[d * k + kk]) + cfg.alpha) / denom;
                }
            }
            prog.n_samples += 1;
        }
    }

    fn finalize(&self, d_count: usize, prog: LdaProgress) -> FittedLda {
        let k = self.config.n_topics;
        let v = self.config.vocab_size;
        let norm = 1.0 / prog.n_samples.max(1) as f64;
        FittedLda {
            phi: (0..k)
                .map(|kk| (0..v).map(|w| prog.phi_acc[kk * v + w] * norm).collect())
                .collect(),
            theta: (0..d_count)
                .map(|d| (0..k).map(|kk| prog.theta_acc[d * k + kk] * norm).collect())
                .collect(),
            ll_trace: prog.ll_trace,
        }
    }

    fn snapshot(
        &self,
        rng: &ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &LdaProgress,
        next_sweep: usize,
    ) -> LdaSnapshot {
        LdaSnapshot {
            config: self.config.clone(),
            next_sweep,
            doc_fingerprint: fingerprint_docs(docs),
            z: prog.z.clone(),
            n_dk: prog.n_dk.clone(),
            n_kw: prog.n_kw.clone(),
            n_k: prog.n_k.clone(),
            phi_acc: prog.phi_acc.clone(),
            theta_acc: prog.theta_acc.clone(),
            n_samples: prog.n_samples,
            ll_trace: prog.ll_trace.clone(),
            rng: RngState::capture(rng),
        }
    }

    fn restore(
        &self,
        docs: &[ModelDoc],
        snap: LdaSnapshot,
    ) -> Result<(ChaCha8Rng, LdaProgress, usize)> {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let d_count = docs.len();
        if snap.config != *cfg {
            return Err(mismatch("snapshot was written with a different config"));
        }
        if snap.doc_fingerprint != fingerprint_docs(docs) {
            return Err(mismatch("snapshot was written for a different corpus"));
        }
        if snap.next_sweep > cfg.sweeps {
            return Err(mismatch(format!(
                "snapshot next_sweep {} exceeds configured sweeps {}",
                snap.next_sweep, cfg.sweeps
            )));
        }
        if snap.ll_trace.len() != snap.next_sweep {
            return Err(mismatch(format!(
                "ll_trace has {} entries for {} completed sweeps",
                snap.ll_trace.len(),
                snap.next_sweep
            )));
        }
        let expect_samples = snap.next_sweep.saturating_sub(cfg.burn_in);
        if snap.n_samples != expect_samples {
            return Err(mismatch(format!(
                "n_samples {} does not match {} post-burn-in sweeps",
                snap.n_samples, expect_samples
            )));
        }
        if snap.z.len() != d_count {
            return Err(mismatch("assignment lengths do not match the corpus"));
        }
        for (d, doc) in docs.iter().enumerate() {
            if snap.z[d].len() != doc.terms.len() {
                return Err(mismatch(format!(
                    "doc {d}: token assignment length mismatch"
                )));
            }
        }
        if snap.z.iter().flatten().any(|&t| t >= k) {
            return Err(mismatch("assignment refers to a topic out of range"));
        }
        if snap.n_dk.len() != d_count * k
            || snap.n_kw.len() != k * v
            || snap.n_k.len() != k
            || snap.phi_acc.len() != k * v
            || snap.theta_acc.len() != d_count * k
        {
            return Err(mismatch("count or accumulator arrays have wrong sizes"));
        }
        let mut n_dk = vec![0u32; d_count * k];
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = snap.z[d][n];
                n_dk[d * k + t] += 1;
                n_kw[t * v + w] += 1;
                n_k[t] += 1;
            }
        }
        if n_dk != snap.n_dk || n_kw != snap.n_kw || n_k != snap.n_k {
            return Err(mismatch("counts are inconsistent with assignments"));
        }
        let rng = snap.rng.restore()?;
        let prog = LdaProgress {
            z: snap.z,
            n_dk: snap.n_dk,
            n_kw: snap.n_kw,
            n_k: snap.n_k,
            phi_acc: snap.phi_acc,
            theta_acc: snap.theta_acc,
            n_samples: snap.n_samples,
            ll_trace: snap.ll_trace,
        };
        Ok((rng, prog, snap.next_sweep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_linalg::Vector;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(53)
    }

    fn docs_two_vocab_clusters(n_per: usize) -> Vec<ModelDoc> {
        (0..2 * n_per)
            .map(|i| {
                let c = i % 2;
                ModelDoc::new(
                    i as u64,
                    vec![2 * c, 2 * c + 1, 2 * c, 2 * c + 1],
                    Vector::zeros(3),
                    Vector::zeros(6),
                )
            })
            .collect()
    }

    fn quick() -> LdaConfig {
        LdaConfig {
            n_topics: 2,
            vocab_size: 4,
            alpha: 0.5,
            gamma: 0.1,
            sweeps: 60,
            burn_in: 30,
        }
    }

    #[test]
    fn separates_vocabulary_clusters() {
        let docs = docs_two_vocab_clusters(30);
        let fit = LdaModel::new(quick())
            .unwrap()
            .fit(&mut rng(), &docs)
            .unwrap();
        let t0 = fit.dominant_topic(0);
        let t1 = fit.dominant_topic(1);
        assert_ne!(t0, t1);
        let agree = (0..docs.len())
            .filter(|&d| fit.dominant_topic(d) == if d % 2 == 0 { t0 } else { t1 })
            .count();
        assert!(agree as f64 / docs.len() as f64 > 0.95);
    }

    #[test]
    fn phi_rows_are_distributions() {
        let docs = docs_two_vocab_clusters(10);
        let fit = LdaModel::new(quick())
            .unwrap()
            .fit(&mut rng(), &docs)
            .unwrap();
        for row in &fit.phi {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn config_validation() {
        let mut c = quick();
        c.n_topics = 0;
        assert!(LdaModel::new(c).is_err());
        let mut c = quick();
        c.burn_in = c.sweeps;
        assert!(LdaModel::new(c).is_err());
    }

    #[test]
    fn empty_corpus_rejected() {
        assert!(LdaModel::new(quick())
            .unwrap()
            .fit(&mut rng(), &[])
            .is_err());
    }

    #[test]
    fn killed_fit_resumes_bit_identically() {
        let docs = docs_two_vocab_clusters(10);
        let model = LdaModel::new(quick()).unwrap();
        let uninterrupted = model.fit(&mut rng(), &docs).unwrap();

        let mut sink = crate::MemoryCheckpointSink::new(10);
        sink.fail_after = Some(2);
        let err = model
            .fit_checkpointed(&mut rng(), &docs, &mut NullObserver, &mut sink)
            .unwrap_err();
        assert!(matches!(err, ModelError::Checkpoint { .. }));
        let crate::SamplerSnapshot::Lda(snap) = sink.latest().unwrap().clone() else {
            panic!("lda fit must write lda snapshots");
        };
        assert_eq!(snap.next_sweep, 20);

        let resumed = model
            .resume_observed(&docs, snap, &mut NullObserver, &mut crate::NoCheckpoint)
            .unwrap();
        assert_eq!(resumed.ll_trace, uninterrupted.ll_trace);
        assert_eq!(resumed.phi, uninterrupted.phi);
        assert_eq!(resumed.theta, uninterrupted.theta);
    }

    #[test]
    fn resume_rejects_foreign_snapshot() {
        let docs = docs_two_vocab_clusters(10);
        let model = LdaModel::new(quick()).unwrap();
        let mut sink = crate::MemoryCheckpointSink::new(30);
        model
            .fit_checkpointed(&mut rng(), &docs, &mut NullObserver, &mut sink)
            .unwrap();
        let crate::SamplerSnapshot::Lda(mut snap) = sink.latest().unwrap().clone() else {
            panic!("lda fit must write lda snapshots");
        };
        snap.doc_fingerprint ^= 0xdead;
        assert!(matches!(
            model.resume_observed(&docs, snap, &mut NullObserver, &mut crate::NoCheckpoint),
            Err(ModelError::ResumeMismatch { .. })
        ));
    }

    #[test]
    fn from_joint_config() {
        let jc = JointConfig::quick(5, 41);
        let lc = LdaConfig::from(&jc);
        assert_eq!(lc.n_topics, 5);
        assert_eq!(lc.vocab_size, 41);
        assert_eq!(lc.sweeps, jc.sweeps);
    }
}

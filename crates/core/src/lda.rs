//! Plain LDA baseline: texture terms only, no concentration channels.
//!
//! This is what "conventional LDA" means in the paper's Section III — a
//! single-modality topic model. The recovery ablation (E7) uses it to show
//! what the joint model's concentration coupling buys: LDA can group
//! recipes that *talk* alike but cannot place topics in concentration
//! space, so it cannot be linked to rheology at all and separates
//! concentration bands only insofar as they use different words.

use crate::alias::{mh_move_token, AliasProfile, AliasTables};
use crate::checkpoint::{
    check_kernel, fingerprint_docs, mismatch, CheckpointSink, LdaSnapshot, RngState,
    SamplerSnapshot,
};
use crate::config::JointConfig;
use crate::counts::TopicCounts;
use crate::data::{validate_docs, ModelDoc};
use crate::error::ModelError;
use crate::fit::{FitOptions, GibbsKernel, PAR_CHUNK};
use crate::sparse::SparseTokenSampler;
use crate::Result;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use rheotex_linalg::dist::sample_categorical;
use rheotex_obs::{KernelProfile, NullObserver, PhaseTimer, SweepObserver, SweepStats};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// LDA configuration (a subset of [`JointConfig`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of topics.
    pub n_topics: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Symmetric document-topic prior.
    pub alpha: f64,
    /// Symmetric topic-term prior.
    pub gamma: f64,
    /// Gibbs sweeps.
    pub sweeps: usize,
    /// Burn-in sweeps.
    pub burn_in: usize,
}

impl From<&JointConfig> for LdaConfig {
    fn from(c: &JointConfig) -> Self {
        Self {
            n_topics: c.n_topics,
            vocab_size: c.vocab_size,
            alpha: c.alpha,
            gamma: c.gamma,
            sweeps: c.sweeps,
            burn_in: c.burn_in,
        }
    }
}

/// A fitted LDA baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FittedLda {
    /// Topic-term distributions (K × V).
    pub phi: Vec<Vec<f64>>,
    /// Document-topic distributions (D × K).
    pub theta: Vec<Vec<f64>>,
    /// Log-likelihood trace per sweep.
    pub ll_trace: Vec<f64>,
}

impl FittedLda {
    /// Dominant topic per document (argmax θ).
    #[must_use]
    pub fn dominant_topic(&self, d: usize) -> usize {
        let row = &self.theta[d];
        let mut best = 0;
        for (k, &p) in row.iter().enumerate() {
            if p > row[best] {
                best = k;
            }
        }
        best
    }
}

/// Collapsed-Gibbs LDA.
#[derive(Debug, Clone)]
pub struct LdaModel {
    config: LdaConfig,
}

/// Everything the LDA sweep loop mutates.
struct LdaProgress {
    z: Vec<Vec<usize>>,
    counts: TopicCounts,
    phi_acc: Vec<f64>,
    theta_acc: Vec<f64>,
    n_samples: usize,
    ll_trace: Vec<f64>,
}

impl LdaModel {
    /// Creates the model.
    ///
    /// # Errors
    /// [`crate::ModelError::InvalidConfig`] for degenerate parameters.
    pub fn new(config: LdaConfig) -> Result<Self> {
        if config.n_topics == 0
            || config.vocab_size == 0
            || config.alpha <= 0.0
            || config.gamma <= 0.0
            || config.sweeps == 0
            || config.burn_in >= config.sweeps
        {
            return Err(crate::ModelError::InvalidConfig {
                what: format!("{config:?}"),
            });
        }
        Ok(Self { config })
    }

    /// Fits by collapsed Gibbs with every cross-cutting concern selected
    /// through one [`FitOptions`] bundle; see
    /// [`crate::joint::JointTopicModel::fit_with`] for the full contract
    /// (resume ignores `rng`; `threads >= 1` selects the deterministic
    /// chunked parallel kernel, identical across thread counts;
    /// [`FitOptions::kernel`] picks a kernel class explicitly, including
    /// the `O(nnz)`-per-token [`GibbsKernel::Sparse`] and its chunked
    /// composition [`GibbsKernel::SparseParallel`]).
    ///
    /// Docs' concentration vectors are ignored; docs without terms get a
    /// uniform θ row. Engine-specific note: the serial and sparse
    /// kernels' log-likelihood traces are accumulated *during* the sweep
    /// (each token scored at the counts in effect when it was sampled),
    /// while the parallel and sparse-parallel kernels score all tokens
    /// against the merged end-of-sweep counts — same convergence signal,
    /// different bits.
    ///
    /// # Errors
    /// [`crate::ModelError::InvalidData`] for malformed docs;
    /// [`ModelError::Checkpoint`] when a due snapshot fails to save;
    /// [`ModelError::ResumeMismatch`] for a snapshot that does not belong
    /// to this `(config, docs)` pair;
    /// [`ModelError::Health`] when a supervised fit trips a sentinel the
    /// policy cannot recover from.
    pub fn fit_with(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        opts: FitOptions<'_>,
    ) -> Result<FittedLda> {
        self.validate(docs)?;
        let (kernel, threads) = opts.plan()?;
        let pool = crate::fit::build_pool(threads)?;
        let mut null_obs = NullObserver;
        let observer: &mut dyn SweepObserver = match opts.observer {
            Some(o) => o,
            None => &mut null_obs,
        };
        let mut no_ckpt = crate::checkpoint::NoCheckpoint;
        let sink: &mut dyn CheckpointSink = match opts.sink {
            Some(s) => s,
            None => &mut no_ckpt,
        };
        let health = opts.health;
        match opts.resume {
            Some(SamplerSnapshot::Lda(snap)) => {
                let (mut rng, mut prog, start) = self.restore(docs, snap, kernel)?;
                self.run_sweeps(
                    &mut rng,
                    docs,
                    &mut prog,
                    start,
                    observer,
                    sink,
                    kernel,
                    pool.as_ref(),
                    health,
                )?;
                Ok(self.finalize(docs.len(), prog))
            }
            Some(other) => Err(mismatch(format!(
                "snapshot is from the {} engine, not lda",
                other.engine()
            ))),
            None => {
                let mut prog = self.init_progress(rng, docs);
                self.run_sweeps(
                    rng,
                    docs,
                    &mut prog,
                    0,
                    observer,
                    sink,
                    kernel,
                    pool.as_ref(),
                    health,
                )?;
                Ok(self.finalize(docs.len(), prog))
            }
        }
    }

    fn validate(&self, docs: &[ModelDoc]) -> Result<()> {
        // Vector dims are irrelevant here; validate terms only by passing
        // the docs' own dims through.
        if docs.is_empty() {
            return Err(ModelError::InvalidData {
                what: "corpus is empty".into(),
            });
        }
        let gd = docs[0].gel.len();
        let ed = docs[0].emulsion.len();
        validate_docs(docs, self.config.vocab_size, gd, ed)
    }

    fn init_progress<R: Rng + ?Sized>(&self, rng: &mut R, docs: &[ModelDoc]) -> LdaProgress {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let d_count = docs.len();
        let mut z: Vec<Vec<usize>> = Vec::with_capacity(d_count);
        let mut counts = TopicCounts::new(d_count, k, v);
        for (d, doc) in docs.iter().enumerate() {
            let zs: Vec<usize> = doc
                .terms
                .iter()
                .map(|&w| {
                    let t = rng.gen_range(0..k);
                    counts.inc(d, w, t);
                    t
                })
                .collect();
            z.push(zs);
        }
        LdaProgress {
            z,
            counts,
            phi_acc: vec![0.0f64; k * v],
            theta_acc: vec![0.0f64; d_count * k],
            n_samples: 0,
            ll_trace: Vec::with_capacity(cfg.sweeps),
        }
    }

    /// The sweep loop shared by fresh and resumed fits. With a health
    /// policy it runs supervised — see
    /// [`crate::joint::JointTopicModel`]'s loop for the recovery
    /// contract (rollback replays are bit-identical because the
    /// in-memory snapshots carry the exact RNG position; a kernel out
    /// of retries drops one rung down the `alias → sparse → serial`
    /// degradation ladder).
    #[allow(clippy::too_many_arguments)]
    fn run_sweeps(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        start_sweep: usize,
        observer: &mut dyn SweepObserver,
        sink: &mut dyn CheckpointSink,
        kernel: GibbsKernel,
        pool: Option<&rayon::ThreadPool>,
        health: Option<crate::health::HealthPolicy>,
    ) -> Result<()> {
        let mut kernel = kernel;
        let mut sparse = match kernel {
            GibbsKernel::Sparse => {
                if !prog.counts.tracking() {
                    prog.counts.enable_tracking();
                }
                Some(SparseTokenSampler::new(
                    self.config.n_topics,
                    self.config.vocab_size,
                    self.config.alpha,
                    self.config.gamma,
                ))
            }
            GibbsKernel::SparseParallel => {
                // The chunked sparse sweep clones tracked chunk-local
                // stores off the global one, so the global store keeps
                // its nonzero lists too (chunk_local is pure memcpy).
                if !prog.counts.tracking() {
                    prog.counts.enable_tracking();
                }
                None
            }
            _ => None,
        };
        let mut monitor = health.map(|p| crate::health::HealthMonitor::new(p, "lda"));
        let doc_lens: Vec<usize> = if monitor.is_some() {
            docs.iter().map(|d| d.terms.len()).collect()
        } else {
            Vec::new()
        };
        if let Some(mon) = monitor.as_mut() {
            if mon.wants_snapshots() {
                mon.keep(SamplerSnapshot::Lda(self.snapshot(
                    rng,
                    docs,
                    prog,
                    start_sweep,
                    kernel,
                )));
            }
        }
        let mut sweep = start_sweep;
        while sweep < self.config.sweeps {
            // Largest per-chunk bucket-mass drift of a sparse-parallel
            // sweep (the chunk samplers are per-sweep, so the drift is
            // measured at each chunk's fold).
            let mut chunk_drift = None;
            match kernel {
                GibbsKernel::Serial => self.sweep_once(rng, docs, prog, sweep, observer),
                GibbsKernel::Parallel => {
                    let pool = pool.expect("parallel kernel runs on a pool");
                    self.sweep_once_parallel(rng, pool, docs, prog, sweep, observer);
                }
                GibbsKernel::Sparse => {
                    let sampler = sparse.as_mut().expect("sparse kernel has a sampler");
                    self.sweep_once_sparse(rng, docs, prog, sampler, sweep, observer);
                }
                GibbsKernel::SparseParallel => {
                    let pool = pool.expect("sparse-parallel kernel runs on a pool");
                    chunk_drift = Some(
                        self.sweep_once_sparse_parallel(rng, pool, docs, prog, sweep, observer),
                    );
                }
                GibbsKernel::Alias => {
                    let pool = pool.expect("alias kernel runs on a pool");
                    self.sweep_once_alias(rng, pool, docs, prog, sweep, observer);
                }
            }
            if let Some(mon) = monitor.as_mut() {
                #[cfg(feature = "fault-inject")]
                mon.apply_chaos(sweep, &mut prog.counts);
                let ll = prog.ll_trace.last().copied().unwrap_or(f64::NAN);
                let drift = sparse
                    .as_ref()
                    .map(|s| s.s_mass_drift(&prog.counts))
                    .or(chunk_drift);
                if let Some(detail) =
                    mon.inspect_counts(sweep, ll, &prog.counts, &doc_lens, drift, observer)
                {
                    let (snap, new_kernel) = match mon.tripped(sweep, kernel, detail, observer)? {
                        crate::health::Recovery::Rollback(snap) => (snap, kernel),
                        crate::health::Recovery::Degrade(snap, target) => (snap, target),
                    };
                    let SamplerSnapshot::Lda(mut snap) = *snap else {
                        return Err(mismatch("supervisor recovery point is not an lda snapshot"));
                    };
                    snap.kernel = Some(new_kernel);
                    let (r, p, s) = self.restore(docs, snap, new_kernel)?;
                    *rng = r;
                    *prog = p;
                    sweep = s;
                    if new_kernel != kernel {
                        kernel = new_kernel;
                        // Degrading to sparse needs the sampler and the
                        // tracked nonzero lists a fresh sparse fit would
                        // have set up.
                        sparse = if kernel == GibbsKernel::Sparse {
                            prog.counts.enable_tracking();
                            Some(SparseTokenSampler::new(
                                self.config.n_topics,
                                self.config.vocab_size,
                                self.config.alpha,
                                self.config.gamma,
                            ))
                        } else {
                            None
                        };
                    } else if matches!(kernel, GibbsKernel::Sparse | GibbsKernel::SparseParallel) {
                        // restore() hands back an untracked store.
                        prog.counts.enable_tracking();
                    }
                    continue;
                }
                if mon.snapshot_due(sweep) {
                    mon.keep(SamplerSnapshot::Lda(self.snapshot(
                        rng,
                        docs,
                        prog,
                        sweep + 1,
                        kernel,
                    )));
                }
                let retries = crate::checkpoint::save_if_due_with_retry(
                    sink,
                    sweep,
                    mon.save_retries(),
                    || SamplerSnapshot::Lda(self.snapshot(rng, docs, prog, sweep + 1, kernel)),
                )?;
                if retries > 0 {
                    mon.note_checkpoint_retry(sweep, retries, observer);
                }
            } else {
                crate::checkpoint::save_if_due(sink, sweep, || {
                    SamplerSnapshot::Lda(self.snapshot(rng, docs, prog, sweep + 1, kernel))
                })?;
            }
            sweep += 1;
        }
        Ok(())
    }

    fn sweep_once<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let sweep_start = observer.enabled().then(Instant::now);
        let mut timer = PhaseTimer::new(observer.enabled());
        // The serial kernel scores each token as it is sampled, so the
        // token sweep and the likelihood trace are one phase.
        let ll = timer.time("z", || {
            let mut weights = vec![0.0f64; k];
            let mut ll = 0.0;
            for (d, doc) in docs.iter().enumerate() {
                for (n, &w) in doc.terms.iter().enumerate() {
                    let old = prog.z[d][n];
                    prog.counts.dec(d, w, old);
                    for (kk, weight) in weights.iter_mut().enumerate() {
                        *weight = (f64::from(prog.counts.dk(d, kk)) + cfg.alpha)
                            * (f64::from(prog.counts.kw(kk, w)) + cfg.gamma)
                            / (f64::from(prog.counts.topic_total(kk)) + cfg.gamma * v as f64);
                    }
                    let new = sample_categorical(rng, &weights).expect("positive weights");
                    prog.z[d][n] = new;
                    prog.counts.inc(d, w, new);
                    ll += ((f64::from(prog.counts.kw(new, w)) + cfg.gamma)
                        / (f64::from(prog.counts.topic_total(new)) + cfg.gamma * v as f64))
                        .ln();
                }
            }
            ll
        });
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            None,
            sweep_start,
            &mut timer,
            observer,
        );
    }

    /// The sparse SparseLDA-style sweep: same conditional as the serial
    /// kernel, drawn through the three-bucket decomposition over the
    /// nonzero topic lists ([`crate::sparse`]). One uniform draw per
    /// token, so it is a distinct bit-class from the dense kernels. The
    /// log-likelihood entry is accumulated per token exactly like the
    /// serial kernel's.
    fn sweep_once_sparse(
        &self,
        rng: &mut ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        sampler: &mut SparseTokenSampler,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) {
        let cfg = &self.config;
        let gamma_v = cfg.gamma * cfg.vocab_size as f64;
        let sweep_start = observer.enabled().then(Instant::now);
        let mut timer = PhaseTimer::new(observer.enabled());
        sampler.set_profiling(observer.enabled());
        let ll = timer.time("z", || {
            let mut ll = 0.0;
            sampler.begin_sweep(&prog.counts);
            for (d, doc) in docs.iter().enumerate() {
                sampler.begin_doc(&prog.counts, d, None);
                for (n, &w) in doc.terms.iter().enumerate() {
                    let old = prog.z[d][n];
                    let new = sampler.move_token(rng, &mut prog.counts, w, old);
                    prog.z[d][n] = new;
                    ll += ((f64::from(prog.counts.kw(new, w)) + cfg.gamma)
                        / (f64::from(prog.counts.topic_total(new)) + gamma_v))
                        .ln();
                }
            }
            ll
        });
        let profile = observer
            .enabled()
            .then(|| sampler.take_profile().into_kernel_profile());
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
    }

    /// The deterministic chunked parallel sweep: fixed 64-doc chunks,
    /// each sampling against a chunk-local copy of the start-of-sweep
    /// `n_kw` / `n_k` counts with RNG stream `2c` of the per-sweep seed,
    /// then a rebuild of the global counts from the merged assignments.
    /// The log-likelihood entry scores every token against the merged
    /// end-of-sweep counts (the serial kernel scores each token as it is
    /// sampled), so traces differ bitwise between kernels but not
    /// between thread counts.
    fn sweep_once_parallel(
        &self,
        rng: &mut ChaCha8Rng,
        pool: &rayon::ThreadPool,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let alpha = cfg.alpha;
        let gamma = cfg.gamma;
        let vf = v as f64;
        let sweep_seed: u64 = rng.gen();
        let sweep_start = observer.enabled().then(Instant::now);
        let profiling = observer.enabled();
        let mut timer = PhaseTimer::new(profiling);

        let (n_dk, n_kw_flat, n_k_flat) = prog.counts.dense_parts_mut();
        let n_kw_start = n_kw_flat.to_vec();
        let n_k_start = n_k_flat.to_vec();
        let z = &mut prog.z;
        let z_start = profiling.then(Instant::now);
        let chunk_us: Vec<u64> = pool.install(|| {
            z.par_chunks_mut(PAR_CHUNK)
                .zip(n_dk.par_chunks_mut(PAR_CHUNK * k))
                .enumerate()
                .map(|(c, (z_chunk, n_dk_chunk))| {
                    let chunk_start = profiling.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let mut n_kw = n_kw_start.clone();
                    let mut n_k = n_k_start.clone();
                    let mut weights = vec![0.0f64; k];
                    let d0 = c * PAR_CHUNK;
                    for (dd, zs) in z_chunk.iter_mut().enumerate() {
                        let doc = &docs[d0 + dd];
                        let row = &mut n_dk_chunk[dd * k..(dd + 1) * k];
                        for (n, &w) in doc.terms.iter().enumerate() {
                            let old = zs[n];
                            row[old] -= 1;
                            n_kw[old * v + w] -= 1;
                            n_k[old] -= 1;
                            for (kk, weight) in weights.iter_mut().enumerate() {
                                *weight = (f64::from(row[kk]) + alpha)
                                    * (f64::from(n_kw[kk * v + w]) + gamma)
                                    / (f64::from(n_k[kk]) + gamma * vf);
                            }
                            let new =
                                sample_categorical(&mut rng, &weights).expect("positive weights");
                            zs[n] = new;
                            row[new] += 1;
                            n_kw[new * v + w] += 1;
                            n_k[new] += 1;
                        }
                    }
                    chunk_start.map_or(0, |s| s.elapsed().as_micros() as u64)
                })
                .collect()
        });
        if let Some(s) = z_start {
            timer.record("z", s.elapsed().as_micros() as u64);
        }
        // Deterministic merge: rebuild the term counts from the merged
        // assignments, then score the sweep against them.
        let merge_start = profiling.then(Instant::now);
        n_kw_flat.fill(0);
        n_k_flat.fill(0);
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = prog.z[d][n];
                n_kw_flat[t * v + w] += 1;
                n_k_flat[t] += 1;
            }
        }
        if let Some(s) = merge_start {
            timer.record("merge", s.elapsed().as_micros() as u64);
        }
        let ll_start = profiling.then(Instant::now);
        let mut ll = 0.0;
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = prog.z[d][n];
                ll += ((f64::from(n_kw_flat[t * v + w]) + gamma)
                    / (f64::from(n_k_flat[t]) + gamma * vf))
                    .ln();
            }
        }
        if let Some(s) = ll_start {
            timer.record("ll", s.elapsed().as_micros() as u64);
        }
        let profile = profiling.then(|| {
            let chunks = docs.len().div_ceil(PAR_CHUNK) as u64;
            // Per chunk the token phase clones the start-of-sweep term
            // counts (`n_kw` + `n_k`, u32) and a weight buffer.
            let per_chunk = 4 * (k * v + k) + 8 * k;
            KernelProfile::Parallel {
                chunks,
                chunk_us,
                alloc_bytes: chunks * per_chunk as u64,
            }
        });
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
    }

    /// The chunked sparse sweep: the parallel kernel's fixed 64-doc
    /// chunk grid and RNG stream discipline (`2c` of the per-sweep
    /// seed), with each chunk running the SparseLDA bucket sweep against
    /// a tracked chunk-local copy of the start-of-sweep counts
    /// ([`TopicCounts::chunk_local`]). Chunk results fold back
    /// deterministically — doc rows and nonzero lists per chunk
    /// ([`TopicCounts::fold_chunk`]), term counts recounted from the
    /// merged assignments in document order
    /// ([`TopicCounts::install_term_counts`]) — so the output depends on
    /// the chunk grid but not on the worker-thread count. Like the dense
    /// parallel kernel, the log-likelihood entry scores every token
    /// against the merged end-of-sweep counts.
    ///
    /// Returns the largest per-chunk s-bucket mass drift, measured at
    /// each chunk's fold — the health supervisor's bucket-desync
    /// sentinel for this kernel.
    fn sweep_once_sparse_parallel(
        &self,
        rng: &mut ChaCha8Rng,
        pool: &rayon::ThreadPool,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) -> f64 {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let gamma_v = cfg.gamma * v as f64;
        let sweep_seed: u64 = rng.gen();
        let sweep_start = observer.enabled().then(Instant::now);
        let profiling = observer.enabled();
        let mut timer = PhaseTimer::new(profiling);

        struct ChunkOut {
            counts: TopicCounts,
            drift: f64,
            profile: crate::sparse::SparseProfile,
            rebuild_us: u64,
            sample_us: u64,
        }
        let counts_ref = &prog.counts;
        let z = &mut prog.z;
        let z_start = profiling.then(Instant::now);
        let outs: Vec<ChunkOut> = pool.install(|| {
            z.par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .map(|(c, z_chunk)| {
                    let rebuild_start = profiling.then(Instant::now);
                    let mut local = counts_ref.chunk_local(c * PAR_CHUNK, z_chunk.len());
                    let mut sampler = SparseTokenSampler::new(k, v, cfg.alpha, cfg.gamma);
                    sampler.set_profiling(profiling);
                    sampler.begin_sweep(&local);
                    let rebuild_us = rebuild_start.map_or(0, |s| s.elapsed().as_micros() as u64);
                    let sample_start = profiling.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let d0 = c * PAR_CHUNK;
                    for (dd, zs) in z_chunk.iter_mut().enumerate() {
                        let doc = &docs[d0 + dd];
                        sampler.begin_doc(&local, dd, None);
                        for (n, &w) in doc.terms.iter().enumerate() {
                            let old = zs[n];
                            zs[n] = sampler.move_token(&mut rng, &mut local, w, old);
                        }
                    }
                    ChunkOut {
                        drift: sampler.s_mass_drift(&local),
                        profile: sampler.take_profile(),
                        counts: local,
                        rebuild_us,
                        sample_us: sample_start.map_or(0, |s| s.elapsed().as_micros() as u64),
                    }
                })
                .collect()
        });
        if let Some(s) = z_start {
            timer.record("z", s.elapsed().as_micros() as u64);
        }
        // Deterministic fold, in chunk order: doc-side state per chunk,
        // then the term-side recount from the merged assignments.
        let merge_start = profiling.then(Instant::now);
        let mut drift: f64 = 0.0;
        let mut merged_profile = crate::sparse::SparseProfile::default();
        let mut fold_us = Vec::with_capacity(outs.len());
        for (c, out) in outs.iter().enumerate() {
            let fold_start = profiling.then(Instant::now);
            prog.counts.fold_chunk(c * PAR_CHUNK, &out.counts);
            fold_us.push(fold_start.map_or(0, |s| s.elapsed().as_micros() as u64));
            drift = drift.max(out.drift);
            merged_profile.merge(&out.profile);
        }
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = prog.z[d][n];
                n_kw[t * v + w] += 1;
                n_k[t] += 1;
            }
        }
        prog.counts.install_term_counts(n_kw, n_k);
        if let Some(s) = merge_start {
            timer.record("merge", s.elapsed().as_micros() as u64);
        }
        let ll_start = profiling.then(Instant::now);
        let mut ll = 0.0;
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = prog.z[d][n];
                ll += ((f64::from(prog.counts.kw(t, w)) + cfg.gamma)
                    / (f64::from(prog.counts.topic_total(t)) + gamma_v))
                    .ln();
            }
        }
        if let Some(s) = ll_start {
            timer.record("ll", s.elapsed().as_micros() as u64);
        }
        let profile = profiling.then(|| {
            let chunk_us: Vec<u64> = outs.iter().map(|o| o.sample_us).collect();
            let rebuild_us: Vec<u64> = outs.iter().map(|o| o.rebuild_us).collect();
            // Each chunk clones the term counts and topic totals, the
            // word nonzero lists (items + lengths), and up to PAR_CHUNK
            // doc rows with their lists.
            let per_chunk =
                4 * (k * v + k) + 4 * (k * v + v) + 2 * 4 * (PAR_CHUNK * k) + 4 * PAR_CHUNK;
            merged_profile.into_sparse_parallel_profile(
                chunk_us,
                rebuild_us,
                fold_us,
                (outs.len() * per_chunk) as u64,
            )
        });
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
        drift
    }

    /// The chunked alias-table MH sweep: the parallel kernel's fixed
    /// 64-doc chunk grid and RNG stream discipline (`2c` of the
    /// per-sweep seed), with the per-word Vose tables over the
    /// start-of-sweep `n_kw + γ` columns built once on the main thread
    /// and shared read-only across chunks. Each chunk cycles every
    /// token through a document proposal and a word proposal
    /// ([`crate::alias::mh_move_token`]) accepted against a chunk-local
    /// copy of the start-of-sweep counts; every token consumes exactly
    /// four `f64` draws, so the output depends on the chunk grid but
    /// not on the worker-thread count. Like the dense parallel kernel,
    /// the log-likelihood entry scores every token against the merged
    /// end-of-sweep counts.
    fn sweep_once_alias(
        &self,
        rng: &mut ChaCha8Rng,
        pool: &rayon::ThreadPool,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        sweep: usize,
        observer: &mut dyn SweepObserver,
    ) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let alpha = cfg.alpha;
        let gamma = cfg.gamma;
        let gamma_v = gamma * v as f64;
        let sweep_seed: u64 = rng.gen();
        let sweep_start = observer.enabled().then(Instant::now);
        let profiling = observer.enabled();
        let mut timer = PhaseTimer::new(profiling);

        let rebuild_start = profiling.then(Instant::now);
        let tables = AliasTables::build(prog.counts.n_kw_raw(), k, v, gamma);
        let rebuild_us = rebuild_start.map_or(0, |s| s.elapsed().as_micros() as u64);
        let (n_dk, n_kw_flat, n_k_flat) = prog.counts.dense_parts_mut();
        let n_kw_start = n_kw_flat.to_vec();
        let n_k_start = n_k_flat.to_vec();
        let z = &mut prog.z;
        let tables_ref = &tables;
        let z_start = profiling.then(Instant::now);
        let outs: Vec<(u64, AliasProfile)> = pool.install(|| {
            z.par_chunks_mut(PAR_CHUNK)
                .zip(n_dk.par_chunks_mut(PAR_CHUNK * k))
                .enumerate()
                .map(|(c, (z_chunk, n_dk_chunk))| {
                    let chunk_start = profiling.then(Instant::now);
                    let mut rng = ChaCha8Rng::seed_from_u64(sweep_seed);
                    rng.set_stream(2 * c as u64);
                    let mut n_kw = n_kw_start.clone();
                    let mut n_k = n_k_start.clone();
                    let mut prof = AliasProfile::default();
                    let d0 = c * PAR_CHUNK;
                    for (dd, zs) in z_chunk.iter_mut().enumerate() {
                        let doc = &docs[d0 + dd];
                        let row = &mut n_dk_chunk[dd * k..(dd + 1) * k];
                        for (n, &w) in doc.terms.iter().enumerate() {
                            let old = zs[n];
                            row[old] -= 1;
                            n_kw[old * v + w] -= 1;
                            n_k[old] -= 1;
                            let new = mh_move_token(
                                &mut rng,
                                tables_ref,
                                zs,
                                n,
                                w,
                                row,
                                &n_kw,
                                &n_k,
                                None,
                                alpha,
                                gamma,
                                gamma_v,
                                profiling,
                                &mut prof,
                            );
                            zs[n] = new;
                            row[new] += 1;
                            n_kw[new * v + w] += 1;
                            n_k[new] += 1;
                        }
                    }
                    let us = chunk_start.map_or(0, |s| s.elapsed().as_micros() as u64);
                    (us, prof)
                })
                .collect()
        });
        if let Some(s) = z_start {
            timer.record("z", s.elapsed().as_micros() as u64);
        }
        // Deterministic merge: rebuild the term counts from the merged
        // assignments, then score the sweep against them.
        let merge_start = profiling.then(Instant::now);
        n_kw_flat.fill(0);
        n_k_flat.fill(0);
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = prog.z[d][n];
                n_kw_flat[t * v + w] += 1;
                n_k_flat[t] += 1;
            }
        }
        if let Some(s) = merge_start {
            timer.record("merge", s.elapsed().as_micros() as u64);
        }
        let ll_start = profiling.then(Instant::now);
        let mut ll = 0.0;
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = prog.z[d][n];
                ll += ((f64::from(n_kw_flat[t * v + w]) + gamma)
                    / (f64::from(n_k_flat[t]) + gamma_v))
                    .ln();
            }
        }
        if let Some(s) = ll_start {
            timer.record("ll", s.elapsed().as_micros() as u64);
        }
        let profile = profiling.then(|| {
            let chunk_us: Vec<u64> = outs.iter().map(|o| o.0).collect();
            let mut merged = AliasProfile::default();
            for (_, p) in &outs {
                merged.merge(p);
            }
            // Each chunk clones the start-of-sweep term counts; the
            // shared alias tables are built once on the main thread.
            let per_chunk = 4 * (k * v + k);
            merged.into_kernel_profile(
                chunk_us,
                rebuild_us,
                tables.alloc_bytes() + (outs.len() * per_chunk) as u64,
            )
        });
        self.post_sweep(
            docs,
            prog,
            sweep,
            ll,
            profile,
            sweep_start,
            &mut timer,
            observer,
        );
    }

    /// Trace push, observer report, and post-burn-in accumulation shared
    /// by the five sweep kernels.
    #[allow(clippy::too_many_arguments)]
    fn post_sweep(
        &self,
        docs: &[ModelDoc],
        prog: &mut LdaProgress,
        sweep: usize,
        ll: f64,
        profile: Option<KernelProfile>,
        sweep_start: Option<Instant>,
        timer: &mut PhaseTimer,
        observer: &mut dyn SweepObserver,
    ) {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        prog.ll_trace.push(ll);
        if let Some(started) = sweep_start {
            let occupancy: Vec<usize> = prog.counts.n_k_raw().iter().map(|&c| c as usize).collect();
            let (topic_entropy, min_occupancy, max_occupancy) =
                SweepStats::occupancy_summary(&occupancy);
            observer.on_sweep(&SweepStats {
                engine: "lda",
                sweep,
                total_sweeps: cfg.sweeps,
                elapsed_us: started.elapsed().as_micros() as u64,
                log_likelihood: ll,
                topic_entropy,
                min_occupancy,
                max_occupancy,
                nw_draws: 0,
                jitter_retries: 0,
                cache_lookups: 0,
                cache_hits: 0,
                // LDA has no document-level assignment to flip.
                label_flips: 0,
                phase_us: timer.take(),
                profile,
            });
        }
        if sweep >= cfg.burn_in {
            for kk in 0..k {
                let denom = f64::from(prog.counts.topic_total(kk)) + cfg.gamma * v as f64;
                for w in 0..v {
                    prog.phi_acc[kk * v + w] +=
                        (f64::from(prog.counts.kw(kk, w)) + cfg.gamma) / denom;
                }
            }
            let alpha_sum = cfg.alpha * k as f64;
            for (d, doc) in docs.iter().enumerate() {
                let denom = doc.terms.len() as f64 + alpha_sum;
                for kk in 0..k {
                    prog.theta_acc[d * k + kk] +=
                        (f64::from(prog.counts.dk(d, kk)) + cfg.alpha) / denom;
                }
            }
            prog.n_samples += 1;
        }
    }

    fn finalize(&self, d_count: usize, prog: LdaProgress) -> FittedLda {
        let k = self.config.n_topics;
        let v = self.config.vocab_size;
        let norm = 1.0 / prog.n_samples.max(1) as f64;
        FittedLda {
            phi: (0..k)
                .map(|kk| (0..v).map(|w| prog.phi_acc[kk * v + w] * norm).collect())
                .collect(),
            theta: (0..d_count)
                .map(|d| (0..k).map(|kk| prog.theta_acc[d * k + kk] * norm).collect())
                .collect(),
            ll_trace: prog.ll_trace,
        }
    }

    fn snapshot(
        &self,
        rng: &ChaCha8Rng,
        docs: &[ModelDoc],
        prog: &LdaProgress,
        next_sweep: usize,
        kernel: GibbsKernel,
    ) -> LdaSnapshot {
        LdaSnapshot {
            config: self.config.clone(),
            next_sweep,
            kernel: Some(kernel),
            doc_fingerprint: fingerprint_docs(docs),
            z: prog.z.clone(),
            n_dk: prog.counts.n_dk_raw().to_vec(),
            n_kw: prog.counts.n_kw_raw().to_vec(),
            n_k: prog.counts.n_k_raw().to_vec(),
            phi_acc: prog.phi_acc.clone(),
            theta_acc: prog.theta_acc.clone(),
            n_samples: prog.n_samples,
            ll_trace: prog.ll_trace.clone(),
            rng: RngState::capture(rng),
        }
    }

    fn restore(
        &self,
        docs: &[ModelDoc],
        snap: LdaSnapshot,
        kernel: GibbsKernel,
    ) -> Result<(ChaCha8Rng, LdaProgress, usize)> {
        let cfg = &self.config;
        let k = cfg.n_topics;
        let v = cfg.vocab_size;
        let d_count = docs.len();
        if snap.config != *cfg {
            return Err(mismatch("snapshot was written with a different config"));
        }
        check_kernel(snap.kernel, kernel)?;
        if snap.doc_fingerprint != fingerprint_docs(docs) {
            return Err(mismatch("snapshot was written for a different corpus"));
        }
        if snap.next_sweep > cfg.sweeps {
            return Err(mismatch(format!(
                "snapshot next_sweep {} exceeds configured sweeps {}",
                snap.next_sweep, cfg.sweeps
            )));
        }
        if snap.ll_trace.len() != snap.next_sweep {
            return Err(mismatch(format!(
                "ll_trace has {} entries for {} completed sweeps",
                snap.ll_trace.len(),
                snap.next_sweep
            )));
        }
        let expect_samples = snap.next_sweep.saturating_sub(cfg.burn_in);
        if snap.n_samples != expect_samples {
            return Err(mismatch(format!(
                "n_samples {} does not match {} post-burn-in sweeps",
                snap.n_samples, expect_samples
            )));
        }
        if snap.z.len() != d_count {
            return Err(mismatch("assignment lengths do not match the corpus"));
        }
        for (d, doc) in docs.iter().enumerate() {
            if snap.z[d].len() != doc.terms.len() {
                return Err(mismatch(format!(
                    "doc {d}: token assignment length mismatch"
                )));
            }
        }
        if snap.z.iter().flatten().any(|&t| t >= k) {
            return Err(mismatch("assignment refers to a topic out of range"));
        }
        if snap.n_dk.len() != d_count * k
            || snap.n_kw.len() != k * v
            || snap.n_k.len() != k
            || snap.phi_acc.len() != k * v
            || snap.theta_acc.len() != d_count * k
        {
            return Err(mismatch("count or accumulator arrays have wrong sizes"));
        }
        let mut n_dk = vec![0u32; d_count * k];
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for (d, doc) in docs.iter().enumerate() {
            for (n, &w) in doc.terms.iter().enumerate() {
                let t = snap.z[d][n];
                n_dk[d * k + t] += 1;
                n_kw[t * v + w] += 1;
                n_k[t] += 1;
            }
        }
        if n_dk != snap.n_dk || n_kw != snap.n_kw || n_k != snap.n_k {
            return Err(mismatch("counts are inconsistent with assignments"));
        }
        let rng = snap.rng.restore()?;
        let prog = LdaProgress {
            z: snap.z,
            counts: TopicCounts::from_parts(k, v, snap.n_dk, snap.n_kw, snap.n_k),
            phi_acc: snap.phi_acc,
            theta_acc: snap.theta_acc,
            n_samples: snap.n_samples,
            ll_trace: snap.ll_trace,
        };
        Ok((rng, prog, snap.next_sweep))
    }
}

#[cfg(test)]
mod tests {
    // Everything drives the unified `fit_with` entry point; kernel
    // coverage (parallelism, caching, resume through FitOptions) lives
    // in `tests/parallel.rs`.
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_linalg::Vector;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(53)
    }

    fn docs_two_vocab_clusters(n_per: usize) -> Vec<ModelDoc> {
        (0..2 * n_per)
            .map(|i| {
                let c = i % 2;
                ModelDoc::new(
                    i as u64,
                    vec![2 * c, 2 * c + 1, 2 * c, 2 * c + 1],
                    Vector::zeros(3),
                    Vector::zeros(6),
                )
            })
            .collect()
    }

    fn quick() -> LdaConfig {
        LdaConfig {
            n_topics: 2,
            vocab_size: 4,
            alpha: 0.5,
            gamma: 0.1,
            sweeps: 60,
            burn_in: 30,
        }
    }

    #[test]
    fn separates_vocabulary_clusters() {
        let docs = docs_two_vocab_clusters(30);
        let fit = LdaModel::new(quick())
            .unwrap()
            .fit_with(&mut rng(), &docs, FitOptions::new())
            .unwrap();
        let t0 = fit.dominant_topic(0);
        let t1 = fit.dominant_topic(1);
        assert_ne!(t0, t1);
        let agree = (0..docs.len())
            .filter(|&d| fit.dominant_topic(d) == if d % 2 == 0 { t0 } else { t1 })
            .count();
        assert!(agree as f64 / docs.len() as f64 > 0.95);
    }

    #[test]
    fn phi_rows_are_distributions() {
        let docs = docs_two_vocab_clusters(10);
        let fit = LdaModel::new(quick())
            .unwrap()
            .fit_with(&mut rng(), &docs, FitOptions::new())
            .unwrap();
        for row in &fit.phi {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn config_validation() {
        let mut c = quick();
        c.n_topics = 0;
        assert!(LdaModel::new(c).is_err());
        let mut c = quick();
        c.burn_in = c.sweeps;
        assert!(LdaModel::new(c).is_err());
    }

    #[test]
    fn empty_corpus_rejected() {
        assert!(LdaModel::new(quick())
            .unwrap()
            .fit_with(&mut rng(), &[], FitOptions::new())
            .is_err());
    }

    #[test]
    fn killed_fit_resumes_bit_identically() {
        let docs = docs_two_vocab_clusters(10);
        let model = LdaModel::new(quick()).unwrap();
        let uninterrupted = model.fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();

        let mut sink = crate::MemoryCheckpointSink::new(10);
        sink.fail_after = Some(2);
        let err = model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap_err();
        assert!(matches!(err, ModelError::Checkpoint { .. }));
        let crate::SamplerSnapshot::Lda(snap) = sink.latest().unwrap().clone() else {
            panic!("lda fit must write lda snapshots");
        };
        assert_eq!(snap.next_sweep, 20);

        let resumed = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new().resume(SamplerSnapshot::Lda(snap)),
            )
            .unwrap();
        assert_eq!(resumed.ll_trace, uninterrupted.ll_trace);
        assert_eq!(resumed.phi, uninterrupted.phi);
        assert_eq!(resumed.theta, uninterrupted.theta);
    }

    #[test]
    fn resume_rejects_foreign_snapshot() {
        let docs = docs_two_vocab_clusters(10);
        let model = LdaModel::new(quick()).unwrap();
        let mut sink = crate::MemoryCheckpointSink::new(30);
        model
            .fit_with(&mut rng(), &docs, FitOptions::new().checkpoint(&mut sink))
            .unwrap();
        let crate::SamplerSnapshot::Lda(mut snap) = sink.latest().unwrap().clone() else {
            panic!("lda fit must write lda snapshots");
        };
        snap.doc_fingerprint ^= 0xdead;
        assert!(matches!(
            model.fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new().resume(SamplerSnapshot::Lda(snap)),
            ),
            Err(ModelError::ResumeMismatch { .. })
        ));
    }

    #[test]
    fn from_joint_config() {
        let jc = JointConfig::quick(5, 41);
        let lc = LdaConfig::from(&jc);
        assert_eq!(lc.n_topics, 5);
        assert_eq!(lc.vocab_size, 41);
        assert_eq!(lc.sweeps, jc.sweeps);
    }
}

//! The unified fitting surface: one [`FitOptions`] bundle instead of a
//! separate fitting method per cross-cutting concern.
//!
//! Every Gibbs engine (`JointTopicModel`, `LdaModel`, `GmmModel`)
//! exposes a single `fit_with(rng, docs, options)` entry point. The
//! options value is a builder that collects the cross-cutting concerns
//! the old method triplet hard-wired into separate signatures:
//!
//! * an optional [`SweepObserver`] receiving per-sweep statistics;
//! * an optional [`CheckpointSink`] asked after every sweep whether a
//!   snapshot is due;
//! * an optional resume [`SamplerSnapshot`] — when present the fit
//!   continues bit-identically from the captured sweep boundary and the
//!   caller-supplied RNG is ignored (the snapshot carries the exact RNG
//!   position);
//! * a sweep kernel ([`GibbsKernel`]): the historical serial kernel,
//!   the deterministic chunked parallel kernel (bit-identical across
//!   *any* thread count, see the crate docs), the sparse
//!   SparseLDA-style kernel whose per-token cost tracks the number of
//!   topics actually active in the document and word instead of `K`,
//!   or the sparse-parallel kernel composing the last two (chunked
//!   sparse sweeps, bit-identical across thread counts). The kernel is
//!   usually implied by the thread count (`threads == 0` → serial,
//!   `threads >= 1` → parallel, keeping the historical semantics) and
//!   can be named explicitly with [`FitOptions::kernel`];
//! * a switch for the per-topic posterior-predictive cache used by the
//!   collapsed Gaussian engines.
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use rheotex_core::{FitOptions, JointConfig, JointTopicModel, ModelDoc};
//! use rheotex_linalg::Vector;
//!
//! let docs: Vec<ModelDoc> = (0..6)
//!     .map(|i| {
//!         ModelDoc::new(
//!             i,
//!             vec![(i % 4) as usize],
//!             Vector::new(vec![4.0, 9.2, 9.2]),
//!             Vector::full(6, 9.2),
//!         )
//!     })
//!     .collect();
//! let model = JointTopicModel::new(JointConfig::quick(2, 4))?;
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! // Serial, unobserved, no checkpoints — the minimal call.
//! let fitted = model.fit_with(&mut rng, &docs, FitOptions::new())?;
//! assert_eq!(fitted.y.len(), docs.len());
//! # Ok::<(), rheotex_core::ModelError>(())
//! ```

use crate::checkpoint::{CheckpointSink, SamplerSnapshot};
use crate::error::ModelError;
use crate::health::HealthPolicy;
use rheotex_obs::SweepObserver;
use serde::{Deserialize, Serialize};

/// The token-sweep kernel classes a Gibbs engine can run.
///
/// Every kernel is deterministic — a pure function of `(config, docs,
/// seed)` — but the five form distinct bit-compatibility classes: a
/// snapshot written by one kernel must be resumed by the same kernel.
///
/// * [`GibbsKernel::Serial`] — the historical single-threaded sweep,
///   dense `O(K)` per token, bit-identical to the original `fit`.
/// * [`GibbsKernel::Parallel`] — the chunked deterministic parallel
///   sweep; identical output for every worker-thread count.
/// * [`GibbsKernel::Sparse`] — single-threaded SparseLDA-style bucket
///   sampling in `O(s + r + q)` per token (see [`crate::sparse`]);
///   wins when `K` is large and documents/words touch few topics.
/// * [`GibbsKernel::SparseParallel`] — the composition: the sparse
///   bucket sweep run over the parallel kernel's fixed 64-doc chunk
///   grid, with per-chunk bucket state folded back deterministically;
///   identical output for every worker-thread count.
/// * [`GibbsKernel::Alias`] — the LightLDA-style alias-table
///   Metropolis-Hastings kernel (see [`crate::alias`]): `O(1)`-amortized
///   per-token draws from per-word Vose alias tables built over the
///   start-of-sweep counts, corrected by a doc-proposal/word-proposal
///   MH cycle against fresh counts. Always chunked on the parallel
///   kernel's 64-doc grid; identical output for every worker-thread
///   count. Stationary-distribution-exact, but not per-sweep-identical
///   to the dense kernels.
///
/// The legal kernel × threads matrix: `serial` and `sparse` require
/// `threads == 0`; `parallel`, `sparse-parallel`, and `alias` accept
/// any thread count (`threads == 0` runs the one-worker reproducible
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum GibbsKernel {
    /// Historical dense serial kernel.
    Serial,
    /// Deterministic chunked parallel kernel.
    Parallel,
    /// Sparse bucket-decomposition kernel.
    Sparse,
    /// Deterministic chunked sparse bucket kernel.
    SparseParallel,
    /// Deterministic chunked alias-table Metropolis-Hastings kernel.
    Alias,
}

/// One-line rendering of the legal kernel × threads matrix, shared by
/// every kernel/threads validation error so the CLI and the API agree
/// on what the user is told.
pub(crate) const KERNEL_MATRIX: &str = "legal kernel x threads combinations: \
     serial (threads == 0), sparse (threads == 0), \
     parallel (any threads), sparse-parallel (any threads), \
     alias (any threads)";

impl std::fmt::Display for GibbsKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Serial => "serial",
            Self::Parallel => "parallel",
            Self::Sparse => "sparse",
            Self::SparseParallel => "sparse-parallel",
            Self::Alias => "alias",
        })
    }
}

impl std::str::FromStr for GibbsKernel {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, ModelError> {
        match s {
            "serial" => Ok(Self::Serial),
            "parallel" => Ok(Self::Parallel),
            "sparse" => Ok(Self::Sparse),
            // The snapshot JSON spelling is accepted alongside the CLI
            // spelling so `--kernel` round-trips either form.
            "sparse-parallel" | "sparse_parallel" => Ok(Self::SparseParallel),
            "alias" => Ok(Self::Alias),
            other => Err(ModelError::InvalidConfig {
                what: format!("unknown kernel {other:?}; {KERNEL_MATRIX}"),
            }),
        }
    }
}

/// Documents per parallel work unit. Chunk boundaries are part of the
/// reproducibility contract: chunk `c` always covers docs
/// `[c * PAR_CHUNK, (c + 1) * PAR_CHUNK)` and always consumes RNG
/// streams `2c` / `2c + 1` of the sweep seed, regardless of how many
/// worker threads execute the chunks.
pub(crate) const PAR_CHUNK: usize = 64;

/// Options bundle consumed by `fit_with` on every Gibbs engine.
///
/// Construct with [`FitOptions::new`] (or `Default`) and chain the
/// builder methods; unset options select the no-op behavior of the old
/// plain `fit`.
pub struct FitOptions<'a> {
    pub(crate) observer: Option<&'a mut dyn SweepObserver>,
    pub(crate) sink: Option<&'a mut dyn CheckpointSink>,
    pub(crate) resume: Option<SamplerSnapshot>,
    pub(crate) threads: usize,
    pub(crate) kernel: Option<GibbsKernel>,
    pub(crate) predictive_cache: bool,
    pub(crate) health: Option<HealthPolicy>,
}

impl Default for FitOptions<'_> {
    fn default() -> Self {
        FitOptions::new()
    }
}

impl std::fmt::Debug for FitOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitOptions")
            .field("observer", &self.observer.is_some())
            .field("sink", &self.sink.is_some())
            .field("resume", &self.resume.as_ref().map(SamplerSnapshot::engine))
            .field("threads", &self.threads)
            .field("kernel", &self.kernel)
            .field("predictive_cache", &self.predictive_cache)
            .field("health", &self.health)
            .finish()
    }
}

impl<'a> FitOptions<'a> {
    /// Defaults: no observer, no checkpointing, fresh start, serial
    /// sweeps, predictive cache on.
    #[must_use]
    pub fn new() -> Self {
        FitOptions {
            observer: None,
            sink: None,
            resume: None,
            threads: 0,
            kernel: None,
            predictive_cache: true,
            health: None,
        }
    }

    /// Streams per-sweep statistics to `observer` (an [`rheotex_obs::Obs`]
    /// handle, a `VecObserver`, …).
    #[must_use]
    pub fn observer(mut self, observer: &'a mut dyn SweepObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Offers a snapshot to `sink` after every sweep; the sink's own
    /// cadence (`CheckpointSink::due`) decides which offers are taken.
    #[must_use]
    pub fn checkpoint(mut self, sink: &'a mut dyn CheckpointSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Continues from a previously captured snapshot instead of starting
    /// fresh. The snapshot must come from the same engine, config, and
    /// corpus, or `fit_with` fails with `ResumeMismatch`. The RNG
    /// argument of `fit_with` is ignored on this path: the snapshot
    /// carries the exact generator position needed for bit-identity.
    #[must_use]
    pub fn resume(mut self, snapshot: SamplerSnapshot) -> Self {
        self.resume = Some(snapshot);
        self
    }

    /// Worker threads for the document sweeps. `0` (the default) runs
    /// the historical serial kernel; any value `>= 1` runs the chunked
    /// deterministic parallel kernel, whose output is identical for
    /// every thread count (so `threads(1)` is the reproducible baseline
    /// of `threads(8)`, but differs bitwise from the serial kernel).
    /// A snapshot taken by one kernel must be resumed by the same
    /// kernel (serial vs. chunked) to stay bit-identical.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Names the sweep kernel explicitly instead of letting the thread
    /// count imply it. `kernel(Parallel)` or `kernel(SparseParallel)`
    /// with `threads == 0` runs the chunked kernel on one worker (the
    /// reproducible baseline of any thread count); `kernel(Serial)` or
    /// `kernel(Sparse)` combined with `threads >= 1` is a contradiction
    /// and fails `fit_with` with `InvalidConfig` — both are
    /// single-threaded kernels (the error suggests `sparse-parallel`
    /// for the sparse case). Snapshots record the kernel that wrote
    /// them, and resuming under a different kernel fails with
    /// `ResumeMismatch`.
    #[must_use]
    pub fn kernel(mut self, kernel: GibbsKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Resolves the `(kernel, threads)` pair the engine should run:
    /// the effective kernel plus the rayon worker count (`0` meaning no
    /// pool). Kept backward compatible with the pre-kernel semantics:
    /// with no explicit kernel, `threads == 0` selects the serial kernel
    /// and `threads >= 1` the parallel one.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] when a single-threaded kernel
    /// (serial, sparse) is combined with `threads >= 1`; the message
    /// names both offending options and enumerates the legal
    /// kernel × threads matrix.
    pub(crate) fn plan(&self) -> Result<(GibbsKernel, usize), ModelError> {
        use GibbsKernel::{Alias, Parallel, Serial, Sparse, SparseParallel};
        match (self.kernel, self.threads) {
            (None, 0) => Ok((Serial, 0)),
            (None, t) => Ok((Parallel, t)),
            (Some(k @ (Parallel | SparseParallel | Alias)), 0) => Ok((k, 1)),
            (Some(k @ (Parallel | SparseParallel | Alias)), t) => Ok((k, t)),
            (Some(k), 0) => Ok((k, 0)),
            (Some(k @ Sparse), t) => Err(ModelError::InvalidConfig {
                what: format!(
                    "kernel={k} is single-threaded and cannot run with threads={t}; \
                     use kernel=sparse-parallel to combine sparse sweeps with worker \
                     threads, or kernel=alias for the chunked alias-table MH sweep \
                     ({KERNEL_MATRIX})"
                ),
            }),
            (Some(k), t) => Err(ModelError::InvalidConfig {
                what: format!(
                    "kernel={k} is single-threaded and cannot run with threads={t} \
                     ({KERNEL_MATRIX})"
                ),
            }),
        }
    }

    /// Runs the fit under the health supervisor: per-sweep sentinels,
    /// periodic count-invariant audits, and the policy's recovery action
    /// (abort / rollback-and-retry / sparse-kernel degradation) when a
    /// sentinel trips. Supervisor decisions surface as `health.*` events
    /// through the observer; an unrecoverable failure surfaces as
    /// [`ModelError::Health`]. The collapsed engine supports detection
    /// only (it keeps no recovery snapshots), so any trip there aborts.
    #[must_use]
    pub fn health(mut self, policy: HealthPolicy) -> Self {
        self.health = Some(policy);
        self
    }

    /// Enables or disables the per-topic posterior-predictive cache used
    /// by the collapsed Gaussian engines (on by default). Cached and
    /// uncached fits are bit-identical; disabling only serves as a
    /// baseline for benchmarks.
    #[must_use]
    pub fn predictive_cache(mut self, enabled: bool) -> Self {
        self.predictive_cache = enabled;
        self
    }
}

/// Builds the rayon pool for `threads >= 1`, or `None` for the serial
/// kernel.
pub(crate) fn build_pool(threads: usize) -> Result<Option<rayon::ThreadPool>, ModelError> {
    if threads == 0 {
        return Ok(None);
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map(Some)
        .map_err(|e| ModelError::InvalidConfig {
            what: format!("cannot build a {threads}-thread pool: {e}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemoryCheckpointSink;
    use rheotex_obs::VecObserver;

    #[test]
    fn builder_collects_all_options() {
        let mut obs = VecObserver::default();
        let mut sink = MemoryCheckpointSink::new(5);
        let opts = FitOptions::new()
            .observer(&mut obs)
            .checkpoint(&mut sink)
            .threads(4)
            .predictive_cache(false);
        assert!(opts.observer.is_some());
        assert!(opts.sink.is_some());
        assert!(opts.resume.is_none());
        assert_eq!(opts.threads, 4);
        assert!(!opts.predictive_cache);
        let dbg = format!("{opts:?}");
        assert!(dbg.contains("threads: 4"), "{dbg}");
        let opts = FitOptions::new().kernel(GibbsKernel::Sparse);
        assert_eq!(opts.kernel, Some(GibbsKernel::Sparse));
    }

    #[test]
    fn defaults_match_plain_fit_semantics() {
        let opts = FitOptions::default();
        assert!(opts.observer.is_none());
        assert!(opts.sink.is_none());
        assert_eq!(opts.threads, 0);
        assert!(opts.kernel.is_none());
        assert!(opts.predictive_cache);
    }

    #[test]
    fn pool_building() {
        assert!(build_pool(0).unwrap().is_none());
        let pool = build_pool(2).unwrap().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
    }

    #[test]
    fn plan_keeps_thread_semantics_backward_compatible() {
        assert_eq!(FitOptions::new().plan().unwrap(), (GibbsKernel::Serial, 0));
        assert_eq!(
            FitOptions::new().threads(4).plan().unwrap(),
            (GibbsKernel::Parallel, 4)
        );
    }

    #[test]
    fn plan_resolves_explicit_kernels() {
        assert_eq!(
            FitOptions::new()
                .kernel(GibbsKernel::Serial)
                .plan()
                .unwrap(),
            (GibbsKernel::Serial, 0)
        );
        assert_eq!(
            FitOptions::new()
                .kernel(GibbsKernel::Sparse)
                .plan()
                .unwrap(),
            (GibbsKernel::Sparse, 0)
        );
        // An explicitly chunked kernel without a thread count runs the
        // one-worker reproducible baseline.
        for k in [
            GibbsKernel::Parallel,
            GibbsKernel::SparseParallel,
            GibbsKernel::Alias,
        ] {
            assert_eq!(FitOptions::new().kernel(k).plan().unwrap(), (k, 1));
            assert_eq!(
                FitOptions::new().kernel(k).threads(8).plan().unwrap(),
                (k, 8)
            );
        }
    }

    #[test]
    fn plan_rejects_threaded_single_thread_kernels() {
        for k in [GibbsKernel::Serial, GibbsKernel::Sparse] {
            let err = FitOptions::new().kernel(k).threads(2).plan().unwrap_err();
            assert!(matches!(err, ModelError::InvalidConfig { .. }), "{err}");
            // The message names the offending options and spells out the
            // full legal matrix.
            let msg = err.to_string();
            for needle in [
                "threads=2",
                "serial",
                "sparse",
                "parallel",
                "sparse-parallel",
                "alias",
            ] {
                assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
            }
        }
        // The sparse rejection points at both threaded compositions.
        let err = FitOptions::new()
            .kernel(GibbsKernel::Sparse)
            .threads(2)
            .plan()
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("sparse-parallel") && msg.contains("kernel=alias"),
            "sparse rejection should suggest sparse-parallel and alias: {err}"
        );
    }

    #[test]
    fn kernel_parses_and_displays_round_trip() {
        for k in [
            GibbsKernel::Serial,
            GibbsKernel::Parallel,
            GibbsKernel::Sparse,
            GibbsKernel::SparseParallel,
            GibbsKernel::Alias,
        ] {
            assert_eq!(k.to_string().parse::<GibbsKernel>().unwrap(), k);
        }
        assert!("dense".parse::<GibbsKernel>().is_err());
        // The unknown-kernel error enumerates the legal matrix.
        let msg = "dense".parse::<GibbsKernel>().unwrap_err().to_string();
        assert!(msg.contains("sparse-parallel"), "{msg}");
        // Snapshots persist the kernel as snake_case JSON; the snapshot
        // spelling parses too.
        assert_eq!(
            serde_json::to_string(&GibbsKernel::Sparse).unwrap(),
            "\"sparse\""
        );
        assert_eq!(
            serde_json::to_string(&GibbsKernel::SparseParallel).unwrap(),
            "\"sparse_parallel\""
        );
        assert_eq!(
            "sparse_parallel".parse::<GibbsKernel>().unwrap(),
            GibbsKernel::SparseParallel
        );
    }
}

//! Human-readable topic summaries — the rows of Table II(a).

use crate::joint::FittedJointModel;
use crate::Result;
use serde::{Deserialize, Serialize};

/// One topic, summarized the way the paper's Table II(a) presents it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicSummary {
    /// Topic index.
    pub topic: usize,
    /// Gel means in *information-quantity* space (as the model sees them).
    pub gel_info_mean: Vec<f64>,
    /// Gel means converted back to concentrations `exp(−v)` — the
    /// "gels:concentration" column.
    pub gel_concentration: Vec<f64>,
    /// Emulsion means converted back to concentrations.
    pub emulsion_concentration: Vec<f64>,
    /// Top terms as `(term index, probability)`, descending.
    pub top_terms: Vec<(usize, f64)>,
    /// Number of recipes whose dominant topic this is ("# Recipes").
    pub n_recipes: usize,
}

impl TopicSummary {
    /// Builds summaries for all topics of a fitted model. `top_n` bounds
    /// the reported terms per topic; terms below `min_prob` are dropped
    /// (the paper lists only the non-negligible ones).
    ///
    /// # Errors
    /// Numerical failure extracting topic Gaussians.
    pub fn from_model(model: &FittedJointModel, top_n: usize, min_prob: f64) -> Result<Vec<Self>> {
        let counts = model.topic_doc_counts();
        let mut out = Vec::with_capacity(model.n_topics());
        #[allow(clippy::needless_range_loop)] // k indexes three parallel sources
        for k in 0..model.n_topics() {
            let gel = model.gel_gaussian(k)?;
            let emu = model.emulsion_gaussian(k)?;
            let gel_info_mean = gel.mean().as_slice().to_vec();
            let gel_concentration = gel_info_mean.iter().map(|&v| (-v).exp()).collect();
            let emulsion_concentration = emu.mean().iter().map(|&v| (-v).exp()).collect();
            let top_terms = model
                .top_terms(k, top_n)
                .into_iter()
                .filter(|&(_, p)| p >= min_prob)
                .collect();
            out.push(Self {
                topic: k,
                gel_info_mean,
                gel_concentration,
                emulsion_concentration,
                top_terms,
                n_recipes: counts[k],
            });
        }
        Ok(out)
    }

    /// The gel with the highest mean concentration, as
    /// `(index, concentration)`.
    #[must_use]
    pub fn dominant_gel(&self) -> (usize, f64) {
        let mut best = 0;
        for (i, &c) in self.gel_concentration.iter().enumerate() {
            if c > self.gel_concentration[best] {
                best = i;
            }
        }
        (best, self.gel_concentration[best])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JointConfig;
    use crate::data::ModelDoc;
    use crate::joint::JointTopicModel;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_linalg::Vector;

    fn fit() -> FittedJointModel {
        let mut r = ChaCha8Rng::seed_from_u64(71);
        let docs: Vec<ModelDoc> = (0..60)
            .map(|i| {
                let c = i % 2;
                let jitter = r.gen_range(-0.1..0.1);
                // -ln(0.02) ≈ 3.91 vs -ln(0.005) ≈ 5.30
                let gel = if c == 0 {
                    Vector::new(vec![3.91 + jitter, 9.2, 9.2])
                } else {
                    Vector::new(vec![5.30 + jitter, 9.2, 9.2])
                };
                ModelDoc::new(i as u64, vec![2 * c, 2 * c + 1], gel, Vector::full(6, 9.2))
            })
            .collect();
        JointTopicModel::new(JointConfig::quick(2, 4))
            .unwrap()
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(72),
                &docs,
                crate::FitOptions::new(),
            )
            .unwrap()
    }

    #[test]
    fn summaries_cover_all_topics() {
        let model = fit();
        let sums = TopicSummary::from_model(&model, 5, 0.0).unwrap();
        assert_eq!(sums.len(), 2);
        assert_eq!(
            sums.iter().map(|s| s.n_recipes).sum::<usize>(),
            model.n_docs()
        );
    }

    #[test]
    fn concentrations_are_exp_of_info_means() {
        let model = fit();
        let sums = TopicSummary::from_model(&model, 5, 0.0).unwrap();
        for s in &sums {
            for (v, c) in s.gel_info_mean.iter().zip(&s.gel_concentration) {
                assert!((c - (-v).exp()).abs() < 1e-12);
            }
        }
        // One topic near 2% gelatin, the other near 0.5%.
        let mut gels: Vec<f64> = sums.iter().map(|s| s.gel_concentration[0]).collect();
        gels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((gels[0] - 0.005).abs() < 0.002, "{gels:?}");
        assert!((gels[1] - 0.02).abs() < 0.005, "{gels:?}");
    }

    #[test]
    fn min_prob_prunes_terms() {
        let model = fit();
        let all = TopicSummary::from_model(&model, 4, 0.0).unwrap();
        let pruned = TopicSummary::from_model(&model, 4, 0.2).unwrap();
        for (a, p) in all.iter().zip(&pruned) {
            assert!(p.top_terms.len() <= a.top_terms.len());
            assert!(p.top_terms.iter().all(|&(_, prob)| prob >= 0.2));
        }
    }

    #[test]
    fn dominant_gel_is_gelatin_here() {
        let model = fit();
        for s in TopicSummary::from_model(&model, 4, 0.0).unwrap() {
            assert_eq!(s.dominant_gel().0, 0);
        }
    }
}

//! SparseLDA-style bucket decomposition of the collapsed Gibbs weight.
//!
//! The dense kernels score every topic for every token: `O(K)` per token
//! regardless of how many topics the document or term actually uses. The
//! sparse kernel splits the unnormalized weight
//!
//! ```text
//! w_k = (n_dk + m_dk + alpha) * (n_kw + gamma) / (n_k + gamma * V)
//! ```
//!
//! into three buckets,
//!
//! ```text
//! w_k = alpha * gamma / den_k                      (s: smoothing, all K)
//!     + (n_dk + m_dk) * gamma / den_k              (r: document, nnz(doc))
//!     + (n_dk + m_dk + alpha) * n_kw / den_k       (q: word, nnz(word))
//! ```
//!
//! where `den_k = n_k + gamma * V` and `m_dk` is the joint model's
//! observed-topic boost (`1` when the document's gel/emulsion topic is
//! `k`, absent for plain LDA). The s-bucket mass and the per-topic
//! `1 / den_k` table change only when a topic's total count moves, the
//! r-bucket mass only when the current document's counts move — both are
//! maintained incrementally. Only the q bucket is rebuilt per token, and
//! it walks the term's nonzero-topic list, so the per-token cost is
//! `O(q + r + s_walk)` with the common case resolved inside the q bucket
//! after a handful of comparisons.
//!
//! # Determinism
//!
//! The draw consumes exactly one `f64` from the RNG per token, and every
//! floating-point operation is a pure function of (config, counts
//! history). The incrementally maintained `r`/`s` masses enter the draw
//! only through the *total*; bucket selection walks freshly computed
//! per-topic terms, so accumulated rounding drift in the masses can bias
//! the bucket split by at most an ulp-scale amount but can never make
//! the walk disagree with itself across runs. Same seed, same docs, same
//! config → byte-identical assignments, on a live run or across a
//! kill-and-resume (the nonzero lists rebuild in sorted order; see
//! [`crate::counts`]).

use rand::Rng;
use rheotex_obs::KernelProfile;

use crate::counts::TopicCounts;

/// Per-sweep profiling counters for the sparse kernel: where the token
/// draws landed, the summed bucket masses they saw, and the nonzero-list
/// lengths they walked. Maintained only while profiling is switched on
/// ([`SparseTokenSampler::set_profiling`]) — pure observation, never an
/// input to sampling — and drained once per sweep by
/// [`SparseTokenSampler::take_profile`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SparseProfile {
    s_draws: u64,
    r_draws: u64,
    q_draws: u64,
    s_mass: f64,
    r_mass: f64,
    q_mass: f64,
    word_nnz: u64,
    doc_nnz: u64,
}

impl SparseProfile {
    /// Converts the counters into the wire-facing profile payload.
    pub(crate) fn into_kernel_profile(self) -> KernelProfile {
        KernelProfile::Sparse {
            s_draws: self.s_draws,
            r_draws: self.r_draws,
            q_draws: self.q_draws,
            s_mass: self.s_mass,
            r_mass: self.r_mass,
            q_mass: self.q_mass,
            word_nnz: self.word_nnz,
            doc_nnz: self.doc_nnz,
        }
    }

    /// Accumulates another chunk's counters into this one — the
    /// sparse-parallel kernel folds one profile per chunk into a
    /// sweep-level aggregate. Draw counts and nnz walks sum; the bucket
    /// masses sum too (they are per-token sums already, so the aggregate
    /// keeps the same "mass seen per draw" reading as the serial sparse
    /// profile).
    pub(crate) fn merge(&mut self, other: &SparseProfile) {
        self.s_draws += other.s_draws;
        self.r_draws += other.r_draws;
        self.q_draws += other.q_draws;
        self.s_mass += other.s_mass;
        self.r_mass += other.r_mass;
        self.q_mass += other.q_mass;
        self.word_nnz += other.word_nnz;
        self.doc_nnz += other.doc_nnz;
    }

    /// Converts sweep-merged counters plus the per-chunk timing
    /// observations into the sparse-parallel wire payload.
    pub(crate) fn into_sparse_parallel_profile(
        self,
        chunk_us: Vec<u64>,
        rebuild_us: Vec<u64>,
        fold_us: Vec<u64>,
        alloc_bytes: u64,
    ) -> KernelProfile {
        KernelProfile::SparseParallel {
            s_draws: self.s_draws,
            r_draws: self.r_draws,
            q_draws: self.q_draws,
            s_mass: self.s_mass,
            r_mass: self.r_mass,
            q_mass: self.q_mass,
            word_nnz: self.word_nnz,
            doc_nnz: self.doc_nnz,
            chunks: chunk_us.len() as u64,
            chunk_us,
            rebuild_us,
            fold_us,
            alloc_bytes,
        }
    }
}

/// Per-sweep sampler state for the sparse kernel: the shared `1/den_k`
/// table, the incrementally maintained bucket masses, and the q-bucket
/// scratch buffers.
#[derive(Debug, Clone)]
pub(crate) struct SparseTokenSampler {
    k: usize,
    alpha: f64,
    gamma: f64,
    gamma_v: f64,
    alpha_gamma: f64,
    /// `1 / (n_k + gamma * V)` per topic; refreshed on topic-total moves.
    inv_den: Vec<f64>,
    /// Smoothing bucket mass: `alpha * gamma * sum_k inv_den[k]`.
    s_mass: f64,
    /// Document bucket mass for the current document.
    r_mass: f64,
    /// The document `begin_doc` installed.
    doc: usize,
    /// The joint model's observed topic for the current document, if any.
    boost: Option<usize>,
    /// Scratch: topics contributing to the q bucket for this token.
    q_topics: Vec<u32>,
    /// Scratch: cumulative q-bucket weights, parallel to `q_topics`.
    q_cum: Vec<f64>,
    /// Whether the profiling counters below are maintained.
    profiling: bool,
    /// Bucket/nnz counters for the current sweep (profiling only).
    profile: SparseProfile,
}

impl SparseTokenSampler {
    pub(crate) fn new(k: usize, v: usize, alpha: f64, gamma: f64) -> Self {
        Self {
            k,
            alpha,
            gamma,
            gamma_v: gamma * v as f64,
            alpha_gamma: alpha * gamma,
            inv_den: vec![0.0; k],
            s_mass: 0.0,
            r_mass: 0.0,
            doc: 0,
            boost: None,
            q_topics: Vec::with_capacity(k),
            q_cum: Vec::with_capacity(k),
            profiling: false,
            profile: SparseProfile::default(),
        }
    }

    /// Switches the per-sweep bucket/nnz profiling counters on or off.
    /// Profiling reads sampler state only — bucket selection and RNG
    /// consumption are byte-identical either way.
    pub(crate) fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Drains the profiling counters accumulated since the last call.
    pub(crate) fn take_profile(&mut self) -> SparseProfile {
        std::mem::take(&mut self.profile)
    }

    /// `m_dk`: 1 when `topic` is the document's observed topic.
    #[inline]
    fn boost_count(&self, topic: usize) -> u32 {
        u32::from(self.boost == Some(topic))
    }

    /// Refreshes the denominator table and the smoothing mass from the
    /// current counts. Called at the top of every sweep so that rounding
    /// drift from incremental updates never outlives a sweep.
    pub(crate) fn begin_sweep(&mut self, counts: &TopicCounts) {
        let mut sum = 0.0;
        for t in 0..self.k {
            let inv = 1.0 / (f64::from(counts.topic_total(t)) + self.gamma_v);
            self.inv_den[t] = inv;
            sum += inv;
        }
        self.s_mass = self.alpha_gamma * sum;
    }

    /// Installs document `d` (with the joint model's observed-topic
    /// `boost`, if any) and computes its document-bucket mass.
    pub(crate) fn begin_doc(&mut self, counts: &TopicCounts, d: usize, boost: Option<usize>) {
        self.doc = d;
        self.boost = boost;
        let mut r = 0.0;
        let mut boost_in_list = false;
        for &t in counts.doc_topics(d) {
            let t = t as usize;
            boost_in_list |= Some(t) == boost;
            let a = f64::from(counts.dk(d, t) + self.boost_count(t));
            r += a * self.gamma * self.inv_den[t];
        }
        if let Some(b) = boost {
            if !boost_in_list {
                // m_dk alone keeps the boost topic in the r support even
                // when the document has no tokens there.
                r += self.gamma * self.inv_den[b];
            }
        }
        self.r_mass = r;
        if self.profiling {
            self.profile.doc_nnz += counts.doc_topics(d).len() as u64;
        }
    }

    /// The r term of `topic` for the current document under the current
    /// counts (zero when the topic is outside the r support).
    #[inline]
    fn r_term(&self, counts: &TopicCounts, topic: usize) -> f64 {
        let a = f64::from(counts.dk(self.doc, topic) + self.boost_count(topic));
        a * self.gamma * self.inv_den[topic]
    }

    /// Removes `topic`'s contributions, applies `op` to the counts, then
    /// re-adds the contributions under the new counts — the one place
    /// the incremental masses are maintained.
    #[inline]
    fn shift_topic(
        &mut self,
        counts: &mut TopicCounts,
        topic: usize,
        op: impl FnOnce(&mut TopicCounts),
    ) {
        self.s_mass -= self.alpha_gamma * self.inv_den[topic];
        self.r_mass -= self.r_term(counts, topic);
        op(counts);
        self.inv_den[topic] = 1.0 / (f64::from(counts.topic_total(topic)) + self.gamma_v);
        self.s_mass += self.alpha_gamma * self.inv_den[topic];
        self.r_mass += self.r_term(counts, topic);
    }

    /// Moves one token of term `w` in the current document out of topic
    /// `old` and into a freshly drawn topic, which it returns. Counts
    /// and bucket masses are left consistent with the new assignment.
    pub(crate) fn move_token<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        counts: &mut TopicCounts,
        w: usize,
        old: usize,
    ) -> usize {
        let d = self.doc;
        self.shift_topic(counts, old, |c| c.dec(d, w, old));

        // q bucket: one pass over the term's nonzero topics.
        self.q_topics.clear();
        self.q_cum.clear();
        let mut q_mass = 0.0;
        for &t in counts.word_topics(w) {
            let tu = t as usize;
            let a = f64::from(counts.dk(d, tu) + self.boost_count(tu)) + self.alpha;
            q_mass += a * f64::from(counts.kw(tu, w)) * self.inv_den[tu];
            self.q_topics.push(t);
            self.q_cum.push(q_mass);
        }

        let total = q_mass + self.r_mass + self.s_mass;
        let u = rng.gen::<f64>() * total;

        if self.profiling {
            let p = &mut self.profile;
            p.q_mass += q_mass;
            p.r_mass += self.r_mass;
            p.s_mass += self.s_mass;
            p.word_nnz += self.q_topics.len() as u64;
            if u < q_mass {
                p.q_draws += 1;
            } else if u < q_mass + self.r_mass {
                p.r_draws += 1;
            } else {
                p.s_draws += 1;
            }
        }

        let new = if u < q_mass {
            let slot = self.q_cum.partition_point(|&c| c <= u);
            self.q_topics[slot.min(self.q_topics.len() - 1)] as usize
        } else {
            self.pick_r_or_s(counts, u - q_mass)
        };

        self.shift_topic(counts, new, |c| c.inc(d, w, new));
        new
    }

    /// Resolves a draw that landed past the q bucket by walking freshly
    /// computed r terms (document nonzero list, plus the boost topic if
    /// it carries no tokens), then the K smoothing terms. The stored
    /// `r_mass`/`s_mass` only sized the total, so rounding drift in them
    /// cannot desynchronize this walk between runs.
    fn pick_r_or_s(&self, counts: &TopicCounts, mut u: f64) -> usize {
        let d = self.doc;
        let mut boost_in_list = false;
        for &t in counts.doc_topics(d) {
            let t = t as usize;
            boost_in_list |= Some(t) == self.boost;
            u -= self.r_term(counts, t);
            if u < 0.0 {
                return t;
            }
        }
        if let Some(b) = self.boost {
            if !boost_in_list {
                u -= self.r_term(counts, b);
                if u < 0.0 {
                    return b;
                }
            }
        }
        for t in 0..self.k {
            u -= self.alpha_gamma * self.inv_den[t];
            if u < 0.0 {
                return t;
            }
        }
        // Rounding pushed u past every bucket; the last topic absorbs it.
        self.k - 1
    }

    /// Relative drift between the incrementally maintained
    /// smoothing-bucket mass and a from-scratch recomputation under the
    /// current counts. The health supervisor samples this after sparse
    /// sweeps: drift beyond the policy epsilon means the incremental
    /// updates and the count store have desynchronized.
    pub(crate) fn s_mass_drift(&self, counts: &TopicCounts) -> f64 {
        let mut sum = 0.0;
        for t in 0..self.k {
            sum += 1.0 / (f64::from(counts.topic_total(t)) + self.gamma_v);
        }
        let fresh = self.alpha_gamma * sum;
        (self.s_mass - fresh).abs() / fresh.abs().max(1e-300)
    }

    /// The incrementally maintained `(r_mass, s_mass)` pair.
    #[cfg(test)]
    fn masses(&self) -> (f64, f64) {
        (self.r_mass, self.s_mass)
    }

    /// `(r_mass, s_mass)` recomputed from scratch for the current
    /// document — the reference the incremental masses are tested
    /// against.
    #[cfg(test)]
    fn recomputed_masses(&self, counts: &TopicCounts) -> (f64, f64) {
        let mut probe = self.clone();
        probe.begin_sweep(counts);
        probe.begin_doc(counts, self.doc, self.boost);
        (probe.r_mass, probe.s_mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A small corpus as (doc, word) token sites with initial topics.
    fn seeded_counts(
        rng: &mut ChaCha8Rng,
        d: usize,
        k: usize,
        v: usize,
        tokens_per_doc: usize,
    ) -> (TopicCounts, Vec<(usize, usize, usize)>) {
        let mut counts = TopicCounts::new(d, k, v);
        counts.enable_tracking();
        let mut sites = Vec::new();
        for doc in 0..d {
            for _ in 0..tokens_per_doc {
                let w = rng.gen_range(0..v);
                let t = rng.gen_range(0..k);
                counts.inc(doc, w, t);
                sites.push((doc, w, t));
            }
        }
        (counts, sites)
    }

    fn assert_close(inc: f64, fresh: f64, what: &str) {
        let scale = fresh.abs().max(1e-300);
        assert!(
            ((inc - fresh) / scale).abs() < 1e-9,
            "{what}: incremental {inc} vs fresh {fresh}"
        );
    }

    #[test]
    fn moved_token_keeps_counts_and_masses_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (mut counts, mut sites) = seeded_counts(&mut rng, 3, 6, 8, 10);
        let mut sampler = SparseTokenSampler::new(6, 8, 0.4, 0.2);
        sampler.begin_sweep(&counts);
        for pass in 0..4 {
            for i in 0..sites.len() {
                let (d, w, old) = sites[i];
                sampler.begin_doc(&counts, d, None);
                let new = sampler.move_token(&mut rng, &mut counts, w, old);
                assert!(new < 6);
                sites[i] = (d, w, new);
                let (r_inc, s_inc) = sampler.masses();
                let (r_fresh, s_fresh) = sampler.recomputed_masses(&counts);
                assert_close(r_inc, r_fresh, &format!("r pass {pass} token {i}"));
                assert_close(s_inc, s_fresh, &format!("s pass {pass} token {i}"));
            }
        }
        // Token mass is conserved.
        let total: u32 = (0..6).map(|t| counts.topic_total(t)).sum();
        assert_eq!(total as usize, sites.len());
    }

    #[test]
    fn boost_topic_stays_in_r_support_without_tokens() {
        // A document with no tokens in the boost topic must still be able
        // to draw it through the r bucket (m_dk = 1 alone).
        let mut counts = TopicCounts::new(1, 4, 3);
        counts.enable_tracking();
        counts.inc(0, 0, 1);
        let mut sampler = SparseTokenSampler::new(4, 3, 0.3, 0.1);
        sampler.begin_sweep(&counts);
        sampler.begin_doc(&counts, 0, Some(2));
        // r support is {1 (token), 2 (boost)}.
        let expected = sampler.r_term(&counts, 1) + sampler.r_term(&counts, 2);
        assert_close(sampler.r_mass, expected, "boost r_mass");
        assert!(sampler.r_term(&counts, 2) > 0.0);
        assert_eq!(sampler.r_term(&counts, 3), 0.0);
    }

    #[test]
    fn sparse_draw_matches_dense_distribution() {
        // Frequency check: the sparse three-bucket draw targets the same
        // unnormalized weights as the dense kernel's K-way scan.
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let (k, v, alpha, gamma) = (4usize, 5usize, 0.5, 0.2);
        let (mut counts, _) = seeded_counts(&mut rng, 1, k, v, 12);
        let w = 2;
        counts.inc(0, w, 1); // the token we resample, topic 1
        let mut sampler = SparseTokenSampler::new(k, v, alpha, gamma);

        // Dense reference weights with the token removed.
        counts.dec(0, w, 1);
        let weights: Vec<f64> = (0..k)
            .map(|t| {
                (f64::from(counts.dk(0, t)) + alpha) * (f64::from(counts.kw(t, w)) + gamma)
                    / (f64::from(counts.topic_total(t)) + gamma * v as f64)
            })
            .collect();
        let wsum: f64 = weights.iter().sum();
        counts.inc(0, w, 1);

        let draws = 40_000usize;
        let mut hist = vec![0usize; k];
        let mut at = 1usize;
        for _ in 0..draws {
            sampler.begin_sweep(&counts);
            sampler.begin_doc(&counts, 0, None);
            let new = sampler.move_token(&mut rng, &mut counts, w, at);
            hist[new] += 1;
            // Put the token back where it started so every draw sees the
            // same conditional.
            sampler.shift_topic(&mut counts, new, |c| c.dec(0, w, new));
            sampler.shift_topic(&mut counts, at, |c| c.inc(0, w, at));
            at = 1;
        }
        for t in 0..k {
            let expect = weights[t] / wsum;
            let got = hist[t] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.015,
                "topic {t}: got {got:.4}, expected {expect:.4}"
            );
        }
    }

    #[test]
    fn move_token_is_deterministic_for_a_seed() {
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(23);
            let (mut counts, mut sites) = seeded_counts(&mut rng, 4, 8, 6, 9);
            let mut sampler = SparseTokenSampler::new(8, 6, 0.3, 0.15);
            let mut trace = Vec::new();
            for _ in 0..3 {
                sampler.begin_sweep(&counts);
                for i in 0..sites.len() {
                    let (d, w, old) = sites[i];
                    sampler.begin_doc(&counts, d, Some(d % 8));
                    let new = sampler.move_token(&mut rng, &mut counts, w, old);
                    sites[i] = (d, w, new);
                    trace.push(new);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn profiling_counts_every_draw_without_perturbing_sampling() {
        let run = |profiling: bool| {
            let mut rng = ChaCha8Rng::seed_from_u64(31);
            let (mut counts, mut sites) = seeded_counts(&mut rng, 4, 6, 7, 8);
            let mut sampler = SparseTokenSampler::new(6, 7, 0.3, 0.15);
            sampler.set_profiling(profiling);
            let mut profiles = Vec::new();
            let mut trace = Vec::new();
            for _ in 0..3 {
                sampler.begin_sweep(&counts);
                for i in 0..sites.len() {
                    let (d, w, old) = sites[i];
                    sampler.begin_doc(&counts, d, None);
                    let new = sampler.move_token(&mut rng, &mut counts, w, old);
                    sites[i] = (d, w, new);
                    trace.push(new);
                }
                profiles.push(sampler.take_profile());
            }
            (trace, profiles)
        };
        let (trace_on, profiles) = run(true);
        let (trace_off, idle) = run(false);
        assert_eq!(trace_on, trace_off, "profiling must not perturb draws");
        for p in &profiles {
            // Every token lands in exactly one bucket.
            assert_eq!(p.s_draws + p.r_draws + p.q_draws, 32);
            assert!(p.q_mass + p.r_mass + p.s_mass > 0.0);
            assert!(p.word_nnz > 0);
            assert!(p.doc_nnz > 0);
        }
        for p in &idle {
            assert_eq!(p.s_draws + p.r_draws + p.q_draws, 0);
        }
        // The wire conversion carries the counters through.
        let kp = profiles[0].into_kernel_profile();
        match kp {
            rheotex_obs::KernelProfile::Sparse {
                s_draws,
                r_draws,
                q_draws,
                ..
            } => assert_eq!(s_draws + r_draws + q_draws, 32),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn merged_chunk_profiles_sum_counters() {
        let mut a = SparseProfile {
            s_draws: 1,
            r_draws: 2,
            q_draws: 3,
            s_mass: 0.5,
            r_mass: 1.0,
            q_mass: 2.0,
            word_nnz: 7,
            doc_nnz: 9,
        };
        let b = SparseProfile {
            s_draws: 10,
            r_draws: 20,
            q_draws: 30,
            s_mass: 5.0,
            r_mass: 10.0,
            q_mass: 20.0,
            word_nnz: 70,
            doc_nnz: 90,
        };
        a.merge(&b);
        assert_eq!((a.s_draws, a.r_draws, a.q_draws), (11, 22, 33));
        assert_eq!((a.word_nnz, a.doc_nnz), (77, 99));
        let kp = a.into_sparse_parallel_profile(vec![4, 5], vec![1, 1], vec![2, 2], 1024);
        match kp {
            rheotex_obs::KernelProfile::SparseParallel {
                s_draws,
                chunks,
                chunk_us,
                rebuild_us,
                fold_us,
                alloc_bytes,
                ..
            } => {
                assert_eq!(s_draws, 11);
                assert_eq!(chunks, 2);
                assert_eq!(chunk_us, vec![4, 5]);
                assert_eq!(rebuild_us, vec![1, 1]);
                assert_eq!(fold_us, vec![2, 2]);
                assert_eq!(alloc_bytes, 1024);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    proptest! {
        /// Property (a): after any randomized remove/insert sequence the
        /// incrementally maintained bucket masses match a from-scratch
        /// recomputation (to FP roundoff) and the nonzero support is
        /// exact.
        #[test]
        fn masses_survive_randomized_moves(seed in 0u64..500, moves in 10usize..80) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let (d, k, v) = (3usize, 5usize, 6usize);
            let (mut counts, mut sites) = seeded_counts(&mut rng, d, k, v, 8);
            let mut sampler = SparseTokenSampler::new(k, v, 0.25, 0.1);
            sampler.begin_sweep(&counts);
            for _ in 0..moves {
                let i = rng.gen_range(0..sites.len());
                let (doc, w, old) = sites[i];
                let boost = if rng.gen_bool(0.5) { Some(rng.gen_range(0..k)) } else { None };
                sampler.begin_doc(&counts, doc, boost);
                let new = sampler.move_token(&mut rng, &mut counts, w, old);
                sites[i] = (doc, w, new);
                let (r_inc, s_inc) = sampler.masses();
                let (r_fresh, s_fresh) = sampler.recomputed_masses(&counts);
                let rs = (r_inc - r_fresh).abs() / r_fresh.abs().max(1e-300);
                let ss = (s_inc - s_fresh).abs() / s_fresh.abs().max(1e-300);
                prop_assert!(rs < 1e-9, "r drift {rs}");
                prop_assert!(ss < 1e-9, "s drift {ss}");
                // Support exactness: every tracked doc list equals the
                // support of the flat counts.
                for dd in 0..d {
                    let expect: Vec<u32> =
                        (0..k).filter(|&t| counts.dk(dd, t) > 0).map(|t| t as u32).collect();
                    prop_assert_eq!(counts.doc_topics(dd), expect.as_slice());
                }
            }
        }
    }
}

//! LightLDA-style alias-table Metropolis-Hastings token sampling.
//!
//! The sparse kernel ([`crate::sparse`]) cuts the dense `O(K)` per-token
//! scan to `O(s + r + q)`, but that still grows with the number of
//! topics active in the document and word. The alias kernel goes one
//! step further: it draws proposals in `O(1)` amortized time from
//! precomputed [Vose/Walker alias tables](https://en.wikipedia.org/wiki/Alias_method)
//! and corrects the staleness of those tables with a Metropolis-Hastings
//! acceptance step against the fresh counts, so the per-token cost is a
//! small constant independent of `K`, `V`, and the topic support.
//!
//! Per sweep, one alias table per word is built over the frozen
//! start-of-sweep column `φ̂_w ∝ n_kw + γ` (an `O(KV)` build amortized
//! over every token of the sweep). Each token then runs a cycled pair of
//! MH proposals against the fresh counts `π(k) ∝ (n_dk^¬ + m_dk + α) ·
//! (n_kw^¬ + γ) / (n_k^¬ + γV)`:
//!
//! * a **document proposal** `q_d(k) ∝ n_dk(k) + 1[k = old] + α`, drawn
//!   by the token-pick trick — pick a uniform position in
//!   `[0, L + αK)`; below `L` it names an existing token's topic
//!   (the current token still counts under its old topic), above it a
//!   uniform topic — so no document-side table is ever built;
//! * a **word proposal** `q_w(k) ∝ n_kw_stale(k) + γ`, drawn from the
//!   word's alias table. The stale weights enter the acceptance ratio
//!   directly (their normalizer cancels), so staleness biases nothing:
//!   the chain's stationary distribution is exactly `π`.
//!
//! # Determinism
//!
//! A token consumes exactly four `f64` draws — doc proposal, doc
//! accept, word proposal, word accept — regardless of where the
//! proposals land, and the Vose construction fills its worklists in
//! index order, so the kernel is a pure function of `(config, docs,
//! seed)`. The sweep itself always runs on the parallel kernel's fixed
//! 64-doc chunk grid with counter-derived ChaCha8 streams (stream `2c`
//! for chunk `c`), making the output bit-identical across runs *and*
//! across worker-thread counts.
//!
//! # Exactness caveat
//!
//! MH correction makes the kernel stationary-distribution-exact, but a
//! single sweep mixes differently from the dense Gibbs scan (a token
//! can keep its topic because a proposal was rejected, not because the
//! conditional favored it), so per-sweep state is *not* comparable to
//! the dense kernels bit-for-bit or statistically sweep-by-sweep; only
//! the post-burn-in averages agree.

use rand::Rng;
use rheotex_obs::KernelProfile;

/// A Vose/Walker alias table: samples an index `i` with probability
/// `weights[i] / Σ weights` from a single uniform draw.
#[derive(Debug, Clone)]
pub(crate) struct AliasTable {
    /// Per-slot acceptance threshold, scaled to `[0, 1]`.
    prob: Vec<f64>,
    /// Per-slot alias target taken when the threshold test fails.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table in `O(len)` with the two-worklist Vose
    /// construction. Worklists fill in index order and drain from the
    /// back, so the table layout — and therefore every draw — is a pure
    /// function of the weights.
    pub(crate) fn build(weights: &[f64]) -> Self {
        let k = weights.len();
        debug_assert!(k > 0, "alias table over an empty support");
        let total: f64 = weights.iter().sum();
        let scale = k as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..k as u32).collect();
        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let Some(s) = small.pop() {
            // With exact arithmetic the lists exhaust together; under FP
            // roundoff a small slot can outlive the large list and sits
            // at (numerically) exactly 1.
            let Some(l) = large.last().copied() else {
                prob[s as usize] = 1.0;
                continue;
            };
            alias[s as usize] = l;
            // The large slot donates the deficit of the small slot.
            let donated = 1.0 - prob[s as usize];
            prob[l as usize] -= donated;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftover large slots likewise sit at 1.
        for l in large {
            prob[l as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Maps one uniform `u ∈ [0, 1)` to a slot: the integer part picks
    /// the column, the fractional part runs the threshold test.
    #[inline]
    pub(crate) fn sample(&self, u: f64) -> usize {
        let k = self.prob.len();
        let scaled = u * k as f64;
        let i = (scaled as usize).min(k - 1);
        let frac = scaled - i as f64;
        if frac < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// The per-sweep proposal state: one alias table per word over the
/// frozen start-of-sweep `n_kw + γ` column, plus the frozen counts
/// themselves for evaluating the stale proposal weights in the MH
/// acceptance ratio.
#[derive(Debug, Clone)]
pub(crate) struct AliasTables {
    k: usize,
    v: usize,
    gamma: f64,
    /// Frozen `n_kw` (layout `k * v + w`) the tables were built from.
    n_kw: Vec<u32>,
    /// One table per word, over topics.
    tables: Vec<AliasTable>,
}

impl AliasTables {
    /// Builds every word's table from the frozen term counts — `O(KV)`
    /// once per sweep, shared read-only by all chunks.
    pub(crate) fn build(n_kw: &[u32], k: usize, v: usize, gamma: f64) -> Self {
        debug_assert_eq!(n_kw.len(), k * v);
        let mut weights = vec![0.0f64; k];
        let tables = (0..v)
            .map(|w| {
                for (t, weight) in weights.iter_mut().enumerate() {
                    *weight = f64::from(n_kw[t * v + w]) + gamma;
                }
                AliasTable::build(&weights)
            })
            .collect();
        Self {
            k,
            v,
            gamma,
            n_kw: n_kw.to_vec(),
            tables,
        }
    }

    /// The stale (build-time) proposal weight `q_w(t) ∝ n_kw_stale + γ`.
    #[inline]
    pub(crate) fn stale_weight(&self, t: usize, w: usize) -> f64 {
        f64::from(self.n_kw[t * self.v + w]) + self.gamma
    }

    /// Draws a word-proposal topic for `w` from one uniform.
    #[inline]
    pub(crate) fn propose(&self, w: usize, u: f64) -> usize {
        self.tables[w].sample(u)
    }

    /// Heap footprint of the frozen counts plus the tables, for the
    /// profile's allocation gauge.
    pub(crate) fn alloc_bytes(&self) -> u64 {
        // n_kw (u32) + per-word prob (f64) + alias (u32) entries.
        (4 * self.n_kw.len() + (8 + 4) * self.k * self.v) as u64
    }
}

/// Per-sweep profiling counters for the alias kernel: how many MH
/// proposals of each flavor ran and how many were accepted. Pure
/// observation — never an input to sampling.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AliasProfile {
    doc_proposals: u64,
    word_proposals: u64,
    accepted: u64,
    rejected: u64,
}

impl AliasProfile {
    /// Accumulates another chunk's counters into this one.
    pub(crate) fn merge(&mut self, other: &AliasProfile) {
        self.doc_proposals += other.doc_proposals;
        self.word_proposals += other.word_proposals;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
    }

    /// Converts sweep-merged counters plus the chunk timings into the
    /// wire-facing profile payload.
    pub(crate) fn into_kernel_profile(
        self,
        chunk_us: Vec<u64>,
        rebuild_us: u64,
        alloc_bytes: u64,
    ) -> KernelProfile {
        KernelProfile::Alias {
            doc_proposals: self.doc_proposals,
            word_proposals: self.word_proposals,
            accepted: self.accepted,
            rejected: self.rejected,
            chunks: chunk_us.len() as u64,
            chunk_us,
            rebuild_us,
            alloc_bytes,
        }
    }
}

/// One alias-MH token move: the token of term `w` at position `n` of a
/// document whose topic vector is `zs` (with the token still assigned
/// its old topic) is cycled through a document proposal and a word
/// proposal, each accepted against the fresh local counts, and the
/// final topic is returned.
///
/// The caller has already removed the token from `row` / `n_kw` /
/// `n_k` (the `^¬` state) and reinserts it at the returned topic;
/// `boost` is the joint model's observed-topic `m_dk`, entering the
/// target `π` only — never the proposals. Exactly four `f64` draws are
/// consumed on every call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mh_move_token<R: Rng + ?Sized>(
    rng: &mut R,
    tables: &AliasTables,
    zs: &[usize],
    n: usize,
    w: usize,
    row: &[u32],
    n_kw: &[u32],
    n_k: &[u32],
    boost: Option<usize>,
    alpha: f64,
    gamma: f64,
    gamma_v: f64,
    profiling: bool,
    profile: &mut AliasProfile,
) -> usize {
    let k = tables.k;
    let v = tables.v;
    let old = zs[n];
    // Unnormalized target under the fresh token-removed counts.
    let pi = |t: usize| -> f64 {
        let m_dk = u32::from(boost == Some(t));
        (f64::from(row[t] + m_dk) + alpha) * (f64::from(n_kw[t * v + w]) + gamma)
            / (f64::from(n_k[t]) + gamma_v)
    };
    // Stale doc proposal weight: the token-pick distribution below.
    let q_d = |t: usize| -> f64 { f64::from(row[t] + u32::from(t == old)) + alpha };

    let mut cur = old;

    // Document proposal by the token-pick trick: a position below `L`
    // names an existing token's topic (self included, still under
    // `old`), above it the α-smoothing picks a uniform topic.
    let l = zs.len() as f64;
    let x = rng.gen::<f64>() * (l + alpha * k as f64);
    let t = if x < l {
        zs[(x as usize).min(zs.len() - 1)]
    } else {
        (((x - l) / alpha) as usize).min(k - 1)
    };
    let u = rng.gen::<f64>();
    let moved = if t == cur {
        true // a == 1 exactly; the uniform is still consumed above.
    } else {
        let a = (pi(t) * q_d(cur)) / (pi(cur) * q_d(t));
        u < a
    };
    if moved {
        cur = t;
    }
    if profiling {
        profile.doc_proposals += 1;
        if moved {
            profile.accepted += 1;
        } else {
            profile.rejected += 1;
        }
    }

    // Word proposal from the stale alias table; the stale weights enter
    // the ratio directly (their per-word normalizer cancels).
    let t = tables.propose(w, rng.gen::<f64>());
    let u = rng.gen::<f64>();
    let moved = if t == cur {
        true
    } else {
        let a = (pi(t) * tables.stale_weight(cur, w)) / (pi(cur) * tables.stale_weight(t, w));
        u < a
    };
    if moved {
        cur = t;
    }
    if profiling {
        profile.word_proposals += 1;
        if moved {
            profile.accepted += 1;
        } else {
            profile.rejected += 1;
        }
    }

    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// The exact probability the table assigns to outcome `i`: its own
    /// threshold mass plus every donation aliased to it.
    fn table_mass(table: &AliasTable, i: usize) -> f64 {
        let k = table.prob.len() as f64;
        let mut mass = table.prob[i];
        for (j, &a) in table.alias.iter().enumerate() {
            if a as usize == i && j != i {
                mass += 1.0 - table.prob[j];
            }
        }
        mass / k
    }

    #[test]
    fn vose_build_reproduces_the_weights_exactly() {
        let weights = vec![0.5, 3.0, 0.1, 1.4, 2.0, 0.0001];
        let total: f64 = weights.iter().sum();
        let table = AliasTable::build(&weights);
        for (i, &w) in weights.iter().enumerate() {
            let got = table_mass(&table, i);
            let expect = w / total;
            assert!(
                (got - expect).abs() < 1e-12,
                "outcome {i}: table mass {got} vs weight {expect}"
            );
        }
    }

    #[test]
    fn build_is_deterministic() {
        let weights: Vec<f64> = (0..97).map(|i| 0.1 + ((i * 37) % 11) as f64).collect();
        let a = AliasTable::build(&weights);
        let b = AliasTable::build(&weights);
        assert_eq!(a.prob, b.prob);
        assert_eq!(a.alias, b.alias);
    }

    #[test]
    fn sampled_frequencies_match_weights() {
        let weights = vec![1.0, 4.0, 0.5, 2.5];
        let total: f64 = weights.iter().sum();
        let table = AliasTable::build(&weights);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let draws = 80_000usize;
        let mut hist = vec![0usize; weights.len()];
        for _ in 0..draws {
            hist[table.sample(rng.gen::<f64>())] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let got = hist[i] as f64 / draws as f64;
            let expect = w / total;
            assert!(
                (got - expect).abs() < 0.01,
                "outcome {i}: got {got:.4}, expected {expect:.4}"
            );
        }
    }

    #[test]
    fn stale_weights_read_the_frozen_counts() {
        let (k, v, gamma) = (3usize, 2usize, 0.25);
        let n_kw = vec![5u32, 0, 1, 2, 0, 7];
        let tables = AliasTables::build(&n_kw, k, v, gamma);
        for t in 0..k {
            for w in 0..v {
                assert_eq!(
                    tables.stale_weight(t, w),
                    f64::from(n_kw[t * v + w]) + gamma
                );
            }
        }
        assert!(tables.alloc_bytes() > 0);
    }

    /// A long single-site MH chain must converge to the dense collapsed
    /// conditional — the stationarity contract of the MH correction.
    #[test]
    fn mh_chain_is_stationary_on_the_dense_conditional() {
        let (k, v, alpha, gamma) = (4usize, 5usize, 0.5, 0.2);
        let gamma_v = gamma * v as f64;
        let w = 2usize;
        // A fixed background of counts, token removed. The doc row must
        // be the histogram of `zs` minus the resampled site, or the
        // token-pick proposal density in the acceptance ratio would not
        // match the actual pick distribution.
        let row: Vec<u32> = vec![3, 0, 1, 1];
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        let mut r = ChaCha8Rng::seed_from_u64(3);
        for t in 0..k {
            for ww in 0..v {
                let c = r.gen_range(0..6u32);
                n_kw[t * v + ww] = c;
                n_k[t] += c;
            }
        }
        // The doc's token topics; position 0 is the site we resample.
        let mut zs = vec![0usize, 0, 0, 0, 2, 3];

        // Dense reference conditional over the same ^¬ state.
        let weights: Vec<f64> = (0..k)
            .map(|t| {
                (f64::from(row[t]) + alpha) * (f64::from(n_kw[t * v + w]) + gamma)
                    / (f64::from(n_k[t]) + gamma_v)
            })
            .collect();
        let wsum: f64 = weights.iter().sum();

        // Build the tables from the same (stale == fresh here) counts.
        let tables = AliasTables::build(&n_kw, k, v, gamma);
        let mut profile = AliasProfile::default();
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let steps = 120_000usize;
        let burn = 2_000usize;
        let mut hist = vec![0usize; k];
        for step in 0..steps {
            let new = mh_move_token(
                &mut rng, &tables, &zs, 0, w, &row, &n_kw, &n_k, None, alpha, gamma, gamma_v,
                true, &mut profile,
            );
            zs[0] = new;
            if step >= burn {
                hist[new] += 1;
            }
        }
        let kept = (steps - burn) as f64;
        for t in 0..k {
            let got = hist[t] as f64 / kept;
            let expect = weights[t] / wsum;
            assert!(
                (got - expect).abs() < 0.02,
                "topic {t}: got {got:.4}, expected {expect:.4}"
            );
        }
    }

    #[test]
    fn profiling_counts_proposals_without_perturbing_draws() {
        let (k, v, alpha, gamma) = (3usize, 4usize, 0.4, 0.3);
        let gamma_v = gamma * v as f64;
        let n_kw: Vec<u32> = (0..k * v).map(|i| ((i * 7) % 5) as u32).collect();
        let n_k: Vec<u32> = (0..k)
            .map(|t| (0..v).map(|ww| n_kw[t * v + ww]).sum())
            .collect();
        let tables = AliasTables::build(&n_kw, k, v, gamma);
        let run = |profiling: bool| {
            let mut rng = ChaCha8Rng::seed_from_u64(41);
            let mut profile = AliasProfile::default();
            let mut zs = vec![1usize, 0, 2, 1];
            let row = vec![1u32, 1, 1];
            let mut trace = Vec::new();
            for _ in 0..64 {
                let new = mh_move_token(
                    &mut rng, &tables, &zs, 0, 1, &row, &n_kw, &n_k, Some(2), alpha, gamma,
                    gamma_v, profiling, &mut profile,
                );
                zs[0] = new;
                trace.push(new);
            }
            (trace, profile)
        };
        let (on, profile) = run(true);
        let (off, idle) = run(false);
        assert_eq!(on, off, "profiling must not perturb draws");
        assert_eq!(profile.doc_proposals, 64);
        assert_eq!(profile.word_proposals, 64);
        assert_eq!(profile.accepted + profile.rejected, 128);
        assert_eq!(idle.doc_proposals + idle.word_proposals, 0);
    }

    #[test]
    fn merged_chunk_profiles_sum_counters() {
        let mut a = AliasProfile {
            doc_proposals: 10,
            word_proposals: 10,
            accepted: 15,
            rejected: 5,
        };
        let b = AliasProfile {
            doc_proposals: 4,
            word_proposals: 4,
            accepted: 8,
            rejected: 0,
        };
        a.merge(&b);
        assert_eq!((a.doc_proposals, a.word_proposals), (14, 14));
        assert_eq!((a.accepted, a.rejected), (23, 5));
        let kp = a.into_kernel_profile(vec![7, 9], 13, 2048);
        match kp {
            KernelProfile::Alias {
                doc_proposals,
                accepted,
                rejected,
                chunks,
                chunk_us,
                rebuild_us,
                alloc_bytes,
                ..
            } => {
                assert_eq!(doc_proposals, 14);
                assert_eq!((accepted, rejected), (23, 5));
                assert_eq!(chunks, 2);
                assert_eq!(chunk_us, vec![7, 9]);
                assert_eq!(rebuild_us, 13);
                assert_eq!(alloc_bytes, 2048);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    proptest! {
        /// Any positive weight vector round-trips through the Vose
        /// construction: reconstructed outcome masses match the
        /// normalized weights to FP roundoff.
        #[test]
        fn vose_masses_match_for_random_weights(
            seed in 0u64..500, k in 1usize..24
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let weights: Vec<f64> =
                (0..k).map(|_| rng.gen_range(1e-6..10.0f64)).collect();
            let total: f64 = weights.iter().sum();
            let table = AliasTable::build(&weights);
            for (i, &w) in weights.iter().enumerate() {
                let got = table_mass(&table, i);
                prop_assert!(
                    (got - w / total).abs() < 1e-9,
                    "outcome {} mass {} vs {}", i, got, w / total
                );
            }
        }
    }
}

//! Cluster initialization for the Gibbs samplers.
//!
//! Collapsed mixture samplers started from uniform-random assignments can
//! fall into a one-big-cluster trap: the `(n_k + α)` rich-get-richer
//! factor outweighs the likelihood gradient long enough for components to
//! die. The standard remedy is a k-means++-style seeding — pick `K`
//! well-spread documents as seeds (probability proportional to squared
//! distance from the nearest previous seed) and assign every document to
//! its nearest seed. The samplers then refine from a separated state
//! instead of having to discover separation against the count prior.

use rand::Rng;
use rheotex_linalg::Vector;

/// Squared Euclidean distance.
fn dist_sq(a: &Vector, b: &Vector) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-means++-style initial hard assignments of `features` into `k`
/// clusters. Always returns one assignment per feature vector; with fewer
/// distinct points than `k`, surplus clusters simply start empty.
///
/// # Panics
/// Panics if `k == 0` or `features` is empty (callers validate first).
pub fn kmeanspp_assignments<R: Rng + ?Sized>(
    rng: &mut R,
    features: &[Vector],
    k: usize,
) -> Vec<usize> {
    assert!(k > 0, "k must be positive");
    assert!(!features.is_empty(), "features must be non-empty");
    let n = features.len();

    // Seed selection.
    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    seeds.push(rng.gen_range(0..n));
    let mut nearest_sq: Vec<f64> = features
        .iter()
        .map(|f| dist_sq(f, &features[seeds[0]]))
        .collect();
    while seeds.len() < k {
        let total: f64 = nearest_sq.iter().sum();
        let next = if total <= 1e-12 {
            // All remaining points coincide with a seed; pick arbitrarily.
            rng.gen_range(0..n)
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in nearest_sq.iter().enumerate() {
                u -= d;
                if u <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        seeds.push(next);
        for (i, f) in features.iter().enumerate() {
            nearest_sq[i] = nearest_sq[i].min(dist_sq(f, &features[next]));
        }
    }

    // Nearest-seed assignment.
    features
        .iter()
        .map(|f| {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, &s) in seeds.iter().enumerate() {
                let d = dist_sq(f, &features[s]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        })
        .collect()
}

/// Concatenates a doc's gel and emulsion vectors — the feature space used
/// to seed the joint model's `y` assignments.
#[must_use]
pub fn concat_features(gel: &Vector, emulsion: &Vector) -> Vector {
    let mut v = gel.as_slice().to_vec();
    v.extend_from_slice(emulsion.as_slice());
    Vector::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(87)
    }

    fn blobs() -> Vec<Vector> {
        let mut fs = Vec::new();
        for i in 0..40 {
            let c = i % 2;
            let base = if c == 0 { 0.0 } else { 10.0 };
            fs.push(Vector::new(vec![base + (i % 5) as f64 * 0.05, 1.0]));
        }
        fs
    }

    #[test]
    fn separates_two_blobs() {
        let fs = blobs();
        let assign = kmeanspp_assignments(&mut rng(), &fs, 2);
        assert_eq!(assign.len(), fs.len());
        let a0 = assign[0];
        for (i, &a) in assign.iter().enumerate() {
            let expect_same = i % 2 == 0;
            assert_eq!(a == a0, expect_same, "point {i}");
        }
    }

    #[test]
    fn more_clusters_than_points_is_fine() {
        let fs = vec![Vector::new(vec![1.0]), Vector::new(vec![2.0])];
        let assign = kmeanspp_assignments(&mut rng(), &fs, 5);
        assert_eq!(assign.len(), 2);
        assert!(assign.iter().all(|&a| a < 5));
    }

    #[test]
    fn identical_points_do_not_panic() {
        let fs = vec![Vector::new(vec![3.0, 3.0]); 10];
        let assign = kmeanspp_assignments(&mut rng(), &fs, 3);
        assert_eq!(assign.len(), 10);
    }

    #[test]
    fn concat_features_orders_gel_first() {
        let v = concat_features(
            &Vector::new(vec![1.0, 2.0]),
            &Vector::new(vec![3.0, 4.0, 5.0]),
        );
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let fs = vec![Vector::new(vec![1.0])];
        let _ = kmeanspp_assignments(&mut rng(), &fs, 0);
    }
}

//! Model input: one document per recipe.

use crate::error::ModelError;
use rheotex_linalg::Vector;
use serde::{Deserialize, Serialize};

/// One recipe as the model sees it: a texture-term sequence plus the two
/// concentration vectors (in information-quantity space, `−ln x`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDoc {
    /// External id (recipe id) carried through for reporting.
    pub id: u64,
    /// Texture terms as vocabulary indices, in order of occurrence.
    pub terms: Vec<usize>,
    /// Gel concentration vector (paper: 3-dimensional).
    pub gel: Vector,
    /// Emulsion concentration vector (paper: 6-dimensional).
    pub emulsion: Vector,
}

impl ModelDoc {
    /// Constructor.
    #[must_use]
    pub fn new(id: u64, terms: Vec<usize>, gel: Vector, emulsion: Vector) -> Self {
        Self {
            id,
            terms,
            gel,
            emulsion,
        }
    }

    /// Number of texture tokens.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the doc has no texture tokens (legal: the gel vector still
    /// informs `y_d`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Validates a corpus against expected dimensions.
///
/// # Errors
/// [`ModelError::InvalidData`] for an empty corpus, out-of-vocabulary
/// term indices, or dimension mismatches.
pub fn validate_docs(
    docs: &[ModelDoc],
    vocab_size: usize,
    gel_dim: usize,
    emulsion_dim: usize,
) -> Result<(), ModelError> {
    if docs.is_empty() {
        return Err(ModelError::InvalidData {
            what: "corpus is empty".into(),
        });
    }
    for d in docs {
        if let Some(&t) = d.terms.iter().find(|&&t| t >= vocab_size) {
            return Err(ModelError::InvalidData {
                what: format!("doc {}: term index {t} >= vocab size {vocab_size}", d.id),
            });
        }
        if d.gel.len() != gel_dim {
            return Err(ModelError::InvalidData {
                what: format!(
                    "doc {}: gel dim {} != expected {gel_dim}",
                    d.id,
                    d.gel.len()
                ),
            });
        }
        if d.emulsion.len() != emulsion_dim {
            return Err(ModelError::InvalidData {
                what: format!(
                    "doc {}: emulsion dim {} != expected {emulsion_dim}",
                    d.id,
                    d.emulsion.len()
                ),
            });
        }
        if d.gel.iter().any(|v| !v.is_finite()) || d.emulsion.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::InvalidData {
                what: format!("doc {}: non-finite concentration feature", d.id),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(terms: Vec<usize>) -> ModelDoc {
        ModelDoc::new(0, terms, Vector::zeros(3), Vector::zeros(6))
    }

    #[test]
    fn valid_corpus_passes() {
        let docs = vec![doc(vec![0, 1, 2]), doc(vec![])];
        assert!(validate_docs(&docs, 3, 3, 6).is_ok());
    }

    #[test]
    fn empty_corpus_rejected() {
        assert!(validate_docs(&[], 3, 3, 6).is_err());
    }

    #[test]
    fn oov_term_rejected() {
        let docs = vec![doc(vec![0, 5])];
        let err = validate_docs(&docs, 3, 3, 6).unwrap_err();
        assert!(err.to_string().contains("term index 5"));
    }

    #[test]
    fn dim_mismatch_rejected() {
        let docs = vec![ModelDoc::new(7, vec![], Vector::zeros(2), Vector::zeros(6))];
        assert!(validate_docs(&docs, 3, 3, 6).is_err());
        let docs = vec![ModelDoc::new(7, vec![], Vector::zeros(3), Vector::zeros(5))];
        assert!(validate_docs(&docs, 3, 3, 6).is_err());
    }

    #[test]
    fn non_finite_rejected() {
        let docs = vec![ModelDoc::new(
            1,
            vec![],
            Vector::new(vec![1.0, f64::NAN, 0.0]),
            Vector::zeros(6),
        )];
        assert!(validate_docs(&docs, 3, 3, 6).is_err());
    }
}

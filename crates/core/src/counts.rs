//! The shared structure-of-arrays count store behind every Gibbs kernel.
//!
//! All four token kernels (legacy serial, chunked parallel, sparse,
//! chunked sparse-parallel) mutate the same three count families — token-topic counts per
//! document `n_dk` (D×K), term-topic counts `n_kw` (K×V), and the topic
//! totals `n_k` (K). [`TopicCounts`] owns them as flat `u32` arrays so
//! the engines stop hand-plumbing three parallel `Vec<u32>`s, and
//! optionally maintains *nonzero topic lists*: for every document row
//! and every term row, the sorted set of topics with a nonzero count.
//! The sparse kernel iterates those lists instead of `0..K`, which is
//! what turns the per-token cost from `O(K)` into `O(nnz)`.
//!
//! The lists are kept **sorted by topic index**. That costs a small
//! shift on insert/remove (rows are short by construction — a document
//! has at most `len(terms)` distinct topics) but makes the iteration
//! order a pure function of the count *set*, not of the insertion
//! history. Rebuilding the lists from the flat counts after a resume
//! therefore reproduces the exact order an uninterrupted run would have
//! been using, which is what keeps the sparse kernel's kill-and-resume
//! bit-identical.

/// Sentinel meaning "no tracking": dense kernels skip the list upkeep.
#[derive(Debug, Clone)]
struct NzIndex {
    /// Nonzero topics per document row (D rows).
    docs: NonzeroTopics,
    /// Nonzero topics per term row (V rows).
    words: NonzeroTopics,
}

/// Fixed-capacity sorted topic lists, one row per document (or term).
///
/// Row `r` occupies `items[r * stride .. r * stride + len[r]]`, sorted
/// ascending. Capacity is `stride == K`, so inserts never reallocate.
#[derive(Debug, Clone)]
pub struct NonzeroTopics {
    stride: usize,
    items: Vec<u32>,
    len: Vec<u32>,
}

impl NonzeroTopics {
    fn new(rows: usize, stride: usize) -> Self {
        Self {
            stride,
            items: vec![0; rows * stride],
            len: vec![0; rows],
        }
    }

    /// The sorted nonzero topics of `row`.
    #[inline]
    #[must_use]
    pub fn row(&self, row: usize) -> &[u32] {
        let base = row * self.stride;
        &self.items[base..base + self.len[row] as usize]
    }

    /// Whether `topic` is present in `row`.
    #[inline]
    #[must_use]
    pub fn contains(&self, row: usize, topic: usize) -> bool {
        self.row(row).binary_search(&(topic as u32)).is_ok()
    }

    /// Inserts `topic` into `row`, keeping the row sorted. The topic
    /// must not already be present.
    fn insert(&mut self, row: usize, topic: usize) {
        let base = row * self.stride;
        let l = self.len[row] as usize;
        let slot = self.items[base..base + l].partition_point(|&t| t < topic as u32);
        self.items
            .copy_within(base + slot..base + l, base + slot + 1);
        self.items[base + slot] = topic as u32;
        self.len[row] = (l + 1) as u32;
    }

    /// Removes `topic` from `row`. The topic must be present.
    fn remove(&mut self, row: usize, topic: usize) {
        let base = row * self.stride;
        let l = self.len[row] as usize;
        let slot = self.items[base..base + l]
            .binary_search(&(topic as u32))
            .expect("topic tracked as nonzero");
        self.items
            .copy_within(base + slot + 1..base + l, base + slot);
        self.len[row] = (l - 1) as u32;
    }
}

/// Structure-of-arrays token-topic counts shared by the Gibbs kernels.
///
/// Construct untracked (dense kernels) with [`TopicCounts::new`] or
/// [`TopicCounts::from_parts`]; call [`TopicCounts::enable_tracking`]
/// before running the sparse kernel. [`TopicCounts::inc`] /
/// [`TopicCounts::dec`] keep the three flat arrays and (when tracking)
/// the nonzero lists consistent in `O(row shift)`.
#[derive(Debug, Clone)]
pub struct TopicCounts {
    k: usize,
    v: usize,
    n_dk: Vec<u32>,
    n_kw: Vec<u32>,
    n_k: Vec<u32>,
    nz: Option<NzIndex>,
}

impl TopicCounts {
    /// Zeroed counts for `d` documents, `k` topics, `v` terms, without
    /// nonzero tracking.
    #[must_use]
    pub fn new(d: usize, k: usize, v: usize) -> Self {
        Self {
            k,
            v,
            n_dk: vec![0; d * k],
            n_kw: vec![0; k * v],
            n_k: vec![0; k],
            nz: None,
        }
    }

    /// Wraps existing flat arrays (for example from a snapshot) without
    /// nonzero tracking. Lengths must already be consistent with
    /// `(d, k, v)`; callers validate before constructing.
    #[must_use]
    pub fn from_parts(k: usize, v: usize, n_dk: Vec<u32>, n_kw: Vec<u32>, n_k: Vec<u32>) -> Self {
        debug_assert_eq!(n_kw.len(), k * v);
        debug_assert_eq!(n_k.len(), k);
        debug_assert_eq!(n_dk.len() % k.max(1), 0);
        Self {
            k,
            v,
            n_dk,
            n_kw,
            n_k,
            nz: None,
        }
    }

    /// Number of topics.
    #[inline]
    #[must_use]
    pub fn topics(&self) -> usize {
        self.k
    }

    /// Vocabulary size.
    #[inline]
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.v
    }

    /// Whether the nonzero lists are being maintained.
    #[inline]
    #[must_use]
    pub fn tracking(&self) -> bool {
        self.nz.is_some()
    }

    /// Builds the nonzero topic lists by scanning the flat counts. Rows
    /// come out sorted by topic index — the same order incremental
    /// maintenance preserves, so a rebuilt index is indistinguishable
    /// from one that was live the whole run.
    pub fn enable_tracking(&mut self) {
        let d_rows = self.n_dk.len() / self.k.max(1);
        let mut docs = NonzeroTopics::new(d_rows, self.k);
        for d in 0..d_rows {
            for t in 0..self.k {
                if self.n_dk[d * self.k + t] > 0 {
                    docs.insert(d, t);
                }
            }
        }
        let mut words = NonzeroTopics::new(self.v, self.k);
        for w in 0..self.v {
            for t in 0..self.k {
                if self.n_kw[t * self.v + w] > 0 {
                    words.insert(w, t);
                }
            }
        }
        self.nz = Some(NzIndex { docs, words });
    }

    /// Drops the nonzero lists (dense kernels skip the upkeep).
    pub fn disable_tracking(&mut self) {
        self.nz = None;
    }

    /// `n_dk[d][t]`.
    #[inline]
    #[must_use]
    pub fn dk(&self, d: usize, t: usize) -> u32 {
        self.n_dk[d * self.k + t]
    }

    /// `n_kw[t][w]`.
    #[inline]
    #[must_use]
    pub fn kw(&self, t: usize, w: usize) -> u32 {
        self.n_kw[t * self.v + w]
    }

    /// `n_k[t]`.
    #[inline]
    #[must_use]
    pub fn topic_total(&self, t: usize) -> u32 {
        self.n_k[t]
    }

    /// The flat D×K document-topic counts.
    #[inline]
    #[must_use]
    pub fn n_dk_raw(&self) -> &[u32] {
        &self.n_dk
    }

    /// The flat K×V term-topic counts.
    #[inline]
    #[must_use]
    pub fn n_kw_raw(&self) -> &[u32] {
        &self.n_kw
    }

    /// The per-topic totals.
    #[inline]
    #[must_use]
    pub fn n_k_raw(&self) -> &[u32] {
        &self.n_k
    }

    /// Sorted nonzero topics of document `d`. Tracking must be enabled.
    #[inline]
    #[must_use]
    pub fn doc_topics(&self, d: usize) -> &[u32] {
        self.nz.as_ref().expect("tracking enabled").docs.row(d)
    }

    /// Sorted nonzero topics of term `w`. Tracking must be enabled.
    #[inline]
    #[must_use]
    pub fn word_topics(&self, w: usize) -> &[u32] {
        self.nz.as_ref().expect("tracking enabled").words.row(w)
    }

    /// Whether document `d` currently has tokens in `topic`.
    #[inline]
    #[must_use]
    pub fn doc_has_topic(&self, d: usize, topic: usize) -> bool {
        self.nz
            .as_ref()
            .expect("tracking enabled")
            .docs
            .contains(d, topic)
    }

    /// Counts one token of term `w` in document `d` into `topic`.
    #[inline]
    pub fn inc(&mut self, d: usize, w: usize, topic: usize) {
        let dk = &mut self.n_dk[d * self.k + topic];
        *dk += 1;
        let dk_now = *dk;
        let kw = &mut self.n_kw[topic * self.v + w];
        *kw += 1;
        let kw_now = *kw;
        self.n_k[topic] += 1;
        if let Some(nz) = &mut self.nz {
            if dk_now == 1 {
                nz.docs.insert(d, topic);
            }
            if kw_now == 1 {
                nz.words.insert(w, topic);
            }
        }
    }

    /// Removes one token of term `w` in document `d` from `topic`.
    #[inline]
    pub fn dec(&mut self, d: usize, w: usize, topic: usize) {
        let dk = &mut self.n_dk[d * self.k + topic];
        *dk -= 1;
        let dk_now = *dk;
        let kw = &mut self.n_kw[topic * self.v + w];
        *kw -= 1;
        let kw_now = *kw;
        self.n_k[topic] -= 1;
        if let Some(nz) = &mut self.nz {
            if dk_now == 0 {
                nz.docs.remove(d, topic);
            }
            if kw_now == 0 {
                nz.words.remove(w, topic);
            }
        }
    }

    /// Clones a tracked chunk-local store covering documents
    /// `[d0, d0 + d_len)`: the chunk's own `n_dk` rows and doc lists
    /// plus a private copy of the term-side state (`n_kw`, `n_k`, word
    /// lists). The sparse-parallel kernel hands one of these to each
    /// chunk so it can run the bucket sweep against start-of-sweep
    /// global state with live nonzero-list bookkeeping; the whole
    /// operation is memcpy — no scanning — so the per-chunk setup cost
    /// matches the dense parallel kernel's count clones. Document
    /// indices inside the returned store are chunk-local (`0..d_len`).
    /// Tracking must be enabled on `self`.
    #[must_use]
    pub fn chunk_local(&self, d0: usize, d_len: usize) -> TopicCounts {
        let nz = self.nz.as_ref().expect("tracking enabled");
        let k = self.k;
        TopicCounts {
            k,
            v: self.v,
            n_dk: self.n_dk[d0 * k..(d0 + d_len) * k].to_vec(),
            n_kw: self.n_kw.clone(),
            n_k: self.n_k.clone(),
            nz: Some(NzIndex {
                docs: NonzeroTopics {
                    stride: k,
                    items: nz.docs.items[d0 * k..(d0 + d_len) * k].to_vec(),
                    len: nz.docs.len[d0..d0 + d_len].to_vec(),
                },
                words: nz.words.clone(),
            }),
        }
    }

    /// Folds a chunk-local store produced by [`TopicCounts::chunk_local`]
    /// back into this one: the chunk's `n_dk` rows and doc lists replace
    /// rows `[d0, d0 + chunk_rows)`. Chunks cover disjoint document
    /// ranges, so folding them in any order yields the same store. The
    /// chunk's term-side copies are *not* merged here — every chunk's
    /// copy has diverged from the others' — the caller recounts them
    /// from the merged assignments and installs the result with
    /// [`TopicCounts::install_term_counts`].
    pub fn fold_chunk(&mut self, d0: usize, chunk: &TopicCounts) {
        let k = self.k;
        let rows = chunk.n_dk.len() / k.max(1);
        self.n_dk[d0 * k..(d0 + rows) * k].copy_from_slice(&chunk.n_dk);
        let nz = self.nz.as_mut().expect("tracking enabled");
        let cnz = chunk.nz.as_ref().expect("chunk tracking enabled");
        nz.docs.items[d0 * k..(d0 + rows) * k].copy_from_slice(&cnz.docs.items);
        nz.docs.len[d0..d0 + rows].copy_from_slice(&cnz.docs.len);
    }

    /// Replaces the term-side state (`n_kw`, `n_k`) wholesale and, when
    /// tracking, rebuilds the word nonzero lists by scanning the new
    /// counts — canonical sorted order, exactly what live maintenance
    /// would have produced. This is the deterministic term-side half of
    /// the sparse-parallel fold: doc-side state arrives per chunk via
    /// [`TopicCounts::fold_chunk`], term-side state is recounted from
    /// the merged assignments in document order.
    pub fn install_term_counts(&mut self, n_kw: Vec<u32>, n_k: Vec<u32>) {
        debug_assert_eq!(n_kw.len(), self.k * self.v);
        debug_assert_eq!(n_k.len(), self.k);
        self.n_kw = n_kw;
        self.n_k = n_k;
        if let Some(nz) = &mut self.nz {
            let mut words = NonzeroTopics::new(self.v, self.k);
            for w in 0..self.v {
                for t in 0..self.k {
                    if self.n_kw[t * self.v + w] > 0 {
                        words.insert(w, t);
                    }
                }
            }
            nz.words = words;
        }
    }

    /// Mutable access to the three flat arrays for the dense kernels'
    /// hand-tuned loops (and the parallel kernel's chunked writes).
    /// Only valid while tracking is off — raw writes would desynchronize
    /// the nonzero lists.
    #[inline]
    pub fn dense_parts_mut(&mut self) -> (&mut [u32], &mut [u32], &mut [u32]) {
        assert!(
            self.nz.is_none(),
            "raw count access requires tracking to be off"
        );
        (&mut self.n_dk, &mut self.n_kw, &mut self.n_k)
    }

    /// Consumes the store, returning the flat `(n_dk, n_kw, n_k)` arrays
    /// (snapshot capture).
    #[must_use]
    pub fn into_parts(self) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        (self.n_dk, self.n_kw, self.n_k)
    }

    /// Chaos door: adds `delta` straight onto `n_dk[d][topic]`, bypassing
    /// every piece of bookkeeping (no `n_kw`/`n_k` mirror, no nonzero
    /// list upkeep). Exists solely so the fault-injection tests can
    /// simulate scatter corruption of the count store; the health
    /// auditor must flag the result.
    #[cfg(feature = "fault-inject")]
    pub fn corrupt_doc_topic(&mut self, d: usize, topic: usize, delta: u32) {
        self.n_dk[d * self.k + topic] = self.n_dk[d * self.k + topic].wrapping_add(delta);
    }

    /// Chaos door: moves one token of term `w` in document `d` from
    /// topic `from` to topic `to` across all three dense arrays while
    /// deliberately skipping nonzero-list upkeep. Every sum invariant
    /// survives, so this isolates the auditor's list checks.
    #[cfg(feature = "fault-inject")]
    pub fn corrupt_shift_token(&mut self, d: usize, w: usize, from: usize, to: usize) {
        self.n_dk[d * self.k + from] -= 1;
        self.n_dk[d * self.k + to] += 1;
        self.n_kw[from * self.v + w] -= 1;
        self.n_kw[to * self.v + w] += 1;
        self.n_k[from] -= 1;
        self.n_k[to] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    #[test]
    fn inc_dec_roundtrip_without_tracking() {
        let mut c = TopicCounts::new(2, 3, 4);
        c.inc(0, 1, 2);
        c.inc(0, 1, 2);
        c.inc(1, 3, 0);
        assert_eq!(c.dk(0, 2), 2);
        assert_eq!(c.kw(2, 1), 2);
        assert_eq!(c.topic_total(2), 2);
        assert_eq!(c.topic_total(0), 1);
        c.dec(0, 1, 2);
        assert_eq!(c.dk(0, 2), 1);
        assert!(!c.tracking());
    }

    #[test]
    fn tracked_lists_stay_sorted_and_exact() {
        let mut c = TopicCounts::new(1, 5, 4);
        c.enable_tracking();
        for t in [3usize, 0, 4, 1] {
            c.inc(0, t % 4, t);
        }
        assert_eq!(c.doc_topics(0), &[0, 1, 3, 4]);
        c.dec(0, 3, 3);
        assert_eq!(c.doc_topics(0), &[0, 1, 4]);
        assert!(c.doc_has_topic(0, 4));
        assert!(!c.doc_has_topic(0, 3));
        assert_eq!(c.word_topics(0), &[0, 4]);
    }

    #[test]
    fn rebuilt_index_matches_live_index() {
        // Random walk of inc/dec; the scan-rebuilt lists must equal the
        // incrementally maintained ones (the resume bit-identity lever).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        use rand::SeedableRng;
        let (d, k, v) = (6, 7, 5);
        let mut live = TopicCounts::new(d, k, v);
        live.enable_tracking();
        let mut placed: Vec<(usize, usize, usize)> = Vec::new();
        for _ in 0..500 {
            if placed.is_empty() || rng.gen_bool(0.6) {
                let site = (
                    rng.gen_range(0..d),
                    rng.gen_range(0..v),
                    rng.gen_range(0..k),
                );
                live.inc(site.0, site.1, site.2);
                placed.push(site);
            } else {
                let site = placed.swap_remove(rng.gen_range(0..placed.len()));
                live.dec(site.0, site.1, site.2);
            }
        }
        let mut rebuilt = TopicCounts::from_parts(
            k,
            v,
            live.n_dk_raw().to_vec(),
            live.n_kw_raw().to_vec(),
            live.n_k_raw().to_vec(),
        );
        rebuilt.enable_tracking();
        for dd in 0..d {
            assert_eq!(live.doc_topics(dd), rebuilt.doc_topics(dd), "doc {dd}");
        }
        for w in 0..v {
            assert_eq!(live.word_topics(w), rebuilt.word_topics(w), "word {w}");
        }
    }

    #[test]
    fn chunk_local_fold_matches_direct_updates() {
        // Apply the same token moves through a chunk-local store + fold
        // as directly on a reference store; every count and every list
        // must come out identical (the sparse-parallel fold contract).
        use rand::SeedableRng;
        let (d, k, v) = (8, 5, 6);
        let chunk_len = 4;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        // Seed both stores with the same random placements.
        let mut reference = TopicCounts::new(d, k, v);
        let mut sites: Vec<(usize, usize, usize)> = Vec::new();
        for _ in 0..80 {
            let site = (
                rng.gen_range(0..d),
                rng.gen_range(0..v),
                rng.gen_range(0..k),
            );
            reference.inc(site.0, site.1, site.2);
            sites.push(site);
        }
        reference.enable_tracking();
        let mut global = reference.clone();

        // Move a handful of tokens inside the chunk's rows.
        let moves: Vec<(usize, usize, usize, usize)> = sites
            .iter()
            .filter(|&&(dd, _, _)| dd < chunk_len)
            .take(10)
            .map(|&(dd, ww, tt)| (dd, ww, tt, (tt + 1) % k))
            .collect();
        for &(dd, ww, from, to) in &moves {
            reference.dec(dd, ww, from);
            reference.inc(dd, ww, to);
        }

        let mut local = global.chunk_local(0, chunk_len);
        for &(dd, ww, from, to) in &moves {
            local.dec(dd, ww, from);
            local.inc(dd, ww, to);
        }
        global.fold_chunk(0, &local);
        // Term-side state is recounted from the final placements (the
        // "merged assignments" in a real sweep).
        let mut placements = sites.clone();
        for &(dd, ww, from, to) in &moves {
            let idx = placements
                .iter()
                .position(|&s| s == (dd, ww, from))
                .expect("moved token exists");
            placements[idx] = (dd, ww, to);
        }
        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        for &(_, ww, tt) in &placements {
            n_kw[tt * v + ww] += 1;
            n_k[tt] += 1;
        }
        global.install_term_counts(n_kw, n_k);

        assert_eq!(global.n_dk_raw(), reference.n_dk_raw());
        assert_eq!(global.n_kw_raw(), reference.n_kw_raw());
        assert_eq!(global.n_k_raw(), reference.n_k_raw());
        for dd in 0..d {
            assert_eq!(global.doc_topics(dd), reference.doc_topics(dd), "doc {dd}");
        }
        for ww in 0..v {
            assert_eq!(
                global.word_topics(ww),
                reference.word_topics(ww),
                "word {ww}"
            );
        }
    }

    #[test]
    fn chunk_local_is_a_self_contained_tracked_store() {
        let mut global = TopicCounts::new(6, 3, 4);
        global.inc(2, 1, 0);
        global.inc(3, 2, 2);
        global.inc(5, 0, 1);
        global.enable_tracking();
        let local = global.chunk_local(2, 2);
        // Chunk-local doc indices start at zero.
        assert_eq!(local.dk(0, 0), 1);
        assert_eq!(local.dk(1, 2), 1);
        assert_eq!(local.doc_topics(0), &[0]);
        assert_eq!(local.doc_topics(1), &[2]);
        // Term-side state is the full global copy.
        assert_eq!(local.topic_total(1), 1);
        assert_eq!(local.word_topics(0), &[1]);
        assert!(local.tracking());
    }

    #[test]
    #[should_panic(expected = "tracking to be off")]
    fn dense_access_rejected_while_tracking() {
        let mut c = TopicCounts::new(1, 2, 2);
        c.enable_tracking();
        let _ = c.dense_parts_mut();
    }

    proptest! {
        /// The nonzero lists are exactly the support of the flat counts
        /// after any interleaving of inserts and removes.
        #[test]
        fn lists_equal_count_support(ops in proptest::collection::vec((0usize..4, 0usize..5, 0usize..6), 1..120)) {
            let (d, v, k) = (4, 5, 6);
            let mut c = TopicCounts::new(d, k, v);
            c.enable_tracking();
            // Interpret each op as an inc; every third op also removes an
            // earlier placement, keeping counts nonnegative by replay.
            let mut placed: Vec<(usize, usize, usize)> = Vec::new();
            for (i, &(dd, ww, tt)) in ops.iter().enumerate() {
                c.inc(dd, ww, tt);
                placed.push((dd, ww, tt));
                if i % 3 == 2 {
                    let (rd, rw, rt) = placed.remove(i / 3);
                    c.dec(rd, rw, rt);
                }
            }
            for dd in 0..d {
                let expect: Vec<u32> = (0..k).filter(|&t| c.dk(dd, t) > 0).map(|t| t as u32).collect();
                prop_assert_eq!(c.doc_topics(dd), expect.as_slice());
            }
            for ww in 0..v {
                let expect: Vec<u32> = (0..k).filter(|&t| c.kw(t, ww) > 0).map(|t| t as u32).collect();
                prop_assert_eq!(c.word_topics(ww), expect.as_slice());
            }
        }
    }
}

//! Property-based tests for the inference engines: whatever the corpus
//! shape, fitted models must produce valid probability objects.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::collapsed::CollapsedJointModel;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{FitOptions, JointConfig, JointTopicModel, ModelDoc};
use rheotex_linalg::Vector;

/// Strategy: a small random corpus with valid dimensions. Terms ∈ [0, 6),
/// gel dim 3, emulsion dim 6, values in the info-quantity range.
fn corpus() -> impl Strategy<Value = Vec<ModelDoc>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..6, 0..6),
            proptest::collection::vec(1.0..9.5f64, 3),
            proptest::collection::vec(1.0..9.5f64, 6),
        ),
        3..25,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (terms, gel, emu))| {
                ModelDoc::new(i as u64, terms, Vector::new(gel), Vector::new(emu))
            })
            .collect()
    })
}

fn assert_simplex(rows: &[Vec<f64>]) -> Result<(), TestCaseError> {
    for row in rows {
        let s: f64 = row.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-6, "row sums to {s}");
        prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The joint sampler never produces invalid distributions, whatever
    /// the (dimension-valid) corpus.
    #[test]
    fn joint_fit_always_valid(docs in corpus(), seed in 0u64..100, k in 1usize..6) {
        let config = JointConfig {
            sweeps: 12,
            burn_in: 6,
            ..JointConfig::quick(k, 6)
        };
        let model = JointTopicModel::new(config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fit = model.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
        assert_simplex(&fit.phi)?;
        assert_simplex(&fit.theta)?;
        prop_assert_eq!(fit.y.len(), docs.len());
        prop_assert!(fit.y.iter().all(|&y| y < k));
        prop_assert!(fit.ll_trace.iter().all(|l| l.is_finite()));
        prop_assert_eq!(fit.topic_doc_counts().iter().sum::<usize>(), docs.len());
        // Topic Gaussians are extractable (SPD posteriors) for every topic.
        for t in 0..k {
            prop_assert!(fit.gel_gaussian(t).is_ok());
            prop_assert!(fit.emulsion_gaussian(t).is_ok());
        }
    }

    /// The collapsed variant upholds the same contract.
    #[test]
    fn collapsed_fit_always_valid(docs in corpus(), seed in 0u64..50) {
        let config = JointConfig {
            sweeps: 8,
            burn_in: 4,
            ..JointConfig::quick(3, 6)
        };
        let model = CollapsedJointModel::new(config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fit = model.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
        assert_simplex(&fit.phi)?;
        assert_simplex(&fit.theta)?;
        prop_assert!(fit.ll_trace.iter().all(|l| l.is_finite()));
    }

    /// Baselines too.
    #[test]
    fn baselines_always_valid(docs in corpus(), seed in 0u64..50) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lda = LdaModel::new(LdaConfig {
            n_topics: 3,
            vocab_size: 6,
            alpha: 0.5,
            gamma: 0.1,
            sweeps: 10,
            burn_in: 5,
        })
        .unwrap()
        .fit_with(&mut rng, &docs, FitOptions::new())
        .unwrap();
        assert_simplex(&lda.phi)?;
        assert_simplex(&lda.theta)?;

        let mut cfg = GmmConfig::new(3);
        cfg.sweeps = 10;
        let gmm = GmmModel::new(cfg)
            .unwrap()
            .fit_with(&mut rng, &docs, FitOptions::new())
            .unwrap();
        prop_assert_eq!(gmm.assignments.len(), docs.len());
        prop_assert_eq!(gmm.counts.iter().sum::<usize>(), docs.len());
        prop_assert!(gmm.assignments.iter().all(|&a| a < 3));
    }
}

//! Property-based tests for the inference engines: whatever the corpus
//! shape, fitted models must produce valid probability objects — and
//! the health auditor accepts exactly the states real bookkeeping can
//! reach.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::collapsed::CollapsedJointModel;
use rheotex_core::counts::TopicCounts;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{audit_topic_counts, FitOptions, JointConfig, JointTopicModel, ModelDoc};
use rheotex_linalg::Vector;

/// Strategy: a small random corpus with valid dimensions. Terms ∈ [0, 6),
/// gel dim 3, emulsion dim 6, values in the info-quantity range.
fn corpus() -> impl Strategy<Value = Vec<ModelDoc>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..6, 0..6),
            proptest::collection::vec(1.0..9.5f64, 3),
            proptest::collection::vec(1.0..9.5f64, 6),
        ),
        3..25,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (terms, gel, emu))| {
                ModelDoc::new(i as u64, terms, Vector::new(gel), Vector::new(emu))
            })
            .collect()
    })
}

fn assert_simplex(rows: &[Vec<f64>]) -> Result<(), TestCaseError> {
    for row in rows {
        let s: f64 = row.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-6, "row sums to {s}");
        prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The joint sampler never produces invalid distributions, whatever
    /// the (dimension-valid) corpus.
    #[test]
    fn joint_fit_always_valid(docs in corpus(), seed in 0u64..100, k in 1usize..6) {
        let config = JointConfig {
            sweeps: 12,
            burn_in: 6,
            ..JointConfig::quick(k, 6)
        };
        let model = JointTopicModel::new(config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fit = model.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
        assert_simplex(&fit.phi)?;
        assert_simplex(&fit.theta)?;
        prop_assert_eq!(fit.y.len(), docs.len());
        prop_assert!(fit.y.iter().all(|&y| y < k));
        prop_assert!(fit.ll_trace.iter().all(|l| l.is_finite()));
        prop_assert_eq!(fit.topic_doc_counts().iter().sum::<usize>(), docs.len());
        // Topic Gaussians are extractable (SPD posteriors) for every topic.
        for t in 0..k {
            prop_assert!(fit.gel_gaussian(t).is_ok());
            prop_assert!(fit.emulsion_gaussian(t).is_ok());
        }
    }

    /// The collapsed variant upholds the same contract.
    #[test]
    fn collapsed_fit_always_valid(docs in corpus(), seed in 0u64..50) {
        let config = JointConfig {
            sweeps: 8,
            burn_in: 4,
            ..JointConfig::quick(3, 6)
        };
        let model = CollapsedJointModel::new(config).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let fit = model.fit_with(&mut rng, &docs, FitOptions::new()).unwrap();
        assert_simplex(&fit.phi)?;
        assert_simplex(&fit.theta)?;
        prop_assert!(fit.ll_trace.iter().all(|l| l.is_finite()));
    }

    /// Baselines too.
    #[test]
    fn baselines_always_valid(docs in corpus(), seed in 0u64..50) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lda = LdaModel::new(LdaConfig {
            n_topics: 3,
            vocab_size: 6,
            alpha: 0.5,
            gamma: 0.1,
            sweeps: 10,
            burn_in: 5,
        })
        .unwrap()
        .fit_with(&mut rng, &docs, FitOptions::new())
        .unwrap();
        assert_simplex(&lda.phi)?;
        assert_simplex(&lda.theta)?;

        let mut cfg = GmmConfig::new(3);
        cfg.sweeps = 10;
        let gmm = GmmModel::new(cfg)
            .unwrap()
            .fit_with(&mut rng, &docs, FitOptions::new())
            .unwrap();
        prop_assert_eq!(gmm.assignments.len(), docs.len());
        prop_assert_eq!(gmm.counts.iter().sum::<usize>(), docs.len());
        prop_assert!(gmm.assignments.iter().all(|&a| a < 3));
    }
}

/// Strategy: a count-store shape `(docs, topics, vocab)` plus a
/// non-empty token stream within its bounds, each token a
/// `(doc, word, topic)` triple.
fn store_tokens() -> impl Strategy<Value = (usize, usize, usize, Vec<(usize, usize, usize)>)> {
    (1usize..8, 2usize..6, 1usize..8).prop_flat_map(|(d, k, v)| {
        proptest::collection::vec((0..d, 0..v, 0..k), 1..40)
            .prop_map(move |tokens| (d, k, v, tokens))
    })
}

/// Replays `tokens` through the real bookkeeping; every state built
/// this way is reachable by an actual Gibbs sweep.
fn build_counts(
    d: usize,
    k: usize,
    v: usize,
    tokens: &[(usize, usize, usize)],
    tracked: bool,
) -> (TopicCounts, Vec<usize>) {
    let mut counts = TopicCounts::new(d, k, v);
    if tracked {
        counts.enable_tracking();
    }
    let mut doc_lens = vec![0usize; d];
    for &(doc, w, t) in tokens {
        counts.inc(doc, w, t);
        doc_lens[doc] += 1;
    }
    (counts, doc_lens)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The deep auditor has no false positives: any state reachable
    /// through the real `inc` bookkeeping passes, with or without the
    /// sparse kernel's nonzero-list tracking.
    #[test]
    fn audit_accepts_reachable_states(
        (d, k, v, tokens) in store_tokens(),
        tracked in any::<bool>(),
    ) {
        let (counts, doc_lens) = build_counts(d, k, v, &tokens, tracked);
        prop_assert!(audit_topic_counts(&counts, &doc_lens).is_ok());
    }

    /// No false negatives on unbalanced updates: one `inc` or `dec`
    /// with no matching token leaves the store inconsistent with the
    /// corpus, and the audit must say so.
    #[test]
    fn audit_flags_unbalanced_single_updates(
        (d, k, v, tokens) in store_tokens(),
        idx in any::<proptest::sample::Index>(),
        tracked in any::<bool>(),
        extra_inc in any::<bool>(),
    ) {
        let (mut counts, doc_lens) = build_counts(d, k, v, &tokens, tracked);
        let (doc, w, t) = tokens[idx.index(tokens.len())];
        if extra_inc {
            counts.inc(doc, w, t);
        } else {
            counts.dec(doc, w, t);
        }
        prop_assert!(audit_topic_counts(&counts, &doc_lens).is_err());
    }
}

/// The raw-corruption direction needs the chaos doors on `TopicCounts`,
/// which only exist under `--features fault-inject`.
#[cfg(feature = "fault-inject")]
mod audit_corruption {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// A single-cell write to the doc-topic table with no mirror
        /// bookkeeping (the supervisor's fault model) always trips the
        /// audit's row-sum check.
        #[test]
        fn audit_flags_doc_topic_cell_corruption(
            (d, k, v, tokens) in store_tokens(),
            idx in any::<proptest::sample::Index>(),
            tracked in any::<bool>(),
            delta in 1u32..9,
        ) {
            let (mut counts, doc_lens) = build_counts(d, k, v, &tokens, tracked);
            let (doc, _, topic) = tokens[idx.index(tokens.len())];
            counts.corrupt_doc_topic(doc, topic, delta);
            prop_assert!(audit_topic_counts(&counts, &doc_lens).is_err());
        }

        /// A sum-preserving token shift that skips nonzero-list upkeep
        /// is invisible to every sum invariant; whenever the shift moves
        /// some cell across zero, the stale list must betray it.
        #[test]
        fn audit_flags_stale_nonzero_lists(
            (d, k, v, tokens) in store_tokens(),
            idx in any::<proptest::sample::Index>(),
        ) {
            let (mut counts, doc_lens) = build_counts(d, k, v, &tokens, true);
            let (doc, w, from) = tokens[idx.index(tokens.len())];
            let to = (0..k)
                .find(|&t| t != from && (counts.dk(doc, t) == 0 || counts.kw(t, w) == 0));
            prop_assume!(to.is_some());
            counts.corrupt_shift_token(doc, w, from, to.unwrap());
            prop_assert!(audit_topic_counts(&counts, &doc_lens).is_err());
        }
    }
}

//! Chaos tests for the fitting supervisor (requires `--features
//! fault-inject`).
//!
//! The contract under test is *deterministic recovery*: a one-shot
//! external count corruption injected mid-fit is (a) detected by the
//! sampled invariant auditor, (b) rolled back to the last good in-memory
//! snapshot, and (c) replayed on the snapshot's recorded RNG stream —
//! so the supervised faulted run produces a final model **bit-identical**
//! to the clean, unsupervised run. This must hold for every LDA kernel
//! class (serial, parallel, sparse, sparse-parallel, alias) and for the
//! joint engine — and when the rollback budget is exhausted, the
//! degradation ladder (alias → sparse → serial) must itself be
//! deterministic.
//!
//! The dual no-false-positive contract rides along: a healthy fit
//! audited every sweep under the strict (abort-on-trip) policy must
//! finish untripped and bit-identical to the unsupervised fit on every
//! engine and kernel.
#![cfg(feature = "fault-inject")]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::health::{CountChaos, RecoveryAction};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{
    FitOptions, GibbsKernel, HealthPolicy, JointConfig, JointTopicModel, ModelDoc, ModelError,
    VecObserver,
};
use rheotex_linalg::Vector;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(61)
}

/// Two planted clusters: even docs use words {0, 1} and a low-gelatin
/// profile, odd docs use words {2, 3} and a distinct one.
fn two_cluster_docs(n_per: usize) -> Vec<ModelDoc> {
    let mut r = ChaCha8Rng::seed_from_u64(78);
    (0..2 * n_per)
        .map(|i| {
            use rand::Rng;
            let cluster = i % 2;
            let terms: Vec<usize> = (0..4).map(|j| 2 * cluster + (j % 2)).collect();
            let jitter = r.gen_range(-0.2..0.2);
            let gel = if cluster == 0 {
                Vector::new(vec![2.0 + jitter, 9.0, 9.0])
            } else {
                Vector::new(vec![9.0, 4.0 + jitter, 9.0])
            };
            ModelDoc::new(i as u64, terms, gel, Vector::full(6, 9.0))
        })
        .collect()
}

fn lda_config() -> LdaConfig {
    LdaConfig {
        n_topics: 4,
        vocab_size: 4,
        alpha: 0.5,
        gamma: 0.1,
        sweeps: 12,
        burn_in: 6,
    }
}

/// Audit every sweep, snapshot every sweep, roll back on trips. The
/// tight cadences guarantee the injected corruption is caught in the
/// very sweep it lands, before any snapshot of the corrupted state
/// could be kept.
fn rollback_policy() -> HealthPolicy {
    HealthPolicy::recover()
        .action(RecoveryAction::RollbackRetry { max_retries: 3 })
        .audit_every(1)
        .snapshot_every(1)
}

fn chaos(at_sweep: usize) -> CountChaos {
    CountChaos {
        at_sweep,
        doc: 1,
        topic: 0,
        delta: 5,
    }
}

/// The tentpole assertion, per LDA kernel: clean unsupervised fit ==
/// supervised fit with a mid-run count corruption, bit for bit.
fn assert_lda_recovers_bit_identically(kernel: GibbsKernel) {
    let docs = two_cluster_docs(30);
    let model = LdaModel::new(lda_config()).unwrap();

    let clean = model
        .fit_with(&mut rng(), &docs, FitOptions::new().kernel(kernel))
        .unwrap();

    let mut observer = VecObserver::default();
    let faulted = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(kernel)
                .observer(&mut observer)
                .health(rollback_policy().chaos(chaos(5))),
        )
        .unwrap();

    assert_eq!(faulted.phi, clean.phi, "{kernel:?}: phi diverged");
    assert_eq!(faulted.theta, clean.theta, "{kernel:?}: theta diverged");
    assert_eq!(
        faulted.ll_trace, clean.ll_trace,
        "{kernel:?}: ll trace diverged"
    );
    let actions: Vec<&str> = observer.health.iter().map(|e| e.action).collect();
    assert!(
        actions.contains(&"sentinel_trip") || actions.contains(&"audit_fail"),
        "{kernel:?}: corruption went undetected: {actions:?}"
    );
    assert!(actions.contains(&"rollback"), "{kernel:?}: {actions:?}");
    assert!(actions.contains(&"recovered"), "{kernel:?}: {actions:?}");
    assert!(!actions.contains(&"degrade"), "{kernel:?}: {actions:?}");
}

#[test]
fn lda_serial_recovers_bit_identically() {
    assert_lda_recovers_bit_identically(GibbsKernel::Serial);
}

#[test]
fn lda_parallel_recovers_bit_identically() {
    assert_lda_recovers_bit_identically(GibbsKernel::Parallel);
}

#[test]
fn lda_sparse_recovers_bit_identically() {
    assert_lda_recovers_bit_identically(GibbsKernel::Sparse);
}

#[test]
fn lda_sparse_parallel_recovers_bit_identically() {
    assert_lda_recovers_bit_identically(GibbsKernel::SparseParallel);
}

#[test]
fn lda_alias_recovers_bit_identically() {
    assert_lda_recovers_bit_identically(GibbsKernel::Alias);
}

#[test]
fn joint_recovers_bit_identically_on_all_kernels() {
    let docs = two_cluster_docs(25);
    let config = JointConfig {
        n_topics: 4,
        sweeps: 10,
        burn_in: 5,
        ..JointConfig::quick(4, 4)
    };
    let model = JointTopicModel::new(config).unwrap();
    for kernel in [
        GibbsKernel::Serial,
        GibbsKernel::Parallel,
        GibbsKernel::Sparse,
        GibbsKernel::SparseParallel,
        GibbsKernel::Alias,
    ] {
        let clean = model
            .fit_with(&mut rng(), &docs, FitOptions::new().kernel(kernel))
            .unwrap();
        let mut observer = VecObserver::default();
        let faulted = model
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new()
                    .kernel(kernel)
                    .observer(&mut observer)
                    .health(rollback_policy().chaos(chaos(4))),
            )
            .unwrap();
        assert_eq!(faulted.y, clean.y, "{kernel:?}: labels diverged");
        assert_eq!(faulted.phi, clean.phi, "{kernel:?}: phi diverged");
        assert_eq!(
            faulted.ll_trace, clean.ll_trace,
            "{kernel:?}: ll trace diverged"
        );
        let actions: Vec<&str> = observer.health.iter().map(|e| e.action).collect();
        assert!(actions.contains(&"rollback"), "{kernel:?}: {actions:?}");
        assert!(actions.contains(&"recovered"), "{kernel:?}: {actions:?}");
    }
}

#[test]
fn snapshotted_corruption_walks_the_full_recovery_ladder() {
    // A corruption captured by a snapshot *before* the audit catches it
    // is persistent: every rollback restores the corrupted counts and
    // the next audit of the same sweep trips again. The supervisor must
    // walk the whole ladder deterministically — two sparse rollbacks,
    // a degrade to serial, two serial rollbacks — and then abort rather
    // than loop forever.
    let docs = two_cluster_docs(20);
    let model = LdaModel::new(lda_config()).unwrap();
    let policy = HealthPolicy::recover()
        .action(RecoveryAction::DegradeKernel { max_retries: 2 })
        .audit_every(4) // corruption at sweep 5 is only audited at sweep 7…
        .snapshot_every(1) // …after the sweep-5/6 snapshots captured it
        .chaos(chaos(5));
    let mut observer = VecObserver::default();
    let err = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::Sparse)
                .observer(&mut observer)
                .health(policy),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::Health { .. }), "{err}");
    let actions: Vec<&str> = observer.health.iter().map(|e| e.action).collect();
    let pos = |a: &str| actions.iter().position(|&x| x == a);
    let (rollback, degrade, abort) = (pos("rollback"), pos("degrade"), pos("abort"));
    assert!(rollback.is_some(), "{actions:?}");
    assert!(degrade.is_some(), "{actions:?}");
    assert!(abort.is_some(), "{actions:?}");
    assert!(rollback < degrade && degrade < abort, "{actions:?}");
    let rollbacks = actions.iter().filter(|&&a| a == "rollback").count();
    assert_eq!(rollbacks, 4, "two per kernel class: {actions:?}");
    assert!(!actions.contains(&"recovered"), "{actions:?}");
}

/// The degradation ladder end to end, deterministically: a
/// sparse-parallel fit whose rollback budget is exhausted on the first
/// trip must degrade to the serial kernel from the last good snapshot
/// and finish — bit-identical to a clean sparse-parallel run
/// checkpointed at the same sweep, restamped serial, and resumed under
/// the serial kernel.
#[test]
fn sparse_parallel_degrades_to_serial_and_recovers_bit_identically() {
    use rheotex_core::checkpoint::{MemoryCheckpointSink, SamplerSnapshot};

    let docs = two_cluster_docs(30);
    let model = LdaModel::new(lda_config()).unwrap();

    // The reference trajectory a degrade at sweep 5 must reproduce:
    // sweeps 0..5 under sparse-parallel, 5.. under serial.
    let mut sink = MemoryCheckpointSink::new(5);
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::SparseParallel)
                .threads(2)
                .checkpoint(&mut sink),
        )
        .unwrap();
    let SamplerSnapshot::Lda(mut snap) = sink.snapshots[0].clone() else {
        panic!("wrong engine")
    };
    assert_eq!(snap.next_sweep, 5);
    snap.kernel = Some(GibbsKernel::Serial);
    let reference = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            FitOptions::new().resume(SamplerSnapshot::Lda(snap)),
        )
        .unwrap();

    // The victim: corruption at sweep 5 with a zero rollback budget —
    // the supervisor's only move is the sparse-parallel → serial rung.
    let mut observer = VecObserver::default();
    let faulted = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::SparseParallel)
                .threads(2)
                .observer(&mut observer)
                .health(
                    HealthPolicy::recover()
                        .action(RecoveryAction::DegradeKernel { max_retries: 0 })
                        .audit_every(1)
                        .snapshot_every(1)
                        .chaos(chaos(5)),
                ),
        )
        .unwrap();

    assert_eq!(faulted.phi, reference.phi, "phi diverged");
    assert_eq!(faulted.theta, reference.theta, "theta diverged");
    assert_eq!(faulted.ll_trace, reference.ll_trace, "ll trace diverged");
    let actions: Vec<&str> = observer.health.iter().map(|e| e.action).collect();
    assert!(actions.contains(&"degrade"), "{actions:?}");
    assert!(actions.contains(&"recovered"), "{actions:?}");
    assert!(!actions.contains(&"rollback"), "{actions:?}");
    assert!(!actions.contains(&"abort"), "{actions:?}");
    let degrade = observer
        .health
        .iter()
        .find(|e| e.action == "degrade")
        .unwrap();
    assert!(
        degrade
            .detail
            .contains("sparse-parallel kernel degraded to serial"),
        "{}",
        degrade.detail
    );
}

/// The alias rung of the degradation ladder, deterministically: an
/// alias-MH fit whose rollback budget is exhausted on the first trip
/// must degrade to the *sparse* kernel (one rung down, not straight to
/// serial) from the last good snapshot and finish — bit-identical to a
/// clean alias run checkpointed at the same sweep, restamped sparse,
/// and resumed under the sparse kernel.
#[test]
fn alias_degrades_to_sparse_and_recovers_bit_identically() {
    use rheotex_core::checkpoint::{MemoryCheckpointSink, SamplerSnapshot};

    let docs = two_cluster_docs(30);
    let model = LdaModel::new(lda_config()).unwrap();

    // The reference trajectory a degrade at sweep 5 must reproduce:
    // sweeps 0..5 under alias, 5.. under sparse.
    let mut sink = MemoryCheckpointSink::new(5);
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::Alias)
                .threads(2)
                .checkpoint(&mut sink),
        )
        .unwrap();
    let SamplerSnapshot::Lda(mut snap) = sink.snapshots[0].clone() else {
        panic!("wrong engine")
    };
    assert_eq!(snap.next_sweep, 5);
    snap.kernel = Some(GibbsKernel::Sparse);
    let reference = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::Sparse)
                .resume(SamplerSnapshot::Lda(snap)),
        )
        .unwrap();

    // The victim: corruption at sweep 5 with a zero rollback budget —
    // the supervisor's only move is the alias → sparse rung.
    let mut observer = VecObserver::default();
    let faulted = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::Alias)
                .threads(2)
                .observer(&mut observer)
                .health(
                    HealthPolicy::recover()
                        .action(RecoveryAction::DegradeKernel { max_retries: 0 })
                        .audit_every(1)
                        .snapshot_every(1)
                        .chaos(chaos(5)),
                ),
        )
        .unwrap();

    assert_eq!(faulted.phi, reference.phi, "phi diverged");
    assert_eq!(faulted.theta, reference.theta, "theta diverged");
    assert_eq!(faulted.ll_trace, reference.ll_trace, "ll trace diverged");
    let actions: Vec<&str> = observer.health.iter().map(|e| e.action).collect();
    assert!(actions.contains(&"degrade"), "{actions:?}");
    assert!(actions.contains(&"recovered"), "{actions:?}");
    assert!(!actions.contains(&"rollback"), "{actions:?}");
    assert!(!actions.contains(&"abort"), "{actions:?}");
    let degrade = observer
        .health
        .iter()
        .find(|e| e.action == "degrade")
        .unwrap();
    assert!(
        degrade.detail.contains("alias kernel degraded to sparse"),
        "{}",
        degrade.detail
    );
}

#[test]
fn strict_policy_aborts_with_health_error_on_first_trip() {
    let docs = two_cluster_docs(20);
    let model = LdaModel::new(lda_config()).unwrap();
    let err = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().health(HealthPolicy::strict().audit_every(1).chaos(chaos(3))),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::Health { .. }), "{err}");
}

#[test]
fn strict_every_sweep_audits_pass_on_healthy_fits() {
    // No-false-positive guarantee, end to end: audit every sweep, abort
    // on any trip, and assert the fit completes bit-identical to the
    // unsupervised one — on every engine/kernel combination.
    let docs = two_cluster_docs(25);
    let strict = HealthPolicy::strict().audit_every(1);

    let lda = LdaModel::new(lda_config()).unwrap();
    for kernel in [
        GibbsKernel::Serial,
        GibbsKernel::Parallel,
        GibbsKernel::Sparse,
        GibbsKernel::SparseParallel,
        GibbsKernel::Alias,
    ] {
        let clean = lda
            .fit_with(&mut rng(), &docs, FitOptions::new().kernel(kernel))
            .unwrap();
        let audited = lda
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new().kernel(kernel).health(strict.clone()),
            )
            .unwrap();
        assert_eq!(audited.phi, clean.phi, "lda {kernel:?}");
        assert_eq!(audited.ll_trace, clean.ll_trace, "lda {kernel:?}");
    }

    let joint = JointTopicModel::new(JointConfig {
        sweeps: 8,
        burn_in: 4,
        ..JointConfig::quick(3, 4)
    })
    .unwrap();
    for kernel in [
        GibbsKernel::Serial,
        GibbsKernel::Parallel,
        GibbsKernel::Sparse,
        GibbsKernel::SparseParallel,
        GibbsKernel::Alias,
    ] {
        let clean = joint
            .fit_with(&mut rng(), &docs, FitOptions::new().kernel(kernel))
            .unwrap();
        let audited = joint
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new().kernel(kernel).health(strict.clone()),
            )
            .unwrap();
        assert_eq!(audited.y, clean.y, "joint {kernel:?}");
        assert_eq!(audited.ll_trace, clean.ll_trace, "joint {kernel:?}");
    }

    let mut gmm_cfg = GmmConfig::new(2);
    gmm_cfg.sweeps = 8;
    let gmm = GmmModel::new(gmm_cfg).unwrap();
    for kernel in [GibbsKernel::Serial, GibbsKernel::Parallel] {
        let clean = gmm
            .fit_with(&mut rng(), &docs, FitOptions::new().kernel(kernel))
            .unwrap();
        let audited = gmm
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new().kernel(kernel).health(strict.clone()),
            )
            .unwrap();
        assert_eq!(audited.assignments, clean.assignments, "gmm {kernel:?}");
        assert_eq!(audited.ll_trace, clean.ll_trace, "gmm {kernel:?}");
    }
}

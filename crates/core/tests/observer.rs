//! End-to-end checks of the sweep-observer wiring: a seeded quick fit
//! through an [`Obs`] handle with an in-memory sink must emit exactly one
//! sweep event per Gibbs sweep, in order, with monotone timestamps and the
//! fields the JSONL schema promises (README.md § Observability).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{FitOptions, JointConfig, JointTopicModel, ModelDoc};
use rheotex_linalg::Vector;
use rheotex_obs::{EventKind, MemorySink, Obs};

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(17)
}

fn two_cluster_docs(n_per: usize) -> Vec<ModelDoc> {
    (0..2 * n_per)
        .map(|i| {
            let c = i % 2;
            let gel = if c == 0 {
                Vector::new(vec![2.0, 9.0, 9.0])
            } else {
                Vector::new(vec![9.0, 4.0, 9.0])
            };
            ModelDoc::new(i as u64, vec![2 * c, 2 * c + 1], gel, Vector::full(6, 9.0))
        })
        .collect()
}

fn obs_with_memory() -> (Obs, MemorySink) {
    let sink = MemorySink::default();
    let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
    (obs, sink)
}

/// The required fields of a sweep event, per the stable schema.
const SWEEP_FIELDS: [&str; 10] = [
    "sweep",
    "total_sweeps",
    "elapsed_us",
    "ll",
    "topic_entropy",
    "min_occupancy",
    "max_occupancy",
    "nw_draws",
    "cache_lookups",
    "cache_hits",
];

fn assert_sweep_stream(sink: &MemorySink, name: &str, expected_sweeps: usize) {
    let events = sink.events_of(EventKind::Sweep);
    assert_eq!(
        events.len(),
        expected_sweeps,
        "one sweep event per Gibbs sweep"
    );
    let mut last_t = 0u64;
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.name, name);
        assert!(
            e.t_us >= last_t,
            "timestamps must be monotonically non-decreasing: {} < {last_t} at sweep {i}",
            e.t_us
        );
        last_t = e.t_us;
        for key in SWEEP_FIELDS {
            assert!(e.field(key).is_some(), "sweep event missing field {key}");
        }
        assert_eq!(e.field_f64("sweep"), Some(i as f64));
        assert_eq!(e.field_f64("total_sweeps"), Some(expected_sweeps as f64));
        let ll = e.field_f64("ll").expect("ll present");
        assert!(ll.is_finite(), "ll must be finite, got {ll}");
    }
}

#[test]
fn joint_fit_emits_one_sweep_event_per_sweep() {
    let docs = two_cluster_docs(10);
    let config = JointConfig::quick(2, 4);
    let sweeps = config.sweeps;
    let model = JointTopicModel::new(config).unwrap();
    let (obs, sink) = obs_with_memory();
    let mut observer = obs.clone();
    let fit = model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
        .unwrap();
    assert_sweep_stream(&sink, "joint.sweep", sweeps);
    // The event stream's ll values are exactly the fitted trace.
    let lls: Vec<f64> = sink
        .events_of(EventKind::Sweep)
        .iter()
        .map(|e| e.field_f64("ll").unwrap())
        .collect();
    assert_eq!(lls, fit.ll_trace);
}

#[test]
fn lda_fit_emits_one_sweep_event_per_sweep() {
    let docs = two_cluster_docs(10);
    let config = LdaConfig::from(&JointConfig::quick(2, 4));
    let sweeps = config.sweeps;
    let model = LdaModel::new(config).unwrap();
    let (obs, sink) = obs_with_memory();
    let mut observer = obs.clone();
    model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
        .unwrap();
    assert_sweep_stream(&sink, "lda.sweep", sweeps);
}

#[test]
fn gmm_fit_emits_one_sweep_event_per_sweep() {
    let docs = two_cluster_docs(10);
    let config = GmmConfig::new(2);
    let sweeps = config.sweeps;
    let model = GmmModel::new(config).unwrap();
    let (obs, sink) = obs_with_memory();
    let mut observer = obs.clone();
    model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
        .unwrap();
    assert_sweep_stream(&sink, "gmm.sweep", sweeps);
}

#[test]
fn disabled_obs_emits_nothing_and_matches_plain_fit() {
    let docs = two_cluster_docs(10);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let plain = model.fit_with(&mut rng(), &docs, FitOptions::new()).unwrap();
    let mut disabled = Obs::disabled();
    let observed = model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut disabled))
        .unwrap();
    assert_eq!(plain.y, observed.y);
    assert_eq!(plain.ll_trace, observed.ll_trace);
    assert!(!disabled.is_enabled());
}

#[test]
fn every_sweep_event_serializes_to_valid_jsonl_shape() {
    let docs = two_cluster_docs(5);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let (obs, sink) = obs_with_memory();
    let mut observer = obs.clone();
    model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
        .unwrap();
    for e in sink.events() {
        let line = e.to_json_line();
        let parsed: serde_json::Value = serde_json::from_str(&line).expect("valid JSON line");
        assert!(parsed["t_us"].is_u64());
        assert!(parsed["kind"].is_string());
        assert!(parsed["name"].is_string());
        assert!(parsed["fields"].is_object());
    }
    for e in sink.events_of(EventKind::Sweep) {
        let parsed: serde_json::Value = serde_json::from_str(&e.to_json_line()).unwrap();
        assert_eq!(parsed["kind"], "sweep");
        assert_eq!(parsed["name"], "joint.sweep");
        assert!(parsed["fields"]["ll"].is_number());
    }
}

//! End-to-end checks of the sweep-observer wiring: a seeded quick fit
//! through an [`Obs`] handle with an in-memory sink must emit exactly one
//! sweep event per Gibbs sweep, in order, with monotone timestamps and the
//! fields the JSONL schema promises (README.md § Observability).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{
    FitOptions, GibbsKernel, JointConfig, JointTopicModel, MemoryCheckpointSink, ModelDoc,
};
use rheotex_linalg::Vector;
use rheotex_obs::{Event, EventKind, MemorySink, Obs};

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(17)
}

fn two_cluster_docs(n_per: usize) -> Vec<ModelDoc> {
    (0..2 * n_per)
        .map(|i| {
            let c = i % 2;
            let gel = if c == 0 {
                Vector::new(vec![2.0, 9.0, 9.0])
            } else {
                Vector::new(vec![9.0, 4.0, 9.0])
            };
            ModelDoc::new(i as u64, vec![2 * c, 2 * c + 1], gel, Vector::full(6, 9.0))
        })
        .collect()
}

fn obs_with_memory() -> (Obs, MemorySink) {
    let sink = MemorySink::default();
    let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
    (obs, sink)
}

/// The required fields of a sweep event, per the stable schema.
const SWEEP_FIELDS: [&str; 12] = [
    "sweep",
    "total_sweeps",
    "elapsed_us",
    "ll",
    "topic_entropy",
    "min_occupancy",
    "max_occupancy",
    "nw_draws",
    "jitter_retries",
    "cache_lookups",
    "cache_hits",
    "label_flips",
];

/// The sorted field-key set of one event — the schema the cross-kernel
/// and cross-resume tests compare.
fn field_schema(e: &Event) -> Vec<String> {
    let mut keys: Vec<String> = e.fields.iter().map(|f| f.key.to_string()).collect();
    keys.sort();
    keys
}

fn assert_sweep_stream(sink: &MemorySink, name: &str, expected_sweeps: usize) {
    let events = sink.events_of(EventKind::Sweep);
    assert_eq!(
        events.len(),
        expected_sweeps,
        "one sweep event per Gibbs sweep"
    );
    let mut last_t = 0u64;
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.name, name);
        assert!(
            e.t_us >= last_t,
            "timestamps must be monotonically non-decreasing: {} < {last_t} at sweep {i}",
            e.t_us
        );
        last_t = e.t_us;
        for key in SWEEP_FIELDS {
            assert!(e.field(key).is_some(), "sweep event missing field {key}");
        }
        assert_eq!(e.field_f64("sweep"), Some(i as f64));
        assert_eq!(e.field_f64("total_sweeps"), Some(expected_sweeps as f64));
        let ll = e.field_f64("ll").expect("ll present");
        assert!(ll.is_finite(), "ll must be finite, got {ll}");
    }
}

#[test]
fn joint_fit_emits_one_sweep_event_per_sweep() {
    let docs = two_cluster_docs(10);
    let config = JointConfig::quick(2, 4);
    let sweeps = config.sweeps;
    let model = JointTopicModel::new(config).unwrap();
    let (obs, sink) = obs_with_memory();
    let mut observer = obs.clone();
    let fit = model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
        .unwrap();
    assert_sweep_stream(&sink, "joint.sweep", sweeps);
    // The event stream's ll values are exactly the fitted trace.
    let lls: Vec<f64> = sink
        .events_of(EventKind::Sweep)
        .iter()
        .map(|e| e.field_f64("ll").unwrap())
        .collect();
    assert_eq!(lls, fit.ll_trace);
}

#[test]
fn lda_fit_emits_one_sweep_event_per_sweep() {
    let docs = two_cluster_docs(10);
    let config = LdaConfig::from(&JointConfig::quick(2, 4));
    let sweeps = config.sweeps;
    let model = LdaModel::new(config).unwrap();
    let (obs, sink) = obs_with_memory();
    let mut observer = obs.clone();
    model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
        .unwrap();
    assert_sweep_stream(&sink, "lda.sweep", sweeps);
}

#[test]
fn gmm_fit_emits_one_sweep_event_per_sweep() {
    let docs = two_cluster_docs(10);
    let config = GmmConfig::new(2);
    let sweeps = config.sweeps;
    let model = GmmModel::new(config).unwrap();
    let (obs, sink) = obs_with_memory();
    let mut observer = obs.clone();
    model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
        .unwrap();
    assert_sweep_stream(&sink, "gmm.sweep", sweeps);
}

#[test]
fn sweep_schema_identical_across_all_three_kernel_classes() {
    let docs = two_cluster_docs(10);
    let mut schemas: Vec<Vec<String>> = Vec::new();
    let mut phase_sets: Vec<Vec<String>> = Vec::new();
    for kernel in [
        GibbsKernel::Serial,
        GibbsKernel::Parallel,
        GibbsKernel::Sparse,
    ] {
        let config = JointConfig::quick(2, 4);
        let sweeps = config.sweeps;
        let model = JointTopicModel::new(config).unwrap();
        let (obs, sink) = obs_with_memory();
        let mut observer = obs.clone();
        model
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new().observer(&mut observer).kernel(kernel),
            )
            .unwrap();
        let events = sink.events_of(EventKind::Sweep);
        assert_eq!(events.len(), sweeps, "{kernel}");
        let mut kernel_schemas: Vec<Vec<String>> = events.iter().map(field_schema).collect();
        kernel_schemas.dedup();
        assert_eq!(
            kernel_schemas.len(),
            1,
            "sweep schema varies within the {kernel} run"
        );
        schemas.push(kernel_schemas.pop().unwrap());
        let mut phases: Vec<String> = sink
            .events_of(EventKind::Observe)
            .iter()
            .filter(|e| e.name.starts_with("joint.phase."))
            .map(|e| e.name.to_string())
            .collect();
        phases.sort();
        phases.dedup();
        phase_sets.push(phases);
    }
    // One schema for all kernel classes, containing every promised field.
    assert_eq!(schemas[0], schemas[1]);
    assert_eq!(schemas[0], schemas[2]);
    for key in SWEEP_FIELDS {
        assert!(schemas[0].iter().any(|k| k == key), "missing {key}");
    }
    // Every kernel times the same four joint-engine phases.
    assert_eq!(phase_sets[0], phase_sets[1]);
    assert_eq!(phase_sets[0], phase_sets[2]);
    assert_eq!(
        phase_sets[0],
        [
            "joint.phase.ll_us",
            "joint.phase.params_us",
            "joint.phase.y_us",
            "joint.phase.z_us",
        ]
    );
}

#[test]
fn sweep_schema_continues_across_checkpoint_resume_boundary() {
    let docs = two_cluster_docs(10);
    let config = JointConfig::quick(2, 4);
    let sweeps = config.sweeps;
    let model = JointTopicModel::new(config).unwrap();

    // Uninterrupted observed run, checkpointing once mid-chain (sweep 36,
    // so the snapshot resumes from sweep 37 of 60).
    let (obs_a, sink_a) = obs_with_memory();
    let mut observer_a = obs_a.clone();
    let mut ckpt = MemoryCheckpointSink::new(37);
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .observer(&mut observer_a)
                .checkpoint(&mut ckpt),
        )
        .unwrap();
    let snapshot = ckpt.latest().expect("mid-run snapshot").clone();
    assert_eq!(snapshot.next_sweep(), 37);

    // Resume with a fresh observer: the event stream picks up at the
    // boundary sweep with the same schema and the same ll values the
    // uninterrupted run produced.
    let (obs_b, sink_b) = obs_with_memory();
    let mut observer_b = obs_b.clone();
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().observer(&mut observer_b).resume(snapshot),
        )
        .unwrap();

    let first = sink_a.events_of(EventKind::Sweep);
    let resumed = sink_b.events_of(EventKind::Sweep);
    assert_eq!(first.len(), sweeps);
    assert_eq!(resumed.len(), sweeps - 37);
    assert_eq!(resumed[0].field_f64("sweep"), Some(37.0));

    let reference = field_schema(&first[0]);
    for e in first.iter().chain(resumed.iter()) {
        assert_eq!(field_schema(e), reference, "schema drift at {:?}", e.name);
    }
    let tail: Vec<f64> = first[37..]
        .iter()
        .map(|e| e.field_f64("ll").unwrap())
        .collect();
    let resumed_ll: Vec<f64> = resumed.iter().map(|e| e.field_f64("ll").unwrap()).collect();
    assert_eq!(resumed_ll, tail, "resumed sweeps must match bit-for-bit");
}

#[test]
fn disabled_obs_emits_nothing_and_matches_plain_fit() {
    let docs = two_cluster_docs(10);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let plain = model
        .fit_with(&mut rng(), &docs, FitOptions::new())
        .unwrap();
    let mut disabled = Obs::disabled();
    let observed = model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut disabled))
        .unwrap();
    assert_eq!(plain.y, observed.y);
    assert_eq!(plain.ll_trace, observed.ll_trace);
    assert!(!disabled.is_enabled());
}

#[test]
fn every_sweep_event_serializes_to_valid_jsonl_shape() {
    let docs = two_cluster_docs(5);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let (obs, sink) = obs_with_memory();
    let mut observer = obs.clone();
    model
        .fit_with(&mut rng(), &docs, FitOptions::new().observer(&mut observer))
        .unwrap();
    for e in sink.events() {
        let line = e.to_json_line();
        let parsed: serde_json::Value = serde_json::from_str(&line).expect("valid JSON line");
        assert!(parsed["t_us"].is_u64());
        assert!(parsed["kind"].is_string());
        assert!(parsed["name"].is_string());
        assert!(parsed["fields"].is_object());
    }
    for e in sink.events_of(EventKind::Sweep) {
        let parsed: serde_json::Value = serde_json::from_str(&e.to_json_line()).unwrap();
        assert_eq!(parsed["kind"], "sweep");
        assert_eq!(parsed["name"], "joint.sweep");
        assert!(parsed["fields"]["ll"].is_number());
    }
}

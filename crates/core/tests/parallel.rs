//! The deterministic-parallelism contract, end to end (see the crate
//! docs' "Parallel determinism contract"): for every engine, a fit with
//! `threads >= 1` is a pure function of `(config, docs, seed)` — the
//! thread count never changes the result — and the GMM's predictive
//! cache is a pure speedup (cached and uncached fits are bit-identical).
//! Checkpoints taken under the parallel kernel resume bit-identically.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::checkpoint::MemoryCheckpointSink;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{FitOptions, GibbsKernel, JointConfig, JointTopicModel, ModelDoc};
use rheotex_linalg::Vector;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(23)
}

/// A corpus large enough to span several 64-doc parallel chunks, with
/// four planted gel bands so the samplers have real structure to find.
fn banded_docs(n: usize) -> Vec<ModelDoc> {
    let mut r = ChaCha8Rng::seed_from_u64(77);
    (0..n)
        .map(|i| {
            use rand::Rng;
            let band = i % 4;
            let base = 2.0 + 1.8 * band as f64;
            let gel = Vector::new(vec![
                base + r.gen_range(-0.2..0.2),
                9.0 + r.gen_range(-0.2..0.2),
                9.0,
            ]);
            let terms: Vec<usize> = (0..4).map(|t| (band * 3 + t) % 12).collect();
            ModelDoc::new(i as u64, terms, gel, Vector::full(6, 9.0))
        })
        .collect()
}

fn joint_config() -> JointConfig {
    JointConfig {
        n_topics: 4,
        sweeps: 10,
        burn_in: 5,
        ..JointConfig::quick(4, 12)
    }
}

#[test]
fn joint_fit_is_identical_across_thread_counts() {
    let docs = banded_docs(300);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let fits: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            model
                .fit_with(&mut rng(), &docs, FitOptions::new().threads(t))
                .unwrap()
        })
        .collect();
    for fit in &fits[1..] {
        assert_eq!(fit.y, fits[0].y);
        assert_eq!(fit.ll_trace, fits[0].ll_trace);
        assert_eq!(fit.phi, fits[0].phi);
        assert_eq!(fit.theta, fits[0].theta);
    }
}

#[test]
fn lda_fit_is_identical_across_thread_counts() {
    let docs = banded_docs(300);
    let model = LdaModel::new(LdaConfig::from(&joint_config())).unwrap();
    let fits: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            model
                .fit_with(&mut rng(), &docs, FitOptions::new().threads(t))
                .unwrap()
        })
        .collect();
    for fit in &fits[1..] {
        assert_eq!(fit.phi, fits[0].phi);
        assert_eq!(fit.theta, fits[0].theta);
        assert_eq!(fit.ll_trace, fits[0].ll_trace);
    }
}

#[test]
fn gmm_fit_is_identical_across_thread_counts() {
    let docs = banded_docs(300);
    let mut cfg = GmmConfig::new(4);
    cfg.sweeps = 10;
    let model = GmmModel::new(cfg).unwrap();
    let fits: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            model
                .fit_with(&mut rng(), &docs, FitOptions::new().threads(t))
                .unwrap()
        })
        .collect();
    for fit in &fits[1..] {
        assert_eq!(fit.assignments, fits[0].assignments);
        assert_eq!(fit.counts, fits[0].counts);
        assert_eq!(fit.ll_trace, fits[0].ll_trace);
    }
}

/// The cache is a pure speedup: disabling it must not change a single
/// bit of the fitted model, serial or parallel.
#[test]
fn gmm_cached_and_uncached_fits_are_bit_identical() {
    let docs = banded_docs(200);
    let mut cfg = GmmConfig::new(4);
    cfg.sweeps = 10;
    let model = GmmModel::new(cfg).unwrap();
    for threads in [0usize, 2] {
        let cached = model
            .fit_with(&mut rng(), &docs, FitOptions::new().threads(threads))
            .unwrap();
        let uncached = model
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new().threads(threads).predictive_cache(false),
            )
            .unwrap();
        assert_eq!(
            cached.assignments, uncached.assignments,
            "threads={threads}"
        );
        assert_eq!(cached.ll_trace, uncached.ll_trace, "threads={threads}");
        assert_eq!(cached.counts, uncached.counts, "threads={threads}");
    }
}

/// The serial kernel (`threads == 0`) is its own bit-compatibility class:
/// default options must keep reproducing it exactly, while `threads >= 1`
/// picks the chunked kernel. Both are deterministic; they just differ
/// from each other.
#[test]
fn serial_kernel_is_the_default_bit_compatibility_class() {
    let docs = banded_docs(200);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let serial = model
        .fit_with(&mut rng(), &docs, FitOptions::new().threads(0))
        .unwrap();
    let default = model
        .fit_with(&mut rng(), &docs, FitOptions::new())
        .unwrap();
    assert_eq!(serial.y, default.y);
    assert_eq!(serial.ll_trace, default.ll_trace);
}

/// Checkpoint taken mid-run under the parallel kernel, resumed under the
/// parallel kernel: bit-identical to the uninterrupted parallel fit,
/// regardless of the resuming thread count.
#[test]
fn parallel_checkpoint_resumes_bit_identically() {
    let docs = banded_docs(200);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let full = model
        .fit_with(&mut rng(), &docs, FitOptions::new().threads(2))
        .unwrap();

    let mut sink = MemoryCheckpointSink::new(4);
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().threads(2).checkpoint(&mut sink),
        )
        .unwrap();
    let snapshot = sink.snapshots[0].clone();
    assert!(snapshot.next_sweep() < joint_config().sweeps);

    // The resume path takes its RNG state from the snapshot, so the
    // passed generator's seed is irrelevant.
    for resume_threads in [2usize, 8] {
        let resumed = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new()
                    .threads(resume_threads)
                    .resume(snapshot.clone()),
            )
            .unwrap();
        assert_eq!(resumed.y, full.y, "resume at {resume_threads} threads");
        assert_eq!(resumed.ll_trace, full.ll_trace);
        assert_eq!(resumed.phi, full.phi);
    }
}

/// The composed sparse-parallel kernel honours the same contract as the
/// dense parallel one: the thread count never changes a bit of the fit.
#[test]
fn joint_sparse_parallel_fit_is_identical_across_thread_counts() {
    let docs = banded_docs(300);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let fits: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            model
                .fit_with(
                    &mut rng(),
                    &docs,
                    FitOptions::new()
                        .kernel(GibbsKernel::SparseParallel)
                        .threads(t),
                )
                .unwrap()
        })
        .collect();
    for fit in &fits[1..] {
        assert_eq!(fit.y, fits[0].y);
        assert_eq!(fit.ll_trace, fits[0].ll_trace);
        assert_eq!(fit.phi, fits[0].phi);
        assert_eq!(fit.theta, fits[0].theta);
    }
}

#[test]
fn lda_sparse_parallel_fit_is_identical_across_thread_counts() {
    let docs = banded_docs(300);
    let model = LdaModel::new(LdaConfig::from(&joint_config())).unwrap();
    let fits: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            model
                .fit_with(
                    &mut rng(),
                    &docs,
                    FitOptions::new()
                        .kernel(GibbsKernel::SparseParallel)
                        .threads(t),
                )
                .unwrap()
        })
        .collect();
    for fit in &fits[1..] {
        assert_eq!(fit.phi, fits[0].phi);
        assert_eq!(fit.theta, fits[0].theta);
        assert_eq!(fit.ll_trace, fits[0].ll_trace);
    }
}

/// Checkpoint taken mid-run under the sparse-parallel kernel, resumed
/// under the sparse-parallel kernel: bit-identical to the uninterrupted
/// fit, regardless of the resuming thread count.
#[test]
fn sparse_parallel_checkpoint_resumes_bit_identically() {
    let docs = banded_docs(200);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let full = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::SparseParallel)
                .threads(2),
        )
        .unwrap();

    let mut sink = MemoryCheckpointSink::new(4);
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::SparseParallel)
                .threads(2)
                .checkpoint(&mut sink),
        )
        .unwrap();
    let snapshot = sink.snapshots[0].clone();
    assert!(snapshot.next_sweep() < joint_config().sweeps);

    for resume_threads in [2usize, 8] {
        let resumed = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                FitOptions::new()
                    .kernel(GibbsKernel::SparseParallel)
                    .threads(resume_threads)
                    .resume(snapshot.clone()),
            )
            .unwrap();
        assert_eq!(resumed.y, full.y, "resume at {resume_threads} threads");
        assert_eq!(resumed.ll_trace, full.ll_trace);
        assert_eq!(resumed.phi, full.phi);
    }
}

//! The alias-kernel contract, end to end: an alias fit is a pure
//! function of `(config, docs, seed)` — byte-identical across repeated
//! runs *and across every worker-thread count* — statistically
//! interchangeable with the dense serial kernel on planted-structure
//! corpora (the MH correction targets the exact per-token conditional,
//! so the stationary distribution matches even though per-sweep draws
//! differ), snapshot / resume-compatible with itself, rejected by
//! engines or kernel classes it cannot serve, and honest in its
//! profile bookkeeping (two proposals per token, acceptance rate high
//! on an easy corpus).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::checkpoint::MemoryCheckpointSink;
use rheotex_core::collapsed::CollapsedJointModel;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{
    FitOptions, GibbsKernel, JointConfig, JointTopicModel, ModelDoc, ModelError, VecObserver,
};
use rheotex_linalg::Vector;
use rheotex_obs::KernelProfile;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(23)
}

/// Two planted clusters: even docs use words {0, 1} and a low-gelatin
/// profile, odd docs use words {2, 3} and a distinct one.
fn two_cluster_docs(n_per: usize) -> Vec<ModelDoc> {
    let mut r = ChaCha8Rng::seed_from_u64(78);
    (0..2 * n_per)
        .map(|i| {
            use rand::Rng;
            let cluster = i % 2;
            let terms: Vec<usize> = (0..3).map(|j| 2 * cluster + (j % 2)).collect();
            let jitter = r.gen_range(-0.2..0.2);
            let gel = if cluster == 0 {
                Vector::new(vec![2.0 + jitter, 9.0, 9.0])
            } else {
                Vector::new(vec![9.0, 4.0 + jitter, 9.0])
            };
            ModelDoc::new(i as u64, terms, gel, Vector::full(6, 9.0))
        })
        .collect()
}

fn joint_config() -> JointConfig {
    JointConfig {
        n_topics: 4,
        sweeps: 10,
        burn_in: 5,
        ..JointConfig::quick(4, 12)
    }
}

/// Fraction of documents whose cluster assignment agrees with the
/// planted even/odd partition (up to label swap).
fn partition_accuracy(y: &[usize]) -> f64 {
    let y0 = y[0];
    let agree = (0..y.len())
        .filter(|&d| (y[d] == y0) == (d % 2 == 0))
        .count();
    agree as f64 / y.len() as f64
}

#[test]
fn alias_joint_fit_is_byte_identical_for_a_seed() {
    let docs = two_cluster_docs(40);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let opts = || FitOptions::new().kernel(GibbsKernel::Alias);
    let a = model.fit_with(&mut rng(), &docs, opts()).unwrap();
    let b = model.fit_with(&mut rng(), &docs, opts()).unwrap();
    assert_eq!(a.y, b.y);
    assert_eq!(a.ll_trace, b.ll_trace);
    assert_eq!(a.phi, b.phi);
    assert_eq!(a.theta, b.theta);
}

/// The headline determinism claim: the fixed 64-doc chunk grid and the
/// counter-derived per-chunk RNG streams make the alias fit a pure
/// function of `(config, docs, seed)` for *every* thread count,
/// including the implicit one-worker pool at `threads == 0`.
#[test]
fn alias_fit_is_bit_identical_across_thread_counts() {
    let docs = two_cluster_docs(100); // 200 docs = 4 chunks
    let model = JointTopicModel::new(joint_config()).unwrap();
    let reference = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().kernel(GibbsKernel::Alias),
        )
        .unwrap();
    for threads in [1, 2, 4, 8] {
        let fit = model
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new().kernel(GibbsKernel::Alias).threads(threads),
            )
            .unwrap();
        assert_eq!(fit.y, reference.y, "y diverged at {threads} threads");
        assert_eq!(
            fit.ll_trace, reference.ll_trace,
            "ll_trace diverged at {threads} threads"
        );
        assert_eq!(fit.phi, reference.phi, "phi diverged at {threads} threads");
        assert_eq!(
            fit.theta, reference.theta,
            "theta diverged at {threads} threads"
        );
    }
}

/// Statistical-agreement harness (same tolerances as the sparse-kernel
/// suite): the alias kernel's MH correction against the fresh counts
/// makes the per-token chain stationary on the exact dense conditional,
/// so on a corpus with planted structure it must recover the partition
/// and land on a log-likelihood plateau of the same height as the dense
/// serial kernel — even though no sweep is bitwise comparable.
#[test]
fn alias_and_serial_kernels_agree_statistically() {
    let docs = two_cluster_docs(40);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let serial = model
        .fit_with(&mut rng(), &docs, FitOptions::new())
        .unwrap();
    let alias = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().kernel(GibbsKernel::Alias).threads(2),
        )
        .unwrap();
    let acc_serial = partition_accuracy(&serial.y);
    let acc_alias = partition_accuracy(&alias.y);
    assert!(acc_serial > 0.9, "serial kernel recovered {acc_serial}");
    assert!(acc_alias > 0.9, "alias kernel recovered {acc_alias}");
    let tail = |t: &[f64]| -> f64 {
        let m = t.len() / 2;
        t[m..].iter().sum::<f64>() / (t.len() - m) as f64
    };
    let (ls, la) = (tail(&serial.ll_trace), tail(&alias.ll_trace));
    assert!(
        ((ls - la) / ls.abs()).abs() < 0.05,
        "post-burn-in LL plateaus diverge: serial {ls}, alias {la}"
    );
}

#[test]
fn alias_lda_recovers_the_partition_like_the_dense_kernel() {
    let docs = two_cluster_docs(40);
    let model = LdaModel::new(LdaConfig {
        n_topics: 2,
        vocab_size: 4,
        alpha: 0.5,
        gamma: 0.1,
        sweeps: 60,
        burn_in: 30,
    })
    .unwrap();
    for opts in [
        FitOptions::new(),
        FitOptions::new().kernel(GibbsKernel::Alias),
    ] {
        let fit = model.fit_with(&mut rng(), &docs, opts).unwrap();
        let dominant: Vec<usize> = fit
            .theta
            .iter()
            .map(|row| if row[0] > row[1] { 0 } else { 1 })
            .collect();
        let acc = partition_accuracy(&dominant);
        assert!(acc > 0.9, "kernel recovered {acc}");
    }
}

/// The collapsed engine composes the alias token phase with its cached
/// Student-t `y` sweep unchanged; the fit must still recover the
/// planted partition and stay thread-invariant.
#[test]
fn collapsed_alias_kernel_is_thread_invariant_and_recovers() {
    let docs = two_cluster_docs(40);
    let model = CollapsedJointModel::new(JointConfig::quick(2, 4)).unwrap();
    let reference = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().kernel(GibbsKernel::Alias),
        )
        .unwrap();
    assert!(
        partition_accuracy(&reference.y) > 0.9,
        "collapsed alias kernel recovered {}",
        partition_accuracy(&reference.y)
    );
    for threads in [2, 4] {
        let fit = model
            .fit_with(
                &mut rng(),
                &docs,
                FitOptions::new().kernel(GibbsKernel::Alias).threads(threads),
            )
            .unwrap();
        assert_eq!(fit.y, reference.y, "y diverged at {threads} threads");
        assert_eq!(
            fit.ll_trace, reference.ll_trace,
            "ll_trace diverged at {threads} threads"
        );
    }
}

/// Profile bookkeeping and MH health on an easy corpus: every token
/// contributes exactly one document proposal and one word proposal per
/// sweep, every proposal is either accepted or rejected, and on a
/// small well-separated corpus the acceptance rate is high (most
/// proposals are self-proposals or moves the fresh counts agree with —
/// a low rate would mean the stale tables are badly desynchronized).
#[test]
fn alias_profile_counts_proposals_and_acceptance_stays_high() {
    let docs = two_cluster_docs(100); // 200 docs x 3 tokens
    let sweeps = 12;
    let model = LdaModel::new(LdaConfig {
        n_topics: 2,
        vocab_size: 4,
        alpha: 0.5,
        gamma: 0.1,
        sweeps,
        burn_in: sweeps / 2,
    })
    .unwrap();
    let mut observer = VecObserver::default();
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::Alias)
                .threads(2)
                .observer(&mut observer),
        )
        .unwrap();
    assert_eq!(observer.sweeps.len(), sweeps);
    let tokens: u64 = docs.iter().map(|d| d.terms.len() as u64).sum();
    let (mut docp, mut wordp, mut acc, mut rej) = (0u64, 0u64, 0u64, 0u64);
    for stats in &observer.sweeps {
        match stats.profile {
            Some(KernelProfile::Alias {
                doc_proposals,
                word_proposals,
                accepted,
                rejected,
                chunks,
                ref chunk_us,
                ..
            }) => {
                assert_eq!(doc_proposals, tokens, "one doc proposal per token");
                assert_eq!(word_proposals, tokens, "one word proposal per token");
                assert_eq!(accepted + rejected, doc_proposals + word_proposals);
                assert_eq!(chunks, 4, "200 docs on the 64-doc grid");
                assert_eq!(chunk_us.len(), 4);
                docp += doc_proposals;
                wordp += word_proposals;
                acc += accepted;
                rej += rejected;
            }
            ref other => panic!("expected an alias profile, got {other:?}"),
        }
    }
    let rate = acc as f64 / (docp + wordp) as f64;
    assert!(
        rate > 0.9,
        "alias MH acceptance rate {rate} on the toy corpus ({acc} accepted, {rej} rejected)"
    );
}

/// Checkpoint written mid-run by the alias kernel, resumed by the alias
/// kernel: bit-identical to the uninterrupted alias fit. Alias tables
/// are not persisted — they are rebuilt from the dense counts at the
/// top of every sweep anyway, which this test proves is enough for
/// bit-identity.
#[test]
fn alias_checkpoint_resumes_bit_identically() {
    let docs = two_cluster_docs(100);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let opts = || FitOptions::new().kernel(GibbsKernel::Alias).threads(2);
    let full = model.fit_with(&mut rng(), &docs, opts()).unwrap();

    let mut sink = MemoryCheckpointSink::new(4);
    model
        .fit_with(&mut rng(), &docs, opts().checkpoint(&mut sink))
        .unwrap();
    let snapshot = sink.snapshots[0].clone();
    assert!(snapshot.next_sweep() < joint_config().sweeps);

    let resumed = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            opts().resume(snapshot),
        )
        .unwrap();
    assert_eq!(resumed.y, full.y);
    assert_eq!(resumed.ll_trace, full.ll_trace);
    assert_eq!(resumed.phi, full.phi);
    assert_eq!(resumed.theta, full.theta);
}

/// A snapshot stamped alias refuses to resume under any of the other
/// four kernel classes.
#[test]
fn alias_snapshot_rejects_other_kernels_on_resume() {
    let docs = two_cluster_docs(100);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let mut sink = MemoryCheckpointSink::new(4);
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::Alias)
                .threads(2)
                .checkpoint(&mut sink),
        )
        .unwrap();
    let snapshot = sink.snapshots[0].clone();

    for resume_opts in [
        FitOptions::new(),                             // serial
        FitOptions::new().threads(2),                  // parallel
        FitOptions::new().kernel(GibbsKernel::Sparse), // sparse
        FitOptions::new()
            .kernel(GibbsKernel::SparseParallel)
            .threads(2), // sparse-parallel
    ] {
        let err = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                resume_opts.resume(snapshot.clone()),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::ResumeMismatch { .. }), "{err}");
    }
}

#[test]
fn gmm_rejects_the_alias_kernel() {
    let docs = two_cluster_docs(4);
    let mut cfg = GmmConfig::new(2);
    cfg.sweeps = 4;
    let model = GmmModel::new(cfg).unwrap();
    let err = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().kernel(GibbsKernel::Alias),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::InvalidConfig { .. }), "{err}");
}

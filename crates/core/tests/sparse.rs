//! The sparse-kernel contract, end to end: a sparse fit is a pure
//! function of `(config, docs, seed)` (same seed → byte-identical
//! model), statistically interchangeable with the dense serial kernel
//! on planted-structure corpora (the per-token conditional is the same
//! distribution — only the RNG consumption pattern differs), snapshot /
//! resume-compatible with itself, and rejected by engines or option
//! combinations it cannot serve.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_core::checkpoint::MemoryCheckpointSink;
use rheotex_core::gmm::{GmmConfig, GmmModel};
use rheotex_core::lda::{LdaConfig, LdaModel};
use rheotex_core::{FitOptions, GibbsKernel, JointConfig, JointTopicModel, ModelDoc, ModelError};
use rheotex_linalg::Vector;

fn rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(23)
}

/// Two planted clusters: even docs use words {0, 1} and a low-gelatin
/// profile, odd docs use words {2, 3} and a distinct one.
fn two_cluster_docs(n_per: usize) -> Vec<ModelDoc> {
    let mut r = ChaCha8Rng::seed_from_u64(78);
    (0..2 * n_per)
        .map(|i| {
            use rand::Rng;
            let cluster = i % 2;
            let terms: Vec<usize> = (0..3).map(|j| 2 * cluster + (j % 2)).collect();
            let jitter = r.gen_range(-0.2..0.2);
            let gel = if cluster == 0 {
                Vector::new(vec![2.0 + jitter, 9.0, 9.0])
            } else {
                Vector::new(vec![9.0, 4.0 + jitter, 9.0])
            };
            ModelDoc::new(i as u64, terms, gel, Vector::full(6, 9.0))
        })
        .collect()
}

fn joint_config() -> JointConfig {
    JointConfig {
        n_topics: 4,
        sweeps: 10,
        burn_in: 5,
        ..JointConfig::quick(4, 12)
    }
}

/// Fraction of documents whose cluster assignment agrees with the
/// planted even/odd partition (up to label swap).
fn partition_accuracy(y: &[usize]) -> f64 {
    let y0 = y[0];
    let agree = (0..y.len())
        .filter(|&d| (y[d] == y0) == (d % 2 == 0))
        .count();
    agree as f64 / y.len() as f64
}

#[test]
fn sparse_joint_fit_is_byte_identical_for_a_seed() {
    let docs = two_cluster_docs(40);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let opts = || FitOptions::new().kernel(GibbsKernel::Sparse);
    let a = model.fit_with(&mut rng(), &docs, opts()).unwrap();
    let b = model.fit_with(&mut rng(), &docs, opts()).unwrap();
    assert_eq!(a.y, b.y);
    assert_eq!(a.ll_trace, b.ll_trace);
    assert_eq!(a.phi, b.phi);
    assert_eq!(a.theta, b.theta);
}

/// Satellite property: the sparse and dense kernels sample the same
/// per-token conditional, so on a corpus with planted structure both
/// must recover it — and land on log-likelihood plateaus of the same
/// height. (Exact per-draw distribution equality is pinned by the unit
/// tests in `core/src/sparse.rs`.)
#[test]
fn sparse_and_serial_kernels_agree_statistically() {
    let docs = two_cluster_docs(40);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let serial = model
        .fit_with(&mut rng(), &docs, FitOptions::new())
        .unwrap();
    let sparse = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().kernel(GibbsKernel::Sparse),
        )
        .unwrap();
    let acc_serial = partition_accuracy(&serial.y);
    let acc_sparse = partition_accuracy(&sparse.y);
    assert!(acc_serial > 0.9, "serial kernel recovered {acc_serial}");
    assert!(acc_sparse > 0.9, "sparse kernel recovered {acc_sparse}");
    // Same model, same data: the converged joint LL must match to within
    // a few percent even though the chains differ bitwise.
    let tail = |t: &[f64]| -> f64 {
        let m = t.len() / 2;
        t[m..].iter().sum::<f64>() / (t.len() - m) as f64
    };
    let (ls, lp) = (tail(&serial.ll_trace), tail(&sparse.ll_trace));
    assert!(
        ((ls - lp) / ls.abs()).abs() < 0.05,
        "post-burn-in LL plateaus diverge: serial {ls}, sparse {lp}"
    );
}

/// The composed sparse-parallel kernel samples the same per-token
/// conditional as the dense serial kernel too — only the chunk grid and
/// the RNG consumption pattern differ — so it must recover the planted
/// partition and land on the same log-likelihood plateau.
#[test]
fn sparse_parallel_and_serial_kernels_agree_statistically() {
    let docs = two_cluster_docs(40);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let serial = model
        .fit_with(&mut rng(), &docs, FitOptions::new())
        .unwrap();
    let sparse_parallel = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::SparseParallel)
                .threads(2),
        )
        .unwrap();
    let acc_serial = partition_accuracy(&serial.y);
    let acc_sp = partition_accuracy(&sparse_parallel.y);
    assert!(acc_serial > 0.9, "serial kernel recovered {acc_serial}");
    assert!(acc_sp > 0.9, "sparse-parallel kernel recovered {acc_sp}");
    let tail = |t: &[f64]| -> f64 {
        let m = t.len() / 2;
        t[m..].iter().sum::<f64>() / (t.len() - m) as f64
    };
    let (ls, lp) = (tail(&serial.ll_trace), tail(&sparse_parallel.ll_trace));
    assert!(
        ((ls - lp) / ls.abs()).abs() < 0.05,
        "post-burn-in LL plateaus diverge: serial {ls}, sparse-parallel {lp}"
    );
}

#[test]
fn sparse_lda_recovers_the_partition_like_the_dense_kernel() {
    let docs = two_cluster_docs(40);
    let model = LdaModel::new(LdaConfig {
        n_topics: 2,
        vocab_size: 4,
        alpha: 0.5,
        gamma: 0.1,
        sweeps: 60,
        burn_in: 30,
    })
    .unwrap();
    for opts in [
        FitOptions::new(),
        FitOptions::new().kernel(GibbsKernel::Sparse),
    ] {
        let fit = model.fit_with(&mut rng(), &docs, opts).unwrap();
        let dominant: Vec<usize> = fit
            .theta
            .iter()
            .map(|row| if row[0] > row[1] { 0 } else { 1 })
            .collect();
        let acc = partition_accuracy(&dominant);
        assert!(acc > 0.9, "kernel recovered {acc}");
    }
}

#[test]
fn sparse_kernel_rejects_worker_threads() {
    let docs = two_cluster_docs(4);
    let model = JointTopicModel::new(JointConfig::quick(2, 4)).unwrap();
    let err = model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new().kernel(GibbsKernel::Sparse).threads(2),
        )
        .unwrap_err();
    assert!(matches!(err, ModelError::InvalidConfig { .. }), "{err}");
}

#[test]
fn gmm_rejects_the_sparse_kernels() {
    let docs = two_cluster_docs(4);
    let mut cfg = GmmConfig::new(2);
    cfg.sweeps = 4;
    let model = GmmModel::new(cfg).unwrap();
    for kernel in [
        GibbsKernel::Sparse,
        GibbsKernel::SparseParallel,
        GibbsKernel::Alias,
    ] {
        let err = model
            .fit_with(&mut rng(), &docs, FitOptions::new().kernel(kernel))
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidConfig { .. }), "{err}");
    }
}

/// Checkpoint written mid-run by the sparse kernel, resumed by the
/// sparse kernel: bit-identical to the uninterrupted sparse fit. The
/// nonzero-topic lists are not persisted — they are rebuilt from the
/// dense counts in canonical sorted order on restore, which this test
/// proves is enough for bit-identity.
#[test]
fn sparse_checkpoint_resumes_bit_identically() {
    let docs = two_cluster_docs(100);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let opts = || FitOptions::new().kernel(GibbsKernel::Sparse);
    let full = model.fit_with(&mut rng(), &docs, opts()).unwrap();

    let mut sink = MemoryCheckpointSink::new(4);
    model
        .fit_with(&mut rng(), &docs, opts().checkpoint(&mut sink))
        .unwrap();
    let snapshot = sink.snapshots[0].clone();
    assert!(snapshot.next_sweep() < joint_config().sweeps);

    let resumed = model
        .fit_with(
            &mut ChaCha8Rng::seed_from_u64(0),
            &docs,
            opts().resume(snapshot),
        )
        .unwrap();
    assert_eq!(resumed.y, full.y);
    assert_eq!(resumed.ll_trace, full.ll_trace);
    assert_eq!(resumed.phi, full.phi);
    assert_eq!(resumed.theta, full.theta);
}

/// A snapshot records its kernel class; resuming under a different one
/// must fail loudly instead of silently breaking bit-identity.
#[test]
fn resume_under_a_different_kernel_is_rejected() {
    let docs = two_cluster_docs(100);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let mut sink = MemoryCheckpointSink::new(4);
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::Sparse)
                .checkpoint(&mut sink),
        )
        .unwrap();
    let snapshot = sink.snapshots[0].clone();

    for resume_opts in [
        FitOptions::new(),            // serial
        FitOptions::new().threads(2), // parallel
        FitOptions::new()
            .kernel(GibbsKernel::SparseParallel)
            .threads(2), // the composed kernel is its own bit class too
        FitOptions::new().kernel(GibbsKernel::Alias), // and so is alias
    ] {
        let err = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                resume_opts.resume(snapshot.clone()),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::ResumeMismatch { .. }), "{err}");
    }
}

/// The mirror direction: a snapshot stamped sparse-parallel refuses to
/// resume under any of the other four kernel classes.
#[test]
fn sparse_parallel_snapshot_rejects_other_kernels_on_resume() {
    let docs = two_cluster_docs(100);
    let model = JointTopicModel::new(joint_config()).unwrap();
    let mut sink = MemoryCheckpointSink::new(4);
    model
        .fit_with(
            &mut rng(),
            &docs,
            FitOptions::new()
                .kernel(GibbsKernel::SparseParallel)
                .threads(2)
                .checkpoint(&mut sink),
        )
        .unwrap();
    let snapshot = sink.snapshots[0].clone();

    for resume_opts in [
        FitOptions::new(),                             // serial
        FitOptions::new().threads(2),                  // parallel
        FitOptions::new().kernel(GibbsKernel::Sparse), // sparse
        FitOptions::new().kernel(GibbsKernel::Alias),  // alias
    ] {
        let err = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(0),
                &docs,
                resume_opts.resume(snapshot.clone()),
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::ResumeMismatch { .. }), "{err}");
    }
}

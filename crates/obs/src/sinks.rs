//! The three built-in sinks: a rate-limited human progress reporter, a
//! machine-readable JSONL writer, and an in-memory buffer for tests.

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;
use crate::summary::fmt_duration_us;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Progress sink
// ---------------------------------------------------------------------

/// Human progress reporting on a writer (stderr by default).
///
/// Span ends print unconditionally (there are only a handful per run);
/// sweep events are rate-limited: the first and last sweep always print,
/// other sweeps print when `every > 0` and the sweep index is a multiple
/// of `every`, or — with `every == 0` — when at least `min_interval` has
/// passed since the previous line.
pub struct ProgressSink {
    out: Mutex<Box<dyn Write + Send>>,
    every: u64,
    min_interval: Duration,
    last_print: Mutex<Option<Instant>>,
}

impl ProgressSink {
    /// Progress on stderr: explicit stride `every` (0 = time-based) and
    /// minimum interval between sweep lines.
    #[must_use]
    pub fn stderr(every: u64, min_interval: Duration) -> Self {
        Self::to_writer(Box::new(std::io::stderr()), every, min_interval)
    }

    /// Progress to an arbitrary writer (tests).
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>, every: u64, min_interval: Duration) -> Self {
        Self {
            out: Mutex::new(out),
            every,
            min_interval,
            last_print: Mutex::new(None),
        }
    }

    fn should_print_sweep(&self, sweep: u64, total: u64) -> bool {
        let forced = sweep == 0 || (total > 0 && sweep + 1 == total);
        if self.every > 0 {
            return forced || sweep % self.every == 0;
        }
        let Ok(mut last) = self.last_print.lock() else {
            return false;
        };
        let due = match *last {
            None => true,
            Some(at) => at.elapsed() >= self.min_interval,
        };
        if forced || due {
            *last = Some(Instant::now());
            return true;
        }
        false
    }

    fn write_line(&self, line: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{line}");
        }
    }
}

impl Recorder for ProgressSink {
    fn record(&self, event: &Event) {
        match event.kind {
            EventKind::SpanEnd => {
                let duration = event.field_f64("duration_us").unwrap_or(0.0);
                let mut extras = String::new();
                for f in &event.fields {
                    if f.key == "duration_us" {
                        continue;
                    }
                    if !extras.is_empty() {
                        extras.push_str(", ");
                    }
                    extras.push_str(&format!("{}={}", f.key, f.value));
                }
                if extras.is_empty() {
                    self.write_line(&format!("{}: {}", event.name, fmt_duration_us(duration)));
                } else {
                    self.write_line(&format!(
                        "{}: {} ({extras})",
                        event.name,
                        fmt_duration_us(duration)
                    ));
                }
            }
            EventKind::Sweep => {
                let sweep = event.field_f64("sweep").unwrap_or(0.0) as u64;
                let total = event.field_f64("total_sweeps").unwrap_or(0.0) as u64;
                if !self.should_print_sweep(sweep, total) {
                    return;
                }
                let ll = event.field_f64("ll").unwrap_or(f64::NAN);
                let entropy = event.field_f64("topic_entropy").unwrap_or(f64::NAN);
                let elapsed = event.field_f64("elapsed_us").unwrap_or(0.0);
                self.write_line(&format!(
                    "{} {}/{total} ll={ll:.1} entropy={entropy:.3} ({}/sweep)",
                    event.name,
                    sweep + 1,
                    fmt_duration_us(elapsed),
                ));
            }
            _ => {}
        }
    }

    fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

// ---------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------

/// Machine-readable sink: one JSON object per line (the schema in
/// README.md § Observability). Write errors disable the sink after
/// reporting once on stderr, so a full disk cannot crash a fit.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
    broken: AtomicBool,
}

impl JsonlSink {
    /// Creates (truncates) `path` and writes JSONL to it, buffered.
    ///
    /// # Errors
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file))))
    }

    /// JSONL to an arbitrary writer.
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(out),
            broken: AtomicBool::new(false),
        }
    }
}

impl Recorder for JsonlSink {
    fn record(&self, event: &Event) {
        if self.broken.load(Ordering::Relaxed) {
            return;
        }
        let line = event.to_json_line();
        if let Ok(mut out) = self.out.lock() {
            if writeln!(out, "{line}").is_err() && !self.broken.swap(true, Ordering::Relaxed) {
                eprintln!("rheotex-obs: metrics sink write failed; disabling sink");
            }
        }
    }

    fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

// ---------------------------------------------------------------------
// Memory sink
// ---------------------------------------------------------------------

/// Buffers every event in memory; the test harness's window into an
/// instrumented run. Clones share the buffer.
#[derive(Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// A snapshot of all recorded events, in arrival order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// Recorded events of one kind.
    #[must_use]
    pub fn events_of(&self, kind: EventKind) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect()
    }

    /// Drains and returns the buffer.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        self.events
            .lock()
            .map(|mut e| std::mem::take(&mut *e))
            .unwrap_or_default()
    }
}

impl Recorder for MemorySink {
    fn record(&self, event: &Event) {
        if let Ok(mut events) = self.events.lock() {
            events.push(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;
    use crate::json::parse_json;
    use crate::Obs;

    /// A `Write` handle over a shared buffer, so tests can read back what
    /// a sink wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sweep_event(sweep: u64, total: u64) -> Event {
        Event {
            t_us: sweep,
            kind: EventKind::Sweep,
            name: "joint.sweep".into(),
            fields: vec![
                Field::new("sweep", sweep),
                Field::new("total_sweeps", total),
                Field::new("elapsed_us", 100u64),
                Field::new("ll", -5.0),
                Field::new("topic_entropy", 1.5),
            ],
        }
    }

    #[test]
    fn progress_stride_rate_limits_sweeps() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::to_writer(Box::new(buf.clone()), 10, Duration::ZERO);
        for sweep in 0..40 {
            sink.record(&sweep_event(sweep, 40));
        }
        sink.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().map(str::trim).collect();
        // Sweeps 0, 10, 20, 30 (stride) and 39 (final).
        assert_eq!(lines.len(), 5, "{lines:?}");
        assert!(lines[0].contains("1/40"), "{lines:?}");
        assert!(lines[4].contains("40/40"), "{lines:?}");
    }

    #[test]
    fn progress_time_limit_suppresses_middle_sweeps() {
        let buf = SharedBuf::default();
        // Huge interval: only first and last sweep may print.
        let sink = ProgressSink::to_writer(Box::new(buf.clone()), 0, Duration::from_secs(3600));
        for sweep in 0..20 {
            sink.record(&sweep_event(sweep, 20));
        }
        let lines: Vec<String> = buf.contents().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
    }

    #[test]
    fn progress_prints_span_ends() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::to_writer(Box::new(buf.clone()), 0, Duration::ZERO);
        sink.record(&Event {
            t_us: 1,
            kind: EventKind::SpanEnd,
            name: "stage.fit".into(),
            fields: vec![
                Field::new("duration_us", 2500u64),
                Field::new("docs", 120u64),
            ],
        });
        let text = buf.contents();
        assert!(text.contains("stage.fit"), "{text}");
        assert!(text.contains("2.50ms"), "{text}");
        assert!(text.contains("docs=120"), "{text}");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf = SharedBuf::default();
        let obs = Obs::with_sinks(vec![Box::new(JsonlSink::to_writer(Box::new(buf.clone())))]);
        obs.counter("docs", 3);
        obs.span("stage.x").with("n", 1u64).finish();
        obs.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // counter + span_start + span_end
        for line in lines {
            parse_json(line).expect("every line is valid JSON");
        }
    }

    #[test]
    fn memory_sink_keeps_order_and_filters() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        obs.counter("a", 1);
        obs.gauge("b", 2.0);
        obs.counter("c", 3);
        assert_eq!(sink.events().len(), 3);
        assert_eq!(sink.events_of(EventKind::Counter).len(), 2);
        assert_eq!(sink.take().len(), 3);
        assert!(sink.events().is_empty());
    }
}

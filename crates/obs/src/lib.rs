//! # rheotex-obs
//!
//! Dependency-free structured tracing and metrics for the rheotex
//! workspace: the measurement substrate that every scaling / performance
//! PR reports through.
//!
//! Three layers:
//!
//! * **Events** ([`Event`], [`EventKind`], [`Field`], [`Value`]) — plain
//!   data with a monotonic µs timestamp. Spans (timed regions),
//!   counters, gauges, fixed-bucket histogram observations, and Gibbs
//!   sweep records all share this one shape, and all serialize to the
//!   stable JSONL wire format (`Event::to_json_line`).
//! * **The [`Obs`] handle and [`Recorder`] sinks** — `Obs` stamps and
//!   fans events out to any number of sinks and simultaneously folds
//!   them into a [`Summary`] for the end-of-run table. A *disabled*
//!   `Obs` is a null pointer: every call short-circuits, so
//!   instrumentation can stay in hot paths permanently. Built-in sinks:
//!   [`ProgressSink`] (rate-limited human lines on stderr),
//!   [`JsonlSink`] (machine-readable JSONL), [`MemorySink`] (tests).
//! * **The sampler hook** ([`SweepObserver`], [`SweepStats`]) — Gibbs
//!   engines report per-sweep log-likelihood, timing, and
//!   topic-occupancy shape through one tiny trait. `Obs` implements it,
//!   bridging sweeps into the event stream; [`NullObserver`] keeps
//!   un-instrumented fits free of any overhead.
//!
//! On top of the event stream sit the diagnostics added for the
//! convergence-telemetry work: [`convergence`] computes split-R̂ and
//! bulk ESS over multi-chain scalar traces ([`ChainTraces`]), and
//! [`report`] parses one or more metrics JSONL files (via the
//! dependency-free [`json`] parser) back into a [`RunReport`] — a
//! human-readable run report plus the machine `rheotex.report/2`
//! document.
//!
//! ```
//! use rheotex_obs::{MemorySink, Obs};
//!
//! let sink = MemorySink::default();
//! let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
//! {
//!     let mut span = obs.span("stage.demo");
//!     span.set("docs", 42u64);
//! } // span closes on drop
//! obs.counter("docs_kept", 42);
//! assert_eq!(sink.events().len(), 3); // span_start, span_end, counter
//! assert!(obs.summary_table().contains("stage.demo"));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod convergence;
pub mod event;
pub mod histogram;
pub mod json;
pub mod recorder;
pub mod report;
pub mod sinks;
pub mod summary;
pub mod sweep;

pub use convergence::{bulk_ess, emit_convergence, split_rhat, ChainTraces, TraceDiagnostic};
pub use event::{Event, EventKind, Field, Value};
pub use histogram::Histogram;
pub use json::{parse_json, Json};
pub use recorder::{Obs, Recorder, Span};
pub use report::RunReport;
pub use sinks::{JsonlSink, MemorySink, ProgressSink};
pub use summary::{Summary, TimerStat};
pub use sweep::{
    HealthEvent, KernelProfile, NullObserver, PhaseTimer, SweepObserver, SweepStats, VecObserver,
};

//! Fixed-bucket histograms.
//!
//! Buckets are defined by a fixed, sorted list of upper bounds; an
//! implicit overflow bucket catches everything above the last bound.
//! Fixed buckets keep recording O(log B) with zero allocation, which is
//! what lets the per-sweep hot path observe durations without showing up
//! in profiles.

/// Default bucket upper bounds for microsecond durations: 10 µs … 100 s,
/// one decade apart with a 3× midpoint (roughly log-uniform coverage).
pub const DEFAULT_TIME_BOUNDS_US: [f64; 15] = [
    10.0, 30.0, 100.0, 300.0, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8,
];

/// A fixed-bucket histogram with count/sum/min/max side statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `counts[i]` counts observations `<= bounds[i]`; the final slot is
    /// the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram over the given sorted upper bounds.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram with [`DEFAULT_TIME_BOUNDS_US`].
    #[must_use]
    pub fn for_time_us() -> Self {
        Self::new(&DEFAULT_TIME_BOUNDS_US)
    }

    /// Records one observation. Non-finite values are counted but only in
    /// `count` (they would poison `sum`/bucket search).
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        if !value.is_finite() {
            return;
        }
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total observations (including non-finite ones).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of finite observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite observations, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let finite: u64 = self.counts.iter().sum();
        (finite > 0).then(|| self.sum / finite as f64)
    }

    /// Minimum finite observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Maximum finite observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// Approximate quantile `q ∈ [0, 1]` from the bucket boundaries: the
    /// upper bound of the bucket containing the `q`-th observation.
    /// Coarse by construction — for progress reporting, not statistics.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let finite: u64 = self.counts.iter().sum();
        if finite == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * finite as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                });
            }
        }
        Some(self.max)
    }

    /// Bucket `(upper_bound, count)` pairs, overflow last with bound
    /// `f64::INFINITY`.
    #[must_use]
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_buckets() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[1], (10.0, 2));
        assert_eq!(buckets[2], (100.0, 1));
        assert_eq!(buckets[3], (f64::INFINITY, 1));
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(500.0));
        assert!((h.mean().unwrap() - 112.1).abs() < 1e-9);
    }

    #[test]
    fn boundary_values_go_to_lower_bucket() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        h.record(10.0);
        assert_eq!(h.buckets()[0].1, 1);
    }

    #[test]
    fn quantiles_are_bucket_bounds() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for _ in 0..99 {
            h.record(5.0);
        }
        h.record(50.0);
        assert_eq!(h.quantile(0.5), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn empty_and_non_finite() {
        let mut h = Histogram::for_time_us();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), None);
        h.record(2.0);
        assert_eq!(h.mean(), Some(2.0));
    }
}

//! Cross-chain convergence diagnostics: split-R̂ (Gelman–Rubin) and
//! bulk effective sample size over per-sweep scalar traces.
//!
//! The estimators follow the split-chain formulation (Gelman et al.,
//! *Bayesian Data Analysis* 3rd ed. §11.4; Vehtari et al. 2021): every
//! chain is cut in half so within-chain drift shows up as between-chain
//! variance, which lets a *single* chain yield a meaningful R̂. The ESS
//! uses Geyer's initial-monotone-sequence truncation over the combined
//! split-chain autocorrelations. Conventions pinned by the golden tests:
//! within-chain variance `W` is the mean of the *unbiased* per-chain
//! sample variances, autocovariances use the biased `1/n` normalizer,
//! and ESS is capped at the total draw count (antithetic chains report
//! the cap rather than a super-efficient estimate).
//!
//! [`ChainTraces`] is the accumulator the multi-chain runner feeds: one
//! scalar trace per `(metric, chain)`, diagnosed in one shot after the
//! fits finish.

use crate::event::{EventKind, Field};
use crate::recorder::Obs;
use std::collections::BTreeMap;

/// Truncates every chain to the common length and splits each into two
/// halves. `None` when there is no chain with at least 4 draws.
fn split_halves(chains: &[Vec<f64>]) -> Option<Vec<&[f64]>> {
    let n_min = chains.iter().map(Vec::len).min()?;
    let half = n_min / 2;
    if half < 2 {
        return None;
    }
    let mut halves = Vec::with_capacity(2 * chains.len());
    for c in chains {
        halves.push(&c[..half]);
        halves.push(&c[half..2 * half]);
    }
    Some(halves)
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (`n - 1` denominator).
fn sample_var(xs: &[f64], m: f64) -> f64 {
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Within-chain variance `W`, pooled variance `var⁺`, and the half-chain
/// layout `(m, n)` shared by both estimators.
fn variance_decomposition(halves: &[&[f64]]) -> (f64, f64, usize, usize) {
    let m = halves.len();
    let n = halves[0].len();
    let chain_means: Vec<f64> = halves.iter().map(|h| mean(h)).collect();
    let w = halves
        .iter()
        .zip(&chain_means)
        .map(|(h, &cm)| sample_var(h, cm))
        .sum::<f64>()
        / m as f64;
    let between = if m > 1 {
        sample_var(&chain_means, mean(&chain_means))
    } else {
        0.0
    };
    // var⁺ = (n-1)/n · W + B/n with B = n · Var(chain means).
    let var_plus = (n - 1) as f64 / n as f64 * w + between;
    (w, var_plus, m, n)
}

/// Split-R̂ over one scalar metric's chains (each `Vec<f64>` is one
/// chain's per-sweep trace).
///
/// Returns `None` when no chain has at least 4 draws. Degenerate cases:
/// all values identical → `1.0`; chains constant but at different
/// values → `f64::INFINITY` (maximally unconverged).
#[must_use]
pub fn split_rhat(chains: &[Vec<f64>]) -> Option<f64> {
    let halves = split_halves(chains)?;
    let (w, var_plus, ..) = variance_decomposition(&halves);
    if w <= 0.0 {
        return Some(if var_plus <= 0.0 { 1.0 } else { f64::INFINITY });
    }
    Some((var_plus / w).sqrt())
}

/// Bulk effective sample size over one scalar metric's chains, via
/// Geyer-truncated combined autocorrelations on the split chains.
///
/// Returns `None` when no chain has at least 4 draws. The estimate is
/// capped at the total number of retained draws; a fully constant trace
/// reports the cap (no information either way).
#[must_use]
pub fn bulk_ess(chains: &[Vec<f64>]) -> Option<f64> {
    let halves = split_halves(chains)?;
    let (w, var_plus, m, n) = variance_decomposition(&halves);
    let total = (m * n) as f64;
    if var_plus <= 0.0 {
        return Some(total);
    }
    let chain_means: Vec<f64> = halves.iter().map(|h| mean(h)).collect();
    // Biased (1/n) autocovariance of half-chain j at lag t.
    let autocov = |j: usize, t: usize| -> f64 {
        let h = halves[j];
        let cm = chain_means[j];
        let mut s = 0.0;
        for i in 0..(n - t) {
            s += (h[i] - cm) * (h[i + t] - cm);
        }
        s / n as f64
    };
    let rho = |t: usize| -> f64 {
        let acov = (0..m).map(|j| autocov(j, t)).sum::<f64>() / m as f64;
        1.0 - (w - acov) / var_plus
    };
    // Geyer: sum paired correlations P_k = ρ_{2k} + ρ_{2k+1} (with
    // ρ_0 = 1) while positive, forced monotone non-increasing.
    let max_lag = n - 1;
    let mut sum_p = 0.0;
    let mut prev = f64::INFINITY;
    let mut k = 0usize;
    loop {
        let (a, b) = (2 * k, 2 * k + 1);
        if b > max_lag {
            break;
        }
        let p = if k == 0 {
            1.0 + rho(1)
        } else {
            rho(a) + rho(b)
        };
        if p <= 0.0 {
            break;
        }
        prev = p.min(prev);
        sum_p += prev;
        k += 1;
    }
    let tau = 2.0 * sum_p - 1.0;
    let ess = if tau > 0.0 { total / tau } else { total };
    Some(ess.min(total))
}

/// The convergence verdict for one scalar trace across chains.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiagnostic {
    /// Metric name (`ll`, `topic_entropy`, …).
    pub metric: String,
    /// Split-R̂; `NaN` when undefined (too few draws), `∞` for chains
    /// stuck at distinct values.
    pub rhat: f64,
    /// Bulk effective sample size; `NaN` when undefined.
    pub ess: f64,
    /// Chains that contributed draws.
    pub chains: usize,
    /// Post-warmup draws per chain (the shortest chain's count).
    pub draws: usize,
}

impl TraceDiagnostic {
    /// Whether this trace passes an R̂ threshold (typically 1.01–1.05).
    /// Undefined or infinite R̂ never passes.
    #[must_use]
    pub fn converged(&self, rhat_threshold: f64) -> bool {
        self.rhat.is_finite() && self.rhat <= rhat_threshold
    }
}

/// Emits a [`TraceDiagnostic`] as a `convergence.{metric}` event so it
/// lands in metrics JSONL and the end-of-run summary gauges.
pub fn emit_convergence(obs: &Obs, diag: &TraceDiagnostic) {
    obs.emit(
        EventKind::Convergence,
        format!("convergence.{}", diag.metric),
        vec![
            Field::new("rhat", diag.rhat),
            Field::new("ess", diag.ess),
            Field::new("chains", diag.chains),
            Field::new("draws", diag.draws),
        ],
    );
}

/// Accumulates per-sweep scalar traces from a set of chains, keyed by
/// metric name, and diagnoses them all at once.
#[derive(Debug, Clone, Default)]
pub struct ChainTraces {
    n_chains: usize,
    traces: BTreeMap<String, Vec<Vec<f64>>>,
}

impl ChainTraces {
    /// An accumulator expecting `n_chains` chains (it grows if a higher
    /// chain index shows up).
    #[must_use]
    pub fn new(n_chains: usize) -> Self {
        Self {
            n_chains,
            traces: BTreeMap::new(),
        }
    }

    /// Number of chains seen or declared.
    #[must_use]
    pub fn n_chains(&self) -> usize {
        self.n_chains
    }

    /// True when no value has been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Appends one per-sweep value of `metric` for `chain`.
    pub fn push(&mut self, metric: &str, chain: usize, value: f64) {
        self.n_chains = self.n_chains.max(chain + 1);
        let n = self.n_chains;
        let per_chain = self
            .traces
            .entry(metric.to_string())
            .or_insert_with(|| vec![Vec::new(); n]);
        if per_chain.len() < n {
            per_chain.resize(n, Vec::new());
        }
        per_chain[chain].push(value);
    }

    /// Diagnoses every metric after discarding the leading
    /// `warmup_fraction` of each chain's trace (clamped to `[0, 0.9]`;
    /// the conventional choice is `0.5`). Chains that recorded nothing
    /// for a metric are skipped.
    #[must_use]
    pub fn diagnose(&self, warmup_fraction: f64) -> Vec<TraceDiagnostic> {
        let warmup = warmup_fraction.clamp(0.0, 0.9);
        let mut out = Vec::with_capacity(self.traces.len());
        for (metric, per_chain) in &self.traces {
            let kept: Vec<Vec<f64>> = per_chain
                .iter()
                .filter(|c| !c.is_empty())
                .map(|c| {
                    let skip = (c.len() as f64 * warmup).floor() as usize;
                    c[skip.min(c.len())..].to_vec()
                })
                .collect();
            let draws = kept.iter().map(Vec::len).min().unwrap_or(0);
            out.push(TraceDiagnostic {
                metric: metric.clone(),
                rhat: split_rhat(&kept).unwrap_or(f64::NAN),
                ess: bulk_ess(&kept).unwrap_or(f64::NAN),
                chains: kept.len(),
                draws,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::MemorySink;

    // ------------------------------------------------------------------
    // Golden values. Each reference number below is derived by hand from
    // the documented conventions (unbiased W, biased autocovariance,
    // Geyer pairing), so a silent change to either estimator fails here.
    // ------------------------------------------------------------------

    #[test]
    fn golden_rhat_converged_antithetic() {
        // Halves: [1,2] [1,2] [2,1] [2,1] — W = 1/2, all means 1.5 so
        // B = 0, var+ = (1/2)·(1/2) = 1/4, R̂ = sqrt(1/2).
        let chains = vec![vec![1.0, 2.0, 1.0, 2.0], vec![2.0, 1.0, 2.0, 1.0]];
        let rhat = split_rhat(&chains).unwrap();
        assert!((rhat - 0.5f64.sqrt()).abs() < 1e-12, "{rhat}");
    }

    #[test]
    fn golden_rhat_shifted_chains() {
        // Halves: [1,2] [3,4] [3,4] [5,6] — W = 1/2, half-means
        // {1.5, 3.5, 3.5, 5.5}, Var(means) = 8/3,
        // var+ = 1/4 + 8/3 = 35/12, R̂ = sqrt(35/6).
        let chains = vec![vec![1.0, 2.0, 3.0, 4.0], vec![3.0, 4.0, 5.0, 6.0]];
        let rhat = split_rhat(&chains).unwrap();
        assert!((rhat - (35.0f64 / 6.0).sqrt()).abs() < 1e-12, "{rhat}");
    }

    #[test]
    fn golden_stuck_chains_rhat_infinite_ess_small() {
        // Two chains frozen at different values: W = 0 with B > 0.
        let chains = vec![vec![0.0; 8], vec![1.0; 8]];
        assert_eq!(split_rhat(&chains), Some(f64::INFINITY));
        // Every combined ρ_t = 1, so with n = 4: P_0 = P_1 = 2,
        // τ = 2·(2+2) − 1 = 7, ESS = 16/7.
        let ess = bulk_ess(&chains).unwrap();
        assert!((ess - 16.0 / 7.0).abs() < 1e-12, "{ess}");
    }

    #[test]
    fn golden_ess_antithetic_hits_cap() {
        // Single oscillating chain: ρ_1 = -13/12, so P_0 ≤ 0 and the
        // Geyer sum is empty → ESS reports the cap (total draws = 8).
        let chains = vec![vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0]];
        assert_eq!(bulk_ess(&chains), Some(8.0));
    }

    #[test]
    fn identical_constant_chains_are_trivially_converged() {
        let chains = vec![vec![3.0; 8], vec![3.0; 8]];
        assert_eq!(split_rhat(&chains), Some(1.0));
        assert_eq!(bulk_ess(&chains), Some(16.0));
    }

    #[test]
    fn bimodal_chains_flag_nonconvergence() {
        // Chain 0 mostly in mode A with one excursion, chain 1 mostly in
        // mode B: the between-chain term dominates.
        let a = vec![0.1, -0.2, 0.0, 0.2, 10.0, 0.1, -0.1, 0.0];
        let b = vec![10.1, 9.8, 10.0, 10.2, 9.9, 10.1, 0.0, 10.0];
        let rhat = split_rhat(&[a.clone(), b.clone()]).unwrap();
        assert!(rhat > 1.5, "bimodal chains should be unconverged: {rhat}");
        let diag = TraceDiagnostic {
            metric: "ll".into(),
            rhat,
            ess: bulk_ess(&[a, b]).unwrap(),
            chains: 2,
            draws: 8,
        };
        assert!(!diag.converged(1.05));
    }

    #[test]
    fn well_mixed_chains_pass_threshold() {
        // Deterministic pseudo-noise around the same mean for both
        // chains (a fixed LCG so the test is bit-stable).
        let mut state = 42u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let chains: Vec<Vec<f64>> = (0..4).map(|_| (0..64).map(|_| noise()).collect()).collect();
        let rhat = split_rhat(&chains).unwrap();
        assert!(rhat < 1.2, "white-noise chains should converge: {rhat}");
        let ess = bulk_ess(&chains).unwrap();
        assert!(ess > 0.25 * 256.0, "white noise should mix well: {ess}");
        assert!(ess <= 256.0);
    }

    #[test]
    fn too_short_traces_are_undefined() {
        assert_eq!(split_rhat(&[vec![1.0, 2.0, 3.0]]), None);
        assert_eq!(bulk_ess(&[]), None);
        assert_eq!(bulk_ess(&[vec![1.0]]), None);
    }

    #[test]
    fn chain_traces_accumulate_and_diagnose() {
        let mut traces = ChainTraces::new(2);
        assert!(traces.is_empty());
        for sweep in 0..8 {
            let v = f64::from(sweep % 3);
            traces.push("ll", 0, v);
            traces.push("ll", 1, v + 0.1);
            traces.push("entropy", 0, 1.0);
            traces.push("entropy", 1, 2.0);
        }
        assert_eq!(traces.n_chains(), 2);
        let diags = traces.diagnose(0.0);
        assert_eq!(diags.len(), 2);
        // BTreeMap ordering: entropy before ll.
        assert_eq!(diags[0].metric, "entropy");
        assert_eq!(diags[0].rhat, f64::INFINITY);
        assert!(!diags[0].converged(1.05));
        assert_eq!(diags[1].metric, "ll");
        assert!(diags[1].rhat.is_finite());
        assert_eq!(diags[1].chains, 2);
        assert_eq!(diags[1].draws, 8);
    }

    #[test]
    fn warmup_discards_leading_draws() {
        let mut traces = ChainTraces::new(1);
        // First half wildly off, second half constant-ish: with 50%
        // warmup only the settled tail is diagnosed.
        for sweep in 0..16 {
            let v = if sweep < 8 {
                -1000.0 + f64::from(sweep)
            } else {
                5.0
            };
            traces.push("ll", 0, v);
        }
        let diag = &traces.diagnose(0.5)[0];
        assert_eq!(diag.draws, 8);
        assert_eq!(diag.rhat, 1.0, "constant tail is trivially converged");
    }

    #[test]
    fn convergence_events_reach_sinks_and_summary() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        let diag = TraceDiagnostic {
            metric: "ll".into(),
            rhat: 1.02,
            ess: 81.5,
            chains: 3,
            draws: 40,
        };
        emit_convergence(&obs, &diag);
        let events = sink.events_of(EventKind::Convergence);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "convergence.ll");
        assert_eq!(events[0].field_f64("rhat"), Some(1.02));
        assert_eq!(events[0].field_f64("ess"), Some(81.5));
        assert_eq!(events[0].field_f64("chains"), Some(3.0));
        let summary = obs.summary();
        assert_eq!(summary.gauges["convergence.ll.rhat"], 1.02);
        assert_eq!(summary.gauges["convergence.ll.ess"], 81.5);
    }
}

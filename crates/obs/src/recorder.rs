//! The [`Recorder`] trait, the user-facing [`Obs`] handle, and the
//! [`Span`] guard.
//!
//! `Obs` is a cheap clonable handle (an `Option<Arc<…>>`). A *disabled*
//! handle is `None` inside: every emit method is a branch on a null
//! pointer and returns immediately, so instrumented hot paths cost
//! nothing when nobody is listening. An *enabled* handle stamps events
//! with a monotonic timestamp, folds them into a [`Summary`], and fans
//! them out to every attached sink.

use crate::event::{Event, EventKind, Field, Value};
use crate::summary::Summary;
use std::borrow::Cow;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A destination for events. Implementations must be cheap and must not
/// panic: they sit on sampling hot paths.
pub trait Recorder: Send + Sync {
    /// Handles one event. The event is borrowed so multi-sink fan-out
    /// needs no cloning; sinks that buffer (e.g. the in-memory sink)
    /// clone what they keep.
    fn record(&self, event: &Event);

    /// Flushes buffered output (files, stderr). Default: no-op.
    fn flush(&self) {}
}

struct Inner {
    start: Instant,
    sinks: Vec<Box<dyn Recorder>>,
    summary: Mutex<Summary>,
}

/// Handle to an observability pipeline. Clone freely; all clones share
/// the same clock, summary, and sinks.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(disabled)"),
            Some(inner) => write!(f, "Obs({} sinks)", inner.sinks.len()),
        }
    }
}

impl Obs {
    /// A disabled handle: every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle fanning out to `sinks` (possibly empty — the
    /// summary still aggregates).
    #[must_use]
    pub fn with_sinks(sinks: Vec<Box<dyn Recorder>>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                sinks,
                summary: Mutex::new(Summary::default()),
            })),
        }
    }

    /// Whether events are being recorded. Callers may use this to skip
    /// computing expensive event payloads.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this handle (family) was created; 0 when
    /// disabled.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.start.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Emits a fully-formed event to the summary and all sinks.
    pub fn emit(&self, kind: EventKind, name: impl Into<Cow<'static, str>>, fields: Vec<Field>) {
        let Some(inner) = &self.inner else { return };
        let event = Event {
            t_us: inner.start.elapsed().as_micros() as u64,
            kind,
            name: name.into(),
            fields,
        };
        if let Ok(mut summary) = inner.summary.lock() {
            summary.observe(&event);
        }
        for sink in &inner.sinks {
            sink.record(&event);
        }
    }

    /// Increments counter `name` by `value`.
    pub fn counter(&self, name: impl Into<Cow<'static, str>>, value: u64) {
        if self.is_enabled() {
            self.emit(EventKind::Counter, name, vec![Field::new("value", value)]);
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge(&self, name: impl Into<Cow<'static, str>>, value: f64) {
        if self.is_enabled() {
            self.emit(EventKind::Gauge, name, vec![Field::new("value", value)]);
        }
    }

    /// Records `value` into histogram `name` (default time buckets).
    pub fn observe(&self, name: impl Into<Cow<'static, str>>, value: f64) {
        if self.is_enabled() {
            self.emit(EventKind::Observe, name, vec![Field::new("value", value)]);
        }
    }

    /// Opens a timed span. The span emits `span_start` now and
    /// `span_end` (with `duration_us` and any attached fields) when
    /// finished or dropped.
    #[must_use]
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span {
        let name = name.into();
        let start = if self.is_enabled() {
            self.emit(EventKind::SpanStart, name.clone(), Vec::new());
            Some(Instant::now())
        } else {
            None
        };
        Span {
            obs: self.clone(),
            name,
            start,
            fields: Vec::new(),
            done: false,
        }
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush();
            }
        }
    }

    /// A snapshot of the aggregated summary (empty when disabled).
    #[must_use]
    pub fn summary(&self) -> Summary {
        match &self.inner {
            Some(inner) => inner.summary.lock().map(|s| s.clone()).unwrap_or_default(),
            None => Summary::default(),
        }
    }

    /// Renders the end-of-run summary table (empty string when disabled
    /// or nothing was recorded).
    #[must_use]
    pub fn summary_table(&self) -> String {
        self.summary().render_table()
    }
}

/// Guard for a timed region opened by [`Obs::span`].
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    name: Cow<'static, str>,
    start: Option<Instant>,
    fields: Vec<Field>,
    done: bool,
}

impl Span {
    /// Attaches a field to be emitted with the closing `span_end` event.
    pub fn set(&mut self, key: impl Into<Cow<'static, str>>, value: impl Into<Value>) {
        if self.start.is_some() {
            self.fields.push(Field::new(key, value));
        }
    }

    /// Builder-style [`Self::set`].
    #[must_use]
    pub fn with(mut self, key: impl Into<Cow<'static, str>>, value: impl Into<Value>) -> Self {
        self.set(key, value);
        self
    }

    /// Closes the span now (otherwise it closes on drop).
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let Some(start) = self.start else { return };
        let mut fields = Vec::with_capacity(self.fields.len() + 1);
        fields.push(Field::new(
            "duration_us",
            start.elapsed().as_micros() as u64,
        ));
        fields.append(&mut self.fields);
        self.obs.emit(EventKind::SpanEnd, self.name.clone(), fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::MemorySink;

    fn obs_with_memory() -> (Obs, MemorySink) {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        (obs, sink)
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.counter("c", 1);
        obs.gauge("g", 1.0);
        obs.observe("h", 1.0);
        let mut span = obs.span("s");
        span.set("k", 1u64);
        span.finish();
        assert!(obs.summary().is_empty());
        assert_eq!(obs.summary_table(), "");
        assert_eq!(obs.now_us(), 0);
    }

    #[test]
    fn span_emits_start_and_end_with_fields() {
        let (obs, sink) = obs_with_memory();
        {
            let mut span = obs.span("stage.demo");
            span.set("docs", 12u64);
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[1].kind, EventKind::SpanEnd);
        assert_eq!(events[1].name, "stage.demo");
        assert!(events[1].field_f64("duration_us").is_some());
        assert_eq!(events[1].field_f64("docs"), Some(12.0));
    }

    #[test]
    fn explicit_finish_does_not_double_emit() {
        let (obs, sink) = obs_with_memory();
        let span = obs.span("s").with("k", 3u64);
        span.finish();
        assert_eq!(sink.events().len(), 2);
    }

    #[test]
    fn counters_aggregate_into_summary() {
        let (obs, _sink) = obs_with_memory();
        obs.counter("docs", 3);
        obs.counter("docs", 4);
        obs.gauge("ll", -10.0);
        let summary = obs.summary();
        assert_eq!(summary.counters["docs"], 7);
        assert_eq!(summary.gauges["ll"], -10.0);
        assert!(obs.summary_table().contains("docs"));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let (obs, sink) = obs_with_memory();
        for i in 0..50u64 {
            obs.counter("tick", i);
        }
        let events = sink.events();
        assert!(events.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn clones_share_state() {
        let (obs, sink) = obs_with_memory();
        let clone = obs.clone();
        clone.counter("shared", 2);
        assert_eq!(obs.summary().counters["shared"], 2);
        assert_eq!(sink.events().len(), 1);
    }
}

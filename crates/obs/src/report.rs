//! Run reports: parse one or more metrics JSONL files (the
//! [`crate::sinks::JsonlSink`] output) back into an aggregate view — a
//! human-readable report plus the machine `rheotex.report/2` document.
//!
//! The builder is wire-driven: it only needs the stable JSONL schema
//! (kind / name / fields), so reports work across binaries and PRs and
//! on files produced by older builds (fields it does not know are
//! ignored; fields it wants but cannot find degrade to `n/a`).
//!
//! Chain identity: sweep events carry a `chain` field when emitted by
//! the multi-chain runner; sweeps without one are attributed to the
//! source file's index, so passing several single-chain JSONL files
//! compares them as chains of one ensemble.

use crate::convergence::{ChainTraces, TraceDiagnostic};
use crate::event::write_json_string;
use crate::json::{parse_json, Json};
use crate::summary::fmt_duration_us;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Total/count aggregate of one timed name (phase or pipeline stage).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// Total time, µs.
    pub total_us: u64,
    /// Observations folded in.
    pub count: u64,
}

impl PhaseStat {
    fn add(&mut self, us: u64) {
        self.total_us += us;
        self.count += 1;
    }

    /// Mean duration, µs (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Min/max/mean aggregate of a value stream (parallel chunk times).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ValueStat {
    /// Observations folded in.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Smallest value (0 when empty).
    pub min: f64,
    /// Largest value (0 when empty).
    pub max: f64,
}

impl ValueStat {
    fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Per-chain rollup of one engine's sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainReport {
    /// Chain index (explicit `chain` field, or the source file index).
    pub chain: usize,
    /// Sweeps recorded.
    pub sweeps: u64,
    /// Total sweep wall time, µs.
    pub total_sweep_us: u64,
    /// Log-likelihood of the last recorded sweep (`NaN` when absent).
    pub final_ll: f64,
}

/// Everything the report knows about one engine (`joint`, `lda`, …).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Engine label from the event names.
    pub engine: String,
    /// Kernel class, when profile events identified one.
    pub kernel: Option<String>,
    /// Total sweeps across chains.
    pub sweeps: u64,
    /// Total sweep wall time across chains, µs.
    pub total_sweep_us: u64,
    /// Per-chain rollups, ordered by chain index.
    pub chains: Vec<ChainReport>,
    /// Phase totals keyed by phase name (`z`, `y`, `params`, …).
    pub phases: BTreeMap<String, PhaseStat>,
    /// Predictive-cache lookups summed over sweeps.
    pub cache_lookups: u64,
    /// Predictive-cache hits summed over sweeps.
    pub cache_hits: u64,
    /// Document assignment flips summed over sweeps.
    pub label_flips: u64,
    /// Mean per-sweep value of each numeric profile field.
    pub profile: BTreeMap<String, f64>,
    /// Parallel-kernel chunk timing aggregate, when present.
    pub chunk_us: Option<ValueStat>,
    /// Convergence diagnostics computed from this engine's own sweep
    /// traces (`ll`, `topic_entropy`), 50% warmup.
    pub convergence: Vec<TraceDiagnostic>,
}

/// Accumulation state for one engine while parsing.
#[derive(Debug, Default)]
struct EngineAcc {
    kernel: Option<String>,
    chains: BTreeMap<usize, ChainReport>,
    phases: BTreeMap<String, PhaseStat>,
    cache_lookups: u64,
    cache_hits: u64,
    label_flips: u64,
    profile_sum: BTreeMap<String, (f64, u64)>,
    chunk_us: Option<ValueStat>,
    traces: ChainTraces,
}

/// The parsed, aggregated view of one run's metrics — the payload of
/// `rheotex report`.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Source file labels, in the order given.
    pub sources: Vec<String>,
    /// Per-engine aggregates, ordered by engine name.
    pub engines: Vec<EngineReport>,
    /// Pipeline stage totals (from `stage.*` span ends).
    pub stages: BTreeMap<String, PhaseStat>,
    /// The convergence verdict rows: explicit `convergence.*` events
    /// when the run emitted them, otherwise diagnostics recomputed from
    /// the per-chain sweep traces (metrics prefixed `{engine}.`).
    pub convergence: Vec<TraceDiagnostic>,
    /// R̂ acceptance threshold used for verdicts (default 1.05).
    pub rhat_threshold: f64,
    /// Fitting-supervisor health events by action name (`sentinel_trip`,
    /// `rollback`, `recovered`, …), counted across all sources. Empty
    /// for a run with no health monitoring or no incidents.
    pub health: BTreeMap<String, u64>,
    /// Details of the most consequential health events (sentinel trips,
    /// audit failures, aborts), capped to keep reports bounded.
    pub health_details: Vec<String>,
}

impl RunReport {
    /// Builds a report from `(label, jsonl contents)` pairs.
    ///
    /// # Errors
    /// A description naming the source and line of the first malformed
    /// JSONL line.
    pub fn from_sources(sources: &[(String, String)]) -> Result<Self, String> {
        let mut engines: BTreeMap<String, EngineAcc> = BTreeMap::new();
        let mut stages: BTreeMap<String, PhaseStat> = BTreeMap::new();
        let mut explicit: Vec<TraceDiagnostic> = Vec::new();
        let mut health: BTreeMap<String, u64> = BTreeMap::new();
        let mut health_details: Vec<String> = Vec::new();
        const MAX_HEALTH_DETAILS: usize = 32;

        for (file_idx, (label, contents)) in sources.iter().enumerate() {
            for (line_no, line) in contents.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let event =
                    parse_json(line).map_err(|e| format!("{label}:{}: {e}", line_no + 1))?;
                let Some(kind) = event.get("kind").and_then(Json::as_str) else {
                    continue;
                };
                let Some(name) = event.get("name").and_then(Json::as_str) else {
                    continue;
                };
                let field = |key: &str| -> Option<f64> {
                    event
                        .get("fields")
                        .and_then(|f| f.get(key))
                        .and_then(Json::as_f64)
                };
                match kind {
                    "sweep" => {
                        let Some(engine) = name.strip_suffix(".sweep") else {
                            continue;
                        };
                        let acc = engines.entry(engine.to_string()).or_default();
                        let chain = field("chain").map_or(file_idx, |c| c as usize);
                        let elapsed = field("elapsed_us").unwrap_or(0.0).max(0.0) as u64;
                        let entry = acc.chains.entry(chain).or_insert_with(|| ChainReport {
                            chain,
                            sweeps: 0,
                            total_sweep_us: 0,
                            final_ll: f64::NAN,
                        });
                        entry.sweeps += 1;
                        entry.total_sweep_us += elapsed;
                        if let Some(ll) = field("ll") {
                            entry.final_ll = ll;
                            acc.traces.push("ll", chain, ll);
                        }
                        if let Some(entropy) = field("topic_entropy") {
                            acc.traces.push("topic_entropy", chain, entropy);
                        }
                        acc.cache_lookups += field("cache_lookups").unwrap_or(0.0) as u64;
                        acc.cache_hits += field("cache_hits").unwrap_or(0.0) as u64;
                        acc.label_flips += field("label_flips").unwrap_or(0.0) as u64;
                    }
                    "observe" => {
                        if let Some(v) = field("value") {
                            if let Some((engine, rest)) = name.split_once(".phase.") {
                                if let Some(phase) = rest.strip_suffix("_us") {
                                    engines
                                        .entry(engine.to_string())
                                        .or_default()
                                        .phases
                                        .entry(phase.to_string())
                                        .or_default()
                                        .add(v.max(0.0) as u64);
                                }
                            } else if let Some(engine) = name.strip_suffix(".chunk_us") {
                                engines
                                    .entry(engine.to_string())
                                    .or_default()
                                    .chunk_us
                                    .get_or_insert_with(ValueStat::default)
                                    .add(v);
                            }
                        }
                    }
                    "profile" => {
                        let Some(engine) = name.strip_suffix(".profile") else {
                            continue;
                        };
                        let acc = engines.entry(engine.to_string()).or_default();
                        if let Some(fields) = event.get("fields").and_then(Json::as_object) {
                            for (key, value) in fields {
                                if key == "kernel" {
                                    if let Some(k) = value.as_str() {
                                        acc.kernel = Some(k.to_string());
                                    }
                                } else if let Some(v) = value.as_f64() {
                                    let (sum, count) =
                                        acc.profile_sum.entry(key.clone()).or_insert((0.0, 0));
                                    *sum += v;
                                    *count += 1;
                                }
                            }
                        }
                    }
                    "span_end" => {
                        if name.starts_with("stage.") {
                            let us = field("duration_us").unwrap_or(0.0).max(0.0) as u64;
                            stages.entry(name.to_string()).or_default().add(us);
                        }
                    }
                    "health" => {
                        let action = name.strip_prefix("health.").unwrap_or(name);
                        *health.entry(action.to_string()).or_default() += 1;
                        if matches!(action, "sentinel_trip" | "audit_fail" | "abort" | "degrade")
                            && health_details.len() < MAX_HEALTH_DETAILS
                        {
                            let engine = event
                                .get("fields")
                                .and_then(|f| f.get("engine"))
                                .and_then(Json::as_str)
                                .unwrap_or("?");
                            let sweep = field("sweep").unwrap_or(-1.0);
                            let detail = event
                                .get("fields")
                                .and_then(|f| f.get("detail"))
                                .and_then(Json::as_str)
                                .unwrap_or("");
                            health_details
                                .push(format!("{action} [{engine} sweep {sweep:.0}]: {detail}"));
                        }
                    }
                    "convergence" => {
                        let metric = name.strip_prefix("convergence.").unwrap_or(name);
                        explicit.push(TraceDiagnostic {
                            metric: metric.to_string(),
                            rhat: field("rhat").unwrap_or(f64::NAN),
                            ess: field("ess").unwrap_or(f64::NAN),
                            chains: field("chains").unwrap_or(0.0) as usize,
                            draws: field("draws").unwrap_or(0.0) as usize,
                        });
                    }
                    _ => {}
                }
            }
        }

        let engines = engines
            .into_iter()
            .map(|(engine, acc)| {
                let convergence = acc
                    .traces
                    .diagnose(0.5)
                    .into_iter()
                    .map(|mut d| {
                        d.metric = format!("{engine}.{}", d.metric);
                        d
                    })
                    .collect();
                EngineReport {
                    engine,
                    kernel: acc.kernel,
                    sweeps: acc.chains.values().map(|c| c.sweeps).sum(),
                    total_sweep_us: acc.chains.values().map(|c| c.total_sweep_us).sum(),
                    chains: acc.chains.into_values().collect(),
                    phases: acc.phases,
                    cache_lookups: acc.cache_lookups,
                    cache_hits: acc.cache_hits,
                    label_flips: acc.label_flips,
                    profile: acc
                        .profile_sum
                        .into_iter()
                        .map(|(k, (sum, count))| (k, sum / count.max(1) as f64))
                        .collect(),
                    chunk_us: acc.chunk_us,
                    convergence,
                }
            })
            .collect::<Vec<_>>();

        let convergence = if explicit.is_empty() {
            engines
                .iter()
                .flat_map(|e| e.convergence.iter().cloned())
                .collect()
        } else {
            explicit
        };

        Ok(Self {
            sources: sources.iter().map(|(label, _)| label.clone()).collect(),
            engines,
            stages,
            convergence,
            rhat_threshold: 1.05,
            health,
            health_details,
        })
    }

    /// Health rollup: `Some(true)` when the run saw incidents and every
    /// one was recovered (no `abort`), `Some(false)` when an `abort` was
    /// recorded, `None` when no health events exist at all.
    #[must_use]
    pub fn health_ok(&self) -> Option<bool> {
        if self.health.is_empty() {
            return None;
        }
        Some(!self.health.contains_key("abort"))
    }

    /// Overall verdict: `Some(true)` when every diagnosed trace passes
    /// the R̂ threshold, `Some(false)` when any fails, `None` when no
    /// trace could be diagnosed at all.
    #[must_use]
    pub fn converged(&self) -> Option<bool> {
        let defined: Vec<&TraceDiagnostic> = self
            .convergence
            .iter()
            .filter(|d| !d.rhat.is_nan())
            .collect();
        if defined.is_empty() {
            return None;
        }
        Some(defined.iter().all(|d| d.converged(self.rhat_threshold)))
    }

    /// Renders the human-readable report.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "run report ({} source(s))", self.sources.len());
        for s in &self.sources {
            let _ = writeln!(out, "  source: {s}");
        }

        let verdict = match self.converged() {
            Some(true) => "CONVERGED",
            Some(false) => "NOT CONVERGED",
            None => "n/a (no diagnosable traces)",
        };
        let _ = writeln!(
            out,
            "\nconvergence (R-hat threshold {:.3}): {verdict}",
            self.rhat_threshold
        );
        if !self.convergence.is_empty() {
            let width = self
                .convergence
                .iter()
                .map(|d| d.metric.len())
                .max()
                .unwrap_or(6)
                .max(6);
            let _ = writeln!(
                out,
                "  {:<width$}  {:>8}  {:>10}  {:>6}  {:>6}  verdict",
                "metric", "R-hat", "ESS", "chains", "draws"
            );
            for d in &self.convergence {
                let verdict = if d.rhat.is_nan() {
                    "n/a"
                } else if d.converged(self.rhat_threshold) {
                    "ok"
                } else {
                    "FAIL"
                };
                let _ = writeln!(
                    out,
                    "  {:<width$}  {:>8}  {:>10}  {:>6}  {:>6}  {verdict}",
                    d.metric,
                    fmt_stat(d.rhat, 3),
                    fmt_stat(d.ess, 1),
                    d.chains,
                    d.draws,
                );
            }
        }

        for e in &self.engines {
            let kernel = e.kernel.as_deref().unwrap_or("serial");
            let _ = writeln!(
                out,
                "\nengine {} (kernel {kernel}): {} chain(s), {} sweeps, {} sweep time",
                e.engine,
                e.chains.len(),
                e.sweeps,
                fmt_duration_us(e.total_sweep_us as f64),
            );
            for c in &e.chains {
                let _ = writeln!(
                    out,
                    "  chain {}: {} sweeps, final ll {}, {}",
                    c.chain,
                    c.sweeps,
                    fmt_stat(c.final_ll, 2),
                    fmt_duration_us(c.total_sweep_us as f64),
                );
            }
            if !e.phases.is_empty() {
                let _ = writeln!(out, "  phase breakdown (self time within sweeps)");
                let width = e.phases.keys().map(String::len).max().unwrap_or(5).max(7);
                let _ = writeln!(
                    out,
                    "    {:<width$}  {:>10}  {:>6}  {:>10}  {:>7}",
                    "phase", "total", "count", "mean", "% sweep"
                );
                let mut attributed = 0u64;
                for (phase, stat) in &e.phases {
                    attributed += stat.total_us;
                    let _ = writeln!(
                        out,
                        "    {:<width$}  {:>10}  {:>6}  {:>10}  {:>6.1}%",
                        phase,
                        fmt_duration_us(stat.total_us as f64),
                        stat.count,
                        fmt_duration_us(stat.mean_us()),
                        pct(stat.total_us, e.total_sweep_us),
                    );
                }
                if e.total_sweep_us > attributed {
                    let other = e.total_sweep_us - attributed;
                    let _ = writeln!(
                        out,
                        "    {:<width$}  {:>10}  {:>6}  {:>10}  {:>6.1}%",
                        "(other)",
                        fmt_duration_us(other as f64),
                        "",
                        "",
                        pct(other, e.total_sweep_us),
                    );
                }
            }
            if e.cache_lookups > 0 {
                let _ = writeln!(
                    out,
                    "  cache: {} lookups, {} hits ({:.1}%)",
                    e.cache_lookups,
                    e.cache_hits,
                    pct(e.cache_hits, e.cache_lookups),
                );
            }
            if e.label_flips > 0 {
                let _ = writeln!(out, "  label flips: {}", e.label_flips);
            }
            if !e.profile.is_empty() {
                let _ = write!(out, "  profile ({kernel}), mean per sweep:");
                for (key, v) in &e.profile {
                    let _ = write!(out, " {key}={v:.2}");
                }
                out.push('\n');
            }
            if let Some(chunks) = &e.chunk_us {
                let _ = writeln!(
                    out,
                    "  chunk timing: {} chunks, min {} mean {} max {}",
                    chunks.count,
                    fmt_duration_us(chunks.min),
                    fmt_duration_us(chunks.mean()),
                    fmt_duration_us(chunks.max),
                );
            }
        }

        if !self.health.is_empty() {
            let verdict = match self.health_ok() {
                Some(true) => "RECOVERED",
                Some(false) => "ABORTED",
                None => "n/a",
            };
            let total: u64 = self.health.values().sum();
            let _ = writeln!(out, "\nhealth: {total} event(s), outcome {verdict}");
            for (action, count) in &self.health {
                let _ = writeln!(out, "  {action}: {count}");
            }
            for detail in &self.health_details {
                let _ = writeln!(out, "  - {detail}");
            }
        }

        if !self.stages.is_empty() {
            let _ = writeln!(out, "\npipeline stages");
            let width = self.stages.keys().map(String::len).max().unwrap_or(5);
            for (stage, stat) in &self.stages {
                let _ = writeln!(
                    out,
                    "  {:<width$}  total {:>10}  count {:>4}",
                    stage,
                    fmt_duration_us(stat.total_us as f64),
                    stat.count,
                );
            }
        }
        out
    }

    /// Serializes the machine report (schema `rheotex.report/2`).
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"rheotex.report/2\"");
        let _ = write!(out, ",\"rhat_threshold\":{}", self.rhat_threshold);
        out.push_str(",\"sources\":[");
        for (i, s) in self.sources.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, s);
        }
        out.push_str("],\"converged\":");
        match self.converged() {
            Some(true) => out.push_str("true"),
            Some(false) => out.push_str("false"),
            None => out.push_str("null"),
        }
        out.push_str(",\"convergence\":[");
        for (i, d) in self.convergence.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"metric\":");
            write_json_string(&mut out, &d.metric);
            out.push_str(",\"rhat\":");
            push_num(&mut out, d.rhat);
            out.push_str(",\"ess\":");
            push_num(&mut out, d.ess);
            let _ = write!(out, ",\"chains\":{},\"draws\":{}", d.chains, d.draws);
            let _ = write!(
                out,
                ",\"converged\":{}}}",
                if d.rhat.is_nan() {
                    "null".to_string()
                } else {
                    d.converged(self.rhat_threshold).to_string()
                }
            );
        }
        out.push_str("],\"engines\":[");
        for (i, e) in self.engines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"engine\":");
            write_json_string(&mut out, &e.engine);
            out.push_str(",\"kernel\":");
            match &e.kernel {
                Some(k) => write_json_string(&mut out, k),
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"sweeps\":{},\"total_sweep_us\":{}",
                e.sweeps, e.total_sweep_us
            );
            out.push_str(",\"chains\":[");
            for (j, c) in e.chains.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"chain\":{},\"sweeps\":{},\"total_sweep_us\":{},\"final_ll\":",
                    c.chain, c.sweeps, c.total_sweep_us
                );
                push_num(&mut out, c.final_ll);
                out.push('}');
            }
            out.push_str("],\"phases\":[");
            for (j, (phase, stat)) in e.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"phase\":");
                write_json_string(&mut out, phase);
                let _ = write!(
                    out,
                    ",\"total_us\":{},\"count\":{},\"mean_us\":",
                    stat.total_us, stat.count
                );
                push_num(&mut out, stat.mean_us());
                out.push_str(",\"frac\":");
                push_num(&mut out, pct(stat.total_us, e.total_sweep_us) / 100.0);
                out.push('}');
            }
            let _ = write!(
                out,
                "],\"cache\":{{\"lookups\":{},\"hits\":{},\"hit_rate\":",
                e.cache_lookups, e.cache_hits
            );
            push_num(
                &mut out,
                if e.cache_lookups == 0 {
                    0.0
                } else {
                    e.cache_hits as f64 / e.cache_lookups as f64
                },
            );
            let _ = write!(out, "}},\"label_flips\":{}", e.label_flips);
            out.push_str(",\"profile\":");
            if e.profile.is_empty() {
                out.push_str("null");
            } else {
                out.push('{');
                for (j, (key, v)) in e.profile.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write_json_string(&mut out, key);
                    out.push(':');
                    push_num(&mut out, *v);
                }
                out.push('}');
            }
            out.push_str(",\"chunk_us\":");
            match &e.chunk_us {
                None => out.push_str("null"),
                Some(c) => {
                    let _ = write!(out, "{{\"count\":{},\"min\":", c.count);
                    push_num(&mut out, c.min);
                    out.push_str(",\"max\":");
                    push_num(&mut out, c.max);
                    out.push_str(",\"mean\":");
                    push_num(&mut out, c.mean());
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push_str("],\"stages\":[");
        for (i, (stage, stat)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"stage\":");
            write_json_string(&mut out, stage);
            let _ = write!(
                out,
                ",\"total_us\":{},\"count\":{}}}",
                stat.total_us, stat.count
            );
        }
        out.push_str("],\"health\":{\"ok\":");
        match self.health_ok() {
            Some(true) => out.push_str("true"),
            Some(false) => out.push_str("false"),
            None => out.push_str("null"),
        }
        out.push_str(",\"actions\":{");
        for (i, (action, count)) in self.health.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, action);
            let _ = write!(out, ":{count}");
        }
        out.push_str("},\"details\":[");
        for (i, detail) in self.health_details.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, detail);
        }
        out.push_str("]}}");
        out
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Formats a statistic with `digits` decimals, or `n/a` / `inf` for the
/// undefined and divergent cases.
fn fmt_stat(v: f64, digits: usize) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.digits$}")
    }
}

fn push_num(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::emit_convergence;
    use crate::recorder::Obs;
    use crate::sinks::MemorySink;
    use crate::sweep::{KernelProfile, SweepStats};

    fn stats(engine: &'static str, sweep: usize, ll: f64) -> SweepStats {
        SweepStats {
            engine,
            sweep,
            total_sweeps: 8,
            elapsed_us: 1000,
            log_likelihood: ll,
            topic_entropy: 1.2,
            min_occupancy: 1,
            max_occupancy: 9,
            nw_draws: 4,
            jitter_retries: 0,
            cache_lookups: 10,
            cache_hits: 9,
            label_flips: 2,
            phase_us: vec![("z", 600), ("y", 300)],
            profile: None,
        }
    }

    /// Renders everything an `Obs` recorded as JSONL text.
    fn jsonl_of(sink: &MemorySink) -> String {
        sink.events()
            .iter()
            .map(|e| e.to_json_line())
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn two_chain_source() -> String {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        for chain in 0..2 {
            for sweep in 0..8 {
                let ll = -100.0 + sweep as f64 + chain as f64 * 0.25;
                stats("joint", sweep, ll).emit_to(&obs, Some(chain));
            }
        }
        jsonl_of(&sink)
    }

    #[test]
    fn aggregates_sweeps_phases_and_chains() {
        let report = RunReport::from_sources(&[("m.jsonl".into(), two_chain_source())]).unwrap();
        assert_eq!(report.engines.len(), 1);
        let e = &report.engines[0];
        assert_eq!(e.engine, "joint");
        assert_eq!(e.sweeps, 16);
        assert_eq!(e.chains.len(), 2);
        assert_eq!(e.chains[1].chain, 1);
        assert_eq!(e.chains[1].sweeps, 8);
        assert!((e.chains[1].final_ll - (-92.75)).abs() < 1e-12);
        assert_eq!(e.phases["z"].total_us, 16 * 600);
        assert_eq!(e.cache_lookups, 160);
        assert_eq!(e.label_flips, 32);
        // Computed convergence from the two chains' traces.
        assert!(!e.convergence.is_empty());
        assert!(e.convergence.iter().any(|d| d.metric == "joint.ll"));
        assert_eq!(e.convergence[0].chains, 2);
    }

    #[test]
    fn explicit_convergence_events_take_precedence() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        for sweep in 0..8 {
            stats("joint", sweep, -50.0).emit_to(&obs, None);
        }
        emit_convergence(
            &obs,
            &TraceDiagnostic {
                metric: "ll".into(),
                rhat: 1.01,
                ess: 42.0,
                chains: 3,
                draws: 12,
            },
        );
        let report = RunReport::from_sources(&[("m.jsonl".into(), jsonl_of(&sink))]).unwrap();
        assert_eq!(report.convergence.len(), 1);
        assert_eq!(report.convergence[0].metric, "ll");
        assert_eq!(report.converged(), Some(true));
        let rendered = report.render();
        assert!(rendered.contains("CONVERGED"), "{rendered}");
    }

    #[test]
    fn multiple_files_become_chains() {
        let one_chain = |ll0: f64| {
            let sink = MemorySink::default();
            let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
            for sweep in 0..8 {
                stats("joint", sweep, ll0 + sweep as f64).emit_to(&obs, None);
            }
            jsonl_of(&sink)
        };
        let report = RunReport::from_sources(&[
            ("a.jsonl".into(), one_chain(-100.0)),
            ("b.jsonl".into(), one_chain(-90.0)),
        ])
        .unwrap();
        assert_eq!(report.engines[0].chains.len(), 2);
        assert_eq!(report.engines[0].chains[0].chain, 0);
        assert_eq!(report.engines[0].chains[1].chain, 1);
    }

    #[test]
    fn profile_and_chunks_land_in_report() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        let mut s = stats("lda", 0, -10.0);
        s.profile = Some(KernelProfile::Sparse {
            s_draws: 2,
            r_draws: 3,
            q_draws: 5,
            s_mass: 0.5,
            r_mass: 0.5,
            q_mass: 1.0,
            word_nnz: 20,
            doc_nnz: 8,
        });
        s.emit_to(&obs, None);
        let mut p = stats("joint", 0, -20.0);
        p.profile = Some(KernelProfile::Parallel {
            chunks: 2,
            chunk_us: vec![100, 300],
            alloc_bytes: 2048,
        });
        p.emit_to(&obs, None);
        let report = RunReport::from_sources(&[("m.jsonl".into(), jsonl_of(&sink))]).unwrap();
        let lda = report.engines.iter().find(|e| e.engine == "lda").unwrap();
        assert_eq!(lda.kernel.as_deref(), Some("sparse"));
        assert!((lda.profile["q_frac"] - 0.5).abs() < 1e-12);
        assert!((lda.profile["q_draws"] - 5.0).abs() < 1e-12);
        let joint = report.engines.iter().find(|e| e.engine == "joint").unwrap();
        assert_eq!(joint.kernel.as_deref(), Some("parallel"));
        let chunks = joint.chunk_us.as_ref().unwrap();
        assert_eq!(chunks.count, 2);
        assert_eq!(chunks.max, 300.0);
        assert_eq!(chunks.mean(), 200.0);
        let rendered = report.render();
        assert!(rendered.contains("chunk timing"), "{rendered}");
        assert!(rendered.contains("phase breakdown"), "{rendered}");
    }

    #[test]
    fn stage_spans_are_collected() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        obs.span("stage.fit").finish();
        obs.span("stage.corpus").finish();
        let report = RunReport::from_sources(&[("m.jsonl".into(), jsonl_of(&sink))]).unwrap();
        assert_eq!(report.stages.len(), 2);
        assert!(report.stages.contains_key("stage.fit"));
    }

    #[test]
    fn machine_report_is_valid_json_with_schema() {
        let report = RunReport::from_sources(&[("m.jsonl".into(), two_chain_source())]).unwrap();
        let json = report.to_json();
        let doc = parse_json(&json).expect("report.json parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("rheotex.report/2")
        );
        let engines = doc.get("engines").and_then(Json::as_array).unwrap();
        assert_eq!(engines.len(), 1);
        assert_eq!(
            engines[0].get("engine").and_then(Json::as_str),
            Some("joint")
        );
        let chains = engines[0].get("chains").and_then(Json::as_array).unwrap();
        assert_eq!(chains.len(), 2);
        assert!(doc.get("convergence").and_then(Json::as_array).is_some());
        assert!(doc.get("rhat_threshold").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn health_events_roll_up_into_report() {
        use crate::sweep::HealthEvent;
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        for (action, detail) in [
            ("audit_fail", "doc 3 topic-count sum mismatch"),
            ("rollback", "restored sweep 8 snapshot"),
            ("recovered", "sweep 9 clean after retry 1"),
        ] {
            HealthEvent {
                engine: "lda",
                sweep: 9,
                action,
                detail: detail.into(),
                retries: 1,
            }
            .emit_to(&obs, None);
        }
        let report = RunReport::from_sources(&[("m.jsonl".into(), jsonl_of(&sink))]).unwrap();
        assert_eq!(report.health["audit_fail"], 1);
        assert_eq!(report.health["rollback"], 1);
        assert_eq!(report.health_ok(), Some(true));
        assert_eq!(report.health_details.len(), 1);
        assert!(report.health_details[0].contains("audit_fail [lda sweep 9]"));
        let rendered = report.render();
        assert!(
            rendered.contains("health: 3 event(s), outcome RECOVERED"),
            "{rendered}"
        );
        let doc = parse_json(&report.to_json()).unwrap();
        let health = doc.get("health").unwrap();
        assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            health
                .get("actions")
                .and_then(|a| a.get("rollback"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn abort_health_event_fails_the_rollup() {
        use crate::sweep::HealthEvent;
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        HealthEvent {
            engine: "joint",
            sweep: 4,
            action: "abort",
            detail: "retries exhausted".into(),
            retries: 3,
        }
        .emit_to(&obs, None);
        let report = RunReport::from_sources(&[("m.jsonl".into(), jsonl_of(&sink))]).unwrap();
        assert_eq!(report.health_ok(), Some(false));
        assert!(report.render().contains("ABORTED"));
        // No health events at all: the rollup is undefined, and the
        // machine report still carries an (empty) health object.
        let empty = RunReport::from_sources(&[("e.jsonl".into(), String::new())]).unwrap();
        assert_eq!(empty.health_ok(), None);
        let doc = parse_json(&empty.to_json()).unwrap();
        assert_eq!(
            doc.get("health").and_then(|h| h.get("ok")),
            Some(&Json::Null)
        );
    }

    #[test]
    fn malformed_lines_are_reported_with_location() {
        let err = RunReport::from_sources(&[("bad.jsonl".into(), "{oops".into())]).unwrap_err();
        assert!(err.starts_with("bad.jsonl:1:"), "{err}");
    }

    #[test]
    fn empty_sources_produce_empty_report() {
        let report = RunReport::from_sources(&[("e.jsonl".into(), String::new())]).unwrap();
        assert!(report.engines.is_empty());
        assert_eq!(report.converged(), None);
        assert!(report.render().contains("n/a"));
        parse_json(&report.to_json()).expect("still valid JSON");
    }
}

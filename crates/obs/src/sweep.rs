//! The sampler-facing hook: Gibbs engines report one [`SweepStats`] per
//! sweep to a [`SweepObserver`].
//!
//! The trait is deliberately tiny — one callback plus an `enabled`
//! predicate — so samplers can skip computing the statistics entirely
//! when nobody is listening (the common case in tests and benchmarks).
//!
//! Two helpers support the kernel-profiling work: [`PhaseTimer`] times
//! the named phases of a sweep (token sweep, assignment sweep, parameter
//! resampling, likelihood scoring) at zero cost when disabled, and
//! [`KernelProfile`] carries the kernel-class-specific counters (sparse
//! bucket masses, parallel chunk timings). Both ride on [`SweepStats`]
//! and surface on the wire through [`SweepStats::emit_to`].

use crate::event::{EventKind, Field};
use crate::recorder::Obs;
use std::time::Instant;

/// Kernel-class-specific per-sweep profile, attached to [`SweepStats`]
/// when the engine ran an instrumented kernel with an enabled observer.
/// The serial kernel needs no variant: its whole story is told by the
/// phase timings.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelProfile {
    /// The `O(nnz)` bucket kernel: where the per-token uniform landed
    /// and how long the nonzero-topic lists were.
    Sparse {
        /// Tokens whose draw landed in the smoothing (`s`) bucket.
        s_draws: u64,
        /// Tokens whose draw landed in the document (`r`) bucket.
        r_draws: u64,
        /// Tokens whose draw landed in the word (`q`) bucket.
        q_draws: u64,
        /// Summed smoothing-bucket mass over all token draws.
        s_mass: f64,
        /// Summed document-bucket mass over all token draws.
        r_mass: f64,
        /// Summed word-bucket mass over all token draws.
        q_mass: f64,
        /// Summed word nonzero-topic-list length over all token draws.
        word_nnz: u64,
        /// Summed document nonzero-topic-list length over all documents.
        doc_nnz: u64,
    },
    /// The deterministic chunked parallel kernel: per-chunk wall times
    /// and the bytes cloned for chunk-local count state.
    Parallel {
        /// Document chunks processed this sweep.
        chunks: u64,
        /// Wall-clock time of each chunk, µs, in chunk order.
        chunk_us: Vec<u64>,
        /// Estimated bytes allocated this sweep for chunk-local clones
        /// of the shared count state.
        alloc_bytes: u64,
    },
    /// The chunked sparse kernel: the sparse bucket counters summed over
    /// every chunk, plus the per-chunk sample / bucket-rebuild / fold
    /// timings.
    SparseParallel {
        /// Tokens whose draw landed in the smoothing (`s`) bucket.
        s_draws: u64,
        /// Tokens whose draw landed in the document (`r`) bucket.
        r_draws: u64,
        /// Tokens whose draw landed in the word (`q`) bucket.
        q_draws: u64,
        /// Summed smoothing-bucket mass over all token draws.
        s_mass: f64,
        /// Summed document-bucket mass over all token draws.
        r_mass: f64,
        /// Summed word-bucket mass over all token draws.
        q_mass: f64,
        /// Summed word nonzero-topic-list length over all token draws.
        word_nnz: u64,
        /// Summed document nonzero-topic-list length over all documents.
        doc_nnz: u64,
        /// Document chunks processed this sweep.
        chunks: u64,
        /// Wall-clock sampling time of each chunk, µs, in chunk order.
        chunk_us: Vec<u64>,
        /// Per-chunk bucket-state rebuild time (chunk-local count clone
        /// plus `begin_sweep`), µs, in chunk order.
        rebuild_us: Vec<u64>,
        /// Per-chunk fold time (doc rows and nonzero lists folded back
        /// into the shared store), µs, in chunk order.
        fold_us: Vec<u64>,
        /// Estimated bytes allocated this sweep for chunk-local clones
        /// of the shared count state.
        alloc_bytes: u64,
    },
    /// The chunked alias-table Metropolis-Hastings kernel: the MH
    /// proposal/acceptance counters summed over every chunk, the
    /// per-chunk sample timings, and the per-sweep alias-table rebuild
    /// time.
    Alias {
        /// Document proposals drawn (one per token).
        doc_proposals: u64,
        /// Word (alias-table) proposals drawn (one per token).
        word_proposals: u64,
        /// Proposals accepted (a self-proposal counts as accepted).
        accepted: u64,
        /// Proposals rejected — the token kept its topic for that half
        /// of the MH cycle.
        rejected: u64,
        /// Document chunks processed this sweep.
        chunks: u64,
        /// Wall-clock sampling time of each chunk, µs, in chunk order.
        chunk_us: Vec<u64>,
        /// Per-sweep alias-table rebuild time (one build over the frozen
        /// start-of-sweep counts, shared by all chunks), µs.
        rebuild_us: u64,
        /// Estimated bytes allocated this sweep: the shared alias tables
        /// plus chunk-local clones of the term counts.
        alloc_bytes: u64,
    },
}

/// Statistics of one Gibbs sweep. Field semantics by engine:
///
/// * `joint` / `collapsed` — occupancy counts documents per topic
///   (`y_d`); `nw_draws` counts Normal-Wishart parameter resamples
///   (2 per topic: gel and emulsion; 0 for `collapsed`).
/// * `lda` — occupancy counts tokens per topic; `nw_draws` is 0.
/// * `gmm` — occupancy counts documents per component; `nw_draws` is 0
///   (components are collapsed).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Engine label: `"joint"`, `"lda"`, `"gmm"`, or `"collapsed"`.
    pub engine: &'static str,
    /// Sweep index, 0-based.
    pub sweep: usize,
    /// Total sweeps configured.
    pub total_sweeps: usize,
    /// Wall-clock time of this sweep, µs.
    pub elapsed_us: u64,
    /// Conditional log-likelihood after this sweep.
    pub log_likelihood: f64,
    /// Shannon entropy (nats) of the topic-occupancy distribution; high
    /// means balanced topics, near 0 means collapse onto one topic.
    pub topic_entropy: f64,
    /// Smallest topic occupancy.
    pub min_occupancy: usize,
    /// Largest topic occupancy.
    pub max_occupancy: usize,
    /// Normal-Wishart posterior draws performed this sweep.
    pub nw_draws: usize,
    /// Ridge-jitter retries spent recovering non-positive-definite
    /// matrices this sweep (0 on a numerically healthy sweep; always 0
    /// for `lda`, which has no Gaussian components).
    pub jitter_retries: usize,
    /// Posterior-predictive cache lookups performed this sweep. Only the
    /// collapsed Gaussian engines consult the cache; engines without one
    /// (`joint`, `lda`) report 0.
    pub cache_lookups: usize,
    /// Cache lookups served without refactoring a scale matrix. Always
    /// `<= cache_lookups`; 0 when the cache is disabled or absent.
    pub cache_hits: usize,
    /// Documents whose topic / component assignment (`y_d` for the
    /// joint engines, the component for `gmm`) changed this sweep — the
    /// per-sweep acceptance signal convergence diagnostics trace.
    /// Always 0 for `lda`, which has no document-level assignment.
    pub label_flips: usize,
    /// Wall time per named sweep phase, in execution order; empty when
    /// the engine ran without an enabled observer.
    pub phase_us: Vec<(&'static str, u64)>,
    /// Kernel-class-specific profile; `None` for the serial kernel or
    /// when the observer was disabled.
    pub profile: Option<KernelProfile>,
}

impl SweepStats {
    /// Fraction of this sweep's predictive lookups served from the
    /// cache; 0.0 when the engine performed no lookups at all.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Shannon entropy (nats) of an occupancy histogram, plus its
    /// min/max — the shape summary emitted with every sweep.
    #[must_use]
    pub fn occupancy_summary(counts: &[usize]) -> (f64, usize, usize) {
        let total: usize = counts.iter().sum();
        let mut entropy = 0.0;
        if total > 0 {
            for &c in counts {
                if c > 0 {
                    let p = c as f64 / total as f64;
                    entropy -= p * p.ln();
                }
            }
        }
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        (entropy, min, max)
    }

    /// Emits this sweep onto an [`Obs`] pipeline: the `{engine}.sweep`
    /// event (tagged with `chain` when given, as the multi-chain runner
    /// does when replaying buffered chains), the `{engine}.sweep_us`
    /// histogram observation, one `{engine}.phase.{name}_us` observation
    /// per recorded phase, and — when a kernel profile is attached — one
    /// `{engine}.profile` event plus the parallel kernel's
    /// `{engine}.chunk_us` observations and per-sweep alloc gauge.
    pub fn emit_to(&self, obs: &Obs, chain: Option<usize>) {
        if !obs.is_enabled() {
            return;
        }
        let mut fields = vec![
            Field::new("sweep", self.sweep),
            Field::new("total_sweeps", self.total_sweeps),
            Field::new("elapsed_us", self.elapsed_us),
            Field::new("ll", self.log_likelihood),
            Field::new("topic_entropy", self.topic_entropy),
            Field::new("min_occupancy", self.min_occupancy),
            Field::new("max_occupancy", self.max_occupancy),
            Field::new("nw_draws", self.nw_draws),
            Field::new("jitter_retries", self.jitter_retries),
            Field::new("cache_lookups", self.cache_lookups),
            Field::new("cache_hits", self.cache_hits),
            Field::new("label_flips", self.label_flips),
        ];
        if let Some(c) = chain {
            fields.push(Field::new("chain", c));
        }
        obs.emit(EventKind::Sweep, format!("{}.sweep", self.engine), fields);
        obs.observe(format!("{}.sweep_us", self.engine), self.elapsed_us as f64);
        for &(phase, us) in &self.phase_us {
            obs.observe(format!("{}.phase.{phase}_us", self.engine), us as f64);
        }
        match &self.profile {
            None => {}
            Some(KernelProfile::Sparse {
                s_draws,
                r_draws,
                q_draws,
                s_mass,
                r_mass,
                q_mass,
                word_nnz,
                doc_nnz,
            }) => {
                let tokens = s_draws + r_draws + q_draws;
                let mass = s_mass + r_mass + q_mass;
                let frac = |m: f64| if mass > 0.0 { m / mass } else { 0.0 };
                let per_token = |n: u64| {
                    if tokens > 0 {
                        n as f64 / tokens as f64
                    } else {
                        0.0
                    }
                };
                obs.emit(
                    EventKind::Profile,
                    format!("{}.profile", self.engine),
                    vec![
                        Field::new("kernel", "sparse"),
                        Field::new("tokens", tokens),
                        Field::new("s_draws", *s_draws),
                        Field::new("r_draws", *r_draws),
                        Field::new("q_draws", *q_draws),
                        Field::new("s_frac", frac(*s_mass)),
                        Field::new("r_frac", frac(*r_mass)),
                        Field::new("q_frac", frac(*q_mass)),
                        Field::new("avg_word_nnz", per_token(*word_nnz)),
                        Field::new("doc_nnz", *doc_nnz),
                    ],
                );
            }
            Some(KernelProfile::Parallel {
                chunks,
                chunk_us,
                alloc_bytes,
            }) => {
                for &us in chunk_us {
                    obs.observe(format!("{}.chunk_us", self.engine), us as f64);
                }
                obs.gauge(
                    format!("{}.sweep_alloc_bytes", self.engine),
                    *alloc_bytes as f64,
                );
                let (min, max, sum) = chunk_us.iter().fold((u64::MAX, 0u64, 0u64), |acc, &us| {
                    (acc.0.min(us), acc.1.max(us), acc.2 + us)
                });
                let mean = if chunk_us.is_empty() {
                    0.0
                } else {
                    sum as f64 / chunk_us.len() as f64
                };
                obs.emit(
                    EventKind::Profile,
                    format!("{}.profile", self.engine),
                    vec![
                        Field::new("kernel", "parallel"),
                        Field::new("chunks", *chunks),
                        Field::new("alloc_bytes", *alloc_bytes),
                        Field::new("chunk_us_min", if chunk_us.is_empty() { 0 } else { min }),
                        Field::new("chunk_us_max", max),
                        Field::new("chunk_us_mean", mean),
                    ],
                );
            }
            Some(KernelProfile::SparseParallel {
                s_draws,
                r_draws,
                q_draws,
                s_mass,
                r_mass,
                q_mass,
                word_nnz,
                doc_nnz,
                chunks,
                chunk_us,
                rebuild_us,
                fold_us,
                alloc_bytes,
            }) => {
                for &us in chunk_us {
                    obs.observe(format!("{}.chunk_us", self.engine), us as f64);
                }
                for &us in rebuild_us {
                    obs.observe(format!("{}.chunk_rebuild_us", self.engine), us as f64);
                }
                for &us in fold_us {
                    obs.observe(format!("{}.chunk_fold_us", self.engine), us as f64);
                }
                obs.gauge(
                    format!("{}.sweep_alloc_bytes", self.engine),
                    *alloc_bytes as f64,
                );
                let tokens = s_draws + r_draws + q_draws;
                let mass = s_mass + r_mass + q_mass;
                let frac = |m: f64| if mass > 0.0 { m / mass } else { 0.0 };
                let per_token = |n: u64| {
                    if tokens > 0 {
                        n as f64 / tokens as f64
                    } else {
                        0.0
                    }
                };
                let sum_us = |v: &[u64]| v.iter().sum::<u64>();
                obs.emit(
                    EventKind::Profile,
                    format!("{}.profile", self.engine),
                    vec![
                        Field::new("kernel", "sparse_parallel"),
                        Field::new("tokens", tokens),
                        Field::new("s_draws", *s_draws),
                        Field::new("r_draws", *r_draws),
                        Field::new("q_draws", *q_draws),
                        Field::new("s_frac", frac(*s_mass)),
                        Field::new("r_frac", frac(*r_mass)),
                        Field::new("q_frac", frac(*q_mass)),
                        Field::new("avg_word_nnz", per_token(*word_nnz)),
                        Field::new("doc_nnz", *doc_nnz),
                        Field::new("chunks", *chunks),
                        Field::new("alloc_bytes", *alloc_bytes),
                        Field::new("rebuild_us_total", sum_us(rebuild_us)),
                        Field::new("fold_us_total", sum_us(fold_us)),
                    ],
                );
            }
            Some(KernelProfile::Alias {
                doc_proposals,
                word_proposals,
                accepted,
                rejected,
                chunks,
                chunk_us,
                rebuild_us,
                alloc_bytes,
            }) => {
                for &us in chunk_us {
                    obs.observe(format!("{}.chunk_us", self.engine), us as f64);
                }
                obs.observe(
                    format!("{}.alias_rebuild_us", self.engine),
                    *rebuild_us as f64,
                );
                obs.gauge(
                    format!("{}.sweep_alloc_bytes", self.engine),
                    *alloc_bytes as f64,
                );
                let proposals = doc_proposals + word_proposals;
                let acceptance_rate = if proposals > 0 {
                    *accepted as f64 / proposals as f64
                } else {
                    0.0
                };
                obs.emit(
                    EventKind::Profile,
                    format!("{}.profile", self.engine),
                    vec![
                        Field::new("kernel", "alias"),
                        Field::new("doc_proposals", *doc_proposals),
                        Field::new("word_proposals", *word_proposals),
                        Field::new("accepted", *accepted),
                        Field::new("rejected", *rejected),
                        Field::new("acceptance_rate", acceptance_rate),
                        Field::new("chunks", *chunks),
                        Field::new("rebuild_us", *rebuild_us),
                        Field::new("alloc_bytes", *alloc_bytes),
                    ],
                );
            }
        }
    }
}

/// One fitting-supervisor health event: a sentinel trip, an invariant
/// audit verdict, a recovery step (rollback / retry / kernel
/// degradation), or a terminal abort. Emitted by the health monitor in
/// `rheotex-core` through [`SweepObserver::on_health`] and serialized as
/// `health.{action}` events of kind `health` (see README § Observability
/// for the wire schema).
///
/// Unlike sweep statistics, health events are *always* delivered, even
/// when [`SweepObserver::enabled`] is false: a recovery action changes
/// the run's semantics and must not be silently droppable by a disabled
/// metrics pipeline (the [`NullObserver`] still discards them).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Engine label: `"joint"`, `"lda"`, `"gmm"`, or `"collapsed"`.
    pub engine: &'static str,
    /// Sweep index the event refers to (the sweep just completed or
    /// being retried), 0-based.
    pub sweep: usize,
    /// Stable action name: `sentinel_trip`, `audit_pass`, `audit_fail`,
    /// `rollback`, `degrade`, `recovered`, `checkpoint_retry`, `abort`.
    pub action: &'static str,
    /// Human-readable description of what tripped or what was done.
    pub detail: String,
    /// Recovery retries consumed so far for the current incident
    /// (0 outside a recovery episode).
    pub retries: usize,
}

impl HealthEvent {
    /// Emits this event onto an [`Obs`] pipeline as a `health.{action}`
    /// event (tagged with `chain` when given).
    pub fn emit_to(&self, obs: &Obs, chain: Option<usize>) {
        if !obs.is_enabled() {
            return;
        }
        let mut fields = vec![
            Field::new("engine", self.engine),
            Field::new("sweep", self.sweep),
            Field::new("retries", self.retries),
            Field::new("detail", self.detail.clone()),
        ];
        if let Some(c) = chain {
            fields.push(Field::new("chain", c));
        }
        obs.emit(EventKind::Health, format!("health.{}", self.action), fields);
    }
}

/// Times the named phases of one Gibbs sweep. A disabled timer (the
/// no-observer case) runs the closure straight through — no clock reads,
/// no allocation — so the sampler hot path keeps its disabled-recorder
/// budget.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    enabled: bool,
    phases: Vec<(&'static str, u64)>,
}

impl PhaseTimer {
    /// A timer that records when `enabled`, and is inert otherwise.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            phases: Vec::new(),
        }
    }

    /// Whether this timer records anything.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Runs `f`, recording its wall time under `name` when enabled.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.phases.push((name, start.elapsed().as_micros() as u64));
        out
    }

    /// Records an externally measured phase duration.
    pub fn record(&mut self, name: &'static str, us: u64) {
        if self.enabled {
            self.phases.push((name, us));
        }
    }

    /// Takes the recorded phases, leaving the timer empty for the next
    /// sweep.
    #[must_use]
    pub fn take(&mut self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut self.phases)
    }
}

/// Receives per-sweep statistics from a running sampler.
pub trait SweepObserver {
    /// Whether the observer wants statistics at all. Samplers must skip
    /// stat computation (and timing) when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Called once after every completed sweep.
    fn on_sweep(&mut self, stats: &SweepStats);

    /// Called by the fitting supervisor whenever a health sentinel
    /// trips, an invariant audit completes, or a recovery action runs.
    /// Delivered regardless of [`SweepObserver::enabled`] — recovery
    /// changes run semantics, so sinks that keep any record at all
    /// should keep these. The default discards the event.
    fn on_health(&mut self, _event: &HealthEvent) {}
}

/// The do-nothing observer used by un-instrumented `fit` entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SweepObserver for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_sweep(&mut self, _stats: &SweepStats) {}
}

impl SweepObserver for Obs {
    fn enabled(&self) -> bool {
        self.is_enabled()
    }

    fn on_sweep(&mut self, stats: &SweepStats) {
        stats.emit_to(self, None);
    }

    fn on_health(&mut self, event: &HealthEvent) {
        event.emit_to(self, None);
    }
}

/// An observer that buffers every [`SweepStats`]; the sampler-level
/// analogue of [`crate::sinks::MemorySink`].
#[derive(Debug, Clone, Default)]
pub struct VecObserver {
    /// Collected statistics, one per sweep.
    pub sweeps: Vec<SweepStats>,
    /// Collected health events, in emission order.
    pub health: Vec<HealthEvent>,
}

impl SweepObserver for VecObserver {
    fn on_sweep(&mut self, stats: &SweepStats) {
        self.sweeps.push(stats.clone());
    }

    fn on_health(&mut self, event: &HealthEvent) {
        self.health.push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::MemorySink;

    fn stats(sweep: usize) -> SweepStats {
        SweepStats {
            engine: "joint",
            sweep,
            total_sweeps: 4,
            elapsed_us: 100 + sweep as u64,
            log_likelihood: -50.0 + sweep as f64,
            topic_entropy: 1.0,
            min_occupancy: 1,
            max_occupancy: 9,
            nw_draws: 20,
            jitter_retries: 0,
            cache_lookups: 8,
            cache_hits: 6,
            label_flips: 3,
            phase_us: vec![("z", 60), ("y", 40)],
            profile: None,
        }
    }

    #[test]
    fn occupancy_summary_uniform_and_degenerate() {
        let (entropy, min, max) = SweepStats::occupancy_summary(&[5, 5, 5, 5]);
        assert!((entropy - 4.0f64.ln()).abs() < 1e-12);
        assert_eq!((min, max), (5, 5));
        let (entropy, min, max) = SweepStats::occupancy_summary(&[20, 0, 0]);
        assert_eq!(entropy, 0.0);
        assert_eq!((min, max), (0, 20));
        let (entropy, ..) = SweepStats::occupancy_summary(&[]);
        assert_eq!(entropy, 0.0);
    }

    #[test]
    fn cache_hit_rate_handles_zero_lookups() {
        let mut s = stats(0);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        s.cache_lookups = 0;
        s.cache_hits = 0;
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn null_observer_is_disabled() {
        let mut o = NullObserver;
        assert!(!o.enabled());
        o.on_sweep(&stats(0)); // must not panic
    }

    #[test]
    fn obs_observer_emits_sweep_events() {
        let sink = MemorySink::default();
        let mut obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        assert!(SweepObserver::enabled(&obs));
        for sweep in 0..4 {
            obs.on_sweep(&stats(sweep));
        }
        let sweeps = sink.events_of(EventKind::Sweep);
        assert_eq!(sweeps.len(), 4);
        assert_eq!(sweeps[0].name, "joint.sweep");
        assert_eq!(sweeps[3].field_f64("sweep"), Some(3.0));
        assert_eq!(sweeps[3].field_f64("ll"), Some(-47.0));
        assert_eq!(sweeps[3].field_f64("nw_draws"), Some(20.0));
        assert_eq!(sweeps[3].field_f64("jitter_retries"), Some(0.0));
        assert_eq!(sweeps[3].field_f64("cache_lookups"), Some(8.0));
        assert_eq!(sweeps[3].field_f64("cache_hits"), Some(6.0));
        assert_eq!(sweeps[3].field_f64("label_flips"), Some(3.0));
        // No chain tag on direct observer emission.
        assert!(sweeps[3].field("chain").is_none());
        // The elapsed time also lands in a histogram, and the phases in
        // per-phase histograms.
        let summary = obs.summary();
        assert_eq!(summary.histograms["joint.sweep_us"].count(), 4);
        assert_eq!(summary.histograms["joint.phase.z_us"].count(), 4);
        assert_eq!(summary.histograms["joint.phase.y_us"].count(), 4);
    }

    #[test]
    fn chain_tag_rides_on_sweep_events() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        stats(0).emit_to(&obs, Some(2));
        let sweeps = sink.events_of(EventKind::Sweep);
        assert_eq!(sweeps[0].field_f64("chain"), Some(2.0));
    }

    #[test]
    fn sparse_profile_emits_fracs_and_draws() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        let mut s = stats(0);
        s.engine = "lda";
        s.profile = Some(KernelProfile::Sparse {
            s_draws: 1,
            r_draws: 3,
            q_draws: 6,
            s_mass: 1.0,
            r_mass: 1.0,
            q_mass: 2.0,
            word_nnz: 30,
            doc_nnz: 12,
        });
        s.emit_to(&obs, None);
        let profiles = sink.events_of(EventKind::Profile);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].name, "lda.profile");
        assert_eq!(
            profiles[0].field("kernel"),
            Some(&crate::Value::Str("sparse".into()))
        );
        assert_eq!(profiles[0].field_f64("tokens"), Some(10.0));
        assert_eq!(profiles[0].field_f64("q_draws"), Some(6.0));
        assert_eq!(profiles[0].field_f64("q_frac"), Some(0.5));
        assert_eq!(profiles[0].field_f64("avg_word_nnz"), Some(3.0));
        // Integer profile fields accumulate in the summary.
        assert_eq!(obs.summary().counters["lda.profile.q_draws"], 6);
    }

    #[test]
    fn parallel_profile_emits_chunk_histogram_and_alloc_gauge() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        let mut s = stats(0);
        s.profile = Some(KernelProfile::Parallel {
            chunks: 3,
            chunk_us: vec![10, 30, 20],
            alloc_bytes: 4096,
        });
        s.emit_to(&obs, None);
        let profiles = sink.events_of(EventKind::Profile);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].field_f64("chunks"), Some(3.0));
        assert_eq!(profiles[0].field_f64("chunk_us_min"), Some(10.0));
        assert_eq!(profiles[0].field_f64("chunk_us_max"), Some(30.0));
        assert_eq!(profiles[0].field_f64("chunk_us_mean"), Some(20.0));
        let summary = obs.summary();
        assert_eq!(summary.histograms["joint.chunk_us"].count(), 3);
        assert_eq!(summary.gauges["joint.sweep_alloc_bytes"], 4096.0);
    }

    #[test]
    fn sparse_parallel_profile_emits_buckets_and_chunk_timings() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        let mut s = stats(0);
        s.engine = "lda";
        s.profile = Some(KernelProfile::SparseParallel {
            s_draws: 1,
            r_draws: 3,
            q_draws: 6,
            s_mass: 1.0,
            r_mass: 1.0,
            q_mass: 2.0,
            word_nnz: 30,
            doc_nnz: 12,
            chunks: 2,
            chunk_us: vec![40, 60],
            rebuild_us: vec![5, 7],
            fold_us: vec![2, 4],
            alloc_bytes: 8192,
        });
        s.emit_to(&obs, None);
        let profiles = sink.events_of(EventKind::Profile);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].name, "lda.profile");
        assert_eq!(
            profiles[0].field("kernel"),
            Some(&crate::Value::Str("sparse_parallel".into()))
        );
        // The sparse bucket story survives the chunked fold…
        assert_eq!(profiles[0].field_f64("tokens"), Some(10.0));
        assert_eq!(profiles[0].field_f64("q_frac"), Some(0.5));
        assert_eq!(profiles[0].field_f64("avg_word_nnz"), Some(3.0));
        // …and the chunk timings ride alongside.
        assert_eq!(profiles[0].field_f64("chunks"), Some(2.0));
        assert_eq!(profiles[0].field_f64("rebuild_us_total"), Some(12.0));
        assert_eq!(profiles[0].field_f64("fold_us_total"), Some(6.0));
        let summary = obs.summary();
        assert_eq!(summary.histograms["lda.chunk_us"].count(), 2);
        assert_eq!(summary.histograms["lda.chunk_rebuild_us"].count(), 2);
        assert_eq!(summary.histograms["lda.chunk_fold_us"].count(), 2);
        assert_eq!(summary.gauges["lda.sweep_alloc_bytes"], 8192.0);
    }

    #[test]
    fn alias_profile_emits_acceptance_rate_and_rebuild_time() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        let mut s = stats(0);
        s.engine = "lda";
        s.profile = Some(KernelProfile::Alias {
            doc_proposals: 10,
            word_proposals: 10,
            accepted: 18,
            rejected: 2,
            chunks: 2,
            chunk_us: vec![40, 60],
            rebuild_us: 9,
            alloc_bytes: 8192,
        });
        s.emit_to(&obs, None);
        let profiles = sink.events_of(EventKind::Profile);
        assert_eq!(profiles.len(), 1);
        assert_eq!(profiles[0].name, "lda.profile");
        assert_eq!(
            profiles[0].field("kernel"),
            Some(&crate::Value::Str("alias".into()))
        );
        assert_eq!(profiles[0].field_f64("doc_proposals"), Some(10.0));
        assert_eq!(profiles[0].field_f64("word_proposals"), Some(10.0));
        assert_eq!(profiles[0].field_f64("accepted"), Some(18.0));
        assert_eq!(profiles[0].field_f64("rejected"), Some(2.0));
        assert_eq!(profiles[0].field_f64("acceptance_rate"), Some(0.9));
        assert_eq!(profiles[0].field_f64("chunks"), Some(2.0));
        assert_eq!(profiles[0].field_f64("rebuild_us"), Some(9.0));
        let summary = obs.summary();
        assert_eq!(summary.histograms["lda.chunk_us"].count(), 2);
        assert_eq!(summary.histograms["lda.alias_rebuild_us"].count(), 1);
        assert_eq!(summary.gauges["lda.sweep_alloc_bytes"], 8192.0);
    }

    #[test]
    fn phase_timer_records_only_when_enabled() {
        let mut off = PhaseTimer::new(false);
        assert_eq!(off.time("z", || 7), 7);
        assert!(off.take().is_empty());

        let mut on = PhaseTimer::new(true);
        assert!(on.enabled());
        assert_eq!(on.time("z", || 7), 7);
        on.record("y", 55);
        let phases = on.take();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "z");
        assert_eq!(phases[1], ("y", 55));
        assert!(on.take().is_empty());
    }

    #[test]
    fn disabled_obs_observer_reports_disabled() {
        let obs = Obs::disabled();
        assert!(!SweepObserver::enabled(&obs));
    }

    #[test]
    fn vec_observer_collects() {
        let mut o = VecObserver::default();
        o.on_sweep(&stats(0));
        o.on_sweep(&stats(1));
        assert_eq!(o.sweeps.len(), 2);
        assert_eq!(o.sweeps[1].sweep, 1);
    }

    fn health_event() -> HealthEvent {
        HealthEvent {
            engine: "lda",
            sweep: 7,
            action: "rollback",
            detail: "audit: doc 3 topic-count sum 5 != doc length 4".into(),
            retries: 1,
        }
    }

    #[test]
    fn health_events_emit_with_kind_and_fields() {
        let sink = MemorySink::default();
        let mut obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        obs.on_health(&health_event());
        let events = sink.events_of(EventKind::Health);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "health.rollback");
        assert_eq!(
            events[0].field("engine"),
            Some(&crate::Value::Str("lda".into()))
        );
        assert_eq!(events[0].field_f64("sweep"), Some(7.0));
        assert_eq!(events[0].field_f64("retries"), Some(1.0));
        assert!(events[0].field("chain").is_none());
        // The line is valid JSON with the stable wire kind.
        let line = events[0].to_json_line();
        assert!(line.contains("\"kind\":\"health\""), "{line}");
    }

    #[test]
    fn health_chain_tag_and_vec_buffering() {
        let sink = MemorySink::default();
        let obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        health_event().emit_to(&obs, Some(3));
        assert_eq!(
            sink.events_of(EventKind::Health)[0].field_f64("chain"),
            Some(3.0)
        );
        let mut v = VecObserver::default();
        v.on_health(&health_event());
        assert_eq!(v.health.len(), 1);
        assert_eq!(v.health[0].action, "rollback");
        // Default trait impl discards without panicking.
        let mut n = NullObserver;
        n.on_health(&health_event());
    }
}

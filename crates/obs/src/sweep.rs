//! The sampler-facing hook: Gibbs engines report one [`SweepStats`] per
//! sweep to a [`SweepObserver`].
//!
//! The trait is deliberately tiny — one callback plus an `enabled`
//! predicate — so samplers can skip computing the statistics entirely
//! when nobody is listening (the common case in tests and benchmarks).

use crate::event::{EventKind, Field};
use crate::recorder::Obs;

/// Statistics of one Gibbs sweep. Field semantics by engine:
///
/// * `joint` — occupancy counts documents per topic (`y_d`); `nw_draws`
///   counts Normal-Wishart parameter resamples (2 per topic: gel and
///   emulsion).
/// * `lda` — occupancy counts tokens per topic; `nw_draws` is 0.
/// * `gmm` — occupancy counts documents per component; `nw_draws` is 0
///   (components are collapsed).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Engine label: `"joint"`, `"lda"`, or `"gmm"`.
    pub engine: &'static str,
    /// Sweep index, 0-based.
    pub sweep: usize,
    /// Total sweeps configured.
    pub total_sweeps: usize,
    /// Wall-clock time of this sweep, µs.
    pub elapsed_us: u64,
    /// Conditional log-likelihood after this sweep.
    pub log_likelihood: f64,
    /// Shannon entropy (nats) of the topic-occupancy distribution; high
    /// means balanced topics, near 0 means collapse onto one topic.
    pub topic_entropy: f64,
    /// Smallest topic occupancy.
    pub min_occupancy: usize,
    /// Largest topic occupancy.
    pub max_occupancy: usize,
    /// Normal-Wishart posterior draws performed this sweep.
    pub nw_draws: usize,
    /// Ridge-jitter retries spent recovering non-positive-definite
    /// matrices this sweep (0 on a numerically healthy sweep; always 0
    /// for `lda`, which has no Gaussian components).
    pub jitter_retries: usize,
    /// Posterior-predictive cache lookups performed this sweep. Only the
    /// collapsed Gaussian engines consult the cache; engines without one
    /// (`joint`, `lda`) report 0.
    pub cache_lookups: usize,
    /// Cache lookups served without refactoring a scale matrix. Always
    /// `<= cache_lookups`; 0 when the cache is disabled or absent.
    pub cache_hits: usize,
}

impl SweepStats {
    /// Fraction of this sweep's predictive lookups served from the
    /// cache; 0.0 when the engine performed no lookups at all.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Shannon entropy (nats) of an occupancy histogram, plus its
    /// min/max — the shape summary emitted with every sweep.
    #[must_use]
    pub fn occupancy_summary(counts: &[usize]) -> (f64, usize, usize) {
        let total: usize = counts.iter().sum();
        let mut entropy = 0.0;
        if total > 0 {
            for &c in counts {
                if c > 0 {
                    let p = c as f64 / total as f64;
                    entropy -= p * p.ln();
                }
            }
        }
        let min = counts.iter().copied().min().unwrap_or(0);
        let max = counts.iter().copied().max().unwrap_or(0);
        (entropy, min, max)
    }
}

/// Receives per-sweep statistics from a running sampler.
pub trait SweepObserver {
    /// Whether the observer wants statistics at all. Samplers must skip
    /// stat computation (and timing) when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Called once after every completed sweep.
    fn on_sweep(&mut self, stats: &SweepStats);
}

/// The do-nothing observer used by un-instrumented `fit` entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SweepObserver for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn on_sweep(&mut self, _stats: &SweepStats) {}
}

impl SweepObserver for Obs {
    fn enabled(&self) -> bool {
        self.is_enabled()
    }

    fn on_sweep(&mut self, stats: &SweepStats) {
        self.emit(
            EventKind::Sweep,
            format!("{}.sweep", stats.engine),
            vec![
                Field::new("sweep", stats.sweep),
                Field::new("total_sweeps", stats.total_sweeps),
                Field::new("elapsed_us", stats.elapsed_us),
                Field::new("ll", stats.log_likelihood),
                Field::new("topic_entropy", stats.topic_entropy),
                Field::new("min_occupancy", stats.min_occupancy),
                Field::new("max_occupancy", stats.max_occupancy),
                Field::new("nw_draws", stats.nw_draws),
                Field::new("jitter_retries", stats.jitter_retries),
                Field::new("cache_lookups", stats.cache_lookups),
                Field::new("cache_hits", stats.cache_hits),
            ],
        );
        self.observe(
            format!("{}.sweep_us", stats.engine),
            stats.elapsed_us as f64,
        );
    }
}

/// An observer that buffers every [`SweepStats`]; the sampler-level
/// analogue of [`crate::sinks::MemorySink`].
#[derive(Debug, Clone, Default)]
pub struct VecObserver {
    /// Collected statistics, one per sweep.
    pub sweeps: Vec<SweepStats>,
}

impl SweepObserver for VecObserver {
    fn on_sweep(&mut self, stats: &SweepStats) {
        self.sweeps.push(stats.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::MemorySink;

    fn stats(sweep: usize) -> SweepStats {
        SweepStats {
            engine: "joint",
            sweep,
            total_sweeps: 4,
            elapsed_us: 100 + sweep as u64,
            log_likelihood: -50.0 + sweep as f64,
            topic_entropy: 1.0,
            min_occupancy: 1,
            max_occupancy: 9,
            nw_draws: 20,
            jitter_retries: 0,
            cache_lookups: 8,
            cache_hits: 6,
        }
    }

    #[test]
    fn occupancy_summary_uniform_and_degenerate() {
        let (entropy, min, max) = SweepStats::occupancy_summary(&[5, 5, 5, 5]);
        assert!((entropy - 4.0f64.ln()).abs() < 1e-12);
        assert_eq!((min, max), (5, 5));
        let (entropy, min, max) = SweepStats::occupancy_summary(&[20, 0, 0]);
        assert_eq!(entropy, 0.0);
        assert_eq!((min, max), (0, 20));
        let (entropy, ..) = SweepStats::occupancy_summary(&[]);
        assert_eq!(entropy, 0.0);
    }

    #[test]
    fn cache_hit_rate_handles_zero_lookups() {
        let mut s = stats(0);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        s.cache_lookups = 0;
        s.cache_hits = 0;
        assert_eq!(s.cache_hit_rate(), 0.0);
    }

    #[test]
    fn null_observer_is_disabled() {
        let mut o = NullObserver;
        assert!(!o.enabled());
        o.on_sweep(&stats(0)); // must not panic
    }

    #[test]
    fn obs_observer_emits_sweep_events() {
        let sink = MemorySink::default();
        let mut obs = Obs::with_sinks(vec![Box::new(sink.clone())]);
        assert!(SweepObserver::enabled(&obs));
        for sweep in 0..4 {
            obs.on_sweep(&stats(sweep));
        }
        let sweeps = sink.events_of(EventKind::Sweep);
        assert_eq!(sweeps.len(), 4);
        assert_eq!(sweeps[0].name, "joint.sweep");
        assert_eq!(sweeps[3].field_f64("sweep"), Some(3.0));
        assert_eq!(sweeps[3].field_f64("ll"), Some(-47.0));
        assert_eq!(sweeps[3].field_f64("nw_draws"), Some(20.0));
        assert_eq!(sweeps[3].field_f64("jitter_retries"), Some(0.0));
        assert_eq!(sweeps[3].field_f64("cache_lookups"), Some(8.0));
        assert_eq!(sweeps[3].field_f64("cache_hits"), Some(6.0));
        // The elapsed time also lands in a histogram.
        assert_eq!(obs.summary().histograms["joint.sweep_us"].count(), 4);
    }

    #[test]
    fn disabled_obs_observer_reports_disabled() {
        let obs = Obs::disabled();
        assert!(!SweepObserver::enabled(&obs));
    }

    #[test]
    fn vec_observer_collects() {
        let mut o = VecObserver::default();
        o.on_sweep(&stats(0));
        o.on_sweep(&stats(1));
        assert_eq!(o.sweeps.len(), 2);
        assert_eq!(o.sweeps[1].sweep, 1);
    }
}

//! End-of-run aggregation: every event that flows through an [`crate::Obs`]
//! also updates this summary, so a single table of counters, timers,
//! gauges, and histograms can be printed when a command finishes.

use crate::event::{Event, EventKind};
use crate::histogram::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate of a timed name: spans (by name) and sweeps (by sampler
/// name) both land here.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimerStat {
    /// Completed spans / sweeps.
    pub count: u64,
    /// Total time spent, µs.
    pub total_us: u64,
}

/// The aggregated view of everything recorded so far.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Span and sweep timings by name.
    pub timers: BTreeMap<String, TimerStat>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name (default time buckets).
    pub histograms: BTreeMap<String, Histogram>,
}

impl Summary {
    /// Folds one event into the aggregate.
    pub fn observe(&mut self, event: &Event) {
        match event.kind {
            EventKind::SpanStart => {}
            EventKind::SpanEnd => {
                let t = self.timers.entry(event.name.to_string()).or_default();
                t.count += 1;
                t.total_us += event
                    .field_f64("duration_us")
                    .map(|d| d.max(0.0) as u64)
                    .unwrap_or(0);
            }
            EventKind::Counter => {
                let v = event.field_f64("value").unwrap_or(0.0).max(0.0) as u64;
                *self.counters.entry(event.name.to_string()).or_insert(0) += v;
            }
            EventKind::Gauge => {
                if let Some(v) = event.field_f64("value") {
                    self.gauges.insert(event.name.to_string(), v);
                }
            }
            EventKind::Observe => {
                if let Some(v) = event.field_f64("value") {
                    self.histograms
                        .entry(event.name.to_string())
                        .or_insert_with(Histogram::for_time_us)
                        .record(v);
                }
            }
            EventKind::Sweep => {
                let t = self.timers.entry(event.name.to_string()).or_default();
                t.count += 1;
                t.total_us += event.field_f64("elapsed_us").unwrap_or(0.0).max(0.0) as u64;
                if let Some(ll) = event.field_f64("ll") {
                    self.gauges.insert(format!("{}.last_ll", event.name), ll);
                }
            }
            EventKind::Convergence => {
                for key in ["rhat", "ess"] {
                    if let Some(v) = event.field_f64(key) {
                        self.gauges.insert(format!("{}.{key}", event.name), v);
                    }
                }
            }
            EventKind::Profile => {
                // Integer profile fields accumulate (draw counts, chunk
                // counts); float fields are rates and keep the last value.
                for f in &event.fields {
                    match f.value {
                        crate::event::Value::U64(v) => {
                            *self
                                .counters
                                .entry(format!("{}.{}", event.name, f.key))
                                .or_insert(0) += v;
                        }
                        crate::event::Value::F64(v) => {
                            self.gauges.insert(format!("{}.{}", event.name, f.key), v);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.timers.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Renders the summary as an aligned plain-text table, one metric per
    /// line, grouped by metric type. Returns an empty string when nothing
    /// was recorded.
    #[must_use]
    pub fn render_table(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let width = self
            .counters
            .keys()
            .chain(self.timers.keys())
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(8);
        let mut out = String::new();
        if !self.timers.is_empty() {
            let _ = writeln!(out, "timers");
            for (name, t) in &self.timers {
                let mean_us = if t.count > 0 {
                    t.total_us as f64 / t.count as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {name:<width$}  total {:>10}  count {:>6}  mean {:>10}",
                    fmt_duration_us(t.total_us as f64),
                    t.count,
                    fmt_duration_us(mean_us),
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {v:>10}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<width$}  {v:>14.4}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  count {:>6}  mean {:>10}  min {:>10}  max {:>10}",
                    h.count(),
                    fmt_duration_us(h.mean().unwrap_or(0.0)),
                    fmt_duration_us(h.min().unwrap_or(0.0)),
                    fmt_duration_us(h.max().unwrap_or(0.0)),
                );
            }
        }
        out
    }
}

/// Formats a microsecond quantity with a readable unit (µs / ms / s).
#[must_use]
pub fn fmt_duration_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.0}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;

    fn ev(kind: EventKind, name: &'static str, fields: Vec<Field>) -> Event {
        Event {
            t_us: 0,
            kind,
            name: name.into(),
            fields,
        }
    }

    #[test]
    fn aggregates_each_kind() {
        let mut s = Summary::default();
        s.observe(&ev(
            EventKind::SpanEnd,
            "stage.fit",
            vec![Field::new("duration_us", 1500u64)],
        ));
        s.observe(&ev(
            EventKind::Counter,
            "docs",
            vec![Field::new("value", 10u64)],
        ));
        s.observe(&ev(
            EventKind::Counter,
            "docs",
            vec![Field::new("value", 5u64)],
        ));
        s.observe(&ev(EventKind::Gauge, "ll", vec![Field::new("value", -3.5)]));
        s.observe(&ev(
            EventKind::Observe,
            "sweep_us",
            vec![Field::new("value", 250.0)],
        ));
        s.observe(&ev(
            EventKind::Sweep,
            "joint.sweep",
            vec![Field::new("elapsed_us", 400u64), Field::new("ll", -2.25)],
        ));

        assert_eq!(s.counters["docs"], 15);
        assert_eq!(s.timers["stage.fit"].total_us, 1500);
        assert_eq!(s.timers["joint.sweep"].count, 1);
        assert_eq!(s.gauges["ll"], -3.5);
        assert_eq!(s.gauges["joint.sweep.last_ll"], -2.25);
        assert_eq!(s.histograms["sweep_us"].count(), 1);
    }

    #[test]
    fn table_mentions_every_metric() {
        let mut s = Summary::default();
        s.observe(&ev(
            EventKind::Counter,
            "dataset.docs_kept",
            vec![Field::new("value", 7u64)],
        ));
        s.observe(&ev(
            EventKind::SpanEnd,
            "stage.corpus",
            vec![Field::new("duration_us", 2_000_000u64)],
        ));
        let t = s.render_table();
        assert!(t.contains("dataset.docs_kept"), "{t}");
        assert!(t.contains("stage.corpus"), "{t}");
        assert!(t.contains("2.00s"), "{t}");
    }

    #[test]
    fn empty_summary_renders_empty() {
        assert_eq!(Summary::default().render_table(), "");
        assert!(Summary::default().is_empty());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_us(900.0), "900µs");
        assert_eq!(fmt_duration_us(1500.0), "1.50ms");
        assert_eq!(fmt_duration_us(2_500_000.0), "2.50s");
    }
}

//! A minimal recursive-descent JSON parser.
//!
//! This started as a test-only helper for validating the JSONL wire
//! format; it is public because the run-report builder
//! ([`crate::report`]) parses metrics JSONL back in without pulling a
//! JSON dependency into this crate (which is deliberately
//! dependency-free). It handles exactly the JSON this crate emits plus
//! ordinary hand-written documents; it is not a general-purpose,
//! spec-lawyered parser — numbers parse through `f64`, and object keys
//! keep their document order.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, first duplicate key wins
    /// for [`Json::get`].
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members in document order, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
///
/// # Errors
/// A human-readable description with a byte offset.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'-') && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E')) {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_document() {
        let j = parse_json(r#"{"a":1,"b":[true,null,-2.5e-1],"c":"x\"y\nA"}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            j.get("b"),
            Some(&Json::Arr(vec![
                Json::Bool(true),
                Json::Null,
                Json::Num(-0.25)
            ]))
        );
        assert_eq!(j.get("c").and_then(Json::as_str), Some("x\"y\nA"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json("\"\u{1}\"").is_err());
    }

    #[test]
    fn typed_accessors() {
        let j = parse_json(r#"{"n":2,"s":"x","b":false,"a":[1],"o":{"k":3}}"#).unwrap();
        assert_eq!(j.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(j.get("a").and_then(Json::as_array).map(<[_]>::len), Some(1));
        assert_eq!(
            j.get("o").and_then(Json::as_object).map(<[_]>::len),
            Some(1)
        );
        assert!(j.get("n").and_then(Json::as_str).is_none());
        assert!(j.as_f64().is_none());
    }
}

//! The event vocabulary: everything a [`crate::Recorder`] ever sees.
//!
//! Events are plain data — a monotonic timestamp, a kind, a name, and a
//! flat list of key/value fields — so sinks can render them without
//! knowing who emitted them. The JSONL serialization here is the stable
//! machine interface documented in README.md § Observability; sinks and
//! downstream tooling parse that, not the Rust types.

use std::borrow::Cow;
use std::fmt::Write as _;

/// A field value. Non-finite floats serialize as JSON `null` so every
/// emitted line stays valid JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, durations in µs).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (log-likelihoods, entropies, rates).
    F64(f64),
    /// String (stage names, engine labels).
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::U64(v) => write!(f, "{v}"),
            Self::I64(v) => write!(f, "{v}"),
            Self::F64(v) => write!(f, "{v}"),
            Self::Str(v) => write!(f, "{v}"),
            Self::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A named field attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field key (snake_case by convention).
    pub key: Cow<'static, str>,
    /// Field value.
    pub value: Value,
}

impl Field {
    /// Builds a field.
    pub fn new(key: impl Into<Cow<'static, str>>, value: impl Into<Value>) -> Self {
        Self {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// What kind of measurement an event carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span (timed region) opened.
    SpanStart,
    /// A span closed; carries `duration_us` plus user fields.
    SpanEnd,
    /// A monotonic counter increment; carries `value`.
    Counter,
    /// A point-in-time gauge; carries `value`.
    Gauge,
    /// A histogram observation; carries `value`.
    Observe,
    /// One Gibbs sweep of a sampler; carries the sweep statistics.
    Sweep,
    /// A cross-chain convergence diagnostic for one scalar trace;
    /// carries `rhat`, `ess`, `chains`, and `draws`.
    Convergence,
    /// A kernel-specific per-sweep profile (sparse bucket masses,
    /// parallel chunk timings, …); carries a `kernel` discriminator
    /// plus kernel-dependent numeric fields.
    Profile,
    /// A fitting-supervisor health event (sentinel trip, audit verdict,
    /// rollback, kernel degradation, …); carries `engine`, `sweep`,
    /// `retries`, and a human-readable `detail`.
    Health,
}

impl EventKind {
    /// The stable wire name used in the JSONL `kind` field.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::SpanStart => "span_start",
            Self::SpanEnd => "span_end",
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Observe => "observe",
            Self::Sweep => "sweep",
            Self::Convergence => "convergence",
            Self::Profile => "profile",
            Self::Health => "health",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the owning [`crate::Obs`] was created
    /// (monotonic clock).
    pub t_us: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Event name, e.g. `stage.fit` or `joint.sweep`.
    pub name: Cow<'static, str>,
    /// Payload fields.
    pub fields: Vec<Field>,
}

impl Event {
    /// Convenience accessor: the value of field `key`, if present.
    #[must_use]
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }

    /// Convenience accessor: field `key` as `f64` (integers widen).
    #[must_use]
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Serializes the event as one JSON line (no trailing newline):
    /// `{"t_us":N,"kind":"...","name":"...","fields":{...}}`.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96 + 24 * self.fields.len());
        let _ = write!(out, "{{\"t_us\":{},\"kind\":\"", self.t_us);
        out.push_str(self.kind.as_str());
        out.push_str("\",\"name\":");
        write_json_string(&mut out, &self.name);
        out.push_str(",\"fields\":{");
        for (i, f) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&mut out, &f.key);
            out.push(':');
            write_json_value(&mut out, &f.value);
        }
        out.push_str("}}");
        out
    }
}

fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse_json, Json};

    fn event() -> Event {
        Event {
            t_us: 42,
            kind: EventKind::SpanEnd,
            name: "stage.fit".into(),
            fields: vec![
                Field::new("duration_us", 17u64),
                Field::new("ll", -12.5),
                Field::new("label", "a\"b\\c\nd"),
                Field::new("ok", true),
            ],
        }
    }

    #[test]
    fn json_line_is_valid_json() {
        let line = event().to_json_line();
        let v = parse_json(&line).expect("valid JSON");
        assert_eq!(v.get("t_us").and_then(Json::as_f64), Some(42.0));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("span_end"));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("stage.fit"));
        let fields = v.get("fields").expect("fields object");
        assert_eq!(fields.get("duration_us").and_then(Json::as_f64), Some(17.0));
        assert_eq!(fields.get("ll").and_then(Json::as_f64), Some(-12.5));
        assert_eq!(
            fields.get("label").and_then(Json::as_str),
            Some("a\"b\\c\nd")
        );
        assert_eq!(fields.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut e = event();
        e.fields = vec![
            Field::new("bad", f64::NAN),
            Field::new("inf", f64::INFINITY),
        ];
        let v = parse_json(&e.to_json_line()).expect("valid JSON");
        let fields = v.get("fields").expect("fields object");
        assert_eq!(fields.get("bad"), Some(&Json::Null));
        assert_eq!(fields.get("inf"), Some(&Json::Null));
    }

    #[test]
    fn field_accessors() {
        let e = event();
        assert_eq!(e.field_f64("duration_us"), Some(17.0));
        assert_eq!(e.field_f64("ll"), Some(-12.5));
        assert!(e.field("missing").is_none());
        assert!(e.field_f64("label").is_none());
    }

    #[test]
    fn control_chars_escaped() {
        let mut e = event();
        e.fields = vec![Field::new("ctl", "\u{1}x")];
        let line = e.to_json_line();
        assert!(line.contains("\\u0001"), "{line}");
        let v = parse_json(&line).expect("valid JSON");
        let fields = v.get("fields").expect("fields object");
        assert_eq!(fields.get("ctl").and_then(Json::as_str), Some("\u{1}x"));
    }
}

//! Property-based tests for the corpus substrate — most importantly, the
//! quantity parser must never panic on arbitrary input (it faces scraped
//! free text in the real-data path).

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rheotex_corpus::features::RecipeFeatures;
use rheotex_corpus::synth::{generate, SynthConfig};
use rheotex_corpus::units::parse_quantity;
use rheotex_corpus::{Dataset, DatasetFilter, IngredientDb};
use rheotex_textures::TextureDictionary;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser is total: any string either parses or returns an error —
    /// never panics, never yields NaN/negative amounts.
    #[test]
    fn parse_quantity_is_total(text in ".{0,40}") {
        match parse_quantity(&text) {
            Ok(q) => {
                prop_assert!(q.value.is_finite());
                prop_assert!(q.value >= 0.0);
            }
            Err(_) => {}
        }
    }

    /// Same with inputs biased toward quantity-looking strings.
    #[test]
    fn parse_quantity_quantity_like(
        n in 0.0..10000.0f64,
        unit in prop_oneof![
            Just("g"), Just("kg"), Just("cc"), Just("ml"), Just("cup"),
            Just("cups"), Just("tbsp"), Just("tsp"), Just("pieces"),
            Just("oosaji"), Just("kosaji"), Just(""),
        ],
        spaced in proptest::bool::ANY,
    ) {
        let text = if spaced {
            format!("{n} {unit}")
        } else {
            format!("{n}{unit}")
        };
        let q = parse_quantity(&text);
        prop_assert!(q.is_ok(), "failed on {text:?}: {q:?}");
        let q = q.unwrap();
        prop_assert!((q.value - n).abs() < 1e-9 * n.max(1.0), "{text:?} -> {q:?}");
    }

    /// Grams conversion is monotone in the amount, for every ingredient
    /// and weight/volume unit.
    #[test]
    fn to_grams_monotone(a in 0.0..500.0f64, b in 0.0..500.0f64) {
        prop_assume!(a < b);
        let db = IngredientDb::builtin();
        for name in ["gelatin", "milk", "sugar", "water"] {
            let info = db.lookup(name).unwrap();
            for unit_text in ["g", "cc", "cup"] {
                let qa = parse_quantity(&format!("{a} {unit_text}")).unwrap();
                let qb = parse_quantity(&format!("{b} {unit_text}")).unwrap();
                prop_assert!(
                    qa.to_grams(info).unwrap() <= qb.to_grams(info).unwrap(),
                    "{name} {unit_text}"
                );
            }
        }
    }
}

proptest! {
    // Corpus-level generation is expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the seed and size, every generated recipe parses, its
    /// features are finite, and concentrations are proper ratios.
    #[test]
    fn generated_recipes_always_yield_valid_features(seed in 0u64..50, n in 20usize..120) {
        let db = IngredientDb::builtin();
        let dict = TextureDictionary::comprehensive();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let corpus = generate(&mut rng, &SynthConfig::small(n), &db).unwrap();
        for r in &corpus.recipes {
            let parsed = r.parse(&db).unwrap();
            let f = RecipeFeatures::from_parsed(&parsed, &dict).unwrap();
            prop_assert!(f.gel.iter().all(|v| v.is_finite()));
            prop_assert!(f.emulsion.iter().all(|v| v.is_finite()));
            let total: f64 = f.gel_concentrations.iter().sum::<f64>()
                + f.emulsion_concentrations.iter().sum::<f64>()
                + f.unrelated_fraction;
            prop_assert!(total <= 1.0 + 1e-9, "fractions exceed 1: {total}");
            prop_assert!((0.0..=1.0).contains(&f.unrelated_fraction));
        }
    }

    /// Dataset accounting is exact: kept + excluded = generated.
    #[test]
    fn dataset_accounting_is_exact(seed in 0u64..30) {
        let db = IngredientDb::builtin();
        let dict = TextureDictionary::comprehensive();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let corpus = generate(&mut rng, &SynthConfig::small(80), &db).unwrap();
        let ds = Dataset::build(&corpus.recipes, &corpus.labels, &db, &dict,
                                DatasetFilter::default()).unwrap();
        prop_assert_eq!(ds.len() + ds.exclusions.len(), 80);
        prop_assert_eq!(ds.labels.len(), ds.len());
    }
}

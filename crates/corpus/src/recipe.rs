//! Recipe data model: the raw posted form and its parsed, gram-normalized
//! form.

use crate::error::CorpusError;
use crate::ingredient::{IngredientDb, IngredientKind};
use crate::units::parse_quantity;
use serde::{Deserialize, Serialize};

/// One free-text ingredient line of a posted recipe, e.g.
/// `("gelatin", "5g")` or `("milk", "1 cup")`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngredientLine {
    /// Ingredient name as written (resolved against the database's
    /// aliases at parse time).
    pub name: String,
    /// Free-text quantity ("200cc", "oosaji 2", "1/2 cup" …).
    pub quantity_text: String,
}

impl IngredientLine {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, quantity_text: &str) -> Self {
        Self {
            name: name.to_string(),
            quantity_text: quantity_text.to_string(),
        }
    }
}

/// A posted recipe as it would appear on a sharing site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recipe {
    /// Stable recipe id.
    pub id: u64,
    /// Title, e.g. "purupuru milk jelly".
    pub title: String,
    /// Free-text description/steps; the texture-term source.
    pub description: String,
    /// Ingredient list with free-text quantities.
    pub ingredients: Vec<IngredientLine>,
}

/// One ingredient resolved to grams and classified.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsedIngredient {
    /// Canonical database name.
    pub name: String,
    /// Classification (gel / emulsion / neutral / unrelated).
    pub kind: IngredientKind,
    /// Weight in grams.
    pub grams: f64,
}

/// A recipe with every ingredient normalized to grams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParsedRecipe {
    /// Id of the source recipe.
    pub id: u64,
    /// Description carried through for term extraction.
    pub description: String,
    /// Gram-normalized ingredients.
    pub ingredients: Vec<ParsedIngredient>,
}

impl ParsedRecipe {
    /// Total weight of the recipe in grams.
    #[must_use]
    pub fn total_grams(&self) -> f64 {
        self.ingredients.iter().map(|i| i.grams).sum()
    }

    /// Total grams of ingredients with the given classification predicate.
    #[must_use]
    pub fn grams_where(&self, pred: impl Fn(IngredientKind) -> bool) -> f64 {
        self.ingredients
            .iter()
            .filter(|i| pred(i.kind))
            .map(|i| i.grams)
            .sum()
    }
}

impl Recipe {
    /// Parses the recipe against an ingredient database: every line's
    /// quantity is converted to grams.
    ///
    /// # Errors
    /// * [`CorpusError::UnknownIngredient`] for names missing from the db;
    /// * [`CorpusError::UnparsableQuantity`] / [`CorpusError::NoCountWeight`]
    ///   from quantity conversion;
    /// * [`CorpusError::EmptyRecipe`] when nothing contributes weight.
    pub fn parse(&self, db: &IngredientDb) -> Result<ParsedRecipe, CorpusError> {
        let mut ingredients = Vec::with_capacity(self.ingredients.len());
        for line in &self.ingredients {
            let info = db
                .lookup(&line.name)
                .ok_or_else(|| CorpusError::UnknownIngredient {
                    name: line.name.clone(),
                })?;
            let quantity = parse_quantity(&line.quantity_text)?;
            let grams = quantity.to_grams(info)?;
            ingredients.push(ParsedIngredient {
                name: info.name.clone(),
                kind: info.kind,
                grams,
            });
        }
        let parsed = ParsedRecipe {
            id: self.id,
            description: self.description.clone(),
            ingredients,
        };
        if parsed.total_grams() <= 0.0 {
            return Err(CorpusError::EmptyRecipe { id: self.id });
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingredient::{EmulsionType, GelType};

    fn milk_jelly() -> Recipe {
        Recipe {
            id: 1,
            title: "milk jelly".into(),
            description: "purupuru milk jelly, very easy".into(),
            ingredients: vec![
                IngredientLine::new("gelatin", "5g"),
                IngredientLine::new("milk", "200cc"),
                IngredientLine::new("sugar", "oosaji 2"),
                IngredientLine::new("water", "50 ml"),
            ],
        }
    }

    #[test]
    fn parse_converts_all_lines() {
        let db = IngredientDb::builtin();
        let parsed = milk_jelly().parse(&db).unwrap();
        assert_eq!(parsed.ingredients.len(), 4);
        // gelatin 5g + milk 206g + sugar 18g + water 50g
        let expect = 5.0 + 200.0 * 1.03 + 2.0 * 15.0 * 0.6 + 50.0;
        assert!((parsed.total_grams() - expect).abs() < 1e-9);
    }

    #[test]
    fn grams_where_classifies() {
        let db = IngredientDb::builtin();
        let parsed = milk_jelly().parse(&db).unwrap();
        let gels = parsed.grams_where(|k| matches!(k, IngredientKind::Gel(GelType::Gelatin)));
        assert!((gels - 5.0).abs() < 1e-9);
        let milk =
            parsed.grams_where(|k| matches!(k, IngredientKind::Emulsion(EmulsionType::Milk)));
        assert!((milk - 206.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_ingredient_rejected() {
        let db = IngredientDb::builtin();
        let mut r = milk_jelly();
        r.ingredients.push(IngredientLine::new("unobtainium", "5g"));
        assert!(matches!(
            r.parse(&db),
            Err(CorpusError::UnknownIngredient { .. })
        ));
    }

    #[test]
    fn bad_quantity_rejected() {
        let db = IngredientDb::builtin();
        let mut r = milk_jelly();
        r.ingredients[0].quantity_text = "to taste".into();
        assert!(matches!(
            r.parse(&db),
            Err(CorpusError::UnparsableQuantity { .. })
        ));
    }

    #[test]
    fn zero_weight_recipe_rejected() {
        let db = IngredientDb::builtin();
        let r = Recipe {
            id: 9,
            title: "nothing".into(),
            description: String::new(),
            ingredients: vec![IngredientLine::new("water", "0 ml")],
        };
        assert!(matches!(
            r.parse(&db),
            Err(CorpusError::EmptyRecipe { id: 9 })
        ));
    }

    #[test]
    fn aliases_resolve_to_canonical_names() {
        let db = IngredientDb::builtin();
        let r = Recipe {
            id: 2,
            title: "test".into(),
            description: String::new(),
            ingredients: vec![IngredientLine::new("gelatine", "3 sheets")],
        };
        let parsed = r.parse(&db).unwrap();
        assert_eq!(parsed.ingredients[0].name, "gelatin");
        assert!((parsed.ingredients[0].grams - 4.5).abs() < 1e-9);
    }
}

//! Ingredient knowledge: gel and emulsion taxonomies plus a database with
//! the physical constants unit conversion needs.
//!
//! Specific gravities and per-piece weights follow the standard Japanese
//! cooking-measure tables (the national standards the paper cites for
//! measuring spoons: teaspoon 5 mL, tablespoon 15 mL, cup 200 mL, with
//! per-ingredient gram equivalents).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The three gel types the paper models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GelType {
    /// Animal-collagen gelatin (powder or sheets).
    Gelatin,
    /// Kanten — Japanese agar from red algae (powder or sticks).
    Kanten,
    /// Agar(-agar) in the narrow sense used by the paper.
    Agar,
}

impl GelType {
    /// All gel types in the fixed feature order (gelatin, kanten, agar) —
    /// the order of the paper's gel concentration vectors.
    pub const ALL: [GelType; 3] = [GelType::Gelatin, GelType::Kanten, GelType::Agar];

    /// Index in the gel concentration vector.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            GelType::Gelatin => 0,
            GelType::Kanten => 1,
            GelType::Agar => 2,
        }
    }

    /// Canonical ingredient-name string.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GelType::Gelatin => "gelatin",
            GelType::Kanten => "kanten",
            GelType::Agar => "agar",
        }
    }
}

impl fmt::Display for GelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The six emulsion types the paper models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmulsionType {
    /// Granulated sugar.
    Sugar,
    /// Egg white.
    EggAlbumen,
    /// Egg yolk.
    EggYolk,
    /// Fresh (raw) cream.
    RawCream,
    /// Milk.
    Milk,
    /// Yogurt.
    Yogurt,
}

impl EmulsionType {
    /// All emulsion types in the fixed feature order used by Table II(b).
    pub const ALL: [EmulsionType; 6] = [
        EmulsionType::Sugar,
        EmulsionType::EggAlbumen,
        EmulsionType::EggYolk,
        EmulsionType::RawCream,
        EmulsionType::Milk,
        EmulsionType::Yogurt,
    ];

    /// Index in the emulsion concentration vector.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            EmulsionType::Sugar => 0,
            EmulsionType::EggAlbumen => 1,
            EmulsionType::EggYolk => 2,
            EmulsionType::RawCream => 3,
            EmulsionType::Milk => 4,
            EmulsionType::Yogurt => 5,
        }
    }

    /// Canonical ingredient-name string.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EmulsionType::Sugar => "sugar",
            EmulsionType::EggAlbumen => "egg albumen",
            EmulsionType::EggYolk => "egg yolk",
            EmulsionType::RawCream => "raw cream",
            EmulsionType::Milk => "milk",
            EmulsionType::Yogurt => "yogurt",
        }
    }
}

impl fmt::Display for EmulsionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Model-relevant classification of an ingredient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IngredientKind {
    /// A gelling agent.
    Gel(GelType),
    /// One of the six modeled emulsions.
    Emulsion(EmulsionType),
    /// Water and other liquids that carry weight but no concentration
    /// feature of their own (they enter the denominator only).
    Neutral,
    /// Everything else — fruit, nuts, cookies … counted toward the
    /// unrelated-ingredient fraction of the ≥10 % filter.
    Unrelated,
}

/// Physical constants of one ingredient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngredientInfo {
    /// Canonical lowercase name.
    pub name: String,
    /// Classification.
    pub kind: IngredientKind,
    /// Specific gravity in g/mL for volume-unit conversion. For powders
    /// this is the *bulk* packing density of the Japanese measure tables
    /// (e.g. sugar: 1 teaspoon = 3 g ⇒ 0.6 g/mL).
    pub specific_gravity: f64,
    /// Weight in grams of one piece/unit, when count units make sense
    /// (an egg yolk, a strawberry, a sheet of gelatin).
    pub piece_weight_g: Option<f64>,
}

/// In-memory ingredient database with alias-aware lookup.
#[derive(Debug, Clone)]
pub struct IngredientDb {
    infos: Vec<IngredientInfo>,
    by_name: HashMap<String, usize>,
}

/// `(name, aliases, kind, specific gravity, piece weight)` rows of the
/// built-in database.
type DbRow = (
    &'static str,
    &'static [&'static str],
    IngredientKind,
    f64,
    Option<f64>,
);

const BUILTIN: &[DbRow] = &[
    // --- gels (bulk densities of the powder; sheet/stick weights) ---
    (
        "gelatin",
        &["gelatine", "zerachin", "gelatin powder", "gelatin sheet"],
        IngredientKind::Gel(GelType::Gelatin),
        0.6,
        Some(1.5),
    ),
    (
        "kanten",
        &["kanten powder", "bou kanten", "ito kanten"],
        IngredientKind::Gel(GelType::Kanten),
        0.5,
        Some(8.0),
    ),
    (
        "agar",
        &["agar agar", "aga-ru", "agar powder"],
        IngredientKind::Gel(GelType::Agar),
        0.5,
        None,
    ),
    // --- emulsions (Japanese measure-table densities) ---
    (
        "sugar",
        &["granulated sugar", "caster sugar", "satou"],
        IngredientKind::Emulsion(EmulsionType::Sugar),
        0.6,
        None,
    ),
    (
        "egg albumen",
        &["egg white", "albumen", "shiromi"],
        IngredientKind::Emulsion(EmulsionType::EggAlbumen),
        1.0,
        Some(35.0),
    ),
    (
        "egg yolk",
        &["yolk", "kimi"],
        IngredientKind::Emulsion(EmulsionType::EggYolk),
        1.0,
        Some(18.0),
    ),
    (
        "raw cream",
        &["fresh cream", "cream", "heavy cream", "nama cream"],
        IngredientKind::Emulsion(EmulsionType::RawCream),
        1.0,
        None,
    ),
    (
        "milk",
        &["whole milk", "gyunyu"],
        IngredientKind::Emulsion(EmulsionType::Milk),
        1.03,
        None,
    ),
    (
        "yogurt",
        &["plain yogurt", "yoghurt"],
        IngredientKind::Emulsion(EmulsionType::Yogurt),
        1.03,
        None,
    ),
    // --- neutral carriers ---
    (
        "water",
        &["hot water", "oyu", "mizu"],
        IngredientKind::Neutral,
        1.0,
        None,
    ),
    (
        "juice",
        &["fruit juice", "orange juice", "apple juice"],
        IngredientKind::Neutral,
        1.04,
        None,
    ),
    (
        "coffee",
        &["black coffee"],
        IngredientKind::Neutral,
        1.0,
        None,
    ),
    (
        "wine",
        &["white wine", "red wine"],
        IngredientKind::Neutral,
        0.99,
        None,
    ),
    // --- unrelated (the ≥10 % filter and the word2vec confounders) ---
    (
        "strawberry",
        &["ichigo", "strawberries"],
        IngredientKind::Unrelated,
        0.95,
        Some(15.0),
    ),
    (
        "orange",
        &["mikan", "mandarin"],
        IngredientKind::Unrelated,
        0.95,
        Some(100.0),
    ),
    (
        "peach",
        &["momo", "canned peach"],
        IngredientKind::Unrelated,
        0.96,
        Some(150.0),
    ),
    (
        "banana",
        &["bananas"],
        IngredientKind::Unrelated,
        0.94,
        Some(100.0),
    ),
    (
        "almond",
        &["almonds", "nuts", "walnut", "mixed nuts"],
        IngredientKind::Unrelated,
        0.64,
        Some(1.2),
    ),
    (
        "cookie",
        &["biscuit", "cookies", "crumbled cookie"],
        IngredientKind::Unrelated,
        0.5,
        Some(8.0),
    ),
    (
        "granola",
        &["cereal", "cornflake", "cornflakes"],
        IngredientKind::Unrelated,
        0.35,
        None,
    ),
    (
        "chocolate",
        &["choco", "chocolate chips"],
        IngredientKind::Unrelated,
        0.65,
        Some(5.0),
    ),
    (
        "red bean paste",
        &["anko", "azuki paste"],
        IngredientKind::Unrelated,
        1.1,
        None,
    ),
    (
        "matcha",
        &["green tea powder"],
        IngredientKind::Unrelated,
        0.4,
        None,
    ),
    (
        "cocoa",
        &["cocoa powder"],
        IngredientKind::Unrelated,
        0.4,
        None,
    ),
    (
        "lemon",
        &["lemon juice", "remon"],
        IngredientKind::Unrelated,
        1.02,
        Some(100.0),
    ),
];

impl IngredientDb {
    /// The built-in database of gels, emulsions, carriers, and unrelated
    /// ingredients.
    #[must_use]
    pub fn builtin() -> Self {
        let mut infos = Vec::with_capacity(BUILTIN.len());
        let mut by_name = HashMap::new();
        for (name, aliases, kind, sg, piece) in BUILTIN {
            let idx = infos.len();
            infos.push(IngredientInfo {
                name: (*name).to_string(),
                kind: *kind,
                specific_gravity: *sg,
                piece_weight_g: *piece,
            });
            by_name.insert((*name).to_string(), idx);
            for alias in *aliases {
                by_name.insert((*alias).to_string(), idx);
            }
        }
        Self { infos, by_name }
    }

    /// Number of distinct ingredients (not counting aliases).
    #[must_use]
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the database is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Looks an ingredient up by name or alias (case-insensitive,
    /// whitespace-trimmed).
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<&IngredientInfo> {
        let key = name.trim().to_lowercase();
        self.by_name.get(&key).map(|&i| &self.infos[i])
    }

    /// Iterates over distinct ingredients.
    pub fn iter(&self) -> impl Iterator<Item = &IngredientInfo> {
        self.infos.iter()
    }

    /// Canonical info for a gel type.
    #[must_use]
    pub fn gel(&self, gel: GelType) -> &IngredientInfo {
        self.lookup(gel.name())
            .expect("built-in gels always present")
    }

    /// Canonical info for an emulsion type.
    #[must_use]
    pub fn emulsion(&self, emulsion: EmulsionType) -> &IngredientInfo {
        self.lookup(emulsion.name())
            .expect("built-in emulsions always present")
    }
}

impl Default for IngredientDb {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_orders_are_stable() {
        assert_eq!(GelType::Gelatin.index(), 0);
        assert_eq!(GelType::Kanten.index(), 1);
        assert_eq!(GelType::Agar.index(), 2);
        for (i, e) in EmulsionType::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn builtin_covers_all_gels_and_emulsions() {
        let db = IngredientDb::builtin();
        for g in GelType::ALL {
            assert_eq!(db.gel(g).kind, IngredientKind::Gel(g));
        }
        for e in EmulsionType::ALL {
            assert_eq!(db.emulsion(e).kind, IngredientKind::Emulsion(e));
        }
    }

    #[test]
    fn alias_lookup() {
        let db = IngredientDb::builtin();
        assert_eq!(db.lookup("gelatine").unwrap().name, "gelatin");
        assert_eq!(db.lookup("  Egg White ").unwrap().name, "egg albumen");
        assert_eq!(db.lookup("nuts").unwrap().name, "almond");
        assert!(db.lookup("plutonium").is_none());
    }

    #[test]
    fn physical_constants_sane() {
        let db = IngredientDb::builtin();
        for info in db.iter() {
            assert!(
                info.specific_gravity > 0.1 && info.specific_gravity < 2.0,
                "{}: sg {}",
                info.name,
                info.specific_gravity
            );
            if let Some(w) = info.piece_weight_g {
                assert!(w > 0.0, "{}", info.name);
            }
        }
    }

    #[test]
    fn unrelated_ingredients_present_for_filter() {
        let db = IngredientDb::builtin();
        let unrelated = db
            .iter()
            .filter(|i| i.kind == IngredientKind::Unrelated)
            .count();
        assert!(unrelated >= 5, "need confounders for the 10% filter");
    }
}

//! Quantity parsing and conversion to grams.
//!
//! Posted recipes describe amounts in heterogeneous ways — "5g", "200cc",
//! "1/2 cup", "oosaji 2" (two Japanese tablespoons), "2 sheets". The paper
//! normalizes all of them to grams using the national standard measures
//! (teaspoon 5 mL, tablespoon 15 mL, cup 200 mL in Japan) and
//! per-ingredient specific gravities. This module implements that
//! normalization.

use crate::error::CorpusError;
use crate::ingredient::IngredientInfo;
use serde::{Deserialize, Serialize};

/// A measurement unit appearing in recipe text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Grams (weight — no conversion needed).
    Gram,
    /// Kilograms.
    Kilogram,
    /// Milliliters / cc (volume).
    Milliliter,
    /// Liters.
    Liter,
    /// Japanese teaspoon, 5 mL ("kosaji").
    TeaspoonJp,
    /// Japanese tablespoon, 15 mL ("oosaji").
    TablespoonJp,
    /// Japanese measuring cup, 200 mL.
    CupJp,
    /// A counted piece (egg, strawberry …); needs a per-piece weight.
    Piece,
}

impl Unit {
    /// Volume in milliliters of one unit, for volume units.
    #[must_use]
    pub fn milliliters(self) -> Option<f64> {
        match self {
            Unit::Milliliter => Some(1.0),
            Unit::Liter => Some(1000.0),
            Unit::TeaspoonJp => Some(5.0),
            Unit::TablespoonJp => Some(15.0),
            Unit::CupJp => Some(200.0),
            Unit::Gram | Unit::Kilogram | Unit::Piece => None,
        }
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Unit::Gram => "g",
            Unit::Kilogram => "kg",
            Unit::Milliliter => "ml",
            Unit::Liter => "l",
            Unit::TeaspoonJp => "tsp",
            Unit::TablespoonJp => "tbsp",
            Unit::CupJp => "cup",
            Unit::Piece => "piece",
        }
    }
}

/// A parsed quantity: a numeric value and its unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantity {
    /// Numeric amount.
    pub value: f64,
    /// Measurement unit.
    pub unit: Unit,
}

impl Quantity {
    /// Converts to grams for the given ingredient.
    ///
    /// Weight units convert directly; volume units use the ingredient's
    /// specific gravity; count units use the per-piece weight.
    ///
    /// # Errors
    /// [`CorpusError::NoCountWeight`] when a count unit is used for an
    /// ingredient with no per-piece weight.
    pub fn to_grams(self, ingredient: &IngredientInfo) -> Result<f64, CorpusError> {
        match self.unit {
            Unit::Gram => Ok(self.value),
            Unit::Kilogram => Ok(self.value * 1000.0),
            Unit::Piece => ingredient
                .piece_weight_g
                .map(|w| self.value * w)
                .ok_or_else(|| CorpusError::NoCountWeight {
                    ingredient: ingredient.name.clone(),
                    unit: "piece",
                }),
            volume => {
                let ml = volume.milliliters().expect("volume unit");
                Ok(self.value * ml * ingredient.specific_gravity)
            }
        }
    }
}

fn unit_from_token(tok: &str) -> Option<Unit> {
    Some(match tok {
        "g" | "gram" | "grams" | "guramu" => Unit::Gram,
        "kg" | "kilogram" | "kilograms" => Unit::Kilogram,
        "ml" | "cc" | "milliliter" | "milliliters" => Unit::Milliliter,
        "l" | "liter" | "liters" | "litre" | "litres" => Unit::Liter,
        "tsp" | "teaspoon" | "teaspoons" | "kosaji" => Unit::TeaspoonJp,
        "tbsp" | "tablespoon" | "tablespoons" | "oosaji" | "osaji" => Unit::TablespoonJp,
        "cup" | "cups" => Unit::CupJp,
        "piece" | "pieces" | "ko" | "sheet" | "sheets" | "mai" | "stick" | "sticks" | "hon"
        | "egg" | "eggs" => Unit::Piece,
        _ => return None,
    })
}

/// Maps a unicode vulgar-fraction character to its value.
fn vulgar_fraction(c: char) -> Option<f64> {
    Some(match c {
        '½' => 0.5,
        '⅓' => 1.0 / 3.0,
        '⅔' => 2.0 / 3.0,
        '¼' => 0.25,
        '¾' => 0.75,
        '⅕' => 0.2,
        '⅛' => 0.125,
        _ => return None,
    })
}

/// Parses a numeric token: integer ("2"), decimal ("0.5"), fraction
/// ("1/2"), unicode vulgar fraction ("½", "1½"), or range ("2-3",
/// averaged — posted recipes often give tolerant amounts).
fn number_from_token(tok: &str) -> Option<f64> {
    // Range "a-b": take the midpoint. Guard against minus signs by
    // requiring both sides to parse as plain non-negative numbers.
    if let Some((a, b)) = tok.split_once('-') {
        if !a.is_empty() && !b.is_empty() {
            if let (Some(x), Some(y)) = (number_from_token(a), number_from_token(b)) {
                if x >= 0.0 && y >= x {
                    return Some((x + y) / 2.0);
                }
            }
        }
        return None;
    }
    // Trailing unicode fraction, optionally after an integer part: "1½".
    if let Some(last) = tok.chars().last() {
        if let Some(frac) = vulgar_fraction(last) {
            let head = &tok[..tok.len() - last.len_utf8()];
            if head.is_empty() {
                return Some(frac);
            }
            let whole: f64 = head.parse().ok()?;
            return Some(whole + frac);
        }
    }
    if let Some((num, den)) = tok.split_once('/') {
        let n: f64 = num.trim().parse().ok()?;
        let d: f64 = den.trim().parse().ok()?;
        if d == 0.0 {
            return None;
        }
        return Some(n / d);
    }
    tok.parse().ok()
}

/// Splits tokens like `"200g"` or `"1.5l"` into a numeric prefix and a
/// unit suffix.
fn split_attached(tok: &str) -> Option<(f64, Unit)> {
    let split_at = tok
        .char_indices()
        .find(|(_, c)| c.is_alphabetic())
        .map(|(i, _)| i)?;
    if split_at == 0 {
        return None;
    }
    let value = number_from_token(&tok[..split_at])?;
    let unit = unit_from_token(&tok[split_at..])?;
    Some((value, unit))
}

/// Parses a free-text quantity string into a [`Quantity`].
///
/// Accepted forms (case-insensitive):
/// * attached: `"200g"`, `"0.5l"`, `"200cc"`
/// * separated: `"2 cups"`, `"1/2 tbsp"`, `"1 1/2 cup"` (mixed numbers)
/// * Japanese spoon style with trailing count: `"oosaji 2"`, `"kosaji 1/2"`
/// * bare number: `"2"` — interpreted as [`Unit::Piece`]
///
/// # Examples
/// ```
/// use rheotex_corpus::units::{parse_quantity, Unit};
///
/// let q = parse_quantity("oosaji 2").unwrap();
/// assert_eq!(q.unit, Unit::TablespoonJp);
/// assert_eq!(q.value, 2.0);
/// assert_eq!(parse_quantity("1½ cup").unwrap().value, 1.5);
/// assert!(parse_quantity("to taste").is_err());
/// ```
///
/// # Errors
/// [`CorpusError::UnparsableQuantity`] when no value can be extracted.
pub fn parse_quantity(text: &str) -> Result<Quantity, CorpusError> {
    let lower = text.trim().to_lowercase();
    let tokens: Vec<&str> = lower
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .collect();
    if tokens.is_empty() {
        return Err(CorpusError::UnparsableQuantity { text: text.into() });
    }

    let mut value: Option<f64> = None;
    let mut unit: Option<Unit> = None;

    for tok in &tokens {
        if let Some((v, u)) = split_attached(tok) {
            value = Some(value.unwrap_or(0.0) + v);
            unit.get_or_insert(u);
        } else if let Some(v) = number_from_token(tok) {
            // Mixed numbers accumulate: "1 1/2" → 1.5.
            value = Some(value.unwrap_or(0.0) + v);
        } else if let Some(u) = unit_from_token(tok) {
            unit.get_or_insert(u);
        }
        // Unknown words ("about", "heaping") are ignored.
    }

    match value {
        Some(v) if v >= 0.0 => Ok(Quantity {
            value: v,
            unit: unit.unwrap_or(Unit::Piece),
        }),
        _ => Err(CorpusError::UnparsableQuantity { text: text.into() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingredient::IngredientDb;

    fn q(text: &str) -> Quantity {
        parse_quantity(text).unwrap()
    }

    #[test]
    fn attached_units() {
        assert_eq!(
            q("200g"),
            Quantity {
                value: 200.0,
                unit: Unit::Gram
            }
        );
        assert_eq!(
            q("200cc"),
            Quantity {
                value: 200.0,
                unit: Unit::Milliliter
            }
        );
        assert_eq!(
            q("0.5l"),
            Quantity {
                value: 0.5,
                unit: Unit::Liter
            }
        );
        assert_eq!(
            q("1.5kg"),
            Quantity {
                value: 1.5,
                unit: Unit::Kilogram
            }
        );
    }

    #[test]
    fn separated_units_and_fractions() {
        assert_eq!(
            q("2 cups"),
            Quantity {
                value: 2.0,
                unit: Unit::CupJp
            }
        );
        assert_eq!(
            q("1/2 tbsp"),
            Quantity {
                value: 0.5,
                unit: Unit::TablespoonJp
            }
        );
        assert_eq!(
            q("1 1/2 cup"),
            Quantity {
                value: 1.5,
                unit: Unit::CupJp
            }
        );
    }

    #[test]
    fn japanese_spoon_style() {
        assert_eq!(
            q("oosaji 2"),
            Quantity {
                value: 2.0,
                unit: Unit::TablespoonJp
            }
        );
        assert_eq!(
            q("kosaji 1/2"),
            Quantity {
                value: 0.5,
                unit: Unit::TeaspoonJp
            }
        );
    }

    #[test]
    fn bare_number_is_pieces() {
        assert_eq!(
            q("3"),
            Quantity {
                value: 3.0,
                unit: Unit::Piece
            }
        );
        assert_eq!(
            q("2 sheets"),
            Quantity {
                value: 2.0,
                unit: Unit::Piece
            }
        );
        assert_eq!(
            q("1 egg"),
            Quantity {
                value: 1.0,
                unit: Unit::Piece
            }
        );
    }

    #[test]
    fn noise_words_ignored() {
        assert_eq!(
            q("about 200 g"),
            Quantity {
                value: 200.0,
                unit: Unit::Gram
            }
        );
        assert_eq!(
            q("heaping oosaji 1"),
            Quantity {
                value: 1.0,
                unit: Unit::TablespoonJp
            }
        );
    }

    #[test]
    fn unicode_fractions() {
        assert_eq!(
            q("½ cup"),
            Quantity {
                value: 0.5,
                unit: Unit::CupJp
            }
        );
        assert_eq!(
            q("1½ cup"),
            Quantity {
                value: 1.5,
                unit: Unit::CupJp
            }
        );
        assert_eq!(
            q("¾ tsp"),
            Quantity {
                value: 0.75,
                unit: Unit::TeaspoonJp
            }
        );
        let v = q("⅓ cup").value;
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ranges_take_the_midpoint() {
        assert_eq!(
            q("2-3 pieces"),
            Quantity {
                value: 2.5,
                unit: Unit::Piece
            }
        );
        assert_eq!(
            q("100-200 g"),
            Quantity {
                value: 150.0,
                unit: Unit::Gram
            }
        );
        // Reversed or negative ranges are rejected rather than guessed.
        assert!(parse_quantity("3-2 g").is_err());
    }

    #[test]
    fn unparsable_inputs_error() {
        assert!(parse_quantity("").is_err());
        assert!(parse_quantity("to taste").is_err());
        assert!(parse_quantity("1/0 cup").is_err());
    }

    #[test]
    fn gram_conversion_weight_units() {
        let db = IngredientDb::builtin();
        let sugar = db.lookup("sugar").unwrap();
        assert_eq!(q("30g").to_grams(sugar).unwrap(), 30.0);
        assert_eq!(q("1kg").to_grams(sugar).unwrap(), 1000.0);
    }

    #[test]
    fn gram_conversion_volume_uses_specific_gravity() {
        let db = IngredientDb::builtin();
        // Japanese standard: sugar (sg 0.6) — 1 tbsp = 15 mL → 9 g.
        let sugar = db.lookup("sugar").unwrap();
        assert!((q("oosaji 1").to_grams(sugar).unwrap() - 9.0).abs() < 1e-9);
        // Milk (sg 1.03): 200 mL cup → 206 g.
        let milk = db.lookup("milk").unwrap();
        assert!((q("1 cup").to_grams(milk).unwrap() - 206.0).abs() < 1e-9);
        // 5 mL teaspoon of water = 5 g.
        let water = db.lookup("water").unwrap();
        assert!((q("kosaji 1").to_grams(water).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gram_conversion_pieces() {
        let db = IngredientDb::builtin();
        let yolk = db.lookup("egg yolk").unwrap();
        assert!((q("2").to_grams(yolk).unwrap() - 36.0).abs() < 1e-9);
        let gelatin = db.lookup("gelatin").unwrap();
        assert!((q("3 sheets").to_grams(gelatin).unwrap() - 4.5).abs() < 1e-9);
        // Cream has no piece weight: count units must fail loudly.
        let cream = db.lookup("raw cream").unwrap();
        assert!(matches!(
            q("2 pieces").to_grams(cream),
            Err(CorpusError::NoCountWeight { .. })
        ));
    }

    #[test]
    fn unit_names_roundtrip() {
        for u in [
            Unit::Gram,
            Unit::Kilogram,
            Unit::Milliliter,
            Unit::Liter,
            Unit::TeaspoonJp,
            Unit::TablespoonJp,
            Unit::CupJp,
        ] {
            assert_eq!(unit_from_token(u.name()), Some(u), "{:?}", u);
        }
    }
}

//! Recipe corpus substrate: ingredient knowledge, quantity normalization,
//! concentration features, and a synthetic Cookpad-like generator.
//!
//! The paper's corpus — 63,000 gel recipes from Cookpad, of which ~10,000
//! carry texture terms and ~3,000 survive filtering — is closed data. This
//! crate rebuilds the entire data path against a synthetic stand-in with
//! *known* latent structure:
//!
//! * [`ingredient`] — the ingredient database: gel types (gelatin, kanten,
//!   agar), the six emulsion types the paper models (sugar, egg albumen,
//!   egg yolk, raw cream, milk, yogurt), and unrelated ingredients, each
//!   with specific gravity and per-piece weights for unit conversion.
//! * [`units`] — quantity parsing ("200cc", "1/2 cup", "oosaji 2", "2
//!   sheets") and conversion to grams using Japanese standard measures
//!   (teaspoon 5 mL, tablespoon 15 mL, cup 200 mL).
//! * [`recipe`] — raw recipes (title, free-text ingredient lines,
//!   description) and their parsed form.
//! * [`features`] — the model's view of a recipe: texture-term sequence,
//!   3-vector of gel concentrations and 6-vector of emulsion
//!   concentrations as information quantity `−log(x)`, plus the
//!   unrelated-ingredient fraction used by the ≥10 % filter.
//! * [`synth`] — the generator: ten ground-truth *archetypes* mirroring
//!   the paper's Table II(a) topics emit recipes with realistic quantity
//!   strings and descriptions that mix texture terms, noise words, and
//!   gel-unrelated confounders (for the word2vec filter to catch).
//! * [`dataset`] — corpus assembly and filtering into the model-ready
//!   [`dataset::Dataset`], retaining ground-truth labels for recovery
//!   scoring.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dataset;
pub mod error;
pub mod features;
pub mod ingredient;
pub mod io;
pub mod recipe;
pub mod synth;
pub mod units;

pub use dataset::{Dataset, DatasetFilter};
pub use error::CorpusError;
pub use features::RecipeFeatures;
pub use ingredient::{EmulsionType, GelType, IngredientDb, IngredientKind};
pub use io::{LenientRead, QuarantineReport, QuarantinedLine};
pub use recipe::{IngredientLine, ParsedRecipe, Recipe};
pub use synth::{Archetype, SynthConfig, SynthCorpus};
pub use units::{parse_quantity, Quantity, Unit};

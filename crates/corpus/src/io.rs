//! Corpus persistence: JSON-lines recipes.
//!
//! The synthetic generator stands in for closed data, but the pipeline is
//! built to run on *real* scraped recipes too. This module defines the
//! interchange format: one JSON recipe per line, with an optional
//! ground-truth label for synthetic corpora.
//!
//! ```json
//! {"id":1,"title":"milk jelly","description":"purupuru ...",
//!  "ingredients":[{"name":"gelatin","quantity_text":"5g"}],"label":3}
//! ```

use crate::error::CorpusError;
use crate::recipe::Recipe;
use crate::synth::SynthCorpus;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// One JSONL record: a recipe plus an optional generator label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecipeRecord {
    /// The recipe.
    #[serde(flatten)]
    pub recipe: Recipe,
    /// Ground-truth archetype label, when known.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub label: Option<usize>,
}

/// Writes recipes (and labels, if given) as JSON lines.
///
/// # Errors
/// [`CorpusError::InvalidConfig`] on label misalignment; I/O errors are
/// wrapped into [`CorpusError::InvalidConfig`] with the message.
pub fn write_jsonl<W: Write>(
    writer: W,
    recipes: &[Recipe],
    labels: &[usize],
) -> Result<(), CorpusError> {
    if !labels.is_empty() && labels.len() != recipes.len() {
        return Err(CorpusError::InvalidConfig {
            what: format!("{} labels for {} recipes", labels.len(), recipes.len()),
        });
    }
    let mut w = BufWriter::new(writer);
    for (i, recipe) in recipes.iter().enumerate() {
        let record = RecipeRecord {
            recipe: recipe.clone(),
            label: labels.get(i).copied(),
        };
        let line = serde_json::to_string(&record).map_err(|e| CorpusError::InvalidConfig {
            what: format!("serialize recipe {}: {e}", recipe.id),
        })?;
        writeln!(w, "{line}").map_err(|e| CorpusError::InvalidConfig {
            what: format!("write: {e}"),
        })?;
    }
    w.flush().map_err(|e| CorpusError::InvalidConfig {
        what: format!("flush: {e}"),
    })
}

/// Reads recipes (and labels where present) from JSON lines. Empty lines
/// are skipped. Labels are returned only if *every* record carries one.
///
/// # Errors
/// [`CorpusError::InvalidConfig`] naming the offending line on parse
/// failure.
pub fn read_jsonl<R: Read>(reader: R) -> Result<(Vec<Recipe>, Vec<usize>), CorpusError> {
    let mut recipes = Vec::new();
    let mut labels = Vec::new();
    let mut all_labeled = true;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| CorpusError::InvalidConfig {
            what: format!("read line {}: {e}", lineno + 1),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let record: RecipeRecord =
            serde_json::from_str(&line).map_err(|e| CorpusError::InvalidConfig {
                what: format!("parse line {}: {e}", lineno + 1),
            })?;
        match record.label {
            Some(l) if all_labeled => labels.push(l),
            Some(_) => {}
            None => {
                all_labeled = false;
                labels.clear();
            }
        }
        recipes.push(record.recipe);
    }
    Ok((recipes, if all_labeled { labels } else { Vec::new() }))
}

/// One malformed JSONL line, set aside instead of aborting the read.
///
/// Serializes to one JSON object per line in the `quarantine.jsonl`
/// sidecar (see [`write_quarantine_jsonl`]), so a million-recipe ingest
/// leaves an auditable ledger of exactly which bytes were skipped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedLine {
    /// 1-based line number in the input.
    pub lineno: usize,
    /// Byte offset of the line's first byte in the input stream —
    /// `dd skip=OFFSET` / `seek` straight to the damage without
    /// re-counting newlines.
    pub byte_offset: u64,
    /// Why the line failed to parse.
    pub reason: String,
}

/// What a lenient read quarantined, and out of how much input.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuarantineReport {
    /// The malformed lines, in input order.
    pub lines: Vec<QuarantinedLine>,
    /// Total non-empty lines seen (parsed + quarantined).
    pub total_lines: usize,
}

impl QuarantineReport {
    /// Number of quarantined lines.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.lines.len()
    }

    /// Fraction of non-empty lines quarantined (0 when the input was
    /// empty).
    #[must_use]
    pub fn bad_ratio(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.lines.len() as f64 / self.total_lines as f64
        }
    }
}

/// A lenient read: everything that parsed, plus the quarantine ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientRead {
    /// Recipes that parsed cleanly, in input order.
    pub recipes: Vec<Recipe>,
    /// Labels, if *every parsed* record carried one (as in
    /// [`read_jsonl`]).
    pub labels: Vec<usize>,
    /// The malformed lines that were set aside.
    pub report: QuarantineReport,
}

/// Like [`read_jsonl`], but quarantines unparsable lines instead of
/// aborting on the first one. Real scraped corpora always contain a few
/// mangled records; losing the whole ingest to one of them is worse than
/// skipping it *visibly* — every quarantined line is returned with its
/// line number and parse error.
///
/// `max_bad_ratio` bounds the damage: once the read is complete, if more
/// than that fraction of non-empty lines failed to parse the whole read
/// is rejected (a corpus that is mostly garbage is a wrong-file bug, not
/// noise). `0.0` tolerates nothing (strict except for reporting),
/// `1.0` tolerates anything.
///
/// I/O errors (as opposed to parse errors) still fail immediately: they
/// indicate a broken source, not a bad record.
///
/// # Errors
/// [`CorpusError::TooManyBadLines`] when the quarantine exceeds the
/// budget; [`CorpusError::InvalidConfig`] for I/O failures or a
/// `max_bad_ratio` outside `[0, 1]`.
pub fn read_jsonl_lenient<R: Read>(
    reader: R,
    max_bad_ratio: f64,
) -> Result<LenientRead, CorpusError> {
    if !(0.0..=1.0).contains(&max_bad_ratio) {
        return Err(CorpusError::InvalidConfig {
            what: format!("max_bad_ratio {max_bad_ratio} outside [0, 1]"),
        });
    }
    let mut recipes = Vec::new();
    let mut labels = Vec::new();
    let mut all_labeled = true;
    let mut report = QuarantineReport::default();
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut offset = 0u64;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| CorpusError::InvalidConfig {
                what: format!("read line {}: {e}", lineno + 1),
            })?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let byte_offset = offset;
        offset += n as u64;
        if line.trim().is_empty() {
            continue;
        }
        report.total_lines += 1;
        let record: RecipeRecord = match serde_json::from_str(&line) {
            Ok(record) => record,
            Err(e) => {
                report.lines.push(QuarantinedLine {
                    lineno,
                    byte_offset,
                    reason: e.to_string(),
                });
                continue;
            }
        };
        match record.label {
            Some(l) if all_labeled => labels.push(l),
            Some(_) => {}
            None => {
                all_labeled = false;
                labels.clear();
            }
        }
        recipes.push(record.recipe);
    }
    if report.quarantined() > 0 && report.bad_ratio() > max_bad_ratio {
        return Err(CorpusError::TooManyBadLines {
            bad: report.quarantined(),
            total: report.total_lines,
            max_ratio: max_bad_ratio,
            first: {
                let first = &report.lines[0];
                format!("line {}: {}", first.lineno, first.reason)
            },
        });
    }
    Ok(LenientRead {
        recipes,
        labels: if all_labeled { labels } else { Vec::new() },
        report,
    })
}

/// Convenience: lenient read from a file. See [`read_jsonl_lenient`].
///
/// # Errors
/// File-open failures as [`CorpusError::InvalidConfig`]; otherwise as
/// [`read_jsonl_lenient`].
pub fn load_corpus_lenient(
    path: &std::path::Path,
    max_bad_ratio: f64,
) -> Result<LenientRead, CorpusError> {
    let file = std::fs::File::open(path).map_err(|e| CorpusError::InvalidConfig {
        what: format!("open {}: {e}", path.display()),
    })?;
    read_jsonl_lenient(file, max_bad_ratio)
}

/// Writes a quarantine ledger as JSON lines — one object per
/// quarantined input line, carrying `lineno`, `byte_offset`, and
/// `reason`. The sidecar is written even when the ledger is empty, so
/// downstream tooling can distinguish "clean ingest" from "nobody
/// checked".
///
/// # Errors
/// Serialization and I/O failures as [`CorpusError::InvalidConfig`].
pub fn write_quarantine_jsonl<W: Write>(
    writer: W,
    report: &QuarantineReport,
) -> Result<(), CorpusError> {
    let mut w = BufWriter::new(writer);
    for line in &report.lines {
        let json = serde_json::to_string(line).map_err(|e| CorpusError::InvalidConfig {
            what: format!("serialize quarantined line {}: {e}", line.lineno),
        })?;
        writeln!(w, "{json}").map_err(|e| CorpusError::InvalidConfig {
            what: format!("write quarantine: {e}"),
        })?;
    }
    w.flush().map_err(|e| CorpusError::InvalidConfig {
        what: format!("flush quarantine: {e}"),
    })
}

/// Convenience: writes the quarantine sidecar to a file. See
/// [`write_quarantine_jsonl`].
///
/// # Errors
/// File-creation failures as [`CorpusError::InvalidConfig`]; otherwise
/// as [`write_quarantine_jsonl`].
pub fn save_quarantine(
    path: &std::path::Path,
    report: &QuarantineReport,
) -> Result<(), CorpusError> {
    let file = std::fs::File::create(path).map_err(|e| CorpusError::InvalidConfig {
        what: format!("create {}: {e}", path.display()),
    })?;
    write_quarantine_jsonl(file, report)
}

/// Convenience: writes a [`SynthCorpus`] to a file.
///
/// # Errors
/// File-creation and serialization failures as [`CorpusError`].
pub fn save_corpus(path: &std::path::Path, corpus: &SynthCorpus) -> Result<(), CorpusError> {
    let file = std::fs::File::create(path).map_err(|e| CorpusError::InvalidConfig {
        what: format!("create {}: {e}", path.display()),
    })?;
    write_jsonl(file, &corpus.recipes, &corpus.labels)
}

/// Convenience: reads recipes and labels from a file.
///
/// # Errors
/// File-open and parse failures as [`CorpusError`].
pub fn load_corpus(path: &std::path::Path) -> Result<(Vec<Recipe>, Vec<usize>), CorpusError> {
    let file = std::fs::File::open(path).map_err(|e| CorpusError::InvalidConfig {
        what: format!("open {}: {e}", path.display()),
    })?;
    read_jsonl(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::IngredientLine;

    fn sample_recipes() -> Vec<Recipe> {
        vec![
            Recipe {
                id: 1,
                title: "jelly".into(),
                description: "purupuru".into(),
                ingredients: vec![IngredientLine::new("gelatin", "5g")],
            },
            Recipe {
                id: 2,
                title: "kanten".into(),
                description: "dossiri".into(),
                ingredients: vec![
                    IngredientLine::new("kanten", "4g"),
                    IngredientLine::new("water", "200cc"),
                ],
            },
        ]
    }

    #[test]
    fn roundtrip_with_labels() {
        let recipes = sample_recipes();
        let labels = vec![3, 7];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &recipes, &labels).unwrap();
        let (r, l) = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(r, recipes);
        assert_eq!(l, labels);
    }

    #[test]
    fn roundtrip_without_labels() {
        let recipes = sample_recipes();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &recipes, &[]).unwrap();
        let (r, l) = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(r, recipes);
        assert!(l.is_empty());
    }

    #[test]
    fn mixed_labels_drop_all() {
        // Hand-build lines where only the first record is labeled.
        let lines = concat!(
            r#"{"id":1,"title":"a","description":"d","ingredients":[],"label":2}"#,
            "\n",
            r#"{"id":2,"title":"b","description":"d","ingredients":[]}"#,
            "\n"
        );
        let (r, l) = read_jsonl(lines.as_bytes()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(l.is_empty(), "partial labels must not be returned");
    }

    #[test]
    fn empty_lines_skipped_and_errors_name_lines() {
        let lines = "\n\n{\"id\":1,\"title\":\"a\",\"description\":\"d\",\"ingredients\":[]}\n\n";
        let (r, _) = read_jsonl(lines.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);

        let bad = "{\"id\":1}\nnot json\n";
        let err = read_jsonl(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn lenient_read_quarantines_bad_lines_with_diagnosis() {
        let lines = concat!(
            r#"{"id":1,"title":"a","description":"d","ingredients":[]}"#,
            "\n",
            "not json at all\n",
            "\n",
            r#"{"id":2,"title":"b","description":"d","ingredients":[]}"#,
            "\n",
            r#"{"id":3,"broken"#,
            "\n",
        );
        let read = read_jsonl_lenient(lines.as_bytes(), 0.5).unwrap();
        assert_eq!(read.recipes.len(), 2);
        assert_eq!(read.recipes[1].id, 2);
        assert_eq!(read.report.total_lines, 4);
        assert_eq!(read.report.quarantined(), 2);
        // Line numbers are 1-based positions in the raw input (the
        // blank line 3 still counts toward numbering).
        assert_eq!(read.report.lines[0].lineno, 2);
        assert_eq!(read.report.lines[1].lineno, 5);
        assert!(!read.report.lines[0].reason.is_empty());
        assert!((read.report.bad_ratio() - 0.5).abs() < 1e-12);
        // Byte offsets point at the first byte of each quarantined line.
        assert_eq!(
            read.report.lines[0].byte_offset,
            lines.find("not json").unwrap() as u64
        );
        assert_eq!(
            read.report.lines[1].byte_offset,
            lines.find(r#"{"id":3"#).unwrap() as u64
        );
    }

    #[test]
    fn quarantine_sidecar_roundtrips() {
        let lines = concat!(
            "mangled\n",
            r#"{"id":1,"title":"a","description":"d","ingredients":[]}"#,
            "\n",
            "also mangled\n",
        );
        let read = read_jsonl_lenient(lines.as_bytes(), 1.0).unwrap();
        assert_eq!(read.report.quarantined(), 2);

        let mut sidecar = Vec::new();
        write_quarantine_jsonl(&mut sidecar, &read.report).unwrap();
        let text = String::from_utf8(sidecar).unwrap();
        let parsed: Vec<QuarantinedLine> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, read.report.lines);
        assert_eq!(parsed[0].lineno, 1);
        assert_eq!(parsed[0].byte_offset, 0);
        assert_eq!(parsed[1].lineno, 3);
        assert_eq!(
            parsed[1].byte_offset,
            lines.find("also mangled").unwrap() as u64
        );

        // An empty ledger still writes an (empty) sidecar.
        let mut empty = Vec::new();
        write_quarantine_jsonl(&mut empty, &QuarantineReport::default()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn lenient_read_rejects_when_budget_exceeded() {
        let lines =
            "garbage\n{\"id\":1,\"title\":\"a\",\"description\":\"d\",\"ingredients\":[]}\n";
        match read_jsonl_lenient(lines.as_bytes(), 0.25).unwrap_err() {
            CorpusError::TooManyBadLines {
                bad, total, first, ..
            } => {
                assert_eq!((bad, total), (1, 2));
                assert!(first.contains("line 1"), "{first}");
            }
            other => panic!("expected TooManyBadLines, got {other:?}"),
        }
        // Zero tolerance quarantines nothing silently…
        assert!(read_jsonl_lenient(lines.as_bytes(), 0.0).is_err());
        // …full tolerance accepts everything that parsed.
        let read = read_jsonl_lenient(lines.as_bytes(), 1.0).unwrap();
        assert_eq!(read.recipes.len(), 1);
        assert_eq!(read.report.quarantined(), 1);
    }

    #[test]
    fn lenient_read_matches_strict_on_clean_input() {
        let recipes = sample_recipes();
        let labels = vec![3, 7];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &recipes, &labels).unwrap();
        let read = read_jsonl_lenient(buf.as_slice(), 0.0).unwrap();
        assert_eq!(read.recipes, recipes);
        assert_eq!(read.labels, labels);
        assert_eq!(read.report.quarantined(), 0);
        assert_eq!(read.report.bad_ratio(), 0.0);
    }

    #[test]
    fn lenient_read_rejects_silly_ratio() {
        assert!(read_jsonl_lenient("".as_bytes(), 1.5).is_err());
        assert!(read_jsonl_lenient("".as_bytes(), -0.1).is_err());
    }

    #[test]
    fn label_misalignment_rejected_on_write() {
        let recipes = sample_recipes();
        let mut buf = Vec::new();
        assert!(write_jsonl(&mut buf, &recipes, &[1]).is_err());
    }

    #[test]
    fn file_roundtrip_via_synth_corpus() {
        use crate::synth::{generate, SynthConfig};
        use rand::SeedableRng;
        let db = crate::ingredient::IngredientDb::builtin();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let corpus = generate(&mut rng, &SynthConfig::small(20), &db).unwrap();
        let path = std::env::temp_dir().join("rheotex_io_test.jsonl");
        save_corpus(&path, &corpus).unwrap();
        let (recipes, labels) = load_corpus(&path).unwrap();
        assert_eq!(recipes, corpus.recipes);
        assert_eq!(labels, corpus.labels);
        let _ = std::fs::remove_file(&path);
    }
}

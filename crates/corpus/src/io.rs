//! Corpus persistence: JSON-lines recipes.
//!
//! The synthetic generator stands in for closed data, but the pipeline is
//! built to run on *real* scraped recipes too. This module defines the
//! interchange format: one JSON recipe per line, with an optional
//! ground-truth label for synthetic corpora.
//!
//! ```json
//! {"id":1,"title":"milk jelly","description":"purupuru ...",
//!  "ingredients":[{"name":"gelatin","quantity_text":"5g"}],"label":3}
//! ```

use crate::error::CorpusError;
use crate::recipe::Recipe;
use crate::synth::SynthCorpus;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// One JSONL record: a recipe plus an optional generator label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecipeRecord {
    /// The recipe.
    #[serde(flatten)]
    pub recipe: Recipe,
    /// Ground-truth archetype label, when known.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub label: Option<usize>,
}

/// Writes recipes (and labels, if given) as JSON lines.
///
/// # Errors
/// [`CorpusError::InvalidConfig`] on label misalignment; I/O errors are
/// wrapped into [`CorpusError::InvalidConfig`] with the message.
pub fn write_jsonl<W: Write>(
    writer: W,
    recipes: &[Recipe],
    labels: &[usize],
) -> Result<(), CorpusError> {
    if !labels.is_empty() && labels.len() != recipes.len() {
        return Err(CorpusError::InvalidConfig {
            what: format!("{} labels for {} recipes", labels.len(), recipes.len()),
        });
    }
    let mut w = BufWriter::new(writer);
    for (i, recipe) in recipes.iter().enumerate() {
        let record = RecipeRecord {
            recipe: recipe.clone(),
            label: labels.get(i).copied(),
        };
        let line = serde_json::to_string(&record).map_err(|e| CorpusError::InvalidConfig {
            what: format!("serialize recipe {}: {e}", recipe.id),
        })?;
        writeln!(w, "{line}").map_err(|e| CorpusError::InvalidConfig {
            what: format!("write: {e}"),
        })?;
    }
    w.flush().map_err(|e| CorpusError::InvalidConfig {
        what: format!("flush: {e}"),
    })
}

/// Reads recipes (and labels where present) from JSON lines. Empty lines
/// are skipped. Labels are returned only if *every* record carries one.
///
/// # Errors
/// [`CorpusError::InvalidConfig`] naming the offending line on parse
/// failure.
pub fn read_jsonl<R: Read>(reader: R) -> Result<(Vec<Recipe>, Vec<usize>), CorpusError> {
    let mut recipes = Vec::new();
    let mut labels = Vec::new();
    let mut all_labeled = true;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| CorpusError::InvalidConfig {
            what: format!("read line {}: {e}", lineno + 1),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let record: RecipeRecord =
            serde_json::from_str(&line).map_err(|e| CorpusError::InvalidConfig {
                what: format!("parse line {}: {e}", lineno + 1),
            })?;
        match record.label {
            Some(l) if all_labeled => labels.push(l),
            Some(_) => {}
            None => {
                all_labeled = false;
                labels.clear();
            }
        }
        recipes.push(record.recipe);
    }
    Ok((recipes, if all_labeled { labels } else { Vec::new() }))
}

/// Convenience: writes a [`SynthCorpus`] to a file.
///
/// # Errors
/// File-creation and serialization failures as [`CorpusError`].
pub fn save_corpus(path: &std::path::Path, corpus: &SynthCorpus) -> Result<(), CorpusError> {
    let file = std::fs::File::create(path).map_err(|e| CorpusError::InvalidConfig {
        what: format!("create {}: {e}", path.display()),
    })?;
    write_jsonl(file, &corpus.recipes, &corpus.labels)
}

/// Convenience: reads recipes and labels from a file.
///
/// # Errors
/// File-open and parse failures as [`CorpusError`].
pub fn load_corpus(path: &std::path::Path) -> Result<(Vec<Recipe>, Vec<usize>), CorpusError> {
    let file = std::fs::File::open(path).map_err(|e| CorpusError::InvalidConfig {
        what: format!("open {}: {e}", path.display()),
    })?;
    read_jsonl(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recipe::IngredientLine;

    fn sample_recipes() -> Vec<Recipe> {
        vec![
            Recipe {
                id: 1,
                title: "jelly".into(),
                description: "purupuru".into(),
                ingredients: vec![IngredientLine::new("gelatin", "5g")],
            },
            Recipe {
                id: 2,
                title: "kanten".into(),
                description: "dossiri".into(),
                ingredients: vec![
                    IngredientLine::new("kanten", "4g"),
                    IngredientLine::new("water", "200cc"),
                ],
            },
        ]
    }

    #[test]
    fn roundtrip_with_labels() {
        let recipes = sample_recipes();
        let labels = vec![3, 7];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &recipes, &labels).unwrap();
        let (r, l) = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(r, recipes);
        assert_eq!(l, labels);
    }

    #[test]
    fn roundtrip_without_labels() {
        let recipes = sample_recipes();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &recipes, &[]).unwrap();
        let (r, l) = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(r, recipes);
        assert!(l.is_empty());
    }

    #[test]
    fn mixed_labels_drop_all() {
        // Hand-build lines where only the first record is labeled.
        let lines = concat!(
            r#"{"id":1,"title":"a","description":"d","ingredients":[],"label":2}"#,
            "\n",
            r#"{"id":2,"title":"b","description":"d","ingredients":[]}"#,
            "\n"
        );
        let (r, l) = read_jsonl(lines.as_bytes()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(l.is_empty(), "partial labels must not be returned");
    }

    #[test]
    fn empty_lines_skipped_and_errors_name_lines() {
        let lines = "\n\n{\"id\":1,\"title\":\"a\",\"description\":\"d\",\"ingredients\":[]}\n\n";
        let (r, _) = read_jsonl(lines.as_bytes()).unwrap();
        assert_eq!(r.len(), 1);

        let bad = "{\"id\":1}\nnot json\n";
        let err = read_jsonl(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn label_misalignment_rejected_on_write() {
        let recipes = sample_recipes();
        let mut buf = Vec::new();
        assert!(write_jsonl(&mut buf, &recipes, &[1]).is_err());
    }

    #[test]
    fn file_roundtrip_via_synth_corpus() {
        use crate::synth::{generate, SynthConfig};
        use rand::SeedableRng;
        let db = crate::ingredient::IngredientDb::builtin();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let corpus = generate(&mut rng, &SynthConfig::small(20), &db).unwrap();
        let path = std::env::temp_dir().join("rheotex_io_test.jsonl");
        save_corpus(&path, &corpus).unwrap();
        let (recipes, labels) = load_corpus(&path).unwrap();
        assert_eq!(recipes, corpus.recipes);
        assert_eq!(labels, corpus.labels);
        let _ = std::fs::remove_file(&path);
    }
}

//! Synthetic Cookpad-like corpus generator with ground-truth archetypes.
//!
//! The paper's corpus is closed, so experiments run against recipes drawn
//! from ten *archetypes* that mirror the structure the paper reports in
//! Table II(a): four soft-gelatin bands (the paper's topics 7/4/0/8, all
//! dominated by *furufuru* at increasing gelatin concentration), the hard
//! gelatin topic (3), the agar+gelatin mix (5), the agar topic (2), the
//! foam topic (6), and the low/high kanten topics (1/9). Archetype gel
//! concentrations are the paper's own topic concentrations; term
//! distributions are the paper's reported per-topic term probabilities.
//!
//! Each generated recipe goes through the *full* posted-recipe surface
//! form: ingredient quantities are rendered in randomly chosen unit styles
//! ("5g", "200cc", "oosaji 2", "2 sheets") that the parser must re-convert
//! to grams, and descriptions interleave texture terms with noise words
//! and ingredient mentions — including gel-unrelated confounder toppings
//! whose crispy-family terms the word2vec filter is expected to reject.

use crate::error::CorpusError;
use crate::ingredient::{EmulsionType, GelType, IngredientDb, IngredientInfo};
use crate::recipe::{IngredientLine, Recipe};
use rand::Rng;
use rheotex_rheology::GelMechanics;
use rheotex_textures::TextureDictionary;
use serde::{Deserialize, Serialize};

/// Ground-truth generator archetype: one latent "texture style".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Archetype {
    /// Human-readable name (used in experiment reports).
    pub name: String,
    /// Mean raw gel concentrations (gelatin, kanten, agar).
    pub gel_mean: [f64; 3],
    /// Log-normal sigma of gel concentrations (relative spread).
    pub gel_sigma: f64,
    /// Mean raw emulsion concentrations (feature order).
    pub emulsion_mean: [f64; 6],
    /// Log-normal sigma of emulsion concentrations.
    pub emulsion_sigma: f64,
    /// Texture-term distribution: `(surface, weight)`; weights need not
    /// be normalized.
    pub term_weights: Vec<(String, f64)>,
    /// Probability that a recipe gains an unrelated topping (with its
    /// confounder texture term in the description).
    pub confounder_prob: f64,
    /// Mean number of texture-term occurrences per description.
    pub mean_terms: f64,
    /// Relative sampling weight of this archetype (proportional to the
    /// paper's per-topic recipe counts).
    pub weight: f64,
    /// Strength of the emulsion → texture-term coupling: recipes whose
    /// drawn emulsions stiffen the gel (per the TPA mechanics) shift
    /// their term distribution toward hard/elastic terms, watery draws
    /// toward soft/crumbly ones. 0 disables. This plants the
    /// within-topic structure the paper's Fig. 3 / Fig. 4 measure.
    pub texture_coupling: f64,
}

impl Archetype {
    /// Surface forms of this archetype's texture terms.
    #[must_use]
    pub fn term_surfaces(&self) -> Vec<&str> {
        self.term_weights.iter().map(|(s, _)| s.as_str()).collect()
    }
}

/// Configuration of a synthetic corpus draw.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of recipes to generate (before any filtering).
    pub n_recipes: usize,
    /// The archetype inventory.
    pub archetypes: Vec<Archetype>,
}

impl SynthConfig {
    /// Paper-scale configuration: the ten Table II(a) archetypes, sized so
    /// that after the ≥10 % unrelated filter roughly the paper's ~3,000
    /// recipes remain.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            n_recipes: 3600,
            archetypes: default_archetypes(),
        }
    }

    /// Smaller configuration for tests and quick examples.
    #[must_use]
    pub fn small(n_recipes: usize) -> Self {
        Self {
            n_recipes,
            archetypes: default_archetypes(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// [`CorpusError::InvalidConfig`] for empty archetypes, non-positive
    /// weights, or empty term lists.
    pub fn validate(&self) -> Result<(), CorpusError> {
        if self.archetypes.is_empty() {
            return Err(CorpusError::InvalidConfig {
                what: "no archetypes".into(),
            });
        }
        for a in &self.archetypes {
            if a.weight <= 0.0 {
                return Err(CorpusError::InvalidConfig {
                    what: format!("archetype {} has non-positive weight", a.name),
                });
            }
            if a.term_weights.is_empty() {
                return Err(CorpusError::InvalidConfig {
                    what: format!("archetype {} has no terms", a.name),
                });
            }
            let total_term_weight: f64 = a.term_weights.iter().map(|(_, w)| w).sum();
            if !(total_term_weight.is_finite() && total_term_weight > 0.0)
                || a.term_weights.iter().any(|(_, w)| *w < 0.0)
            {
                return Err(CorpusError::InvalidConfig {
                    what: format!(
                        "archetype {} term weights must be non-negative with a positive sum",
                        a.name
                    ),
                });
            }
            if !(0.0..=100.0).contains(&a.mean_terms) {
                return Err(CorpusError::InvalidConfig {
                    what: format!(
                        "archetype {} mean_terms {} out of range (Knuth Poisson \
                         sampling underflows for large rates)",
                        a.name, a.mean_terms
                    ),
                });
            }
            if !(0.0..=1.0).contains(&a.confounder_prob) {
                return Err(CorpusError::InvalidConfig {
                    what: format!("archetype {} confounder_prob out of range", a.name),
                });
            }
        }
        Ok(())
    }
}

/// A generated corpus with its ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthCorpus {
    /// The posted recipes.
    pub recipes: Vec<Recipe>,
    /// Ground-truth archetype index per recipe (aligned with `recipes`).
    pub labels: Vec<usize>,
    /// The archetype inventory used.
    pub archetypes: Vec<Archetype>,
}

/// The ten archetypes mirroring the paper's Table II(a).
///
/// `(gel concentrations, top terms)` are the paper's; emulsion profiles
/// are plausible per dish family (milk-jelly-like for soft gelatin,
/// bavarois-like for hard gelatin, mousse-like for the foam topic,
/// mizu-yokan-like for kanten) since the paper reports emulsions only for
/// the two validation dishes.
#[must_use]
pub fn default_archetypes() -> Vec<Archetype> {
    let soft_gelatin = |name: &str, conc: f64, weight: f64| Archetype {
        name: name.into(),
        gel_mean: [conc, 0.0, 0.0],
        gel_sigma: 0.10,
        emulsion_mean: [0.06, 0.0, 0.0, 0.0, 0.55, 0.0],
        emulsion_sigma: 0.25,
        term_weights: vec![
            ("furufuru".into(), 1.0),
            ("tapuntapun".into(), 0.06),
            ("funyafunya".into(), 0.04),
            ("torotoro".into(), 0.05),
        ],
        confounder_prob: 0.18,
        mean_terms: 2.2,
        weight,
        texture_coupling: 0.8,
    };
    vec![
        // Topics 7, 4, 0, 8: soft gelatin bands.
        soft_gelatin("gelatin-0.005", 0.005, 73.0),
        soft_gelatin("gelatin-0.007", 0.007, 74.0),
        soft_gelatin("gelatin-0.012", 0.012, 152.0),
        soft_gelatin("gelatin-0.014", 0.014, 14.0),
        // Topic 3: hard gelatin (bavarois/milk-jelly band).
        Archetype {
            name: "gelatin-hard-0.048".into(),
            gel_mean: [0.048, 0.0, 0.0],
            // Wide band: the paper's topic 3 absorbs everything from the
            // 2.5% dishes up to stiff 7% gels.
            gel_sigma: 0.35,
            // Heterogeneous emulsions with a large spread: most real
            // gelatin desserts are watery fruit jellies, with milky
            // (milk-jelly-like) and creamy (bavarois-like) minorities —
            // the within-topic variation Fig. 3 / Fig. 4 rank over.
            emulsion_mean: [0.05, 0.0, 0.015, 0.05, 0.25, 0.0],
            emulsion_sigma: 0.9,
            term_weights: vec![
                ("katai".into(), 0.307),
                ("muchimuchi".into(), 0.245),
                ("gucha".into(), 0.129),
                ("potteri".into(), 0.089),
                ("burunburun".into(), 0.062),
                ("bosoboso".into(), 0.060),
                ("botet".into(), 0.055),
                ("shakusyaku".into(), 0.029),
                ("buruburu".into(), 0.022),
            ],
            confounder_prob: 0.15,
            mean_terms: 3.2,
            weight: 38.0,
            // Strong coupling: this is the band the paper's Fig. 3/4
            // dishes (Bavarois, milk jelly) live in.
            texture_coupling: 3.5,
        },
        // Topic 5: agar + gelatin mix.
        Archetype {
            name: "agar-gelatin-mix-0.009".into(),
            gel_mean: [0.009, 0.0, 0.009],
            gel_sigma: 0.12,
            emulsion_mean: [0.08, 0.0, 0.0, 0.05, 0.35, 0.03],
            emulsion_sigma: 0.30,
            term_weights: vec![
                ("purupuru".into(), 1.0),
                ("punipuni".into(), 0.05),
                ("tsurutsuru".into(), 0.04),
            ],
            confounder_prob: 0.18,
            mean_terms: 2.0,
            weight: 1046.0,
            texture_coupling: 0.8,
        },
        // Topic 2: agar.
        Archetype {
            name: "agar-0.016".into(),
            gel_mean: [0.0, 0.0, 0.016],
            gel_sigma: 0.15,
            emulsion_mean: [0.12, 0.0, 0.0, 0.0, 0.25, 0.0],
            emulsion_sigma: 0.35,
            term_weights: vec![
                ("nettori".into(), 0.445),
                ("purit".into(), 0.255),
                ("mottari".into(), 0.210),
                ("horohoro".into(), 0.080),
                ("necchiri".into(), 0.010),
            ],
            confounder_prob: 0.15,
            mean_terms: 2.6,
            weight: 371.0,
            texture_coupling: 0.8,
        },
        // Topic 6: foam/mousse (traces of gelatin + kanten).
        Archetype {
            name: "foam-gelatin-0.003".into(),
            gel_mean: [0.003, 0.002, 0.0],
            gel_sigma: 0.20,
            emulsion_mean: [0.10, 0.08, 0.02, 0.28, 0.15, 0.0],
            emulsion_sigma: 0.35,
            term_weights: vec![
                ("fuwafuwa".into(), 1.0),
                ("sarasara".into(), 0.04),
                ("torori".into(), 0.05),
            ],
            confounder_prob: 0.25,
            mean_terms: 2.0,
            weight: 1200.0,
            texture_coupling: 0.6,
        },
        // Topic 1: low kanten.
        Archetype {
            name: "kanten-low-0.004".into(),
            gel_mean: [0.0, 0.004, 0.0],
            gel_sigma: 0.15,
            emulsion_mean: [0.10, 0.0, 0.0, 0.0, 0.10, 0.02],
            emulsion_sigma: 0.35,
            term_weights: vec![
                ("yuruyuru".into(), 0.487),
                ("bechat".into(), 0.432),
                ("fukahuka".into(), 0.027),
                ("burit".into(), 0.027),
            ],
            confounder_prob: 0.15,
            mean_terms: 2.4,
            weight: 60.0,
            texture_coupling: 0.8,
        },
        // Topic 9: high kanten.
        Archetype {
            name: "kanten-high-0.021".into(),
            gel_mean: [0.0, 0.021, 0.0],
            gel_sigma: 0.15,
            emulsion_mean: [0.16, 0.0, 0.0, 0.0, 0.05, 0.0],
            emulsion_sigma: 0.40,
            term_weights: vec![
                ("dossiri".into(), 0.270),
                ("churuchuru".into(), 0.165),
                ("punipuni".into(), 0.100),
                ("kutat".into(), 0.074),
                ("burinburin".into(), 0.069),
                ("korit".into(), 0.064),
                ("daradara".into(), 0.057),
                ("karat".into(), 0.055),
                ("hajikeru".into(), 0.055),
                ("omoi".into(), 0.054),
            ],
            confounder_prob: 0.12,
            mean_terms: 3.0,
            weight: 55.0,
            texture_coupling: 0.8,
        },
    ]
}

/// Noise vocabulary for descriptions (transliterated cooking chatter).
const NOISE_WORDS: &[&str] = &[
    "oishii",
    "kantan",
    "dessert",
    "reizouko",
    "hiyasu",
    "kodomo",
    "ninki",
    "osusume",
    "teiban",
    "natsu",
    "hinyari",
    "kansei",
    "mazeru",
    "katamaru",
    "dekiagari",
    "shokkan",
    "amai",
    "sappari",
];

/// Unrelated toppings paired with the confounder texture term each evokes.
const CONFOUNDER_TOPPINGS: &[(&str, &str)] = &[
    ("almond", "karikari"),
    ("cookie", "sakusaku"),
    ("granola", "zakuzaku"),
    ("cornflakes", "paripari"),
    ("chocolate", "poripori"),
];

fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    // Log-normal with median `mean`: mean * exp(sigma * z).
    let z = rheotex_linalg::dist::sample_std_normal(rng);
    mean * (sigma * z).exp()
}

fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    // Knuth's method — fine for the small λ (2–4) used here. λ is bounded
    // by SynthConfig::validate (≤ 100), far below the exp(-λ) underflow
    // that would make this loop never terminate.
    debug_assert!(lambda <= 700.0, "Knuth sampler underflows for λ {lambda}");
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn weighted_choice<'a, R: Rng + ?Sized>(rng: &mut R, items: &'a [(String, f64)]) -> &'a str {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen_range(0.0..total);
    for (s, w) in items {
        u -= w;
        if u <= 0.0 {
            return s;
        }
    }
    &items[items.len() - 1].0
}

/// Renders `grams` of `info` as a plausible free-text quantity string in a
/// randomly chosen unit style. The rendering rounds like a human would, so
/// re-parsing recovers the weight only approximately — exactly the noise
/// the real pipeline faces.
fn render_quantity<R: Rng + ?Sized>(rng: &mut R, info: &IngredientInfo, grams: f64) -> String {
    let style = rng.gen_range(0..4u8);
    match style {
        // Plain grams, rounded to 0.5 g.
        0 => format!("{}g", round_to(grams, 0.5)),
        // Volume in cc (via specific gravity), rounded to 5 cc.
        1 => {
            let cc = grams / info.specific_gravity;
            format!("{}cc", round_to(cc.max(1.0), 5.0))
        }
        // Spoons (tsp for small, tbsp for medium amounts) or cups for large.
        2 => {
            let ml = grams / info.specific_gravity;
            if ml <= 12.0 {
                let n = round_to(ml / 5.0, 0.5).max(0.5);
                format!("kosaji {n}")
            } else if ml <= 60.0 {
                let n = round_to(ml / 15.0, 0.5).max(0.5);
                format!("oosaji {n}")
            } else {
                let n = round_to(ml / 200.0, 0.25).max(0.25);
                format!("{n} cup")
            }
        }
        // Pieces when the ingredient supports them, else grams.
        _ => match info.piece_weight_g {
            Some(w) if grams >= w * 0.5 => {
                let n = (grams / w).round().max(1.0);
                format!("{n} pieces")
            }
            _ => format!("{}g", round_to(grams, 0.5)),
        },
    }
}

fn round_to(x: f64, step: f64) -> f64 {
    (x / step).round() * step
}

/// Reweights an archetype's term distribution by the recipe's simulated
/// mechanics relative to the archetype's baseline: stiffer-than-typical
/// draws (log-hardness deviation `z_h`) boost hard terms, higher
/// cohesiveness (`z_c`) boosts elastic terms. The mechanics come from the
/// same TPA calibration the evaluation uses, so the corpus encodes the
/// food-science relationship the paper's Fig. 3 / Fig. 4 measure.
fn couple_term_weights(
    dict: &TextureDictionary,
    base: &[(String, f64)],
    coupling: f64,
    z_hardness: f64,
    z_cohesiveness: f64,
) -> Vec<(String, f64)> {
    if coupling == 0.0 {
        return base.to_vec();
    }
    base.iter()
        .map(|(surface, w)| {
            let (h, c) = dict
                .lookup(surface)
                .map(|id| {
                    let e = dict.entry(id);
                    (e.hardness, e.cohesiveness)
                })
                .unwrap_or((0.0, 0.0));
            let boost = (coupling * (z_hardness * h + 3.0 * z_cohesiveness * c)).exp();
            (surface.clone(), w * boost)
        })
        .collect()
}

/// Builds the description: texture terms interleaved with noise words and
/// ingredient mentions (gel terms adjacent to gel names — the
/// co-occurrence signal word2vec learns).
fn render_description<R: Rng + ?Sized>(
    rng: &mut R,
    term_weights: &[(String, f64)],
    gel_names: &[&str],
    confounder: Option<(&str, &str)>,
    n_terms: usize,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(NOISE_WORDS[rng.gen_range(0..NOISE_WORDS.len())].to_string());
    for _ in 0..n_terms {
        let term = weighted_choice(rng, term_weights);
        // Anchor the texture term next to a gel mention half the time.
        if !gel_names.is_empty() && rng.gen_bool(0.5) {
            let gel = gel_names[rng.gen_range(0..gel_names.len())];
            parts.push(format!("{gel} {term}"));
        } else {
            parts.push(term.to_string());
        }
        if rng.gen_bool(0.6) {
            parts.push(NOISE_WORDS[rng.gen_range(0..NOISE_WORDS.len())].to_string());
        }
    }
    if let Some((topping, term)) = confounder {
        // Confounder term placed adjacent to the unrelated ingredient.
        parts.push(format!("{topping} {term} topping"));
    }
    parts.push("dekiagari".to_string());
    parts.join(" ")
}

/// Generates a corpus from the configuration, deterministically given the
/// RNG state.
///
/// # Errors
/// [`CorpusError::InvalidConfig`] from [`SynthConfig::validate`].
pub fn generate<R: Rng + ?Sized>(
    rng: &mut R,
    config: &SynthConfig,
    db: &IngredientDb,
) -> Result<SynthCorpus, CorpusError> {
    config.validate()?;
    let dict = &TextureDictionary::comprehensive();
    let weights: Vec<f64> = config.archetypes.iter().map(|a| a.weight).collect();
    let total_weight: f64 = weights.iter().sum();

    let mut recipes = Vec::with_capacity(config.n_recipes);
    let mut labels = Vec::with_capacity(config.n_recipes);

    for id in 0..config.n_recipes {
        // Archetype choice.
        let mut u = rng.gen_range(0.0..total_weight);
        let mut arch_idx = 0;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                arch_idx = i;
                break;
            }
        }
        let arch = &config.archetypes[arch_idx];

        let total_grams = rng.gen_range(250.0..600.0);
        let mut lines = Vec::new();
        let mut used_fraction = 0.0;
        let mut gel_names: Vec<&str> = Vec::new();
        let mut gel_conc = [0.0f64; 3];
        let mut emu_conc = [0.0f64; 6];

        for g in GelType::ALL {
            let mean = arch.gel_mean[g.index()];
            if mean <= 0.0 {
                continue;
            }
            let conc = sample_lognormal(rng, mean, arch.gel_sigma);
            gel_conc[g.index()] = conc;
            let info = db.gel(g);
            lines.push(IngredientLine::new(
                &info.name,
                &render_quantity(rng, info, conc * total_grams),
            ));
            used_fraction += conc;
            gel_names.push(g.name());
        }
        for e in EmulsionType::ALL {
            let mean = arch.emulsion_mean[e.index()];
            if mean <= 0.0 {
                continue;
            }
            let conc = sample_lognormal(rng, mean, arch.emulsion_sigma).min(0.85);
            emu_conc[e.index()] = conc;
            let info = db.emulsion(e);
            lines.push(IngredientLine::new(
                &info.name,
                &render_quantity(rng, info, conc * total_grams),
            ));
            used_fraction += conc;
        }

        // Optional unrelated topping (0.02–0.25 of total weight: some
        // recipes will exceed the 10% filter, exercising the exclusion).
        let confounder = if rng.gen_bool(arch.confounder_prob) {
            let (topping, term) = CONFOUNDER_TOPPINGS[rng.gen_range(0..CONFOUNDER_TOPPINGS.len())];
            let frac = rng.gen_range(0.02..0.25);
            let info = db
                .lookup(topping)
                .expect("confounder toppings are in the builtin db");
            lines.push(IngredientLine::new(
                &info.name,
                &render_quantity(rng, info, frac * total_grams),
            ));
            used_fraction += frac;
            Some((topping, term))
        } else {
            None
        };

        // Water fills the remainder.
        let water_fraction = (1.0 - used_fraction).max(0.05);
        lines.push(IngredientLine::new(
            "water",
            &format!("{}cc", round_to(water_fraction * total_grams, 5.0)),
        ));

        // Emulsion → texture coupling: deviation of this draw's simulated
        // mechanics from the archetype's baseline. The gel concentration is
        // held at the archetype mean so the deviation isolates the
        // *emulsion* contribution — the within-topic axis Fig. 3 / Fig. 4
        // rank over (the gel effect is the topic itself, and its c⁵
        // hardness law would otherwise swamp the emulsion signal).
        let mech = GelMechanics::from_composition(arch.gel_mean, emu_conc);
        let baseline = GelMechanics::from_composition(arch.gel_mean, arch.emulsion_mean);
        let z_hardness = (mech.hardness.max(1e-9) / baseline.hardness.max(1e-9)).ln();
        let z_cohesiveness = mech.cohesiveness - baseline.cohesiveness;
        let term_weights = couple_term_weights(
            dict,
            &arch.term_weights,
            arch.texture_coupling,
            z_hardness,
            z_cohesiveness,
        );

        let n_terms = sample_poisson(rng, arch.mean_terms).max(1);
        let description = render_description(rng, &term_weights, &gel_names, confounder, n_terms);

        recipes.push(Recipe {
            id: id as u64,
            title: format!("{} recipe {id}", arch.name),
            description,
            ingredients: lines,
        });
        labels.push(arch_idx);
    }

    Ok(SynthCorpus {
        recipes,
        labels,
        archetypes: config.archetypes.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    #[test]
    fn archetypes_match_paper_structure() {
        let archs = default_archetypes();
        assert_eq!(archs.len(), 10);
        // Hard gelatin topic at 0.054 with katai as top term.
        let hard = archs
            .iter()
            .find(|a| a.name == "gelatin-hard-0.048")
            .unwrap();
        assert!((hard.gel_mean[0] - 0.048).abs() < 1e-12);
        assert_eq!(hard.term_weights[0].0, "katai");
        // High kanten topic with dossiri as top term.
        let kanten = archs
            .iter()
            .find(|a| a.name == "kanten-high-0.021")
            .unwrap();
        assert!((kanten.gel_mean[1] - 0.021).abs() < 1e-12);
        assert_eq!(kanten.term_weights[0].0, "dossiri");
    }

    #[test]
    fn generated_corpus_has_requested_size_and_labels() {
        let db = IngredientDb::builtin();
        let corpus = generate(&mut rng(), &SynthConfig::small(200), &db).unwrap();
        assert_eq!(corpus.recipes.len(), 200);
        assert_eq!(corpus.labels.len(), 200);
        assert!(corpus.labels.iter().all(|&l| l < 10));
    }

    #[test]
    fn every_generated_recipe_parses() {
        let db = IngredientDb::builtin();
        let corpus = generate(&mut rng(), &SynthConfig::small(300), &db).unwrap();
        for r in &corpus.recipes {
            let parsed = r.parse(&db).unwrap_or_else(|e| {
                panic!("recipe {} failed to parse: {e}\n{:?}", r.id, r.ingredients)
            });
            assert!(parsed.total_grams() > 0.0);
        }
    }

    #[test]
    fn gel_concentrations_center_on_archetype_means() {
        use crate::features::RecipeFeatures;
        use rheotex_textures::TextureDictionary;
        let db = IngredientDb::builtin();
        let dict = TextureDictionary::comprehensive();
        let corpus = generate(&mut rng(), &SynthConfig::small(800), &db).unwrap();
        // Average gelatin concentration of hard-gelatin recipes ≈ 0.054.
        let hard_idx = corpus
            .archetypes
            .iter()
            .position(|a| a.name == "gelatin-hard-0.048")
            .unwrap();
        let mut sum = 0.0;
        let mut n = 0;
        for (r, &l) in corpus.recipes.iter().zip(&corpus.labels) {
            if l != hard_idx {
                continue;
            }
            let f = RecipeFeatures::from_parsed(&r.parse(&db).unwrap(), &dict).unwrap();
            sum += f.gel_concentrations[0];
            n += 1;
        }
        assert!(n > 0, "hard archetype should appear at 800 recipes");
        let mean = sum / n as f64;
        assert!(
            (mean - 0.048).abs() < 0.02,
            "mean gelatin concentration {mean} (n={n})"
        );
    }

    #[test]
    fn descriptions_contain_archetype_terms() {
        let db = IngredientDb::builtin();
        let corpus = generate(&mut rng(), &SynthConfig::small(100), &db).unwrap();
        for (r, &l) in corpus.recipes.iter().zip(&corpus.labels) {
            let arch = &corpus.archetypes[l];
            let surfaces = arch.term_surfaces();
            let found = surfaces.iter().any(|s| r.description.contains(s));
            assert!(
                found,
                "recipe {} lacks its archetype terms: {}",
                r.id, r.description
            );
        }
    }

    #[test]
    fn some_recipes_gain_confounder_toppings() {
        let db = IngredientDb::builtin();
        let corpus = generate(&mut rng(), &SynthConfig::small(500), &db).unwrap();
        let with_topping = corpus
            .recipes
            .iter()
            .filter(|r| {
                CONFOUNDER_TOPPINGS
                    .iter()
                    .any(|(t, _)| r.description.contains(t))
            })
            .count();
        assert!(
            with_topping > 30,
            "expected a healthy confounder rate, got {with_topping}/500"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let db = IngredientDb::builtin();
        let a = generate(&mut rng(), &SynthConfig::small(50), &db).unwrap();
        let b = generate(&mut rng(), &SynthConfig::small(50), &db).unwrap();
        assert_eq!(a.recipes, b.recipes);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn config_validation() {
        let mut c = SynthConfig::small(10);
        c.archetypes.clear();
        assert!(c.validate().is_err());

        let mut c = SynthConfig::small(10);
        c.archetypes[0].weight = 0.0;
        assert!(c.validate().is_err());

        let mut c = SynthConfig::small(10);
        c.archetypes[0].term_weights.clear();
        assert!(c.validate().is_err());

        let mut c = SynthConfig::small(10);
        c.archetypes[0].confounder_prob = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn poisson_mean_roughly_lambda() {
        let mut r = rng();
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_poisson(&mut r, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }
}

//! Model-facing recipe features.
//!
//! Each recipe becomes three things (paper Section IV-A):
//!
//! 1. a **sequence of texture terms** extracted from its description;
//! 2. a **gel concentration vector** over (gelatin, kanten, agar);
//! 3. an **emulsion concentration vector** over the six emulsion types.
//!
//! Concentrations are weight ratios against the recipe's total weight and
//! are mapped to *information quantity* `−ln(x)` — the paper's transform,
//! chosen because small concentration differences drive large texture
//! differences. Absent ingredients have concentration 0; we floor all
//! concentrations at [`MIN_CONCENTRATION`] so the transform stays finite
//! (an absent gel maps to a far-away but finite point, ≈ 9.2). The floor
//! is a substitution decision documented in DESIGN.md — the paper does not
//! state its handling of zeros.

use crate::ingredient::{GelType, IngredientKind};
use crate::recipe::ParsedRecipe;
use rheotex_linalg::Vector;
use rheotex_textures::{extract_terms, TermId, TextureDictionary};
use serde::{Deserialize, Serialize};

/// Concentration floor: ratios below this (including exact zeros for
/// absent ingredients) are clamped before the `−ln` transform.
pub const MIN_CONCENTRATION: f64 = 1e-4;

/// Information quantity `−ln(max(x, MIN_CONCENTRATION))`.
#[must_use]
pub fn info_quantity(x: f64) -> f64 {
    -(x.max(MIN_CONCENTRATION)).ln()
}

/// Inverse of [`info_quantity`]: recovers the (floored) concentration.
#[must_use]
pub fn concentration_from_info(v: f64) -> f64 {
    (-v).exp()
}

/// The features of one recipe, ready for the joint topic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecipeFeatures {
    /// Source recipe id.
    pub id: u64,
    /// Texture terms in order of occurrence in the description.
    pub terms: Vec<TermId>,
    /// Gel information-quantity vector, length 3 (gelatin, kanten, agar).
    pub gel: Vector,
    /// Emulsion information-quantity vector, length 6.
    pub emulsion: Vector,
    /// Raw gel concentrations (weight ratios, unfloored).
    pub gel_concentrations: [f64; 3],
    /// Raw emulsion concentrations (weight ratios, unfloored).
    pub emulsion_concentrations: [f64; 6],
    /// Fraction of total weight from `Unrelated` ingredients — the ≥10 %
    /// exclusion filter's statistic.
    pub unrelated_fraction: f64,
}

impl RecipeFeatures {
    /// Computes features from a parsed recipe.
    ///
    /// Returns `None` when the recipe has zero total weight (cannot form
    /// ratios) — callers filter such recipes out.
    #[must_use]
    pub fn from_parsed(parsed: &ParsedRecipe, dict: &TextureDictionary) -> Option<Self> {
        let total = parsed.total_grams();
        if total <= 0.0 {
            return None;
        }
        let mut gel_conc = [0.0f64; 3];
        let mut emu_conc = [0.0f64; 6];
        let mut unrelated = 0.0f64;
        for ing in &parsed.ingredients {
            match ing.kind {
                IngredientKind::Gel(g) => gel_conc[g.index()] += ing.grams,
                IngredientKind::Emulsion(e) => emu_conc[e.index()] += ing.grams,
                IngredientKind::Unrelated => unrelated += ing.grams,
                IngredientKind::Neutral => {}
            }
        }
        for c in &mut gel_conc {
            *c /= total;
        }
        for c in &mut emu_conc {
            *c /= total;
        }
        Some(Self {
            id: parsed.id,
            terms: extract_terms(dict, &parsed.description),
            gel: gel_info_vector(&gel_conc),
            emulsion: emulsion_info_vector(&emu_conc),
            gel_concentrations: gel_conc,
            emulsion_concentrations: emu_conc,
            unrelated_fraction: unrelated / total,
        })
    }

    /// Number of texture terms.
    #[must_use]
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Whether the recipe contains any gel at all (raw concentrations).
    #[must_use]
    pub fn has_gel(&self) -> bool {
        self.gel_concentrations.iter().any(|&c| c > 0.0)
    }

    /// The gel type with the highest concentration, if any gel is present.
    #[must_use]
    pub fn dominant_gel(&self) -> Option<GelType> {
        if !self.has_gel() {
            return None;
        }
        let mut best = 0;
        for i in 1..3 {
            if self.gel_concentrations[i] > self.gel_concentrations[best] {
                best = i;
            }
        }
        Some(GelType::ALL[best])
    }

    /// Emulsion concentrations as a `Vector` of raw ratios (for
    /// the discrete-KL recipe ranking of Fig. 3).
    #[must_use]
    pub fn emulsion_profile(&self) -> Vector {
        Vector::new(self.emulsion_concentrations.to_vec())
    }
}

/// Maps raw gel concentrations to the 3-vector of information quantities.
#[must_use]
pub fn gel_info_vector(conc: &[f64; 3]) -> Vector {
    Vector::new(conc.iter().map(|&c| info_quantity(c)).collect())
}

/// Maps raw emulsion concentrations to the 6-vector of information
/// quantities.
#[must_use]
pub fn emulsion_info_vector(conc: &[f64; 6]) -> Vector {
    Vector::new(conc.iter().map(|&c| info_quantity(c)).collect())
}

/// Convenience: builds the gel info vector from per-gel named values
/// (used to encode Table I settings).
#[must_use]
pub fn gel_info_from_named(gelatin: f64, kanten: f64, agar: f64) -> Vector {
    gel_info_vector(&[gelatin, kanten, agar])
}

/// Convenience: emulsion info vector from named values in feature order
/// (sugar, egg albumen, egg yolk, raw cream, milk, yogurt).
#[must_use]
pub fn emulsion_info_from_named(values: [f64; 6]) -> Vector {
    emulsion_info_vector(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingredient::IngredientDb;
    use crate::recipe::{IngredientLine, Recipe};
    use rheotex_textures::TextureDictionary;

    fn features(recipe: &Recipe) -> RecipeFeatures {
        let db = IngredientDb::builtin();
        let dict = TextureDictionary::gel_active();
        RecipeFeatures::from_parsed(&recipe.parse(&db).unwrap(), &dict).unwrap()
    }

    fn jelly() -> Recipe {
        Recipe {
            id: 1,
            title: "jelly".into(),
            description: "purupuru and a bit katai".into(),
            ingredients: vec![
                IngredientLine::new("gelatin", "5g"),
                IngredientLine::new("water", "195 ml"),
            ],
        }
    }

    #[test]
    fn info_quantity_transform() {
        assert!((info_quantity(1.0) - 0.0).abs() < 1e-12);
        assert!((info_quantity(0.025) + (0.025f64).ln()).abs() < 1e-12);
        // Zero is floored, not infinite.
        assert!(info_quantity(0.0).is_finite());
        assert!((info_quantity(0.0) - (-(MIN_CONCENTRATION).ln())).abs() < 1e-12);
        // Inverse roundtrip above the floor.
        let x = 0.0123;
        assert!((concentration_from_info(info_quantity(x)) - x).abs() < 1e-12);
    }

    #[test]
    fn concentrations_are_weight_ratios() {
        let f = features(&jelly());
        assert!((f.gel_concentrations[0] - 0.025).abs() < 1e-12);
        assert_eq!(f.gel_concentrations[1], 0.0);
        assert_eq!(f.gel_concentrations[2], 0.0);
        assert_eq!(f.unrelated_fraction, 0.0);
    }

    #[test]
    fn info_vectors_match_transform() {
        let f = features(&jelly());
        assert!((f.gel[0] - info_quantity(0.025)).abs() < 1e-12);
        assert!((f.gel[1] - info_quantity(0.0)).abs() < 1e-12);
        assert_eq!(f.gel.len(), 3);
        assert_eq!(f.emulsion.len(), 6);
    }

    #[test]
    fn terms_extracted_in_order() {
        let f = features(&jelly());
        let dict = TextureDictionary::gel_active();
        assert_eq!(f.term_count(), 2);
        assert_eq!(dict.entry(f.terms[0]).surface, "purupuru");
        assert_eq!(dict.entry(f.terms[1]).surface, "katai");
    }

    #[test]
    fn unrelated_fraction_counts_fruit() {
        let r = Recipe {
            id: 3,
            title: "fruit jelly".into(),
            description: "purupuru".into(),
            ingredients: vec![
                IngredientLine::new("gelatin", "5g"),
                IngredientLine::new("water", "155 ml"),
                IngredientLine::new("strawberry", "40 g"),
            ],
        };
        let f = features(&r);
        assert!((f.unrelated_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dominant_gel_detection() {
        let f = features(&jelly());
        assert_eq!(f.dominant_gel(), Some(GelType::Gelatin));
        assert!(f.has_gel());

        let r = Recipe {
            id: 4,
            title: "water".into(),
            description: String::new(),
            ingredients: vec![IngredientLine::new("water", "100 ml")],
        };
        let f = features(&r);
        assert!(!f.has_gel());
        assert_eq!(f.dominant_gel(), None);
    }

    #[test]
    fn mixed_gels_sum_by_type() {
        let r = Recipe {
            id: 5,
            title: "mixed".into(),
            description: String::new(),
            ingredients: vec![
                IngredientLine::new("gelatin", "3g"),
                IngredientLine::new("gelatine", "2g"), // alias, same type
                IngredientLine::new("agar", "1g"),
                IngredientLine::new("water", "94 ml"),
            ],
        };
        let f = features(&r);
        assert!((f.gel_concentrations[0] - 0.05).abs() < 1e-12);
        assert!((f.gel_concentrations[2] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn named_builders_match_index_order() {
        let v = gel_info_from_named(0.02, 0.0, 0.01);
        assert!((v[0] - info_quantity(0.02)).abs() < 1e-12);
        assert!((v[2] - info_quantity(0.01)).abs() < 1e-12);
        let e = emulsion_info_from_named([0.1, 0.0, 0.0, 0.0, 0.5, 0.0]);
        assert!((e[0] - info_quantity(0.1)).abs() < 1e-12);
        assert!((e[4] - info_quantity(0.5)).abs() < 1e-12);
    }
}

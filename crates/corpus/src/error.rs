//! Error type for corpus construction and parsing.

use std::fmt;

/// Errors from quantity parsing, recipe parsing, and dataset assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// A quantity string could not be parsed.
    UnparsableQuantity {
        /// The offending text.
        text: String,
    },
    /// A quantity used a count unit (piece/sheet/stick) for an ingredient
    /// with no known per-count weight.
    NoCountWeight {
        /// Ingredient name.
        ingredient: String,
        /// The unit that required a count weight.
        unit: &'static str,
    },
    /// An ingredient name was not found in the database.
    UnknownIngredient {
        /// The name that failed to resolve.
        name: String,
    },
    /// A recipe produced no usable features (zero total weight).
    EmptyRecipe {
        /// Recipe identifier.
        id: u64,
    },
    /// Invalid generator configuration.
    InvalidConfig {
        /// What was wrong.
        what: String,
    },
    /// Lenient JSONL reading quarantined more malformed lines than the
    /// configured budget allows.
    TooManyBadLines {
        /// Number of quarantined lines.
        bad: usize,
        /// Total non-empty lines seen.
        total: usize,
        /// The maximum tolerated `bad / total` ratio.
        max_ratio: f64,
        /// The first quarantined line's diagnosis, for the error message.
        first: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnparsableQuantity { text } => {
                write!(f, "cannot parse quantity from {text:?}")
            }
            Self::NoCountWeight { ingredient, unit } => write!(
                f,
                "ingredient {ingredient:?} has no per-{unit} weight defined"
            ),
            Self::UnknownIngredient { name } => {
                write!(f, "unknown ingredient {name:?}")
            }
            Self::EmptyRecipe { id } => {
                write!(f, "recipe {id} has zero total weight")
            }
            Self::InvalidConfig { what } => write!(f, "invalid config: {what}"),
            Self::TooManyBadLines {
                bad,
                total,
                max_ratio,
                first,
            } => write!(
                f,
                "{bad} of {total} lines unparsable (budget {max_ratio}); first: {first}"
            ),
        }
    }
}

impl std::error::Error for CorpusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_inputs() {
        let e = CorpusError::UnparsableQuantity {
            text: "mucho".into(),
        };
        assert!(e.to_string().contains("mucho"));
        let e = CorpusError::UnknownIngredient {
            name: "unobtainium".into(),
        };
        assert!(e.to_string().contains("unobtainium"));
    }
}

//! Corpus assembly and filtering into a model-ready dataset.
//!
//! Mirrors the paper's Section IV-A pipeline: parse every posted recipe,
//! extract features, then keep only recipes that (a) contain at least one
//! dictionary texture term, (b) contain a gel, and (c) devote less than
//! 10 % of their weight to unrelated ingredients.

use crate::error::CorpusError;
use crate::features::RecipeFeatures;
use crate::ingredient::IngredientDb;
use crate::recipe::Recipe;
use rheotex_textures::TextureDictionary;
use serde::{Deserialize, Serialize};

/// Filtering thresholds of the dataset-construction step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetFilter {
    /// Maximum allowed unrelated-ingredient weight fraction (paper: 0.10).
    pub max_unrelated_fraction: f64,
    /// Require at least one texture term in the description.
    pub require_terms: bool,
    /// Require at least one gel ingredient.
    pub require_gel: bool,
}

impl Default for DatasetFilter {
    fn default() -> Self {
        Self {
            max_unrelated_fraction: 0.10,
            require_terms: true,
            require_gel: true,
        }
    }
}

/// Why a recipe was excluded during dataset construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Exclusion {
    /// Parsing failed (unknown ingredient, bad quantity, zero weight).
    ParseFailure(String),
    /// No texture terms in the description.
    NoTerms,
    /// No gel ingredient.
    NoGel,
    /// Unrelated fraction exceeded the threshold.
    TooManyUnrelated(f64),
}

/// A model-ready dataset: filtered features with provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Features of retained recipes.
    pub features: Vec<RecipeFeatures>,
    /// Ground-truth labels aligned with `features` (when the corpus came
    /// from the synthetic generator; empty otherwise).
    pub labels: Vec<usize>,
    /// Per-recipe exclusion records `(recipe id, reason)`.
    pub exclusions: Vec<(u64, Exclusion)>,
    /// The filter that was applied.
    pub filter: DatasetFilter,
}

impl Dataset {
    /// Builds a dataset from posted recipes.
    ///
    /// `labels` must be empty or aligned with `recipes`.
    ///
    /// # Errors
    /// [`CorpusError::InvalidConfig`] if labels are misaligned. Individual
    /// recipe parse failures are *not* errors — they are recorded as
    /// exclusions, as a scraping pipeline would do.
    pub fn build(
        recipes: &[Recipe],
        labels: &[usize],
        db: &IngredientDb,
        dict: &TextureDictionary,
        filter: DatasetFilter,
    ) -> Result<Self, CorpusError> {
        if !labels.is_empty() && labels.len() != recipes.len() {
            return Err(CorpusError::InvalidConfig {
                what: format!("{} labels for {} recipes", labels.len(), recipes.len()),
            });
        }
        let mut features = Vec::new();
        let mut kept_labels = Vec::new();
        let mut exclusions = Vec::new();

        for (i, recipe) in recipes.iter().enumerate() {
            let parsed = match recipe.parse(db) {
                Ok(p) => p,
                Err(e) => {
                    exclusions.push((recipe.id, Exclusion::ParseFailure(e.to_string())));
                    continue;
                }
            };
            let Some(f) = RecipeFeatures::from_parsed(&parsed, dict) else {
                exclusions.push((
                    recipe.id,
                    Exclusion::ParseFailure("zero total weight".into()),
                ));
                continue;
            };
            if filter.require_terms && f.terms.is_empty() {
                exclusions.push((recipe.id, Exclusion::NoTerms));
                continue;
            }
            if filter.require_gel && !f.has_gel() {
                exclusions.push((recipe.id, Exclusion::NoGel));
                continue;
            }
            if f.unrelated_fraction > filter.max_unrelated_fraction {
                exclusions.push((recipe.id, Exclusion::TooManyUnrelated(f.unrelated_fraction)));
                continue;
            }
            features.push(f);
            if !labels.is_empty() {
                kept_labels.push(labels[i]);
            }
        }

        Ok(Self {
            features,
            labels: kept_labels,
            exclusions,
            filter,
        })
    }

    /// Number of retained recipes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether nothing survived filtering.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of distinct texture terms that occur in the retained
    /// recipes (the paper reports 41 of 288 here).
    #[must_use]
    pub fn active_vocabulary(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for f in &self.features {
            seen.extend(f.terms.iter().copied());
        }
        seen.len()
    }

    /// Re-extracts term sequences against a (possibly restricted)
    /// dictionary — used after the word2vec filter drops gel-unrelated
    /// terms. Recipes whose term list becomes empty are dropped (with
    /// their labels).
    #[must_use]
    pub fn remap_terms(&self, old_dict: &TextureDictionary, new_dict: &TextureDictionary) -> Self {
        let mut features = Vec::with_capacity(self.features.len());
        let mut labels = Vec::new();
        let mut exclusions = self.exclusions.clone();
        for (i, f) in self.features.iter().enumerate() {
            let terms: Vec<_> = f
                .terms
                .iter()
                .filter_map(|&id| old_dict.get(id).and_then(|e| new_dict.lookup(&e.surface)))
                .collect();
            if terms.is_empty() && self.filter.require_terms {
                exclusions.push((f.id, Exclusion::NoTerms));
                continue;
            }
            let mut nf = f.clone();
            nf.terms = terms;
            features.push(nf);
            if !self.labels.is_empty() {
                labels.push(self.labels[i]);
            }
        }
        Self {
            features,
            labels,
            exclusions,
            filter: self.filter,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build_small(n: usize) -> Dataset {
        let db = IngredientDb::builtin();
        let dict = TextureDictionary::comprehensive();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let corpus = generate(&mut rng, &SynthConfig::small(n), &db).unwrap();
        Dataset::build(
            &corpus.recipes,
            &corpus.labels,
            &db,
            &dict,
            DatasetFilter::default(),
        )
        .unwrap()
    }

    #[test]
    fn filtering_excludes_some_but_not_most() {
        let ds = build_small(600);
        assert!(!ds.is_empty());
        assert!(ds.len() < 600, "the 10% filter should drop some recipes");
        assert!(
            ds.len() > 400,
            "most recipes should survive, kept {}",
            ds.len()
        );
        assert_eq!(ds.labels.len(), ds.len());
        // Every exclusion has a recorded reason.
        assert_eq!(ds.exclusions.len() + ds.len(), 600);
    }

    #[test]
    fn retained_recipes_satisfy_filter() {
        let ds = build_small(400);
        for f in &ds.features {
            assert!(!f.terms.is_empty());
            assert!(f.has_gel());
            assert!(f.unrelated_fraction <= 0.10 + 1e-12);
        }
    }

    #[test]
    fn unrelated_exclusions_recorded_with_fraction() {
        let ds = build_small(600);
        let too_many: Vec<_> = ds
            .exclusions
            .iter()
            .filter_map(|(_, e)| match e {
                Exclusion::TooManyUnrelated(frac) => Some(*frac),
                _ => None,
            })
            .collect();
        assert!(!too_many.is_empty());
        assert!(too_many.iter().all(|&f| f > 0.10));
    }

    #[test]
    fn active_vocabulary_is_subset_of_gel_terms_plus_confounders() {
        let ds = build_small(600);
        let v = ds.active_vocabulary();
        assert!(v > 10, "vocabulary {v}");
        assert!(v <= 46, "vocabulary {v} (41 gel terms + 5 confounders)");
    }

    #[test]
    fn label_misalignment_rejected() {
        let db = IngredientDb::builtin();
        let dict = TextureDictionary::comprehensive();
        let err = Dataset::build(&[], &[1], &db, &dict, DatasetFilter::default());
        assert!(err.is_err());
    }

    #[test]
    fn remap_terms_drops_confounder_terms() {
        let comprehensive = TextureDictionary::comprehensive();
        let gel_only = TextureDictionary::gel_active();
        let ds = build_small(600);
        let remapped = ds.remap_terms(&comprehensive, &gel_only);
        assert!(remapped.len() <= ds.len());
        assert!(remapped.active_vocabulary() <= 41);
        for f in &remapped.features {
            for &t in &f.terms {
                assert!(gel_only.get(t).unwrap().gel_related);
            }
        }
        assert_eq!(remapped.labels.len(), remapped.len());
    }
}

//! Export→load round-trips across all four Gibbs kernel classes, plus
//! the fold-in determinism contract at the artifact level.

use rheotex_core::foldin::{fold_in, FoldInAlgorithm, FoldInConfig};
use rheotex_core::GibbsKernel;
use rheotex_serve::test_fixture;
use rheotex_serve::{ModelArtifact, MODEL_SCHEMA};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rheotex-serve-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.rtm"))
}

/// Every kernel class exports an artifact that survives the framed
/// round-trip bit-for-bit in its model-relevant fields.
#[test]
fn export_load_round_trips_across_all_kernel_classes() {
    let combos = [
        (GibbsKernel::Serial, 0usize, "serial"),
        (GibbsKernel::Parallel, 2, "parallel"),
        (GibbsKernel::Sparse, 0, "sparse"),
        (GibbsKernel::SparseParallel, 2, "sparse-parallel"),
    ];
    for (kernel, threads, tag) in combos {
        let artifact = test_fixture::artifact_with(kernel, threads);
        assert_eq!(artifact.provenance.kernel, kernel, "{tag}");
        let path = temp_path(tag);
        artifact.save(&path).unwrap();
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(back.schema, MODEL_SCHEMA, "{tag}");
        assert_eq!(back.n_kw, artifact.n_kw, "{tag}");
        assert_eq!(back.n_k, artifact.n_k, "{tag}");
        assert_eq!(back.config, artifact.config, "{tag}");
        assert_eq!(back.provenance, artifact.provenance, "{tag}");
        assert_eq!(back.table1.len(), artifact.table1.len(), "{tag}");
        for (a, b) in artifact.table1.iter().zip(&back.table1) {
            assert_eq!(a.setting_id, b.setting_id, "{tag}");
            assert_eq!(a.all_kl, b.all_kl, "{tag}");
        }
        std::fs::remove_file(&path).ok();
    }
}

/// Same artifact + same seed ⇒ identical fold-in, including across a
/// save/load cycle (the frozen counts are preserved exactly).
#[test]
fn fold_in_is_deterministic_across_artifact_reloads() {
    let artifact = test_fixture::artifact();
    let path = temp_path("det");
    artifact.save(&path).unwrap();
    let reloaded = ModelArtifact::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let doc: Vec<usize> = vec![0, 1, 2, 14, 15, 27];
    for algorithm in [FoldInAlgorithm::Gibbs, FoldInAlgorithm::Cvb0] {
        let cfg = FoldInConfig::new().algorithm(algorithm);
        let a = fold_in(&artifact.frozen_topics().unwrap(), &doc, &cfg, 7).unwrap();
        let b = fold_in(&reloaded.frozen_topics().unwrap(), &doc, &cfg, 7).unwrap();
        assert_eq!(a, b, "{algorithm}");
        // And a different seed moves the Gibbs chain.
        if algorithm == FoldInAlgorithm::Gibbs {
            let c = fold_in(&artifact.frozen_topics().unwrap(), &doc, &cfg, 8).unwrap();
            assert!(a.z != c.z || a.theta != c.theta);
        }
    }
}

/// The four kernel classes are distinct bit-compatibility classes, but
/// each one's export is reproducible: re-fitting with the same kernel,
/// seed, and thread count yields the identical counts.
#[test]
fn exports_are_reproducible_per_kernel() {
    for (kernel, threads) in [
        (GibbsKernel::Serial, 0usize),
        (GibbsKernel::SparseParallel, 2),
    ] {
        let a = test_fixture::artifact_with(kernel, threads);
        let b = test_fixture::artifact_with(kernel, threads);
        assert_eq!(a.n_kw, b.n_kw);
        assert_eq!(a.n_k, b.n_k);
    }
}

//! End-to-end smoke test of the HTTP front end: spawn a real server on
//! an ephemeral port, speak HTTP/1.1 over a raw socket, and check the
//! `rheotex.serve/1` contract, determinism, health, and metrics.

use rheotex_serve::test_fixture;
use rheotex_serve::{Server, ServerConfig, TextureService};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_artifact(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rheotex-serve-http-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.rtm"));
    test_fixture::artifact().save(&path).unwrap();
    path
}

/// Minimal HTTP/1.1 client: one request, one response.
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post_body(seed: u64) -> String {
    let recipe = serde_json::to_string(&test_fixture::recipe()).unwrap();
    format!("{{\"recipe\":{recipe},\"algorithm\":\"gibbs\",\"seed\":{seed}}}")
}

#[test]
fn serves_texture_predictions_end_to_end() {
    let path = temp_artifact("smoke");
    let service = Arc::new(TextureService::open(&path).unwrap());
    let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Health first: the artifact on disk is intact.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("rheotex.model/1"), "{body}");

    // A posted recipe comes back as a schema-tagged prediction.
    let (status, body) = request(addr, "POST", "/v1/texture", &post_body(7));
    assert_eq!(status, 200, "{body}");
    let json: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(json["schema"], "rheotex.serve/1");
    assert_eq!(json["recipe_id"], 900);
    assert!(json["texture_terms"].as_array().is_some_and(|a| !a.is_empty()));
    assert!(json["nearest_setting"]["setting_id"].is_u64());
    assert!(json["rheology"]["hardness"].as_f64().unwrap() > 0.0);
    assert_eq!(json["fold_in"]["algorithm"], "gibbs");

    // Determinism over the wire: identical request ⇒ byte-identical body.
    let (_, again) = request(addr, "POST", "/v1/texture", &post_body(7));
    assert_eq!(body, again, "same artifact + seed must serve identical bytes");
    // And a different seed is allowed to (and here does) differ.
    let (_, other) = request(addr, "POST", "/v1/texture", &post_body(8));
    assert_ne!(body, other);

    // Client errors are 400s, unknown routes 404s.
    let (status, _) = request(addr, "POST", "/v1/texture", "{\"not\":\"a request\"}");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/v1/nothing", "");
    assert_eq!(status, 404);

    // Metrics counted all of it.
    let (status, body) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(metrics["requests"].as_u64().unwrap() >= 3);
    assert!(metrics["cache"]["hit_rate"].as_f64().unwrap() > 0.0);
    assert!(metrics["batch_size"]["count"].as_u64().unwrap() >= 1);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn healthz_degrades_when_the_artifact_rots_on_disk() {
    let path = temp_artifact("rot");
    let service = Arc::new(TextureService::open(&path).unwrap());
    let server = Server::bind("127.0.0.1:0", service, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    // Flip one payload byte in place: CRC catches it, health degrades.
    let mut bytes = std::fs::read(&path).unwrap();
    *bytes.last_mut().unwrap() ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("checksum"), "{body}");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

//! Serving observability: request/batch latency histograms, batch-size
//! distribution, and request counters, reported as one JSON document by
//! `GET /metrics`.
//!
//! Built on [`rheotex_obs::Histogram`] — the same fixed-bucket histogram
//! the fitting observability stack uses — so serve-time latency numbers
//! are directly comparable with the profiler's kernel timings.

use rheotex_obs::Histogram;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Batch-size histogram bucket bounds (requests per batch).
const BATCH_SIZE_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// Thread-safe serving counters. One instance is shared by every worker
/// and connection thread of a [`crate::Server`].
pub struct ServeMetrics {
    requests: AtomicU64,
    failures: AtomicU64,
    request_us: Mutex<Histogram>,
    batch_us: Mutex<Histogram>,
    batch_sizes: Mutex<Histogram>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            request_us: Mutex::new(Histogram::for_time_us()),
            batch_us: Mutex::new(Histogram::for_time_us()),
            batch_sizes: Mutex::new(Histogram::new(&BATCH_SIZE_BOUNDS)),
        }
    }

    /// Records one completed request (latency plus outcome).
    pub fn record_request(&self, elapsed: Duration, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        lock(&self.request_us).record(elapsed.as_secs_f64() * 1e6);
    }

    /// Records one drained micro-batch.
    pub fn record_batch(&self, elapsed: Duration, size: usize) {
        lock(&self.batch_us).record(elapsed.as_secs_f64() * 1e6);
        lock(&self.batch_sizes).record(size as f64);
    }

    /// Snapshot for `GET /metrics`. Cache counters come from the
    /// service's shared predictive cache as `(lookups, hits, hit_rate)`.
    #[must_use]
    pub fn report(&self, cache: (u64, u64, f64)) -> MetricsReport {
        let (lookups, hits, hit_rate) = cache;
        MetricsReport {
            requests: self.requests.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            request_latency_us: LatencySummary::of(&lock(&self.request_us)),
            batch_latency_us: LatencySummary::of(&lock(&self.batch_us)),
            batch_size: LatencySummary::of(&lock(&self.batch_sizes)),
            cache: CacheReport {
                lookups,
                hits,
                hit_rate,
            },
        }
    }
}

fn lock(h: &Mutex<Histogram>) -> std::sync::MutexGuard<'_, Histogram> {
    h.lock().unwrap_or_else(|e| e.into_inner())
}

/// Distribution summary of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean value (0 when empty).
    pub mean: f64,
    /// Median estimate (0 when empty).
    pub p50: f64,
    /// 99th-percentile estimate (0 when empty).
    pub p99: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl LatencySummary {
    fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            mean: h.mean().unwrap_or(0.0),
            p50: h.quantile(0.5).unwrap_or(0.0),
            p99: h.quantile(0.99).unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
        }
    }
}

/// Predictive-cache counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Total predictive lookups.
    pub lookups: u64,
    /// Lookups served without rebuilding.
    pub hits: u64,
    /// Hits over lookups.
    pub hit_rate: f64,
}

/// The `GET /metrics` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Requests answered (any outcome).
    pub requests: u64,
    /// Requests that returned an error.
    pub failures: u64,
    /// Per-request inference latency (microseconds).
    pub request_latency_us: LatencySummary,
    /// Per-batch drain latency (microseconds).
    pub batch_latency_us: LatencySummary,
    /// Requests per drained batch.
    pub batch_size: LatencySummary,
    /// Shared predictive-cache counters.
    pub cache: CacheReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_requests_and_failures() {
        let m = ServeMetrics::new();
        m.record_request(Duration::from_micros(120), true);
        m.record_request(Duration::from_micros(80), false);
        m.record_batch(Duration::from_micros(250), 2);
        let r = m.report((4, 2, 0.5));
        assert_eq!(r.requests, 2);
        assert_eq!(r.failures, 1);
        assert_eq!(r.request_latency_us.count, 2);
        assert!(r.request_latency_us.mean > 0.0);
        assert_eq!(r.batch_size.count, 1);
        assert_eq!(r.cache.hits, 2);
    }

    #[test]
    fn empty_metrics_report_zeros() {
        let r = ServeMetrics::new().report((0, 0, 0.0));
        assert_eq!(r.requests, 0);
        assert_eq!(r.request_latency_us.mean, 0.0);
    }
}

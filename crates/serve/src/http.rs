//! A dependency-free HTTP/1.1 front end over the batching service.
//!
//! The workspace deliberately carries no HTTP crate, so this module
//! speaks the minimal dialect the endpoints need: one request per
//! connection (`Connection: close`), `Content-Length` bodies, JSON in
//! and out. Endpoints:
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /v1/texture` | Body is an [`InferRequest`]; enqueues onto the micro-batching worker pool and answers with a `rheotex.serve/1` [`crate::TexturePrediction`]. |
//! | `GET /healthz` | Re-verifies the artifact (frame CRC + structural check for file-backed services); `200` healthy, `503` otherwise. |
//! | `GET /metrics` | Latency/batch histograms and predictive-cache counters as JSON. |
//!
//! Architecture: one accept thread hands each connection to a short-
//! lived connection thread, which parses the request, pushes a [`Job`]
//! onto the shared [`BatchQueue`], and blocks on the job's reply
//! channel. A fixed pool of worker threads drains the queue in batches
//! of up to `max_batch` and runs inference against the single shared
//! [`TextureService`] (and therefore one shared predictive cache).

use crate::batch::{run_worker, BatchQueue, Job};
use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::service::{InferOptions, TextureService};
use rheotex_core::foldin::FoldInAlgorithm;
use rheotex_corpus::Recipe;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection thread waits for request bytes before giving
/// up on a stalled client.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Largest accepted request body (1 MiB — recipes are small).
const MAX_BODY: usize = 1 << 20;

/// The `POST /v1/texture` request body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferRequest {
    /// The recipe to analyze.
    pub recipe: Recipe,
    /// RNG seed for the Gibbs fold-in (default 0; ignored by CVB0).
    #[serde(default)]
    pub seed: u64,
    /// Fold-in algorithm override (`"gibbs"` or `"cvb0"`); the typed
    /// enum rejects anything else at parse time.
    #[serde(default)]
    pub algorithm: Option<FoldInAlgorithm>,
    /// Fold-in sweep budget override.
    #[serde(default)]
    pub sweeps: Option<usize>,
    /// Gibbs burn-in override.
    #[serde(default)]
    pub burn_in: Option<usize>,
    /// How many texture terms to report.
    #[serde(default)]
    pub top_terms: Option<usize>,
}

impl InferRequest {
    /// Resolves the request's overrides onto the service defaults.
    #[must_use]
    pub fn options(&self) -> InferOptions {
        let mut o = InferOptions {
            seed: self.seed,
            ..InferOptions::default()
        };
        if let Some(a) = self.algorithm {
            o.algorithm = a;
        }
        if let Some(s) = self.sweeps {
            o.sweeps = s;
        }
        if let Some(b) = self.burn_in {
            o.burn_in = b;
        }
        if let Some(t) = self.top_terms {
            o.top_terms = t;
        }
        o
    }
}

/// Front-end sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Inference worker threads.
    pub workers: usize,
    /// Largest micro-batch one worker drains at once.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 8,
        }
    }
}

/// A running server: accept loop plus worker pool. Dropping the handle
/// does **not** stop the server; call [`Server::shutdown`] (tests) or
/// [`Server::join`] (the CLI's serve-forever mode).
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<BatchQueue>,
    metrics: Arc<ServeMetrics>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, port 0 for an ephemeral
    /// test port) and starts the accept loop and `config.workers`
    /// inference workers.
    ///
    /// # Errors
    /// [`ServeError::Http`] if the address cannot be bound.
    pub fn bind(
        addr: &str,
        service: Arc<TextureService>,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Http {
            what: format!("bind {addr}: {e}"),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Http {
            what: format!("local_addr: {e}"),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BatchQueue::new());
        let metrics = Arc::new(ServeMetrics::new());

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let (service, queue, metrics) = (service.clone(), queue.clone(), metrics.clone());
                let max_batch = config.max_batch.max(1);
                std::thread::spawn(move || run_worker(&service, &queue, &metrics, max_batch))
            })
            .collect();

        let accept = {
            let (service, queue, metrics, stop) =
                (service, queue.clone(), metrics.clone(), stop.clone());
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let (service, queue, metrics) =
                        (service.clone(), queue.clone(), metrics.clone());
                    std::thread::spawn(move || {
                        handle_connection(stream, &service, &queue, &metrics);
                    });
                }
            })
        };

        Ok(Self {
            local_addr,
            stop,
            queue,
            metrics,
            accept,
            workers,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared serving metrics.
    #[must_use]
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        self.metrics.clone()
    }

    /// Blocks until the server stops (which only [`Server::shutdown`]
    /// from another handle — or process death — causes).
    pub fn join(self) {
        let _ = self.accept.join();
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Stops accepting, drains queued work, and joins every thread.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let _ = self.accept.join();
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: &TextureService,
    queue: &BatchQueue,
    metrics: &ServeMetrics,
) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let (status, body) = match read_request(&mut stream) {
        Ok(req) => route(&req, service, queue, metrics),
        Err(e) => error_body(400, &e.to_string()),
    };
    let _ = write_response(&mut stream, status, &body);
}

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

fn read_request(stream: &mut TcpStream) -> Result<Request, ServeError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ServeError::bad_request(format!("request line: {e}")))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::bad_request("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::bad_request("request line has no path"))?
        .to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| ServeError::bad_request(format!("header: {e}")))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ServeError::bad_request("unparseable content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(ServeError::bad_request(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| ServeError::bad_request(format!("body: {e}")))?;
    Ok(Request { method, path, body })
}

fn route(
    req: &Request,
    service: &TextureService,
    queue: &BatchQueue,
    metrics: &ServeMetrics,
) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => match service.health() {
            Ok(()) => (
                200,
                format!(
                    "{{\"status\":\"ok\",\"schema\":{}}}",
                    serde_json::to_string(&service.artifact().schema).expect("string to json")
                ),
            ),
            Err(e) => {
                let (_, body) = error_body(503, &e.to_string());
                (503, body)
            }
        },
        ("GET", "/metrics") => {
            let report = metrics.report(service.cache_stats());
            (
                200,
                serde_json::to_string(&report).expect("metrics serialize"),
            )
        }
        ("POST", "/v1/texture") => {
            let request: InferRequest = match serde_json::from_slice(&req.body) {
                Ok(r) => r,
                Err(e) => return error_body(400, &format!("invalid request body: {e}")),
            };
            let (tx, rx) = sync_channel(1);
            let accepted = queue.push(Job {
                recipe: request.recipe.clone(),
                options: request.options(),
                reply: tx,
            });
            if !accepted {
                return error_body(503, "server is shutting down");
            }
            match rx.recv() {
                Ok(Ok(prediction)) => (
                    200,
                    serde_json::to_string(&prediction).expect("prediction serialize"),
                ),
                Ok(Err(e)) => error_body(e.status(), &e.to_string()),
                Err(_) => error_body(503, "worker pool stopped"),
            }
        }
        _ => error_body(404, &format!("no route for {} {}", req.method, req.path)),
    }
}

fn error_body(status: u16, message: &str) -> (u16, String) {
    (
        status,
        format!(
            "{{\"error\":{}}}",
            serde_json::to_string(message).expect("string to json")
        ),
    )
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_overrides_resolve_onto_defaults() {
        let req: InferRequest = serde_json::from_str(
            r#"{"recipe":{"id":1,"title":"t","description":"d","ingredients":[]},
                "seed":9,"algorithm":"gibbs","sweeps":20,"burn_in":10}"#,
        )
        .unwrap();
        let o = req.options();
        assert_eq!(o.seed, 9);
        assert_eq!(o.algorithm, FoldInAlgorithm::Gibbs);
        assert_eq!(o.sweeps, 20);
        assert_eq!(o.burn_in, 10);
        assert_eq!(o.top_terms, InferOptions::default().top_terms);
    }

    #[test]
    fn unknown_algorithms_fail_at_parse_time() {
        let err = serde_json::from_str::<InferRequest>(
            r#"{"recipe":{"id":1,"title":"t","description":"d","ingredients":[]},
                "algorithm":"simulated-annealing"}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("algorithm") || err.is_data());
    }
}

//! The versioned, read-only model artifact (`rheotex.model/1`).
//!
//! An artifact is everything a serving replica needs to answer texture
//! queries about unseen recipes, frozen at export time:
//!
//! * the fit configuration and the **topic–word counts** in the engines'
//!   structure-of-arrays layout (`n_kw` flattened K×V plus the `n_k`
//!   totals) — the exact sufficient statistics the fold-in inferencer
//!   smooths into `φ̂`;
//! * the per-topic **Normal–Wishart posteriors** of the gel and emulsion
//!   components, from which the serving layer builds (and caches)
//!   Student-t posterior predictives for the `y_d` conditional;
//! * the **Table I linkage**: the KL divergence of every empirical
//!   rheology setting to every topic, precomputed with
//!   [`rheotex_linkage::assign_settings`] so the server ranks settings
//!   by a θ̂-weighted sum without touching the fitted model;
//! * the **texture dictionary** of the fit, so raw recipe text
//!   featurizes to the exact vocabulary the counts index;
//! * **fit provenance**: kernel class, seed, thread count, and optional
//!   git/host metadata.
//!
//! On disk the artifact is a JSON payload inside the same CRC-framed
//! container the checkpoint store uses ([`rheotex_resilience::format`]):
//! magic, version, length, CRC-32, payload. Integrity failures therefore
//! surface through the established resilience taxonomy (bad magic,
//! truncation, checksum mismatch), and the `/healthz` endpoint is a
//! frame re-verification.

use crate::error::ServeError;
use rheotex_core::checkpoint::JointSnapshot;
use rheotex_core::{FittedJointModel, FrozenTopics, GibbsKernel, JointConfig};
use rheotex_linalg::dist::NormalWishart;
use rheotex_linkage::{assign_settings, SettingAssignment};
use rheotex_resilience::format::{decode_frame, encode_frame};
use rheotex_resilience::ResilienceError;
use rheotex_textures::TextureDictionary;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// The schema identifier this build writes and serves.
pub const MODEL_SCHEMA: &str = "rheotex.model/1";

/// Where the frozen fit came from: kernel class, seed, and optional
/// environment metadata for auditing a served answer back to its run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FitProvenance {
    /// Gibbs kernel class of the fit that produced the counts.
    pub kernel: GibbsKernel,
    /// Pipeline seed of the fit.
    pub seed: u64,
    /// Worker threads of the fit (0 = serial).
    pub threads: usize,
    /// How the export obtained the fit: `"fresh-fit"` or
    /// `"checkpoint:<dir>"`.
    pub source: String,
    /// Git revision of the exporting build, when discoverable.
    #[serde(default)]
    pub git_revision: Option<String>,
    /// Hostname of the exporting machine, when discoverable.
    #[serde(default)]
    pub host: Option<String>,
}

/// The versioned, read-only serving artifact. See the module docs for
/// the field-by-field rationale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Always [`MODEL_SCHEMA`] for artifacts this build writes.
    pub schema: String,
    /// Fit configuration (topic count, vocabulary, priors, sweeps).
    pub config: JointConfig,
    /// Fit provenance.
    pub provenance: FitProvenance,
    /// Term-topic counts, flattened K×V row-major.
    pub n_kw: Vec<u32>,
    /// Tokens per topic (`n_k[t] = Σ_w n_kw[t·V + w]`).
    pub n_k: Vec<u32>,
    /// Per-topic Normal–Wishart posteriors of the gel component.
    pub gel_posteriors: Vec<NormalWishart>,
    /// Per-topic Normal–Wishart posteriors of the emulsion component.
    pub emulsion_posteriors: Vec<NormalWishart>,
    /// KL linkage of every Table I rheology setting to every topic,
    /// in `rheotex_rheology::table1()` row order.
    pub table1: Vec<SettingAssignment>,
    /// The texture dictionary of the fit; its term ids index `n_kw`
    /// columns directly.
    pub dict: TextureDictionary,
}

impl ModelArtifact {
    /// Assembles an artifact from a completed fit: the fitted model (for
    /// the Gaussian posteriors), the **final** checkpoint snapshot (for
    /// the raw topic–word counts the fold-in inferencer needs), and the
    /// fit's dictionary. Computes the Table I linkage here so serving
    /// never needs the fitted model.
    ///
    /// # Errors
    /// [`ServeError::Invalid`] when the snapshot is not final or
    /// disagrees with the model's shape; [`ServeError::Model`] if the
    /// KL linkage fails.
    pub fn build(
        model: &FittedJointModel,
        snapshot: &JointSnapshot,
        dict: &TextureDictionary,
        provenance: FitProvenance,
    ) -> Result<Self, ServeError> {
        if snapshot.next_sweep < snapshot.config.sweeps {
            return Err(ServeError::invalid(format!(
                "snapshot covers {} of {} sweeps; export needs a completed fit",
                snapshot.next_sweep, snapshot.config.sweeps
            )));
        }
        if snapshot.config.n_topics != model.config.n_topics
            || snapshot.config.vocab_size != model.config.vocab_size
        {
            return Err(ServeError::invalid(format!(
                "snapshot shape K={} V={} disagrees with fitted model K={} V={}",
                snapshot.config.n_topics,
                snapshot.config.vocab_size,
                model.config.n_topics,
                model.config.vocab_size
            )));
        }
        let settings: Vec<(u32, [f64; 3])> = rheotex_rheology::table1()
            .iter()
            .map(|s| (s.id, s.gels))
            .collect();
        let table1 = assign_settings(model, &settings)?;
        let artifact = Self {
            schema: MODEL_SCHEMA.to_string(),
            config: model.config.clone(),
            provenance,
            n_kw: snapshot.n_kw.clone(),
            n_k: snapshot.n_k.clone(),
            gel_posteriors: model.gel_posteriors.clone(),
            emulsion_posteriors: model.emulsion_posteriors.clone(),
            table1,
            dict: dict.clone(),
        };
        artifact.validate()?;
        Ok(artifact)
    }

    /// Structural self-check: schema, count shapes, per-topic totals,
    /// posterior dimensions, linkage lengths, dictionary size. `load`
    /// runs this; `/healthz` re-runs it against the bytes on disk.
    ///
    /// # Errors
    /// [`ServeError::Schema`] or [`ServeError::Invalid`] naming the
    /// first inconsistency found.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.schema != MODEL_SCHEMA {
            return Err(ServeError::Schema {
                found: self.schema.clone(),
            });
        }
        let (k, v) = (self.config.n_topics, self.config.vocab_size);
        if self.n_k.len() != k || self.n_kw.len() != k * v {
            return Err(ServeError::invalid(format!(
                "count shapes (n_k {}, n_kw {}) disagree with config K={k} V={v}",
                self.n_k.len(),
                self.n_kw.len()
            )));
        }
        for t in 0..k {
            let sum: u64 = self.n_kw[t * v..(t + 1) * v]
                .iter()
                .map(|&c| u64::from(c))
                .sum();
            if sum != u64::from(self.n_k[t]) {
                return Err(ServeError::invalid(format!(
                    "topic {t}: n_k = {} but word counts sum to {sum}",
                    self.n_k[t]
                )));
            }
        }
        if self.gel_posteriors.len() != k || self.emulsion_posteriors.len() != k {
            return Err(ServeError::invalid(format!(
                "{} gel / {} emulsion posteriors for K={k}",
                self.gel_posteriors.len(),
                self.emulsion_posteriors.len()
            )));
        }
        for (name, dim, posts) in [
            ("gel", self.config.gel_dim, &self.gel_posteriors),
            ("emulsion", self.config.emulsion_dim, &self.emulsion_posteriors),
        ] {
            if let Some(p) = posts.iter().find(|p| p.dim() != dim) {
                return Err(ServeError::invalid(format!(
                    "{name} posterior has dimension {}, config says {dim}",
                    p.dim()
                )));
            }
        }
        if let Some(a) = self.table1.iter().find(|a| a.all_kl.len() != k) {
            return Err(ServeError::invalid(format!(
                "Table I setting {} scores {} topics, expected {k}",
                a.setting_id,
                a.all_kl.len()
            )));
        }
        if self.dict.len() != v {
            return Err(ServeError::invalid(format!(
                "dictionary has {} terms but the vocabulary is {v}",
                self.dict.len()
            )));
        }
        Ok(())
    }

    /// The frozen topic–word structure for fold-in inference, smoothed
    /// with the fit's own `α`/`γ`.
    ///
    /// # Errors
    /// [`ServeError::Model`] if the counts fail the fold-in layer's own
    /// validation (cannot happen for a [`Self::validate`]d artifact).
    pub fn frozen_topics(&self) -> Result<FrozenTopics, ServeError> {
        Ok(FrozenTopics::from_counts(
            &self.n_kw,
            &self.n_k,
            self.config.vocab_size,
            self.config.alpha,
            self.config.gamma,
        )?)
    }

    /// Serializes into the CRC-framed container.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = serde_json::to_vec(self).expect("artifact serialization is infallible");
        encode_frame(&payload)
    }

    /// Decodes a framed artifact: frame integrity first (the resilience
    /// taxonomy), then the schema gate, then the structural self-check.
    /// The dictionary's surface index is rebuilt, so the returned
    /// artifact is ready to featurize text.
    ///
    /// # Errors
    /// [`ServeError::Frame`] for byte-level damage,
    /// [`ServeError::Schema`] for foreign or future payloads,
    /// [`ServeError::Invalid`] for structural inconsistencies.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ServeError> {
        let payload = decode_frame(bytes)?;
        // Peek at the schema before committing to the full shape, so a
        // checkpoint (same frame, different payload) is diagnosed as a
        // schema mismatch rather than an opaque parse failure.
        let value: serde_json::Value =
            serde_json::from_slice(payload).map_err(|e| ResilienceError::Corrupt {
                what: e.to_string(),
            })?;
        let found = value
            .get("schema")
            .and_then(serde_json::Value::as_str)
            .unwrap_or_default()
            .to_string();
        if found != MODEL_SCHEMA {
            return Err(ServeError::Schema { found });
        }
        let mut artifact: Self =
            serde_json::from_value(value).map_err(|e| ResilienceError::Corrupt {
                what: e.to_string(),
            })?;
        artifact.dict.rebuild_index();
        artifact.validate()?;
        Ok(artifact)
    }

    /// Atomically writes the framed artifact: temp file, `sync_all`,
    /// rename — a crash mid-write never leaves a torn artifact behind.
    ///
    /// # Errors
    /// [`ServeError::Frame`] wrapping the I/O diagnosis.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        let bytes = self.to_bytes();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).map_err(|e| io_err("create artifact dir", &e))?;
        }
        let tmp = path.with_extension("tmp");
        let mut file = fs::File::create(&tmp).map_err(|e| io_err("create temp artifact", &e))?;
        file.write_all(&bytes)
            .map_err(|e| io_err("write artifact", &e))?;
        file.sync_all().map_err(|e| io_err("sync artifact", &e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| io_err("rename artifact", &e))?;
        Ok(())
    }

    /// Reads and fully verifies an artifact file.
    ///
    /// # Errors
    /// As [`Self::from_bytes`], plus [`ServeError::Frame`] for read
    /// failures.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let bytes = fs::read(path).map_err(|e| io_err("read artifact", &e))?;
        Self::from_bytes(&bytes)
    }

    /// Integrity re-check of the bytes on disk — the `/healthz` probe.
    /// Same verification as [`Self::load`], discarding the payload.
    ///
    /// # Errors
    /// As [`Self::load`].
    pub fn verify_file(path: &Path) -> Result<(), ServeError> {
        Self::load(path).map(|_| ())
    }
}

fn io_err(what: &str, e: &std::io::Error) -> ServeError {
    ServeError::Frame(ResilienceError::Io {
        what: format!("{what}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rheotex_resilience::format::HEADER_LEN;

    fn tiny_artifact() -> ModelArtifact {
        crate::test_fixture::artifact()
    }

    #[test]
    fn round_trips_through_the_frame() {
        let a = tiny_artifact();
        let bytes = a.to_bytes();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.schema, MODEL_SCHEMA);
        assert_eq!(back.n_kw, a.n_kw);
        assert_eq!(back.n_k, a.n_k);
        assert_eq!(back.config, a.config);
        assert_eq!(back.provenance, a.provenance);
        // The rebuilt dictionary index works.
        let id = back.dict.lookup("purupuru");
        assert_eq!(id, a.dict.lookup("purupuru"));
    }

    #[test]
    fn save_and_load_are_atomic_partners() {
        let dir = std::env::temp_dir().join(format!("rheotex-artifact-{}", std::process::id()));
        let path = dir.join("model.rtm");
        let a = tiny_artifact();
        a.save(&path).unwrap();
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(back.n_kw, a.n_kw);
        ModelArtifact::verify_file(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_diagnosed_through_the_resilience_taxonomy() {
        let a = tiny_artifact();
        let good = a.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            ModelArtifact::from_bytes(&bad_magic),
            Err(ServeError::Frame(ResilienceError::BadMagic))
        ));

        let truncated = &good[..good.len() - 3];
        assert!(matches!(
            ModelArtifact::from_bytes(truncated),
            Err(ServeError::Frame(ResilienceError::Truncated))
        ));

        let mut bit_rot = good.clone();
        *bit_rot.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            ModelArtifact::from_bytes(&bit_rot),
            Err(ServeError::Frame(ResilienceError::CrcMismatch { .. }))
        ));

        // An intact frame whose payload is not an artifact: schema gate.
        let foreign = encode_frame(b"{\"schema\":\"rheotex.model/9\"}");
        assert!(matches!(
            ModelArtifact::from_bytes(&foreign),
            Err(ServeError::Schema { found }) if found == "rheotex.model/9"
        ));
        let nameless = encode_frame(b"{\"next_sweep\":4}");
        assert!(matches!(
            ModelArtifact::from_bytes(&nameless),
            Err(ServeError::Schema { found }) if found.is_empty()
        ));

        // Sanity: the frame header is where we think it is.
        assert!(good.len() > HEADER_LEN);
    }

    #[test]
    fn validate_rejects_inconsistent_shapes() {
        let mut a = tiny_artifact();
        a.n_k[0] += 1;
        assert!(matches!(a.validate(), Err(ServeError::Invalid { .. })));

        let mut a = tiny_artifact();
        a.table1[0].all_kl.pop();
        assert!(matches!(a.validate(), Err(ServeError::Invalid { .. })));

        let mut a = tiny_artifact();
        a.gel_posteriors.pop();
        assert!(matches!(a.validate(), Err(ServeError::Invalid { .. })));

        let mut a = tiny_artifact();
        a.schema = "rheotex.model/2".into();
        assert!(matches!(a.validate(), Err(ServeError::Schema { .. })));
    }

    #[test]
    fn frozen_topics_match_the_counts() {
        let a = tiny_artifact();
        let frozen = a.frozen_topics().unwrap();
        assert_eq!(frozen.n_topics(), a.config.n_topics);
        assert_eq!(frozen.vocab_size(), a.config.vocab_size);
    }
}

//! The texture inference **service**: everything between a finished fit
//! and an HTTP answer about an unseen recipe.
//!
//! Three layers, each usable on its own:
//!
//! * [`artifact`] — the versioned `rheotex.model/1` artifact: frozen
//!   topic–word counts, Normal–Wishart posteriors, the Table I KL
//!   linkage, the texture dictionary, and fit provenance, wrapped in the
//!   resilience crate's CRC frame. `rheotex export-model` writes one;
//!   [`ModelArtifact::load`] verifies and opens one.
//! * [`service`] — [`TextureService`]: featurizes a posted recipe,
//!   folds it into the frozen topics ([`rheotex_core::foldin`]),
//!   assigns the paper's per-recipe topic `y_d` through cached
//!   posterior predictives, and reports texture terms, rheological
//!   coordinates, and the nearest Table I setting as a
//!   `rheotex.serve/1` response.
//! * [`http`] — a dependency-free HTTP/1.1 front end that micro-batches
//!   concurrent requests onto a worker pool ([`batch`]), shares one
//!   predictive cache across all of them, and exposes `/healthz`
//!   (artifact integrity), `/metrics` (latency histograms, batch sizes,
//!   cache hit rate), and `POST /v1/texture`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod artifact;
pub mod batch;
pub mod error;
pub mod http;
pub mod metrics;
pub mod service;

pub use artifact::{FitProvenance, ModelArtifact, MODEL_SCHEMA};
pub use batch::{BatchQueue, Job};
pub use error::ServeError;
pub use http::{InferRequest, Server, ServerConfig};
pub use metrics::{MetricsReport, ServeMetrics};
pub use service::{
    InferOptions, TexturePrediction, TextureService, SERVE_SCHEMA,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Deterministic miniature fixtures shared by this crate's unit and
/// integration tests (and nothing else — hidden from docs).
#[doc(hidden)]
pub mod test_fixture {
    use crate::artifact::{FitProvenance, ModelArtifact};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rheotex_core::checkpoint::{MemoryCheckpointSink, SamplerSnapshot};
    use rheotex_core::{FitOptions, GibbsKernel, JointConfig, JointTopicModel, ModelDoc};
    use rheotex_corpus::features::{emulsion_info_vector, gel_info_vector};
    use rheotex_corpus::{IngredientLine, Recipe};
    use rheotex_textures::TextureDictionary;

    /// A tiny three-band corpus over the gel-active vocabulary: band `b`
    /// owns words `[13b, 13b + 13)` and one gel type.
    fn banded_docs(n: usize) -> Vec<ModelDoc> {
        (0..n)
            .map(|i| {
                let band = i % 3;
                let wobble = 1.0 + 0.03 * (i % 5) as f64;
                let mut gels = [0.0f64; 3];
                gels[band] = 0.01 * (band + 1) as f64 * wobble;
                let mut emus = [0.0f64; 6];
                emus[band] = 0.05 * wobble;
                let terms: Vec<usize> = (0..5).map(|j| band * 13 + (i + 2 * j) % 13).collect();
                ModelDoc::new(
                    i as u64,
                    terms,
                    gel_info_vector(&gels),
                    emulsion_info_vector(&emus),
                )
            })
            .collect()
    }

    /// Fits a miniature joint model under the given kernel/thread
    /// combination and exports it. Deterministic per combination.
    pub fn artifact_with(kernel: GibbsKernel, threads: usize) -> ModelArtifact {
        let dict = TextureDictionary::gel_active();
        let config = JointConfig {
            n_topics: 3,
            sweeps: 12,
            burn_in: 6,
            ..JointConfig::quick(3, dict.len())
        };
        let docs = banded_docs(60);
        let model = JointTopicModel::new(config.clone()).unwrap();
        let mut sink = MemoryCheckpointSink::new(config.sweeps);
        let fitted = model
            .fit_with(
                &mut ChaCha8Rng::seed_from_u64(23),
                &docs,
                FitOptions::new()
                    .kernel(kernel)
                    .threads(threads)
                    .checkpoint(&mut sink),
            )
            .unwrap();
        let SamplerSnapshot::Joint(snapshot) = sink.snapshots.last().expect("final checkpoint")
        else {
            panic!("joint fit writes joint snapshots");
        };
        assert_eq!(snapshot.next_sweep, config.sweeps, "snapshot must be final");
        ModelArtifact::build(
            &fitted,
            snapshot,
            &dict,
            FitProvenance {
                kernel,
                seed: 23,
                threads,
                source: "fresh-fit".to_string(),
                git_revision: None,
                host: None,
            },
        )
        .unwrap()
    }

    /// The default fixture artifact (serial kernel).
    pub fn artifact() -> ModelArtifact {
        artifact_with(GibbsKernel::Serial, 0)
    }

    /// A posted recipe with recognizable texture terms and ingredients.
    pub fn recipe() -> Recipe {
        Recipe {
            id: 900,
            title: "purupuru milk jelly".to_string(),
            description: "totemo purupuru de fuwafuwa no miruku jelly".to_string(),
            ingredients: vec![
                IngredientLine::new("gelatin", "5g"),
                IngredientLine::new("milk", "200cc"),
                IngredientLine::new("sugar", "30g"),
                IngredientLine::new("water", "100cc"),
            ],
        }
    }
}

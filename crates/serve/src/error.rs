//! Typed failure modes of the serving layer.

use rheotex_core::ModelError;
use rheotex_resilience::ResilienceError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong loading an artifact or answering a
/// request.
///
/// Artifact byte-level problems (bad magic, truncation, bit rot) arrive
/// as [`ServeError::Frame`] wrapping the resilience crate's diagnosis —
/// the artifact reuses the checkpoint frame, so it inherits the same
/// integrity taxonomy. [`ServeError::BadRequest`] marks client mistakes
/// (HTTP 400); every other variant is a server-side failure.
#[derive(Debug)]
pub enum ServeError {
    /// The artifact file failed frame-level decoding or I/O:
    /// see [`ResilienceError`] for the exact diagnosis.
    Frame(ResilienceError),
    /// The frame decoded but its payload declares a schema this build
    /// does not serve.
    Schema {
        /// The schema string found in the payload (empty if absent).
        found: String,
    },
    /// The artifact parsed but is internally inconsistent (count shapes,
    /// posterior dimensions, linkage lengths).
    Invalid {
        /// What is inconsistent.
        what: String,
    },
    /// A model-layer failure (fold-in rejected the input, a predictive
    /// distribution failed to factor, …).
    Model(ModelError),
    /// The client's request is malformed or describes a recipe the
    /// featurizer must reject.
    BadRequest {
        /// What is wrong with the request.
        what: String,
    },
    /// A socket-level failure in the HTTP front end.
    Http {
        /// Which operation failed.
        what: String,
    },
}

impl ServeError {
    /// Shorthand for an [`ServeError::Invalid`] artifact diagnosis.
    pub fn invalid(what: impl Into<String>) -> Self {
        Self::Invalid { what: what.into() }
    }

    /// Shorthand for a [`ServeError::BadRequest`] diagnosis.
    pub fn bad_request(what: impl Into<String>) -> Self {
        Self::BadRequest { what: what.into() }
    }

    /// The HTTP status code this failure maps to.
    #[must_use]
    pub fn status(&self) -> u16 {
        match self {
            Self::BadRequest { .. } => 400,
            Self::Frame(_) | Self::Schema { .. } | Self::Invalid { .. } => 503,
            Self::Model(_) | Self::Http { .. } => 500,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Frame(e) => write!(f, "artifact frame error: {e}"),
            Self::Schema { found } if found.is_empty() => {
                write!(f, "payload declares no artifact schema")
            }
            Self::Schema { found } => {
                write!(f, "unsupported artifact schema {found:?}")
            }
            Self::Invalid { what } => write!(f, "invalid artifact: {what}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::BadRequest { what } => write!(f, "bad request: {what}"),
            Self::Http { what } => write!(f, "http error: {what}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Frame(e) => Some(e),
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ResilienceError> for ServeError {
    fn from(e: ResilienceError) -> Self {
        Self::Frame(e)
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_separate_client_from_server_faults() {
        assert_eq!(ServeError::bad_request("x").status(), 400);
        assert_eq!(ServeError::invalid("x").status(), 503);
        assert_eq!(ServeError::Frame(ResilienceError::BadMagic).status(), 503);
        assert_eq!(
            ServeError::Http {
                what: "write".into()
            }
            .status(),
            500
        );
    }

    #[test]
    fn displays_carry_the_inner_diagnosis() {
        let e = ServeError::from(ResilienceError::Truncated);
        assert!(e.to_string().contains("truncated"), "{e}");
        let s = ServeError::Schema {
            found: "rheotex.model/9".into(),
        };
        assert!(s.to_string().contains("rheotex.model/9"), "{s}");
        assert!(ServeError::Schema { found: String::new() }
            .to_string()
            .contains("no artifact schema"));
    }
}

//! Micro-batching between the connection threads and the inference
//! workers.
//!
//! Connection threads [`BatchQueue::push`] one [`Job`] per request and
//! block on the job's private reply channel. Each worker repeatedly
//! drains **up to** `max_batch` queued jobs in one lock acquisition
//! ([`BatchQueue::next_batch`]) and answers them against the shared
//! [`TextureService`]. Under light load a batch is a single request
//! (no added latency — the queue never waits to fill a batch); under
//! concurrent load, requests that arrived while a worker was busy are
//! drained together, amortizing the queue handoff and keeping the
//! per-batch latency histogram honest about coalescing behaviour.

use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::service::{InferOptions, TexturePrediction, TextureService};
use rheotex_corpus::Recipe;
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One queued inference request with its private reply channel.
pub struct Job {
    /// The posted recipe.
    pub recipe: Recipe,
    /// Resolved inference options.
    pub options: InferOptions,
    /// Where the worker sends the outcome; the connection thread blocks
    /// on the paired receiver.
    pub reply: SyncSender<Result<TexturePrediction, ServeError>>,
}

/// A closable MPMC queue of [`Job`]s with batched draining.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

impl Default for BatchQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchQueue {
    /// An open, empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job. Returns `false` (dropping the job, which closes
    /// its reply channel) once the queue has been closed.
    pub fn push(&self, job: Job) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.open {
            return false;
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Blocks until at least one job is queued, then drains up to
    /// `max_batch` of them. Returns `None` once the queue is closed
    /// *and* empty — the worker's exit signal.
    pub fn next_batch(&self, max_batch: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.jobs.is_empty() {
                let take = state.jobs.len().min(max_batch.max(1));
                return Some(state.jobs.drain(..take).collect());
            }
            if !state.open {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// workers exit once the backlog is empty.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.open = false;
        drop(state);
        self.ready.notify_all();
    }

    /// Jobs currently queued (for tests and introspection).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }
}

/// One inference worker: drains batches until the queue closes. Every
/// answer's latency lands in `metrics`; the reply send is best-effort
/// (the client may have hung up).
pub fn run_worker(
    service: &TextureService,
    queue: &BatchQueue,
    metrics: &ServeMetrics,
    max_batch: usize,
) {
    while let Some(batch) = queue.next_batch(max_batch) {
        let batch_start = Instant::now();
        let size = batch.len();
        for job in batch {
            let start = Instant::now();
            let outcome = service.infer(&job.recipe, &job.options);
            metrics.record_request(start.elapsed(), outcome.is_ok());
            let _ = job.reply.send(outcome);
        }
        metrics.record_batch(batch_start.elapsed(), size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixture;
    use std::sync::mpsc::sync_channel;
    use std::sync::Arc;

    fn job(recipe: Recipe) -> (Job, std::sync::mpsc::Receiver<Result<TexturePrediction, ServeError>>) {
        let (tx, rx) = sync_channel(1);
        (
            Job {
                recipe,
                options: InferOptions::default(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn drains_queued_jobs_as_one_batch() {
        let queue = BatchQueue::new();
        let (a, _ra) = job(test_fixture::recipe());
        let (b, _rb) = job(test_fixture::recipe());
        let (c, _rc) = job(test_fixture::recipe());
        assert!(queue.push(a));
        assert!(queue.push(b));
        assert!(queue.push(c));
        assert_eq!(queue.depth(), 3);
        let batch = queue.next_batch(2).unwrap();
        assert_eq!(batch.len(), 2, "capped at max_batch");
        let batch = queue.next_batch(2).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn close_rejects_new_jobs_and_releases_workers() {
        let queue = BatchQueue::new();
        queue.close();
        let (j, _r) = job(test_fixture::recipe());
        assert!(!queue.push(j));
        assert!(queue.next_batch(8).is_none());
    }

    #[test]
    fn worker_answers_jobs_through_their_reply_channels() {
        let service = Arc::new(
            TextureService::from_artifact(test_fixture::artifact()).unwrap(),
        );
        let queue = Arc::new(BatchQueue::new());
        let metrics = Arc::new(ServeMetrics::new());
        let worker = {
            let (service, queue, metrics) = (service.clone(), queue.clone(), metrics.clone());
            std::thread::spawn(move || run_worker(&service, &queue, &metrics, 4))
        };

        let (j1, r1) = job(test_fixture::recipe());
        let mut bad = test_fixture::recipe();
        bad.ingredients.clear();
        let (j2, r2) = job(bad);
        assert!(queue.push(j1));
        assert!(queue.push(j2));

        let ok = r1.recv().unwrap();
        assert!(ok.is_ok());
        let err = r2.recv().unwrap();
        assert_eq!(err.unwrap_err().status(), 400);

        queue.close();
        worker.join().unwrap();
        let report = metrics.report(service.cache_stats());
        assert_eq!(report.requests, 2);
        assert_eq!(report.failures, 1);
        assert!(report.batch_size.count >= 1);
    }
}

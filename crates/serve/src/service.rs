//! The inference service: recipe in, `rheotex.serve/1` prediction out.
//!
//! One [`TextureService`] owns a verified [`ModelArtifact`] and answers
//! any number of concurrent requests. Per request:
//!
//! 1. **Featurize** — parse the posted recipe against the built-in
//!    ingredient database and extract texture terms with the artifact's
//!    own dictionary, exactly as the fitting pipeline did.
//! 2. **Fold in** — infer the recipe's topic distribution `θ̂` over the
//!    frozen topic–word counts ([`rheotex_core::foldin`]), deterministic
//!    given the request's seed.
//! 3. **Assign `y`** — the paper's per-recipe topic conditional
//!    `p(y = k) ∝ θ̂_k · t_k(g) · t_k(e)` with the gel/emulsion
//!    Normal–Wishart posteriors integrated into Student-t predictives.
//!    The predictives are built lazily in one shared
//!    [`PredictiveCache`] (slots `k` for gel, `K + k` for emulsion) —
//!    the posteriors are frozen, so a slot is built once over the
//!    server's lifetime and every later request hits.
//! 4. **Report** — topic mixture, the assigned topic's top texture
//!    terms, rheological coordinates and TPA-derived attributes
//!    (plus the spreadability-control sugar: viscosity index and
//!    spreadability), and the nearest Table I setting by θ̂-weighted
//!    KL linkage with per-gel formula recommendations.

use crate::artifact::ModelArtifact;
use crate::error::ServeError;
use rheotex_core::foldin::{fold_in, FoldInAlgorithm, FoldInConfig, FrozenTopics};
use rheotex_core::ModelError;
use rheotex_corpus::{IngredientDb, Recipe, RecipeFeatures};
use rheotex_linalg::dist::PredictiveCache;
use rheotex_rheology::GelMechanics;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The response schema identifier.
pub const SERVE_SCHEMA: &str = "rheotex.serve/1";

/// Gel component names in Table I column order.
const GEL_NAMES: [&str; 3] = ["gelatin", "kanten", "agar"];

/// Per-request inference options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferOptions {
    /// Fold-in algorithm (default CVB0 — deterministic without seed
    /// coordination).
    pub algorithm: FoldInAlgorithm,
    /// Fold-in sweep budget.
    pub sweeps: usize,
    /// Gibbs burn-in (ignored by CVB0).
    pub burn_in: usize,
    /// RNG seed for the Gibbs fold-in (ignored by CVB0). The response is
    /// a pure function of `(artifact, recipe, options)` including this.
    pub seed: u64,
    /// How many texture terms of the assigned topic to report.
    pub top_terms: usize,
}

impl Default for InferOptions {
    fn default() -> Self {
        let f = FoldInConfig::default();
        Self {
            algorithm: f.algorithm,
            sweeps: f.sweeps,
            burn_in: f.burn_in,
            seed: 0,
            top_terms: 5,
        }
    }
}

/// One reported texture term of the assigned topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextureTerm {
    /// Romanized surface form.
    pub term: String,
    /// English gloss.
    pub gloss: String,
    /// Frozen `φ̂` weight of the term in the assigned topic.
    pub weight: f64,
}

/// Rheological coordinates and TPA-derived attributes of the recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RheologyReport {
    /// Raw gel weight ratios (gelatin, kanten, agar).
    pub gel_concentrations: [f64; 3],
    /// Raw emulsion weight ratios.
    pub emulsion_concentrations: [f64; 6],
    /// Gel information-quantity coordinates (`−ln` concentration) — the
    /// space the topic Gaussians live in.
    pub gel_coordinates: Vec<f64>,
    /// Emulsion information-quantity coordinates.
    pub emulsion_coordinates: Vec<f64>,
    /// TPA hardness (rheometer units).
    pub hardness: f64,
    /// TPA cohesiveness.
    pub cohesiveness: f64,
    /// TPA adhesiveness.
    pub adhesiveness: f64,
    /// Heuristic flow-resistance index: `hardness × cohesiveness`.
    pub viscosity_index: f64,
    /// Heuristic spreadability in `[0, 1]`:
    /// `adhesiveness / (adhesiveness + hardness)` (0 when both vanish).
    pub spreadability: f64,
}

/// One per-gel formula recommendation toward the nearest Table I setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GelRecommendation {
    /// Gel component name.
    pub gel: String,
    /// The recipe's current weight ratio.
    pub current: f64,
    /// The nearest empirical setting's weight ratio.
    pub suggested: f64,
    /// `suggested − current`.
    pub delta: f64,
}

/// The empirical Table I setting closest to the recipe's topic mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NearestSetting {
    /// Table I row id.
    pub setting_id: u32,
    /// θ̂-weighted KL score (lower is closer).
    pub score: f64,
    /// The setting's gel weight ratios.
    pub gels: [f64; 3],
    /// The setting's measured TPA attributes.
    pub hardness: f64,
    /// Measured cohesiveness.
    pub cohesiveness: f64,
    /// Measured adhesiveness.
    pub adhesiveness: f64,
    /// Per-gel adjustments that would move the recipe onto the setting.
    pub recommendations: Vec<GelRecommendation>,
}

/// How the fold-in ran (echoed so responses are self-describing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldInReport {
    /// Algorithm used.
    pub algorithm: FoldInAlgorithm,
    /// Sweeps actually run.
    pub sweeps_run: usize,
    /// Seed used (meaningful for Gibbs only).
    pub seed: u64,
}

/// The full `rheotex.serve/1` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TexturePrediction {
    /// Always [`SERVE_SCHEMA`].
    pub schema: String,
    /// Echo of the posted recipe id.
    pub recipe_id: u64,
    /// Dictionary terms matched in the description, in order.
    pub terms_matched: Vec<String>,
    /// Folded-in topic mixture `θ̂`.
    pub topic_mixture: Vec<f64>,
    /// Argmax of the topic mixture.
    pub top_topic: usize,
    /// The paper's per-recipe topic `y_d`: argmax of `y_posterior`.
    pub y_topic: usize,
    /// Posterior over `y_d` combining `θ̂` with both concentration
    /// likelihoods.
    pub y_posterior: Vec<f64>,
    /// Top texture terms of `y_topic` under the frozen `φ̂`.
    pub texture_terms: Vec<TextureTerm>,
    /// Rheological coordinates and attributes.
    pub rheology: RheologyReport,
    /// Nearest empirical Table I setting.
    pub nearest_setting: NearestSetting,
    /// Fold-in echo.
    pub fold_in: FoldInReport,
}

/// The serving core: one verified artifact, one shared predictive cache,
/// any number of concurrent [`TextureService::infer`] calls.
pub struct TextureService {
    artifact: ModelArtifact,
    frozen: FrozenTopics,
    db: IngredientDb,
    /// 2K slots: `k` holds topic `k`'s gel predictive, `K + k` its
    /// emulsion predictive. Frozen posteriors → never invalidated.
    cache: Mutex<PredictiveCache>,
    path: Option<PathBuf>,
}

impl TextureService {
    /// Wraps an already-verified artifact.
    ///
    /// # Errors
    /// [`ServeError::Invalid`] if the artifact fails validation.
    pub fn from_artifact(artifact: ModelArtifact) -> Result<Self, ServeError> {
        artifact.validate()?;
        let frozen = artifact.frozen_topics()?;
        let k = artifact.config.n_topics;
        Ok(Self {
            artifact,
            frozen,
            db: IngredientDb::builtin(),
            cache: Mutex::new(PredictiveCache::new(2 * k)),
            path: None,
        })
    }

    /// Loads, verifies, and wraps an artifact file. The path is kept so
    /// [`TextureService::health`] re-verifies the bytes on disk.
    ///
    /// # Errors
    /// As [`ModelArtifact::load`].
    pub fn open(path: &Path) -> Result<Self, ServeError> {
        let artifact = ModelArtifact::load(path)?;
        let mut service = Self::from_artifact(artifact)?;
        service.path = Some(path.to_path_buf());
        Ok(service)
    }

    /// The artifact being served.
    #[must_use]
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The integrity probe behind `/healthz`: for a file-backed service,
    /// re-reads and re-verifies the artifact bytes on disk (catching
    /// deletion or in-place corruption while serving); for an in-memory
    /// artifact, re-runs structural validation.
    ///
    /// # Errors
    /// The integrity diagnosis.
    pub fn health(&self) -> Result<(), ServeError> {
        match &self.path {
            Some(p) => ModelArtifact::verify_file(p),
            None => self.artifact.validate(),
        }
    }

    /// Predictive-cache counters: `(lookups, hits, hit_rate)`.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64, f64) {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        (cache.lookups(), cache.hits(), cache.hit_rate())
    }

    /// Answers one recipe. Pure function of
    /// `(artifact, recipe, options)` — byte-identical JSON for identical
    /// inputs, which is the serving determinism contract.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for unparseable or zero-weight
    /// recipes; [`ServeError::Model`] for numerical failures.
    pub fn infer(
        &self,
        recipe: &Recipe,
        options: &InferOptions,
    ) -> Result<TexturePrediction, ServeError> {
        let parsed = recipe
            .parse(&self.db)
            .map_err(|e| ServeError::bad_request(format!("unparseable recipe: {e}")))?;
        let features = RecipeFeatures::from_parsed(&parsed, &self.artifact.dict)
            .ok_or_else(|| ServeError::bad_request("recipe has zero total weight"))?;

        let terms: Vec<usize> = features.terms.iter().map(|t| t.index()).collect();
        let cfg = FoldInConfig::new()
            .algorithm(options.algorithm)
            .sweeps(options.sweeps)
            .burn_in(options.burn_in);
        let fold = fold_in(&self.frozen, &terms, &cfg, options.seed)?;

        let y_posterior = self.y_posterior(&fold.theta, &features)?;
        let y_topic = argmax(&y_posterior);

        let texture_terms = self.top_terms(y_topic, options.top_terms);
        let rheology = rheology_report(&features);
        let nearest_setting = self.nearest_setting(&fold.theta, &features);

        Ok(TexturePrediction {
            schema: SERVE_SCHEMA.to_string(),
            recipe_id: recipe.id,
            terms_matched: features
                .terms
                .iter()
                .map(|&t| self.artifact.dict.entry(t).surface.clone())
                .collect(),
            topic_mixture: fold.theta.clone(),
            top_topic: fold.top_topic(),
            y_topic,
            y_posterior,
            texture_terms,
            rheology,
            nearest_setting,
            fold_in: FoldInReport {
                algorithm: options.algorithm,
                sweeps_run: fold.sweeps_run,
                seed: options.seed,
            },
        })
    }

    /// `p(y = k) ∝ θ̂_k · t_k(gel) · t_k(emulsion)` in log space, with
    /// the Student-t predictives served from the shared cache.
    fn y_posterior(
        &self,
        theta: &[f64],
        features: &RecipeFeatures,
    ) -> Result<Vec<f64>, ServeError> {
        let k = self.artifact.config.n_topics;
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let mut log_p = Vec::with_capacity(k);
        for t in 0..k {
            let gel = cache
                .get_or_try_build(t, || self.artifact.gel_posteriors[t].posterior_predictive())
                .map_err(ModelError::from)?;
            let mut lp = theta[t].max(f64::MIN_POSITIVE).ln()
                + gel.log_pdf(&features.gel).map_err(ModelError::from)?;
            let emu = cache
                .get_or_try_build(k + t, || {
                    self.artifact.emulsion_posteriors[t].posterior_predictive()
                })
                .map_err(ModelError::from)?;
            lp += emu.log_pdf(&features.emulsion).map_err(ModelError::from)?;
            log_p.push(lp);
        }
        let max = log_p.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut p: Vec<f64> = log_p.iter().map(|&l| (l - max).exp()).collect();
        let norm: f64 = p.iter().sum();
        for x in &mut p {
            *x /= norm;
        }
        Ok(p)
    }

    fn top_terms(&self, topic: usize, n: usize) -> Vec<TextureTerm> {
        let v = self.artifact.config.vocab_size;
        let mut weighted: Vec<(usize, f64)> =
            (0..v).map(|w| (w, self.frozen.phi(topic, w))).collect();
        weighted.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        weighted
            .into_iter()
            .take(n)
            .map(|(w, weight)| {
                let entry = self
                    .artifact
                    .dict
                    .get(rheotex_textures::TermId(w as u32))
                    .expect("vocab index within dictionary");
                TextureTerm {
                    term: entry.surface.clone(),
                    gloss: entry.gloss.clone(),
                    weight,
                }
            })
            .collect()
    }

    /// Ranks Table I settings by `Σ_k θ̂_k · KL(setting_s ‖ topic_k)`
    /// using the linkage precomputed at export time.
    fn nearest_setting(&self, theta: &[f64], features: &RecipeFeatures) -> NearestSetting {
        let (best, score) = self
            .artifact
            .table1
            .iter()
            .map(|a| {
                let s: f64 = theta
                    .iter()
                    .zip(&a.all_kl)
                    .map(|(&t, &kl)| t * kl)
                    .sum();
                (a, s)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("artifact validation guarantees Table I linkage");
        let setting = rheotex_rheology::table1()
            .into_iter()
            .find(|s| s.id == best.setting_id)
            .expect("linkage ids come from Table I");
        let recommendations = (0..3)
            .map(|i| GelRecommendation {
                gel: GEL_NAMES[i].to_string(),
                current: features.gel_concentrations[i],
                suggested: setting.gels[i],
                delta: setting.gels[i] - features.gel_concentrations[i],
            })
            .collect();
        NearestSetting {
            setting_id: setting.id,
            score,
            gels: setting.gels,
            hardness: setting.attributes.hardness,
            cohesiveness: setting.attributes.cohesiveness,
            adhesiveness: setting.attributes.adhesiveness,
            recommendations,
        }
    }
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(i, _)| i)
}

fn rheology_report(features: &RecipeFeatures) -> RheologyReport {
    let attrs = GelMechanics::from_composition(
        features.gel_concentrations,
        features.emulsion_concentrations,
    )
    .predicted_attributes();
    let spreadability = if attrs.adhesiveness + attrs.hardness > 0.0 {
        attrs.adhesiveness / (attrs.adhesiveness + attrs.hardness)
    } else {
        0.0
    };
    RheologyReport {
        gel_concentrations: features.gel_concentrations,
        emulsion_concentrations: features.emulsion_concentrations,
        gel_coordinates: features.gel.iter().copied().collect(),
        emulsion_coordinates: features.emulsion.iter().copied().collect(),
        hardness: attrs.hardness,
        cohesiveness: attrs.cohesiveness,
        adhesiveness: attrs.adhesiveness,
        viscosity_index: attrs.hardness * attrs.cohesiveness,
        spreadability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixture;

    fn service() -> TextureService {
        TextureService::from_artifact(test_fixture::artifact()).unwrap()
    }

    #[test]
    fn answers_a_recipe_with_the_serve_schema() {
        let svc = service();
        let out = svc.infer(&test_fixture::recipe(), &InferOptions::default()).unwrap();
        assert_eq!(out.schema, SERVE_SCHEMA);
        assert_eq!(out.recipe_id, 900);
        assert!(out.terms_matched.contains(&"purupuru".to_string()));
        let sum: f64 = out.topic_mixture.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let ysum: f64 = out.y_posterior.iter().sum();
        assert!((ysum - 1.0).abs() < 1e-9);
        assert!(!out.texture_terms.is_empty());
        assert!(out.rheology.hardness > 0.0, "gelatin recipe has hardness");
        assert!((0.0..=1.0).contains(&out.rheology.spreadability));
        assert!(
            rheotex_rheology::table1()
                .iter()
                .any(|s| s.id == out.nearest_setting.setting_id),
            "nearest setting must be a Table I row"
        );
        assert_eq!(out.nearest_setting.recommendations.len(), 3);
        assert_eq!(out.nearest_setting.recommendations[0].gel, "gelatin");
    }

    #[test]
    fn identical_requests_serialize_byte_identically() {
        let svc = service();
        let opts = InferOptions {
            algorithm: FoldInAlgorithm::Gibbs,
            seed: 7,
            ..InferOptions::default()
        };
        let a = svc.infer(&test_fixture::recipe(), &opts).unwrap();
        let b = svc.infer(&test_fixture::recipe(), &opts).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn zero_weight_recipes_are_client_errors() {
        let svc = service();
        let mut recipe = test_fixture::recipe();
        recipe.ingredients.clear();
        let err = svc.infer(&recipe, &InferOptions::default()).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn predictive_cache_is_shared_across_requests() {
        let svc = service();
        svc.infer(&test_fixture::recipe(), &InferOptions::default())
            .unwrap();
        let (lookups_1, hits_1, _) = svc.cache_stats();
        assert_eq!(hits_1, 0, "first request builds every predictive");
        assert_eq!(lookups_1, 2 * svc.artifact().config.n_topics as u64);
        svc.infer(&test_fixture::recipe(), &InferOptions::default())
            .unwrap();
        let (lookups_2, hits_2, rate) = svc.cache_stats();
        assert_eq!(lookups_2, 2 * lookups_1);
        assert_eq!(hits_2, lookups_1, "second request is all hits");
        assert!(rate > 0.49);
    }

    #[test]
    fn health_passes_for_in_memory_artifacts() {
        service().health().unwrap();
    }
}
